//! The adversary gauntlet: every misbehaviour class from §4.2 at once.
//!
//! ```text
//! cargo run --release --example adversary_gauntlet
//! ```
//!
//! Runs the "zoo" mix — a concealer, a forger, a misreporter and a sleeper
//! that turns hostile halfway — against active providers, then prints how
//! each adversary's reputation vector and revenue fared, and verifies the
//! paper's five safety/liveness properties on the resulting ledgers.

use prb::core::behavior::{CollectorProfile, ProviderProfile};
use prb::core::config::ProtocolConfig;
use prb::core::sim::Simulation;
use prb::ledger::block::Verdict;

fn main() -> Result<(), String> {
    let mut cfg = ProtocolConfig {
        seed: 1337,
        tx_per_provider: 5,
        ..Default::default()
    };
    cfg.reputation.f = 0.7;
    println!("== adversary gauntlet (f = {}) ==", cfg.reputation.f);

    let profiles: Vec<CollectorProfile> = (0..8)
        .map(|c| match c {
            0 => CollectorProfile::concealer(0.6),
            1 => CollectorProfile::forger(0.4),
            2 => CollectorProfile::misreporter(0.6),
            3 => CollectorProfile::misreporter(0.9).sleeper(10),
            _ => CollectorProfile::honest(),
        })
        .collect();
    let roles = [
        "concealer (drops 60%)",
        "forger (fabricates 40%)",
        "misreporter (flips 60%)",
        "sleeper (honest, turns hostile at round 10)",
        "honest",
        "honest",
        "honest",
        "honest",
    ];

    let mut sim = Simulation::builder(cfg)
        .collector_profiles(profiles)
        .provider_profiles(vec![
            ProviderProfile {
                invalid_rate: 0.3,
                active: true
            };
            8
        ])
        .build()?;

    sim.run(20);
    sim.run_drain_rounds(3);

    println!("\n-- reputation vectors at governor g0 --");
    let table = sim.governor(0).reputation();
    for (c, role) in roles.iter().enumerate() {
        println!("c{}: {}  [{}]", c, table.collector(c), role);
    }

    let mut paid = [0.0f64; 8];
    for g in 0..4 {
        for (c, share) in sim.metrics(g).revenue_paid.iter().enumerate() {
            paid[c] += share;
        }
    }
    println!("\n-- cumulative revenue --");
    for (c, p) in paid.iter().enumerate() {
        println!("c{c}: {p:>9.2}  [{}]", roles[c]);
    }

    // The paper's properties, checked on the run's artifacts.
    println!("\n-- §3.1 properties --");
    let agreement = sim.chains_agree();
    println!("Agreement:          {agreement}");
    let integrity = (0..4).all(|g| sim.governor(g).chain().audit().is_none());
    println!("Chain Integrity:    {integrity}");
    let no_skipping = {
        let chain = sim.governor(0).chain();
        (0..=chain.height()).all(|s| chain.retrieve(s).is_some())
    };
    println!("No Skipping:        {no_skipping}");
    let no_creation = {
        let chain = sim.governor(0).chain();
        let oracle = sim.oracle();
        chain
            .iter()
            .flat_map(|b| &b.entries)
            .all(|e| oracle.borrow().peek(e.tx.id()).is_some())
    };
    println!(
        "Almost No Creation: {no_creation} (forger sent {} fabrications, all rejected)",
        sim.collector(1).counters().3
    );
    let validity = {
        // Every argued-valid entry is genuinely valid.
        let chain = sim.governor(0).chain();
        let oracle = sim.oracle();
        chain
            .iter()
            .flat_map(|b| &b.entries)
            .filter(|e| e.verdict == Verdict::ArguedValid)
            .all(|e| oracle.borrow().peek(e.tx.id()) == Some(true))
    };
    println!("Validity (argued):  {validity}");
    assert!(agreement && integrity && no_skipping && no_creation && validity);
    println!("\nall properties hold.");
    Ok(())
}

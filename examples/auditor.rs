//! The alliance auditor: offline verification of an exported ledger and
//! light-client inclusion checks.
//!
//! ```text
//! cargo run --release --example auditor
//! ```
//!
//! A regulator auditing the alliance (the paper's motivating scenario is
//! that misbehaving members "will be detected and punished afterward")
//! does not participate in the protocol. It receives:
//!
//! 1. a full chain export from any governor — re-verified structurally on
//!    import (hash chain, serials, Merkle roots, size bounds), and
//! 2. for spot checks, only the *headers* plus Merkle proofs from an
//!    untrusted full node.
//!
//! The example runs a deployment with a misreporting driver, exports the
//! ledger, audits it offline, and verifies a disputed transaction's
//! recording with a light client.

use prb::core::behavior::{CollectorProfile, ProviderProfile};
use prb::core::config::ProtocolConfig;
use prb::core::sim::Simulation;
use prb::ledger::chain::Chain;
use prb::ledger::header::HeaderChain;

fn main() -> Result<(), String> {
    // -- Phase 1: the alliance runs normally --------------------------------
    let mut sim = Simulation::builder(ProtocolConfig {
        seed: 404,
        tx_per_provider: 5,
        ..Default::default()
    })
    .collector_profile(2, CollectorProfile::misreporter(0.6))
    .provider_profiles(vec![
        ProviderProfile {
            invalid_rate: 0.3,
            active: true
        };
        8
    ])
    .build()?;
    sim.run(8);
    sim.run_drain_rounds(2);
    let governor_chain = sim.governor(0).chain();
    println!(
        "alliance ran {} rounds; ledger height {} with {} transactions",
        sim.rounds_run(),
        governor_chain.height(),
        governor_chain.tx_count()
    );

    // -- Phase 2: full offline audit from an export -------------------------
    let export = governor_chain.export();
    println!(
        "\nauditor received {} bytes of exported chain",
        export.len()
    );
    let audited = Chain::import(&export).map_err(|e| format!("import failed: {e}"))?;
    assert_eq!(audited.audit(), None);
    println!(
        "import re-verified every link: height {}, head {}…",
        audited.height(),
        &audited.latest().hash().to_hex()[..16]
    );

    // Tampering demonstration: flip one byte, the import fails.
    let mut tampered = export.clone();
    let idx = tampered.len() / 2;
    tampered[idx] ^= 1;
    match Chain::import(&tampered) {
        Err(e) => println!("tampered export rejected: {e}"),
        Ok(_) => panic!("tampered export must not import"),
    }

    // -- Phase 3: light-client spot check ------------------------------------
    // The auditor keeps only headers (~100 bytes/block) ...
    let mut light = HeaderChain::new(b"prb-chain");
    light
        .sync_from(audited.iter())
        .map_err(|e| format!("header sync: {e}"))?;
    println!(
        "\nlight client synced {} headers ({} bytes of export shrunk to headers)",
        light.height(),
        export.len()
    );
    // ... and asks an (untrusted) full node for a proof that a specific
    // transaction was recorded in block 3.
    let block = audited.retrieve(3).expect("block 3 exists");
    let disputed_index = block.tx_count() / 2;
    let proof = block.prove_inclusion(disputed_index).expect("in range");
    let entry = &block.entries[disputed_index];
    let ok = light.verify_inclusion(3, &proof, entry);
    println!(
        "inclusion of tx {} in block 3 (verdict {}): {}",
        entry.tx.id(),
        entry.verdict,
        ok
    );
    assert!(ok);
    // A doctored entry (claiming a different verdict) fails the same proof.
    let mut doctored = entry.clone();
    doctored.verdict = prb::ledger::block::Verdict::ArguedValid;
    assert!(!light.verify_inclusion(3, &proof, &doctored));
    println!("doctored verdict for the same tx: rejected");

    // -- Phase 4: the audit findings -----------------------------------------
    // Reported labels are part of the tamper-evident record, so the
    // auditor can score every driver offline.
    let mut wrong = [0u32; 8];
    let mut total = [0u32; 8];
    let oracle = sim.oracle();
    for block in audited.iter() {
        for entry in &block.entries {
            let Some(truth) = oracle.borrow().peek(entry.tx.id()) else {
                continue;
            };
            for (collector, label) in &entry.reported_labels {
                total[collector.index as usize] += 1;
                if label.is_valid() != truth {
                    wrong[collector.index as usize] += 1;
                }
            }
        }
    }
    println!("\noffline label audit (wrong / reported):");
    for c in 0..8 {
        let marker = if c == 2 {
            "  <- flagged for punishment"
        } else {
            ""
        };
        println!("  c{c}: {:>3} / {:>3}{marker}", wrong[c], total[c]);
    }
    let worst = (0..8)
        .max_by_key(|&c| wrong[c] * 1000 / total[c].max(1))
        .unwrap();
    assert_eq!(worst, 2, "the auditor finds the misreporting collector");
    println!("\naudit complete: member c{worst} detected from the ledger alone.");
    Ok(())
}

//! Insurance underwriting on the permissioned chain (§5.2 of the paper).
//!
//! ```text
//! cargo run --release --example insurance
//! ```
//!
//! Potential policyholders (providers) submit signed applications to
//! independent agents (collectors), who verify the materials and forward
//! them to the insurance companies (governors). One agent colludes with
//! applicants, labeling fraudulent applications as clean; companies only
//! spot-check (f = 0.6), yet the reputation mechanism drives the corrupt
//! agent's screening weight — and commission — down.

use prb::core::behavior::{CollectorProfile, ProviderProfile};
use prb::core::config::ProtocolConfig;
use prb::core::sim::Simulation;
use prb::workload::insurance::{Application, InsuranceWorkload};

fn main() -> Result<(), String> {
    let mut cfg = ProtocolConfig {
        providers: 10,
        collectors: 5,
        governors: 4,
        replication: 2,
        tx_per_provider: 4,
        seed: 99,
        ..Default::default()
    };
    cfg.reputation.f = 0.6;
    println!(
        "== insurance: {} applicants, {} independent agents, {} companies (spot-check f = {}) ==",
        cfg.providers, cfg.collectors, cfg.governors, cfg.reputation.f
    );

    let mut sim = Simulation::builder(cfg)
        // Agent a2 helps applicants: flips 80% of its labels, so frauds
        // read as clean (and clean reads as fraud).
        .collector_profile(2, CollectorProfile::misreporter(0.8))
        .provider_profiles(vec![
            ProviderProfile {
                invalid_rate: 0.0,
                active: false
            };
            10
        ])
        .workload(Box::new(InsuranceWorkload::new(0.35)))
        .build()?;

    sim.run(20);
    sim.run_drain_rounds(3);

    // Underwriting results from the committed ledger.
    let chain = sim.governor(0).chain();
    let oracle = sim.oracle();
    let mut underwritten = 0usize;
    let mut fraud_blocked = 0usize;
    let mut fraud_slipped = 0usize;
    let mut risk_sum = 0u64;
    let mut seen = 0usize;
    for block in chain.iter() {
        for entry in &block.entries {
            seen += 1;
            let app = Application::from_bytes(&entry.tx.payload.data)
                .expect("ledger carries applications");
            let truth = oracle.borrow().peek(entry.tx.id()).unwrap_or(false);
            if entry.verdict.counts_as_valid() {
                underwritten += 1;
                risk_sum += app.risk_score() as u64;
                if !truth {
                    fraud_slipped += 1;
                }
            } else if !truth {
                fraud_blocked += 1;
            }
        }
    }
    let _ = seen;
    println!("\nledger height {}", chain.height());
    println!(
        "underwritten policies: {underwritten} (mean risk score {:.1})",
        risk_sum as f64 / underwritten.max(1) as f64
    );
    println!("fraudulent applications recorded-but-flagged: {fraud_blocked}");
    println!("fraudulent applications slipped through unchecked: {fraud_slipped}");

    println!("\n-- company g0's view of agent reliability --");
    let table = sim.governor(0).reputation();
    for a in 0..5 {
        let v = table.collector(a);
        let marker = if a == 2 { "  <- colluding agent" } else { "" };
        println!("agent a{a}: {}{marker}", v);
    }

    // Commission: agents are paid from executed policies by reputation.
    let mut commission = [0.0f64; 5];
    for g in 0..4 {
        for (c, share) in sim.metrics(g).revenue_paid.iter().enumerate() {
            commission[c] += share;
        }
    }
    println!("\n-- cumulative commission --");
    let honest_avg: f64 = (0..5)
        .filter(|&a| a != 2)
        .map(|a| commission[a])
        .sum::<f64>()
        / 4.0;
    for (a, c) in commission.iter().enumerate() {
        let marker = if a == 2 { "  <- colluding agent" } else { "" };
        println!("agent a{a}: {c:>8.2}{marker}");
    }
    println!(
        "\ncolluding agent earns {:.0}% of an honest agent's commission",
        100.0 * commission[2] / honest_avg
    );
    Ok(())
}

//! Car-sharing on the permissioned chain (§5.1 of the paper).
//!
//! ```text
//! cargo run --release --example carshare
//! ```
//!
//! Users (providers) broadcast ride requests to drivers (collectors), who
//! label each request serviceable (+1) or not (−1) and upload to
//! schedulers (governors). Two drivers are dishonest: one rejects rides it
//! could serve (labels them −1), one accepts everything including
//! unserviceable requests. The reputation system exposes both, and the
//! schedulers' committed ledger carries the assignable rides.

use prb::core::behavior::{CollectorProfile, ProviderProfile};
use prb::core::config::ProtocolConfig;
use prb::core::sim::Simulation;
use prb::ledger::block::Verdict;
use prb::workload::carshare::{CarShareWorkload, RideRequest};

fn main() -> Result<(), String> {
    let cfg = ProtocolConfig {
        providers: 12,
        collectors: 6,
        governors: 3,
        replication: 3,
        tx_per_provider: 5,
        seed: 51,
        ..Default::default()
    };
    println!(
        "== car-sharing: {} users, {} drivers, {} schedulers ==",
        cfg.providers, cfg.collectors, cfg.governors
    );

    let mut sim = Simulation::builder(cfg)
        // Driver d1 "rejects" 70% of rides (flips serviceable ones to -1);
        // driver d4 rubber-stamps everything (flips unserviceable to +1).
        .collector_profile(1, CollectorProfile::misreporter(0.7))
        .collector_profile(4, CollectorProfile::misreporter(0.7))
        .provider_profiles(vec![
            ProviderProfile {
                invalid_rate: 0.0,
                active: true
            };
            12
        ])
        .workload(Box::new(CarShareWorkload::new(0.25)))
        .build()?;

    sim.run(15);
    sim.run_drain_rounds(3);

    // Read the committed ledger and reconstruct the ride market.
    let chain = sim.governor(0).chain();
    let mut assignable = 0usize;
    let mut rejected = 0usize;
    let mut total_fare = 0u64;
    let mut total_distance = 0u64;
    for block in chain.iter() {
        for entry in &block.entries {
            let req = RideRequest::from_bytes(&entry.tx.payload.data)
                .expect("ledger carries ride requests");
            match entry.verdict {
                Verdict::CheckedValid | Verdict::ArguedValid => {
                    assignable += 1;
                    total_fare += req.fare_cents as u64;
                    total_distance += req.distance() as u64;
                }
                Verdict::UncheckedInvalid | Verdict::UncheckedValid => rejected += 1,
            }
        }
    }
    println!(
        "\nledger height {} — {} assignable rides, {} rejected/unchecked",
        chain.height(),
        assignable,
        rejected
    );
    if assignable > 0 {
        println!(
            "average fare {:.2} EUR, average trip {:.1} cells",
            total_fare as f64 / assignable as f64 / 100.0,
            total_distance as f64 / assignable as f64
        );
    }

    println!("\n-- scheduler g0's view of driver reliability --");
    let table = sim.governor(0).reputation();
    let mut ranked: Vec<(u32, f64)> = (0..6)
        .map(|d| {
            let v = table.collector(d as usize);
            let mean_weight: f64 = v.weights().iter().sum::<f64>() / v.weights().len() as f64;
            (d, mean_weight)
        })
        .collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("weights are finite"));
    for (d, w) in &ranked {
        let marker = match d {
            1 | 4 => "  <- dishonest driver",
            _ => "",
        };
        println!("driver d{d}: mean screening weight {w:.4}{marker}");
    }
    let worst_two: Vec<u32> = ranked[4..].iter().map(|(d, _)| *d).collect();
    println!(
        "\nthe two lowest-ranked drivers are {:?} — the reputation system found the dishonest pair: {}",
        worst_two,
        worst_two.contains(&1) && worst_two.contains(&4)
    );
    Ok(())
}

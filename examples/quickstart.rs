//! Quickstart: run the protocol end to end and print what happened.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a default deployment (8 providers, 8 collectors, 4 governors,
//! replication r = 4, f = 0.5, β = 0.9), runs ten rounds with one
//! misreporting collector, and prints the committed chain, the screening
//! statistics, the reputation table and the revenue split.

use prb::core::behavior::{CollectorProfile, ProviderProfile};
use prb::core::config::ProtocolConfig;
use prb::core::sim::Simulation;

fn main() -> Result<(), String> {
    let cfg = ProtocolConfig {
        seed: 2021,
        ..Default::default()
    };
    println!("== prb quickstart ==");
    println!(
        "l = {} providers, n = {} collectors, m = {} governors, r = {}, s = {}",
        cfg.providers,
        cfg.collectors,
        cfg.governors,
        cfg.replication,
        cfg.s()
    );
    println!(
        "f = {}, beta = {}, mu = {}, nu = {}, U = {}, b_limit = {}",
        cfg.reputation.f,
        cfg.reputation.beta,
        cfg.reputation.mu,
        cfg.reputation.nu,
        cfg.argue_limit_u,
        cfg.b_limit
    );

    let mut sim = Simulation::builder(cfg)
        .collector_profile(3, CollectorProfile::misreporter(0.6))
        .provider_profiles(vec![
            ProviderProfile {
                invalid_rate: 0.3,
                active: true,
            };
            8
        ])
        .build()?;

    println!("\nrunning 10 rounds (collector c3 flips 60% of its labels)…\n");
    for outcome in sim.run(10) {
        println!(
            "round {:>2}: leader g{}  block #{} with {} txs",
            outcome.round,
            outcome.leader.map_or("?".into(), |l| l.to_string()),
            outcome.block_serial.unwrap_or(0),
            outcome.txs_in_block,
        );
    }
    sim.run_drain_rounds(3); // let reveals and argues settle

    println!("\nagreement across governors: {}", sim.chains_agree());
    let m = sim.metrics(0);
    println!("\n-- governor g0 --");
    println!("screened {:>5} transactions", m.screened);
    println!(
        "checked  {:>5} ({} validations incl. argues)",
        m.checked, m.validations
    );
    println!(
        "unchecked{:>6} ({:.1}% — bounded by f = 50%)",
        m.unchecked,
        100.0 * m.unchecked_fraction()
    );
    println!(
        "argues   {:>5} accepted, {} rejected",
        m.argue_accepted, m.argue_rejected
    );
    println!(
        "realized loss {:.1}, expected loss {:.2}",
        m.realized_loss, m.expected_loss
    );

    println!("\n-- reputation table (governor g0) --");
    let table = sim.governor(0).reputation();
    for c in 0..8 {
        println!("c{}: {}", c, table.collector(c));
    }

    println!("\n-- cumulative revenue per collector (all leaders) --");
    let mut paid = [0.0f64; 8];
    for g in 0..4 {
        for (c, share) in sim.metrics(g).revenue_paid.iter().enumerate() {
            paid[c] += share;
        }
    }
    for (c, p) in paid.iter().enumerate() {
        let marker = if c == 3 { "  <- misreporter" } else { "" };
        println!("c{c}: {p:>8.2}{marker}");
    }
    Ok(())
}

//! Property-based tests of the ledger: whatever sequence of valid blocks
//! is appended, the chain invariants hold; whatever tampering is applied,
//! the audit catches it.

use proptest::prelude::*;

use prb_crypto::identity::NodeId;
use prb_crypto::signer::CryptoScheme;
use prb_ledger::block::{Block, BlockEntry, Verdict};
use prb_ledger::chain::Chain;
use prb_ledger::transaction::{Label, SignedTx, TxPayload};

fn verdict_strategy() -> impl Strategy<Value = Verdict> {
    prop_oneof![
        Just(Verdict::CheckedValid),
        Just(Verdict::UncheckedInvalid),
        Just(Verdict::UncheckedValid),
        Just(Verdict::ArguedValid),
    ]
}

fn entry(provider: u32, nonce: u64, verdict: Verdict) -> BlockEntry {
    let key = CryptoScheme::sim().keypair_from_seed(format!("prop-{provider}").as_bytes());
    let tx = SignedTx::create(
        TxPayload {
            provider: NodeId::provider(provider),
            nonce,
            data: vec![provider as u8],
        },
        7,
        &key,
    );
    BlockEntry {
        tx,
        verdict,
        reported_labels: vec![(NodeId::collector(provider % 3), Label::Valid)],
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Appending any sequence of well-formed blocks keeps the chain
    /// auditable, retrievable, and gap-free.
    #[test]
    fn chain_invariants_hold_for_any_block_sequence(
        blocks in proptest::collection::vec(
            proptest::collection::vec((0u32..4, verdict_strategy()), 0..6),
            1..8,
        )
    ) {
        let mut chain = Chain::new(b"prop", 64);
        let mut nonce = 0u64;
        for spec in &blocks {
            let entries: Vec<BlockEntry> = spec
                .iter()
                .map(|&(p, v)| {
                    nonce += 1;
                    entry(p, nonce, v)
                })
                .collect();
            let block = Block::build(
                chain.height() + 1,
                entries,
                chain.latest().hash(),
                NodeId::governor(0),
                nonce,
            );
            chain.append(block).expect("well-formed block appends");
        }
        prop_assert_eq!(chain.height(), blocks.len() as u64);
        prop_assert_eq!(chain.audit(), None);
        // No Skipping: every serial up to the height retrieves.
        for s in 0..=chain.height() {
            prop_assert!(chain.retrieve(s).is_some());
        }
        // Every recorded transaction is findable at its first location.
        for block in chain.iter() {
            for e in &block.entries {
                let (loc, found) = chain.find_tx(e.tx.id()).expect("indexed");
                let stored = &chain.retrieve(loc.serial).expect("exists").entries[loc.index];
                prop_assert_eq!(stored.tx.id(), found.tx.id());
            }
        }
    }

    /// Any bit of tampering with a committed block is caught by audit.
    #[test]
    fn audit_catches_any_tamper(
        n_blocks in 2u64..6,
        target in 0usize..4,
        kind in 0u8..3,
    ) {
        let mut chain = Chain::new(b"prop2", 64);
        for i in 0..n_blocks {
            let block = Block::build(
                chain.height() + 1,
                vec![entry(0, i + 1, Verdict::CheckedValid)],
                chain.latest().hash(),
                NodeId::governor(0),
                i,
            );
            chain.append(block).expect("appends");
        }
        prop_assert_eq!(chain.audit(), None);
        // Tamper via a cloned chain's internals: rebuild one block. A
        // header-only tamper (kind 1) of the *last* block produces a
        // different-but-self-consistent chain that replay alone cannot
        // distinguish (agreement across replicas catches that case), so
        // the victim is never the final block.
        let victim = (target as u64 % (n_blocks - 1)) + 1;
        let mut blocks: Vec<Block> = chain.iter().cloned().collect();
        let b = &mut blocks[victim as usize];
        match kind {
            0 => b.entries[0].verdict = Verdict::ArguedValid, // merkle break
            1 => b.timestamp += 1,                            // hash-chain break
            _ => b.serial += 1,                               // serial break
        }
        // Re-assemble a chain-like structure and audit it by replaying.
        let mut replay = Chain::new(b"prop2", 64);
        let mut broken = false;
        for block in blocks.into_iter().skip(1) {
            if replay.append(block).is_err() {
                broken = true;
                break;
            }
        }
        prop_assert!(broken, "tampering of kind {kind} went unnoticed");
    }

    /// Merkle commitments make block hashes injective in the entry list.
    #[test]
    fn block_hash_injective_in_entries(
        a in proptest::collection::vec((0u32..3, verdict_strategy()), 0..5),
        b in proptest::collection::vec((0u32..3, verdict_strategy()), 0..5),
    ) {
        let prev = Block::genesis(b"x").hash();
        let build = |spec: &[(u32, Verdict)]| {
            let entries = spec
                .iter()
                .enumerate()
                .map(|(i, &(p, v))| entry(p, i as u64, v))
                .collect();
            Block::build(1, entries, prev, NodeId::governor(0), 0)
        };
        let ba = build(&a);
        let bb = build(&b);
        if a == b {
            prop_assert_eq!(ba.hash(), bb.hash());
        } else {
            prop_assert_ne!(ba.hash(), bb.hash());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Export/import round-trips exactly, and flipping any byte of the
    /// file — including the 24-byte header (b_limit + base + block count)
    /// — is rejected on import: every content byte is either
    /// hash-committed or structural.
    #[test]
    fn export_is_tamper_evident(
        n_blocks in 1u64..5,
        per_block in 1usize..4,
        flip in any::<proptest::sample::Index>(),
        bit in 0u8..8,
    ) {
        let mut chain = Chain::new(b"export-prop", 64);
        let mut nonce = 0;
        for _ in 0..n_blocks {
            let entries = (0..per_block)
                .map(|p| {
                    nonce += 1;
                    entry(p as u32 % 4, nonce, Verdict::CheckedValid)
                })
                .collect();
            let block = Block::build(
                chain.height() + 1,
                entries,
                chain.latest().hash(),
                NodeId::governor(0),
                nonce,
            );
            chain.append(block).expect("appends");
        }
        let bytes = chain.export();
        // Clean import round-trips.
        let imported = Chain::import(&bytes).expect("clean import");
        prop_assert_eq!(imported.latest().hash(), chain.latest().hash());
        prop_assert_eq!(imported.height(), chain.height());
        // Any single-bit flip anywhere in the file fails to import
        // (lengths are structural, content is hash-committed, and the
        // trailer pins b_limit and the chain head).
        let idx = flip.index(bytes.len());
        let mut tampered = bytes.clone();
        tampered[idx] ^= 1 << bit;
        prop_assert!(
            Chain::import(&tampered).is_err(),
            "flip of bit {bit} at byte {idx} (of {}) imported cleanly",
            bytes.len()
        );
    }
}

// ---------------------------------------------------------------------
// Codec hardening: the canonical encoders round-trip exactly, and no
// corruption of the byte stream — truncation at any boundary or a flip of
// any single byte — can make a decoder panic. A corrupted stream either
// errors or decodes to a value whose canonical re-encoding reproduces the
// corrupted bytes exactly (the codec is injective, so nothing is silently
// reinterpreted).
// ---------------------------------------------------------------------

fn label_strategy() -> impl Strategy<Value = Label> {
    prop_oneof![Just(Label::Valid), Just(Label::Invalid)]
}

fn entry_strategy() -> impl Strategy<Value = BlockEntry> {
    (
        0u32..8,
        any::<u64>(),
        proptest::collection::vec(any::<u8>(), 0..24),
        any::<u64>(),
        verdict_strategy(),
        proptest::collection::vec((0u32..8, label_strategy()), 0..4),
    )
        .prop_map(|(provider, nonce, data, ts, verdict, labels)| {
            let key = CryptoScheme::sim().keypair_from_seed(format!("codec-{provider}").as_bytes());
            BlockEntry {
                tx: SignedTx::create(
                    TxPayload {
                        provider: NodeId::provider(provider),
                        nonce,
                        data,
                    },
                    ts,
                    &key,
                ),
                verdict,
                reported_labels: labels
                    .into_iter()
                    .map(|(c, l)| (NodeId::collector(c), l))
                    .collect(),
            }
        })
}

fn block_strategy() -> impl Strategy<Value = Block> {
    (
        1u64..1000,
        proptest::collection::vec(entry_strategy(), 0..5),
        any::<u64>(),
    )
        .prop_map(|(serial, entries, ts)| {
            Block::build(
                serial,
                entries,
                prb_crypto::sha256::sha256(&serial.to_be_bytes()),
                NodeId::governor((serial % 4) as u32),
                ts,
            )
        })
}

/// Shared corruption sweep: decoding any strict prefix must not panic, and
/// decoding any one-byte corruption must not panic; when a corrupted input
/// decodes cleanly and is fully consumed, its canonical re-encoding must
/// equal the corrupted input byte for byte.
fn assert_corruption_immune<T>(
    bytes: &[u8],
    decode: impl Fn(&mut prb_ledger::codec::Reader<'_>) -> Result<T, prb_ledger::codec::DecodeError>,
    encode: impl Fn(&T) -> Vec<u8>,
) {
    for cut in 0..bytes.len() {
        let mut r = prb_ledger::codec::Reader::new(&bytes[..cut]);
        match decode(&mut r) {
            // A strict prefix can only decode cleanly if a trailing field
            // shrank; full consumption plus canonical re-encode rules out
            // silent reinterpretation.
            Ok(v) if r.remaining() == 0 => assert_eq!(encode(&v), &bytes[..cut]),
            Ok(_) | Err(_) => {}
        }
    }
    for i in 0..bytes.len() {
        let mut bad = bytes.to_vec();
        bad[i] ^= 0x80;
        let mut r = prb_ledger::codec::Reader::new(&bad);
        match decode(&mut r) {
            Ok(v) if r.remaining() == 0 => {
                assert_eq!(encode(&v), bad, "byte {i} silently reinterpreted")
            }
            Ok(_) | Err(_) => {}
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `encode_signed_tx`/`decode_signed_tx` round-trip exactly and are
    /// immune to truncation and single-byte corruption.
    #[test]
    fn signed_tx_codec_roundtrips_and_survives_corruption(e in entry_strategy()) {
        let tx = e.tx;
        let mut bytes = Vec::new();
        prb_ledger::codec::encode_signed_tx(&mut bytes, &tx);
        let mut r = prb_ledger::codec::Reader::new(&bytes);
        let back = prb_ledger::codec::decode_signed_tx(&mut r).expect("clean decode");
        prop_assert_eq!(r.remaining(), 0);
        prop_assert_eq!(&back, &tx);
        prop_assert_eq!(back.id(), tx.id(), "tx id re-derived identically");
        assert_corruption_immune(
            &bytes,
            prb_ledger::codec::decode_signed_tx,
            |t| { let mut o = Vec::new(); prb_ledger::codec::encode_signed_tx(&mut o, t); o },
        );
    }

    /// `encode_entry`/`decode_entry` round-trip exactly and are immune to
    /// truncation and single-byte corruption.
    #[test]
    fn entry_codec_roundtrips_and_survives_corruption(e in entry_strategy()) {
        let mut bytes = Vec::new();
        prb_ledger::codec::encode_entry(&mut bytes, &e);
        let mut r = prb_ledger::codec::Reader::new(&bytes);
        let back = prb_ledger::codec::decode_entry(&mut r).expect("clean decode");
        prop_assert_eq!(r.remaining(), 0);
        prop_assert_eq!(&back, &e);
        assert_corruption_immune(
            &bytes,
            prb_ledger::codec::decode_entry,
            |t| { let mut o = Vec::new(); prb_ledger::codec::encode_entry(&mut o, t); o },
        );
    }

    /// `encode_block`/`decode_block` round-trip exactly and are immune to
    /// truncation and single-byte corruption.
    #[test]
    fn block_codec_roundtrips_and_survives_corruption(b in block_strategy()) {
        let mut bytes = Vec::new();
        prb_ledger::codec::encode_block(&mut bytes, &b);
        let mut r = prb_ledger::codec::Reader::new(&bytes);
        let back = prb_ledger::codec::decode_block(&mut r).expect("clean decode");
        prop_assert_eq!(r.remaining(), 0);
        prop_assert_eq!(&back, &b);
        prop_assert_eq!(back.hash(), b.hash());
        assert_corruption_immune(
            &bytes,
            prb_ledger::codec::decode_block,
            |t| { let mut o = Vec::new(); prb_ledger::codec::encode_block(&mut o, t); o },
        );
    }
}

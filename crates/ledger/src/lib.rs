//! # prb-ledger
//!
//! Transactions, blocks, and the hash-chained tamper-evident ledger for the
//! `prb` permissioned blockchain (reproduction of *"An Efficient
//! Permissioned Blockchain with Provable Reputation Mechanism"*,
//! ICDCS 2021).
//!
//! - [`transaction`] — provider-signed transactions (`tx`) and
//!   collector-labeled uploads (`Tx`) exactly as specified in §3.1–§3.3,
//! - [`block`] — blocks `B = (s, TXList, h)` with Merkle commitments and
//!   the three recording verdicts of Algorithm 2,
//! - [`chain`] — the append-only ledger enforcing *Chain Integrity* and
//!   *No Skipping* on append, with `retrieve(s)` lookups and a full audit,
//! - [`codec`] — canonical binary encoding with verified export/import,
//! - [`header`] — light-client header chains with Merkle inclusion checks,
//! - [`oracle`] — the `validate(tx)` ground-truth oracle with cost
//!   accounting.
//!
//! # Quickstart
//!
//! ```
//! use prb_crypto::identity::NodeId;
//! use prb_crypto::signer::CryptoScheme;
//! use prb_ledger::block::{Block, BlockEntry, Verdict};
//! use prb_ledger::chain::Chain;
//! use prb_ledger::transaction::{SignedTx, TxPayload};
//!
//! let key = CryptoScheme::sim().keypair_from_seed(b"p0");
//! let tx = SignedTx::create(
//!     TxPayload { provider: NodeId::provider(0), nonce: 0, data: b"hi".to_vec() },
//!     1,
//!     &key,
//! );
//! let mut chain = Chain::new(b"quickstart", 64);
//! let entry = BlockEntry { tx, verdict: Verdict::CheckedValid, reported_labels: vec![] };
//! let block = Block::build(1, vec![entry], chain.latest().hash(), NodeId::governor(0), 2);
//! chain.append(block)?;
//! assert_eq!(chain.height(), 1);
//! # Ok::<(), prb_ledger::chain::ChainError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod block;
pub mod chain;
pub mod codec;
pub mod header;
pub mod oracle;
pub mod transaction;

pub use block::{Block, BlockEntry, Verdict};
pub use chain::{Chain, ChainError, ImportError};
pub use oracle::ValidityOracle;
pub use transaction::{Label, LabeledTx, SignedTx, TxId, TxPayload};

//! The validity oracle: ground truth behind `validate(tx)`.
//!
//! The paper treats `validate(tx)` as an abstract check that reveals a
//! transaction's real status (§3.1). In the simulation, each generated
//! transaction carries a ground-truth bit registered here; collectors and
//! governors call [`ValidityOracle::validate`], which reveals the bit and
//! counts the call — the count is the *validation cost* that experiment E5
//! trades off against governor loss.

use std::cell::Cell;
use std::collections::HashMap;
use std::fmt;

use crate::transaction::TxId;

/// Ground truth and cost accounting for transaction validation.
#[derive(Default)]
pub struct ValidityOracle {
    truth: HashMap<TxId, bool>,
    validations: Cell<u64>,
}

impl fmt::Debug for ValidityOracle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ValidityOracle")
            .field("registered", &self.truth.len())
            .field("validations", &self.validations.get())
            .finish()
    }
}

impl ValidityOracle {
    /// An empty oracle.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers the ground-truth validity of a transaction.
    ///
    /// Re-registering the same id keeps the first value (transactions are
    /// immutable once signed).
    pub fn register(&mut self, id: TxId, valid: bool) {
        self.truth.entry(id).or_insert(valid);
    }

    /// The paper's `validate(tx)`: reveals ground truth, counting the call.
    ///
    /// Unregistered transactions (e.g. forged ones that never existed) are
    /// invalid by definition.
    pub fn validate(&self, id: TxId) -> bool {
        self.validations.set(self.validations.get() + 1);
        self.truth.get(&id).copied().unwrap_or(false)
    }

    /// Ground truth *without* paying/counting a validation (for experiment
    /// scoring only — never for protocol decisions).
    pub fn peek(&self, id: TxId) -> Option<bool> {
        self.truth.get(&id).copied()
    }

    /// Number of `validate` calls so far.
    pub fn validations(&self) -> u64 {
        self.validations.get()
    }

    /// Resets the validation counter (e.g. between measurement phases).
    pub fn reset_validations(&self) {
        self.validations.set(0);
    }

    /// Number of registered transactions.
    pub fn registered(&self) -> usize {
        self.truth.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prb_crypto::sha256::sha256;

    fn id(tag: &str) -> TxId {
        TxId(sha256(tag.as_bytes()))
    }

    #[test]
    fn register_and_validate() {
        let mut oracle = ValidityOracle::new();
        oracle.register(id("a"), true);
        oracle.register(id("b"), false);
        assert!(oracle.validate(id("a")));
        assert!(!oracle.validate(id("b")));
        assert_eq!(oracle.validations(), 2);
        assert_eq!(oracle.registered(), 2);
    }

    #[test]
    fn unregistered_is_invalid() {
        let oracle = ValidityOracle::new();
        assert!(!oracle.validate(id("ghost")));
        assert_eq!(oracle.peek(id("ghost")), None);
    }

    #[test]
    fn peek_does_not_count() {
        let mut oracle = ValidityOracle::new();
        oracle.register(id("a"), true);
        assert_eq!(oracle.peek(id("a")), Some(true));
        assert_eq!(oracle.validations(), 0);
    }

    #[test]
    fn first_registration_wins() {
        let mut oracle = ValidityOracle::new();
        oracle.register(id("a"), true);
        oracle.register(id("a"), false);
        assert_eq!(oracle.peek(id("a")), Some(true));
    }

    #[test]
    fn counter_reset() {
        let mut oracle = ValidityOracle::new();
        oracle.register(id("a"), true);
        oracle.validate(id("a"));
        oracle.reset_validations();
        assert_eq!(oracle.validations(), 0);
    }
}

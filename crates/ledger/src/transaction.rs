//! Transactions: provider-signed payloads and collector-labeled uploads.
//!
//! §3.1 of the paper: a provider's broadcast `tx` *"should contain a
//! transaction payload, the current timestamp, as well as the provider's
//! signature on them, to prevent a collector from fabricating one"*; a
//! collector's upload `Tx` adds *"a label (e.g. valid or invalid), and the
//! collector's signature on all of them"*.

use std::fmt;

use prb_crypto::identity::NodeId;
use prb_crypto::sha256::{hash_fields, Digest, Sha256};
use prb_crypto::signer::{KeyPair, PublicKey, Sig};

/// Unique transaction identifier: the hash of the signed content.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TxId(pub Digest);

impl TxId {
    /// The causal trace id lifecycle events carry: the first 8 digest
    /// bytes as a little-endian `u64`. Unique with overwhelming
    /// probability, and computable at any site holding the tx, so no
    /// message needs to carry it on the wire.
    pub fn trace(&self) -> u64 {
        u64::from_le_bytes(self.0 .0[..8].try_into().expect("digest is 32 bytes"))
    }
}

impl fmt::Debug for TxId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TxId({}…)", &self.0.to_hex()[..12])
    }
}

impl fmt::Display for TxId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0.to_hex()[..12])
    }
}

/// The label a collector assigns to a transaction: `+1` (valid) or `-1`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Label {
    /// The collector judged the transaction valid (`+1`).
    Valid,
    /// The collector judged the transaction invalid (`-1`).
    Invalid,
}

impl Label {
    /// The paper's numeric form: `+1` or `-1`.
    pub fn to_i8(self) -> i8 {
        match self {
            Label::Valid => 1,
            Label::Invalid => -1,
        }
    }

    /// Builds from a ground-truth validity bit.
    pub fn from_validity(valid: bool) -> Self {
        if valid {
            Label::Valid
        } else {
            Label::Invalid
        }
    }

    /// The opposite label (a misreport).
    pub fn flipped(self) -> Self {
        match self {
            Label::Valid => Label::Invalid,
            Label::Invalid => Label::Valid,
        }
    }

    /// Whether the label is [`Label::Valid`].
    pub fn is_valid(self) -> bool {
        matches!(self, Label::Valid)
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Label::Valid => "+1",
            Label::Invalid => "-1",
        })
    }
}

/// The raw transaction content a provider creates.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct TxPayload {
    /// The authoring provider.
    pub provider: NodeId,
    /// Provider-local sequence number (guards against replay of identical
    /// payloads; combined with the timestamp in the signature).
    pub nonce: u64,
    /// Opaque application data (ride request, insurance form, …).
    pub data: Vec<u8>,
}

impl TxPayload {
    fn signing_bytes(&self, timestamp: u64) -> Vec<u8> {
        let mut h = Sha256::new();
        h.update_field(b"prb-tx");
        h.update_field(&self.provider.to_bytes());
        h.update(&self.nonce.to_be_bytes());
        h.update(&timestamp.to_be_bytes());
        h.update_field(&self.data);
        h.finalize().to_bytes().to_vec()
    }
}

/// A provider-signed transaction (`tx` in the paper).
#[derive(Clone, Debug, PartialEq)]
pub struct SignedTx {
    /// The payload.
    pub payload: TxPayload,
    /// Provider-side timestamp (simulated ticks), signed together with the
    /// payload so a collector cannot replay an old transaction as new.
    pub timestamp: u64,
    /// Provider signature over payload + timestamp.
    pub provider_sig: Sig,
}

impl SignedTx {
    /// Creates and signs a transaction.
    pub fn create(payload: TxPayload, timestamp: u64, provider_key: &KeyPair) -> Self {
        let provider_sig = provider_key.sign(&payload.signing_bytes(timestamp));
        SignedTx {
            payload,
            timestamp,
            provider_sig,
        }
    }

    /// Assembles a transaction from parts without signing (for modeling
    /// forgery attempts: pair with a garbage [`Sig`]).
    pub fn from_parts(payload: TxPayload, timestamp: u64, provider_sig: Sig) -> Self {
        SignedTx {
            payload,
            timestamp,
            provider_sig,
        }
    }

    /// The transaction id: hash of payload, timestamp and provider id.
    pub fn id(&self) -> TxId {
        TxId(hash_fields(
            "tx-id",
            &[
                &self.payload.provider.to_bytes(),
                &self.payload.nonce.to_be_bytes(),
                &self.timestamp.to_be_bytes(),
                &self.payload.data,
            ],
        ))
    }

    /// The exact bytes [`SignedTx::verify`] checks the provider signature
    /// against — exposed so callers can accumulate `(bytes, sig, key)`
    /// triples and drain them through a batch verifier.
    pub fn signing_bytes(&self) -> Vec<u8> {
        self.payload.signing_bytes(self.timestamp)
    }

    /// Verifies the provider signature against `provider_pk`.
    pub fn verify(&self, provider_pk: &PublicKey) -> bool {
        provider_pk.verify(&self.signing_bytes(), &self.provider_sig)
    }

    /// Approximate wire size in bytes (for bandwidth accounting).
    pub fn wire_size(&self) -> usize {
        self.payload.data.len() + 5 + 8 + 8 + 64
    }
}

/// A collector's labeled upload (`Tx` in the paper).
#[derive(Clone, Debug, PartialEq)]
pub struct LabeledTx {
    /// The provider-signed transaction being forwarded.
    pub tx: SignedTx,
    /// The collector's validity label.
    pub label: Label,
    /// The uploading collector.
    pub collector: NodeId,
    /// Collector signature over (tx id, label).
    pub collector_sig: Sig,
}

impl LabeledTx {
    fn signing_bytes(tx_id: TxId, label: Label, collector: NodeId) -> Vec<u8> {
        let mut h = Sha256::new();
        h.update_field(b"prb-labeled-tx");
        h.update_field(tx_id.0.as_bytes());
        h.update(&[label.to_i8() as u8]);
        h.update_field(&collector.to_bytes());
        h.finalize().to_bytes().to_vec()
    }

    /// Labels and signs `tx` as `collector`.
    pub fn create(tx: SignedTx, label: Label, collector: NodeId, collector_key: &KeyPair) -> Self {
        let collector_sig = collector_key.sign(&Self::signing_bytes(tx.id(), label, collector));
        LabeledTx {
            tx,
            label,
            collector,
            collector_sig,
        }
    }

    /// Assembles from parts without signing (forgery modeling).
    pub fn from_parts(tx: SignedTx, label: Label, collector: NodeId, collector_sig: Sig) -> Self {
        LabeledTx {
            tx,
            label,
            collector,
            collector_sig,
        }
    }

    /// Verifies the collector signature (not the inner provider signature).
    pub fn verify_collector(&self, collector_pk: &PublicKey) -> bool {
        self.collector_pkless_bytes()
            .map(|bytes| collector_pk.verify(&bytes, &self.collector_sig))
            .unwrap_or(false)
    }

    fn collector_pkless_bytes(&self) -> Option<Vec<u8>> {
        Some(Self::signing_bytes(
            self.tx.id(),
            self.label,
            self.collector,
        ))
    }

    /// Full verification per the paper's `verify(d, m)` for a collector
    /// message: the collector signature is genuine *and* the inner provider
    /// signature is genuine.
    pub fn verify_full(&self, collector_pk: &PublicKey, provider_pk: &PublicKey) -> bool {
        self.verify_collector(collector_pk) && self.tx.verify(provider_pk)
    }

    /// Approximate wire size in bytes.
    pub fn wire_size(&self) -> usize {
        self.tx.wire_size() + 1 + 5 + 64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prb_crypto::signer::CryptoScheme;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn keys() -> (KeyPair, KeyPair) {
        let scheme = CryptoScheme::sim();
        (
            scheme.keypair_from_seed(b"provider-0"),
            scheme.keypair_from_seed(b"collector-0"),
        )
    }

    fn sample_tx(pk: &KeyPair) -> SignedTx {
        SignedTx::create(
            TxPayload {
                provider: NodeId::provider(0),
                nonce: 1,
                data: b"ride to airport".to_vec(),
            },
            100,
            pk,
        )
    }

    #[test]
    fn provider_signature_verifies() {
        let (pk, _) = keys();
        let tx = sample_tx(&pk);
        assert!(tx.verify(&pk.public_key()));
    }

    #[test]
    fn tampered_payload_rejected() {
        let (pk, _) = keys();
        let mut tx = sample_tx(&pk);
        tx.payload.data = b"ride to mars".to_vec();
        assert!(!tx.verify(&pk.public_key()));
    }

    #[test]
    fn tampered_timestamp_rejected() {
        let (pk, _) = keys();
        let mut tx = sample_tx(&pk);
        tx.timestamp += 1;
        assert!(!tx.verify(&pk.public_key()));
    }

    #[test]
    fn forged_signature_rejected() {
        let (pk, _) = keys();
        let mut rng = StdRng::seed_from_u64(1);
        let scheme = CryptoScheme::sim();
        let tx = SignedTx::from_parts(
            TxPayload {
                provider: NodeId::provider(0),
                nonce: 9,
                data: b"fabricated".to_vec(),
            },
            5,
            Sig::forged(&scheme, &mut rng),
        );
        assert!(!tx.verify(&pk.public_key()));
    }

    #[test]
    fn tx_ids_are_unique_per_content() {
        let (pk, _) = keys();
        let t1 = sample_tx(&pk);
        let mut p2 = t1.payload.clone();
        p2.nonce = 2;
        let t2 = SignedTx::create(p2, 100, &pk);
        assert_ne!(t1.id(), t2.id());
        assert_eq!(t1.id(), sample_tx(&pk).id());
    }

    #[test]
    fn labeled_tx_roundtrip() {
        let (pk, ck) = keys();
        let tx = sample_tx(&pk);
        let ltx = LabeledTx::create(tx, Label::Valid, NodeId::collector(0), &ck);
        assert!(ltx.verify_collector(&ck.public_key()));
        assert!(ltx.verify_full(&ck.public_key(), &pk.public_key()));
    }

    #[test]
    fn label_flip_is_detected() {
        let (pk, ck) = keys();
        let tx = sample_tx(&pk);
        let mut ltx = LabeledTx::create(tx, Label::Valid, NodeId::collector(0), &ck);
        ltx.label = Label::Invalid;
        assert!(!ltx.verify_collector(&ck.public_key()));
    }

    #[test]
    fn collector_identity_bound_into_signature() {
        let (pk, ck) = keys();
        let tx = sample_tx(&pk);
        let mut ltx = LabeledTx::create(tx, Label::Valid, NodeId::collector(0), &ck);
        ltx.collector = NodeId::collector(1);
        assert!(!ltx.verify_collector(&ck.public_key()));
    }

    #[test]
    fn forged_inner_tx_fails_full_verification() {
        let (pk, ck) = keys();
        let mut rng = StdRng::seed_from_u64(2);
        let scheme = CryptoScheme::sim();
        let forged_tx = SignedTx::from_parts(
            TxPayload {
                provider: NodeId::provider(0),
                nonce: 3,
                data: b"never sent".to_vec(),
            },
            7,
            Sig::forged(&scheme, &mut rng),
        );
        let ltx = LabeledTx::create(forged_tx, Label::Valid, NodeId::collector(0), &ck);
        // Collector signature is fine, provider signature is garbage.
        assert!(ltx.verify_collector(&ck.public_key()));
        assert!(!ltx.verify_full(&ck.public_key(), &pk.public_key()));
    }

    #[test]
    fn label_helpers() {
        assert_eq!(Label::Valid.to_i8(), 1);
        assert_eq!(Label::Invalid.to_i8(), -1);
        assert_eq!(Label::Valid.flipped(), Label::Invalid);
        assert_eq!(Label::from_validity(true), Label::Valid);
        assert_eq!(Label::from_validity(false), Label::Invalid);
        assert!(Label::Valid.is_valid());
        assert_eq!(Label::Valid.to_string(), "+1");
        assert_eq!(Label::Invalid.to_string(), "-1");
    }

    #[test]
    fn wire_sizes_are_positive_and_monotone() {
        let (pk, ck) = keys();
        let tx = sample_tx(&pk);
        let ltx = LabeledTx::create(tx.clone(), Label::Valid, NodeId::collector(0), &ck);
        assert!(ltx.wire_size() > tx.wire_size());
    }
}

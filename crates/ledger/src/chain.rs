//! The hash-chained ledger with the paper's safety properties enforced on
//! append and checkable after the fact.
//!
//! §3.1 properties implemented here:
//! - **Agreement** — `retrieve(s)` is a pure lookup; all replicas appending
//!   the same blocks return identical results (checked across replicas by
//!   the integration tests).
//! - **Chain Integrity** — `append` rejects a block whose `prev_hash` is not
//!   `H(latest)`.
//! - **No Skipping** — `append` rejects serial numbers other than
//!   `latest + 1`, so retrieval of serial `s` implies all of `1..s` exist.
//!
//! A chain is either rooted at genesis (`base == 0`) or *anchored* at a
//! checkpoint: [`Chain::from_checkpoint`] builds a chain that holds no
//! blocks but knows the certified hash of the block at `base - 1`, so the
//! hash-chain invariant extends through the anchor exactly as it would
//! through a held block. Blocks below the anchor are unavailable
//! (`retrieve` returns `None`) but remain committed-to by the anchor hash.

use std::fmt;

use prb_crypto::fxhash::{fx_map, FxMap};
use prb_crypto::sha256::Digest;

use crate::block::{Block, BlockEntry, Verdict};
use crate::codec::{self, DecodeError};
use crate::transaction::TxId;

/// Errors returned by [`Chain::append`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChainError {
    /// The block's serial is not exactly `latest + 1`.
    NonConsecutiveSerial {
        /// Serial the chain expected.
        expected: u64,
        /// Serial the block carried.
        got: u64,
    },
    /// The block's `prev_hash` does not equal the hash of the latest block
    /// (or the anchor hash, for a chain freshly anchored at a checkpoint).
    BrokenHashChain {
        /// The offending block's serial.
        serial: u64,
    },
    /// The block's Merkle root does not match its entries.
    MerkleMismatch {
        /// The offending block's serial.
        serial: u64,
    },
    /// The block exceeds the universal transaction bound `b_limit`.
    BlockTooLarge {
        /// Number of transactions in the block.
        got: usize,
        /// The configured `b_limit`.
        limit: usize,
    },
}

impl ChainError {
    /// A short stable label for metric keys (`sync.rejected.<kind>`).
    pub fn kind(&self) -> &'static str {
        match self {
            ChainError::NonConsecutiveSerial { .. } => "non_consecutive_serial",
            ChainError::BrokenHashChain { .. } => "broken_hash_chain",
            ChainError::MerkleMismatch { .. } => "merkle_mismatch",
            ChainError::BlockTooLarge { .. } => "block_too_large",
        }
    }
}

impl fmt::Display for ChainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChainError::NonConsecutiveSerial { expected, got } => {
                write!(f, "expected serial {expected}, block has {got}")
            }
            ChainError::BrokenHashChain { serial } => {
                write!(f, "block {serial} does not extend the chain head")
            }
            ChainError::MerkleMismatch { serial } => {
                write!(f, "block {serial} merkle root does not match entries")
            }
            ChainError::BlockTooLarge { got, limit } => {
                write!(f, "block has {got} transactions, limit is {limit}")
            }
        }
    }
}

impl std::error::Error for ChainError {}

/// Errors returned by [`Chain::import`], pinpointing where in the byte
/// stream the import failed and which block serial was being processed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ImportError {
    /// Input shorter than the fixed header plus authentication trailer.
    Truncated {
        /// Length of the rejected input.
        len: usize,
    },
    /// The `b_limit` field exceeds the platform word size.
    BLimitOverflow,
    /// The header declares an anchored chain but the anchor digest is
    /// missing or cut short.
    MissingAnchor,
    /// A block failed to decode.
    Decode {
        /// Serial the chain expected at this position.
        serial: u64,
        /// Byte offset where the failing block starts.
        offset: usize,
        /// The underlying codec error.
        source: DecodeError,
    },
    /// A block decoded but violated a chain invariant on replay.
    Invalid {
        /// Serial of the offending block.
        serial: u64,
        /// Byte offset where the offending block starts.
        offset: usize,
        /// The violated invariant.
        source: ChainError,
    },
    /// Bytes remain after the declared block count.
    TrailingBytes {
        /// Byte offset where the unexpected bytes start.
        offset: usize,
    },
    /// A genesis-rooted export with no blocks at all.
    EmptyChain,
    /// The first block of a genesis-rooted export is not serial 0.
    NotGenesis {
        /// Serial the first block carried.
        serial: u64,
    },
    /// The authentication trailer does not match the reconstructed chain:
    /// head, anchor or `b_limit` was tampered with.
    TrailerMismatch,
}

impl ImportError {
    /// Byte offset of the failure, when one is known.
    pub fn offset(&self) -> Option<usize> {
        match self {
            ImportError::Decode { offset, .. }
            | ImportError::Invalid { offset, .. }
            | ImportError::TrailingBytes { offset } => Some(*offset),
            _ => None,
        }
    }

    /// Block serial involved in the failure, when one is known.
    pub fn serial(&self) -> Option<u64> {
        match self {
            ImportError::Decode { serial, .. } | ImportError::Invalid { serial, .. } => {
                Some(*serial)
            }
            ImportError::NotGenesis { serial } => Some(*serial),
            _ => None,
        }
    }

    /// A short stable label for metric keys.
    pub fn kind(&self) -> &'static str {
        match self {
            ImportError::Truncated { .. } => "truncated",
            ImportError::BLimitOverflow => "b_limit_overflow",
            ImportError::MissingAnchor => "missing_anchor",
            ImportError::Decode { .. } => "decode",
            ImportError::Invalid { source, .. } => source.kind(),
            ImportError::TrailingBytes { .. } => "trailing_bytes",
            ImportError::EmptyChain => "empty_chain",
            ImportError::NotGenesis { .. } => "not_genesis",
            ImportError::TrailerMismatch => "trailer_mismatch",
        }
    }
}

impl fmt::Display for ImportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImportError::Truncated { len } => {
                write!(f, "input of {len} bytes is shorter than header + trailer")
            }
            ImportError::BLimitOverflow => {
                write!(f, "b_limit field exceeds the platform word size")
            }
            ImportError::MissingAnchor => {
                write!(f, "anchored export is missing its anchor digest")
            }
            ImportError::Decode {
                serial,
                offset,
                source,
            } => {
                write!(f, "block {serial} at byte {offset}: {source}")
            }
            ImportError::Invalid {
                serial,
                offset,
                source,
            } => {
                write!(f, "block {serial} at byte {offset}: {source}")
            }
            ImportError::TrailingBytes { offset } => {
                write!(f, "trailing bytes after chain at byte {offset}")
            }
            ImportError::EmptyChain => write!(f, "empty chain has no genesis"),
            ImportError::NotGenesis { serial } => {
                write!(f, "first block has serial {serial}, not a genesis block")
            }
            ImportError::TrailerMismatch => {
                write!(
                    f,
                    "authentication trailer mismatch: head, anchor or b_limit tampered"
                )
            }
        }
    }
}

impl std::error::Error for ImportError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ImportError::Decode { source, .. } => Some(source),
            ImportError::Invalid { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Where a transaction ended up in the chain.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TxLocation {
    /// Block serial number.
    pub serial: u64,
    /// Index inside the block's entry list.
    pub index: usize,
}

/// The ledger: an append-only list of blocks with lookup indices.
///
/// # Examples
///
/// ```
/// use prb_ledger::chain::Chain;
///
/// let chain = Chain::new(b"example", 1024);
/// assert_eq!(chain.height(), 0);
/// assert!(chain.retrieve(0).is_some()); // genesis
/// ```
#[derive(Clone)]
pub struct Chain {
    blocks: Vec<Block>,
    /// Serial of `blocks[0]`. Zero for a genesis-rooted chain; the first
    /// post-checkpoint serial for an anchored chain.
    base: u64,
    /// Certified hash of the block at `base - 1`; present iff `base > 0`.
    anchor: Option<Digest>,
    // Keyed by a SHA-256 digest, so the seeded Fx mix is collision-safe
    // here; the default SipHash map cost ~2x on the per-commit index path.
    tx_index: FxMap<TxId, TxLocation>,
    b_limit: usize,
}

impl fmt::Debug for Chain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Chain")
            .field("height", &self.height())
            .field("base", &self.base)
            .field("transactions", &self.tx_index.len())
            .field("b_limit", &self.b_limit)
            .finish()
    }
}

impl Chain {
    /// Creates a chain holding only the genesis block for `chain_tag`.
    ///
    /// `b_limit` is the paper's universal bound on transactions per block.
    pub fn new(chain_tag: &[u8], b_limit: usize) -> Self {
        Chain {
            blocks: vec![Block::genesis(chain_tag)],
            base: 0,
            anchor: None,
            tx_index: fx_map(),
            b_limit,
        }
    }

    /// Creates a chain anchored at a quorum-certified checkpoint: the
    /// caller vouches (by verifying a checkpoint certificate) that the
    /// block at `head_serial` hashes to `head_hash`. The chain holds no
    /// blocks yet; its height is `head_serial` and the first block it will
    /// accept is `head_serial + 1` with `prev_hash == head_hash`.
    ///
    /// # Panics
    ///
    /// Panics if `head_serial` is `u64::MAX` (the next serial would
    /// overflow).
    pub fn from_checkpoint(head_serial: u64, head_hash: Digest, b_limit: usize) -> Self {
        assert!(head_serial < u64::MAX, "checkpoint serial overflow");
        Chain {
            blocks: Vec::new(),
            base: head_serial + 1,
            anchor: Some(head_hash),
            tx_index: fx_map(),
            b_limit,
        }
    }

    /// The configured per-block transaction bound.
    pub fn b_limit(&self) -> usize {
        self.b_limit
    }

    /// Serial of the first block this chain holds (0 unless anchored).
    pub fn base(&self) -> u64 {
        self.base
    }

    /// The certified hash of the block below `base`, for anchored chains.
    pub fn anchor(&self) -> Option<Digest> {
        self.anchor
    }

    /// Whether this chain is anchored at a checkpoint rather than rooted
    /// at genesis.
    pub fn is_anchored(&self) -> bool {
        self.base > 0
    }

    /// Height = serial of the latest block (genesis is height 0). For a
    /// freshly anchored chain holding no blocks yet this is the certified
    /// checkpoint serial, `base - 1`.
    pub fn height(&self) -> u64 {
        self.base + self.blocks.len() as u64 - 1
    }

    /// The serial the next appended block must carry.
    pub fn next_serial(&self) -> u64 {
        self.base + self.blocks.len() as u64
    }

    /// The latest block.
    ///
    /// # Panics
    ///
    /// Panics on an anchored chain that holds no blocks yet; use
    /// [`head_hash`](Self::head_hash) or [`latest_opt`](Self::latest_opt)
    /// where that state is reachable.
    pub fn latest(&self) -> &Block {
        self.blocks.last().expect("chain holds no blocks")
    }

    /// The latest block, or `None` for a freshly anchored chain.
    pub fn latest_opt(&self) -> Option<&Block> {
        self.blocks.last()
    }

    /// Hash of the block at [`height`](Self::height). Total even when the
    /// chain holds no blocks: the anchor hash *is* the certified head.
    pub fn head_hash(&self) -> Digest {
        match self.blocks.last() {
            Some(block) => block.hash(),
            None => self.anchor.expect("empty chain is always anchored"),
        }
    }

    /// The paper's `retrieve(s)`: the block with serial `s`, if present.
    /// Blocks below an anchored chain's base are unavailable.
    pub fn retrieve(&self, serial: u64) -> Option<&Block> {
        let index = serial.checked_sub(self.base)?;
        self.blocks.get(index as usize)
    }

    /// Iterates over all held blocks, lowest serial first (from genesis
    /// unless anchored).
    pub fn iter(&self) -> impl Iterator<Item = &Block> {
        self.blocks.iter()
    }

    /// Appends a block after validating serial, hash chain, Merkle root and
    /// size bound. On a freshly anchored chain the hash-chain check is
    /// against the anchor digest.
    ///
    /// # Errors
    ///
    /// Returns a [`ChainError`] describing the violated invariant; the chain
    /// is unchanged on error.
    pub fn append(&mut self, block: Block) -> Result<(), ChainError> {
        let expected = self.next_serial();
        if block.serial != expected {
            return Err(ChainError::NonConsecutiveSerial {
                expected,
                got: block.serial,
            });
        }
        if block.prev_hash != self.head_hash() {
            return Err(ChainError::BrokenHashChain {
                serial: block.serial,
            });
        }
        if !block.merkle_consistent() {
            return Err(ChainError::MerkleMismatch {
                serial: block.serial,
            });
        }
        if block.tx_count() > self.b_limit {
            return Err(ChainError::BlockTooLarge {
                got: block.tx_count(),
                limit: self.b_limit,
            });
        }
        for (index, entry) in block.entries.iter().enumerate() {
            self.tx_index.entry(entry.tx.id()).or_insert(TxLocation {
                serial: block.serial,
                index,
            });
        }
        self.blocks.push(block);
        Ok(())
    }

    /// Finds the first recording of a transaction among the held blocks.
    pub fn find_tx(&self, id: TxId) -> Option<(TxLocation, &BlockEntry)> {
        let loc = *self.tx_index.get(&id)?;
        let entry = &self.blocks[(loc.serial - self.base) as usize].entries[loc.index];
        Some((loc, entry))
    }

    /// The latest verdict for a transaction (argue re-records supersede the
    /// original `UncheckedInvalid` entry).
    pub fn latest_verdict(&self, id: TxId) -> Option<Verdict> {
        // Walk from the tail: re-records are strictly later.
        for block in self.blocks.iter().rev() {
            if let Some((_, entry)) = block.entry(id) {
                return Some(entry.verdict);
            }
        }
        None
    }

    /// Removes and returns the head block, unwinding the transaction-index
    /// entries it introduced.
    ///
    /// Rollback support for head-fork resolution during crash recovery:
    /// when two governors self-elect under message loss, the loser undoes
    /// its provisional head and re-pools the displaced entries. The
    /// genesis block is never removed; an anchored chain can pop down to
    /// its (quorum-certified, hence settled) anchor but no further.
    pub fn pop(&mut self) -> Option<Block> {
        if self.base == 0 && self.blocks.len() <= 1 {
            return None;
        }
        let block = self.blocks.pop()?;
        // `append` only indexes first recordings, so every index entry
        // pointing at this serial was introduced by this block.
        self.tx_index.retain(|_, loc| loc.serial != block.serial);
        Some(block)
    }

    /// Full-chain integrity audit: rehashes every link and recomputes every
    /// Merkle root, including the link into the anchor. Returns the serial
    /// of the first bad block, if any.
    pub fn audit(&self) -> Option<u64> {
        if let (Some(anchor), Some(first)) = (self.anchor, self.blocks.first()) {
            if first.prev_hash != anchor || !first.merkle_consistent() {
                return Some(first.serial);
            }
        }
        for window in self.blocks.windows(2) {
            let (prev, next) = (&window[0], &window[1]);
            if next.serial != prev.serial + 1
                || next.prev_hash != prev.hash()
                || !next.merkle_consistent()
            {
                return Some(next.serial);
            }
        }
        None
    }

    /// Total number of distinct transactions recorded.
    pub fn tx_count(&self) -> usize {
        self.tx_index.len()
    }

    /// Serializes the whole chain (genesis tag is implied by the genesis
    /// block itself) to canonical bytes for sync or offline audit.
    ///
    /// Layout: `b_limit u64 | base u64 | count u64 | [anchor digest iff
    /// base > 0] | blocks | trailer`. The file ends with an authentication
    /// trailer — the hash of the configuration, base, anchor and chain
    /// head — so that *every* byte of the export is either structural or
    /// hash-committed: the hash chain covers all interior blocks, and the
    /// trailer pins the otherwise free-floating head header, anchor and
    /// `b_limit`.
    pub fn export(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&(self.b_limit as u64).to_be_bytes());
        out.extend_from_slice(&self.base.to_be_bytes());
        out.extend_from_slice(&(self.blocks.len() as u64).to_be_bytes());
        if let Some(anchor) = self.anchor {
            out.extend_from_slice(anchor.as_bytes());
        }
        for block in &self.blocks {
            codec::encode_block(&mut out, block);
        }
        out.extend_from_slice(self.export_trailer().as_bytes());
        out
    }

    fn export_trailer(&self) -> Digest {
        let mut h = prb_crypto::sha256::Sha256::new();
        h.update_field(b"prb-chain-export");
        h.update(&(self.b_limit as u64).to_be_bytes());
        h.update(&self.base.to_be_bytes());
        match self.anchor {
            Some(anchor) => h.update_field(anchor.as_bytes()),
            None => h.update_field(&[]),
        };
        h.update_field(self.head_hash().as_bytes());
        h.finalize()
    }

    /// Imports a chain exported with [`export`](Self::export), replaying
    /// every block through [`append`](Self::append) so all structural
    /// invariants (serial continuity, hash chaining, Merkle consistency,
    /// size bound) are re-verified.
    ///
    /// # Errors
    ///
    /// Returns an [`ImportError`] carrying the failing byte offset and
    /// block serial where applicable.
    pub fn import(bytes: &[u8]) -> Result<Self, ImportError> {
        const HEADER: usize = 24;
        if bytes.len() < HEADER + 32 {
            return Err(ImportError::Truncated { len: bytes.len() });
        }
        let (body, trailer) = bytes.split_at(bytes.len() - 32);
        // `b_limit` arrives as a u64 from untrusted bytes; a plain
        // `as usize` cast would silently truncate on 32-bit targets and
        // turn an absurd bound into a small one.
        let b_limit: usize = u64::from_be_bytes(body[..8].try_into().expect("8 bytes"))
            .try_into()
            .map_err(|_| ImportError::BLimitOverflow)?;
        let base = u64::from_be_bytes(body[8..16].try_into().expect("8 bytes"));
        let count = u64::from_be_bytes(body[16..24].try_into().expect("8 bytes"));
        let mut r = codec::Reader::new(body);
        r.skip(HEADER).expect("length checked above");
        let mut chain = if base > 0 {
            let anchor = r.digest().map_err(|_| ImportError::MissingAnchor)?;
            Chain {
                blocks: Vec::new(),
                base,
                anchor: Some(anchor),
                tx_index: fx_map(),
                b_limit,
            }
        } else {
            if count == 0 {
                return Err(ImportError::EmptyChain);
            }
            let genesis = codec::decode_block(&mut r).map_err(|source| ImportError::Decode {
                serial: 0,
                offset: HEADER,
                source,
            })?;
            if genesis.serial != 0 {
                return Err(ImportError::NotGenesis {
                    serial: genesis.serial,
                });
            }
            Chain {
                blocks: vec![genesis],
                base: 0,
                anchor: None,
                tx_index: fx_map(),
                b_limit,
            }
        };
        while chain.blocks.len() < count as usize {
            let offset = body.len() - r.remaining();
            let serial = chain.next_serial();
            let block = codec::decode_block(&mut r).map_err(|source| ImportError::Decode {
                serial,
                offset,
                source,
            })?;
            let serial = block.serial;
            chain.append(block).map_err(|source| ImportError::Invalid {
                serial,
                offset,
                source,
            })?;
        }
        if r.remaining() != 0 {
            return Err(ImportError::TrailingBytes {
                offset: body.len() - r.remaining(),
            });
        }
        if chain.export_trailer().as_bytes() != trailer {
            return Err(ImportError::TrailerMismatch);
        }
        Ok(chain)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Verdict;
    use crate::transaction::{Label, SignedTx, TxPayload};
    use prb_crypto::identity::NodeId;
    use prb_crypto::signer::CryptoScheme;

    fn entry(nonce: u64, verdict: Verdict) -> BlockEntry {
        let key = CryptoScheme::sim().keypair_from_seed(b"p0");
        let tx = SignedTx::create(
            TxPayload {
                provider: NodeId::provider(0),
                nonce,
                data: vec![9],
            },
            1,
            &key,
        );
        BlockEntry {
            tx,
            verdict,
            reported_labels: vec![(NodeId::collector(0), Label::Valid)],
        }
    }

    fn extend(chain: &Chain, entries: Vec<BlockEntry>) -> Block {
        Block::build(
            chain.height() + 1,
            entries,
            chain.head_hash(),
            NodeId::governor(0),
            10,
        )
    }

    #[test]
    fn append_and_retrieve() {
        let mut chain = Chain::new(b"t", 100);
        let b1 = extend(&chain, vec![entry(0, Verdict::CheckedValid)]);
        chain.append(b1.clone()).unwrap();
        assert_eq!(chain.height(), 1);
        assert_eq!(chain.retrieve(1), Some(&b1));
        assert_eq!(chain.retrieve(2), None);
        assert_eq!(chain.tx_count(), 1);
    }

    #[test]
    fn pop_unwinds_head_and_index_but_never_genesis() {
        let mut chain = Chain::new(b"t", 100);
        assert!(chain.pop().is_none(), "genesis must be irremovable");
        let b1 = extend(&chain, vec![entry(0, Verdict::CheckedValid)]);
        chain.append(b1.clone()).unwrap();
        let b2 = extend(&chain, vec![entry(1, Verdict::CheckedValid)]);
        chain.append(b2.clone()).unwrap();
        let tx1 = b1.entries[0].tx.id();
        let tx2 = b2.entries[0].tx.id();

        assert_eq!(chain.pop(), Some(b2));
        assert_eq!(chain.height(), 1);
        assert!(chain.find_tx(tx1).is_some(), "earlier recordings survive");
        assert!(chain.find_tx(tx2).is_none(), "popped recordings unwound");
        assert_eq!(chain.tx_count(), 1);

        // A re-record of tx1 at serial 2 must not be unwound when the
        // *re-recording* block is popped: the index points at serial 1.
        let b2b = extend(&chain, vec![entry(0, Verdict::CheckedValid)]);
        chain.append(b2b).unwrap();
        chain.pop().unwrap();
        assert!(chain.find_tx(tx1).is_some());

        assert_eq!(chain.pop(), Some(b1));
        assert!(chain.pop().is_none(), "genesis still irremovable");
        assert_eq!(chain.audit(), None);
    }

    #[test]
    fn no_skipping_enforced() {
        let mut chain = Chain::new(b"t", 100);
        let mut b = extend(&chain, vec![]);
        b.serial = 5;
        assert_eq!(
            chain.append(b),
            Err(ChainError::NonConsecutiveSerial {
                expected: 1,
                got: 5
            })
        );
    }

    #[test]
    fn chain_integrity_enforced() {
        let mut chain = Chain::new(b"t", 100);
        let mut b = extend(&chain, vec![]);
        b.prev_hash = prb_crypto::sha256::sha256(b"wrong");
        assert_eq!(
            chain.append(b),
            Err(ChainError::BrokenHashChain { serial: 1 })
        );
    }

    #[test]
    fn merkle_mismatch_rejected() {
        let mut chain = Chain::new(b"t", 100);
        let mut b = extend(&chain, vec![entry(0, Verdict::CheckedValid)]);
        b.entries.push(entry(1, Verdict::CheckedValid)); // root now stale
        assert_eq!(
            chain.append(b),
            Err(ChainError::MerkleMismatch { serial: 1 })
        );
    }

    #[test]
    fn block_limit_enforced() {
        let mut chain = Chain::new(b"t", 2);
        let b = extend(
            &chain,
            vec![
                entry(0, Verdict::CheckedValid),
                entry(1, Verdict::CheckedValid),
                entry(2, Verdict::CheckedValid),
            ],
        );
        assert_eq!(
            chain.append(b),
            Err(ChainError::BlockTooLarge { got: 3, limit: 2 })
        );
        assert_eq!(chain.b_limit(), 2);
    }

    #[test]
    fn find_tx_and_latest_verdict() {
        let mut chain = Chain::new(b"t", 100);
        let e = entry(0, Verdict::UncheckedInvalid);
        let id = e.tx.id();
        chain.append(extend(&chain, vec![e.clone()])).unwrap();
        let (loc, found) = chain.find_tx(id).unwrap();
        assert_eq!(
            loc,
            TxLocation {
                serial: 1,
                index: 0
            }
        );
        assert_eq!(found.verdict, Verdict::UncheckedInvalid);
        assert_eq!(chain.latest_verdict(id), Some(Verdict::UncheckedInvalid));

        // Argue re-records the same tx later; latest verdict updates.
        let mut argued = e;
        argued.verdict = Verdict::ArguedValid;
        chain.append(extend(&chain, vec![argued])).unwrap();
        assert_eq!(chain.latest_verdict(id), Some(Verdict::ArguedValid));
        // find_tx still reports the first location.
        assert_eq!(chain.find_tx(id).unwrap().0.serial, 1);
    }

    #[test]
    fn audit_detects_tampering() {
        let mut chain = Chain::new(b"t", 100);
        for i in 0..5 {
            chain
                .append(extend(&chain, vec![entry(i, Verdict::CheckedValid)]))
                .unwrap();
        }
        assert_eq!(chain.audit(), None);
        // Tamper with a middle block's entry (simulating a rewritten ledger).
        let mut broken = chain.clone();
        broken.blocks[2].entries[0].verdict = Verdict::ArguedValid;
        assert_eq!(broken.audit(), Some(2));
    }

    #[test]
    fn agreement_two_replicas_identical() {
        let mut a = Chain::new(b"t", 100);
        let mut b = Chain::new(b"t", 100);
        for i in 0..3 {
            let blk = extend(&a, vec![entry(i, Verdict::CheckedValid)]);
            a.append(blk.clone()).unwrap();
            b.append(blk).unwrap();
        }
        for s in 0..=3 {
            assert_eq!(a.retrieve(s), b.retrieve(s));
        }
    }

    #[test]
    fn anchored_chain_extends_from_checkpoint() {
        // Build the "real" chain, then anchor a fresh replica at height 2
        // as checkpoint adoption would and feed it the suffix.
        let mut full = Chain::new(b"t", 100);
        for i in 0..4 {
            full.append(extend(&full, vec![entry(i, Verdict::CheckedValid)]))
                .unwrap();
        }
        let head2 = full.retrieve(2).unwrap().hash();
        let mut anchored = Chain::from_checkpoint(2, head2, 100);
        assert!(anchored.is_anchored());
        assert_eq!(anchored.height(), 2);
        assert_eq!(anchored.next_serial(), 3);
        assert_eq!(anchored.head_hash(), head2);
        assert!(anchored.latest_opt().is_none());
        assert_eq!(anchored.retrieve(2), None, "pre-anchor blocks unavailable");
        assert_eq!(anchored.retrieve(0), None);

        // A block that does not link into the anchor is rejected.
        let mut wrong = full.retrieve(3).unwrap().clone();
        wrong.prev_hash = prb_crypto::sha256::sha256(b"bogus");
        assert_eq!(
            anchored.append(wrong),
            Err(ChainError::BrokenHashChain { serial: 3 })
        );

        anchored.append(full.retrieve(3).unwrap().clone()).unwrap();
        anchored.append(full.retrieve(4).unwrap().clone()).unwrap();
        assert_eq!(anchored.height(), 4);
        assert_eq!(anchored.head_hash(), full.head_hash());
        assert_eq!(anchored.audit(), None);
        assert_eq!(
            anchored.retrieve(4).unwrap().hash(),
            full.retrieve(4).unwrap().hash()
        );
        // Suffix transactions are findable; pre-anchor ones are not held.
        let tx3 = full.retrieve(3).unwrap().entries[0].tx.id();
        assert_eq!(anchored.find_tx(tx3).unwrap().0.serial, 3);

        // Pops unwind down to the anchor, never past it.
        assert!(anchored.pop().is_some());
        assert!(anchored.pop().is_some());
        assert!(anchored.pop().is_none(), "anchor is the floor");
        assert_eq!(anchored.height(), 2);
        assert_eq!(anchored.head_hash(), head2);
    }

    #[test]
    fn anchored_export_import_roundtrips() {
        let mut full = Chain::new(b"t", 100);
        for i in 0..4 {
            full.append(extend(&full, vec![entry(i, Verdict::CheckedValid)]))
                .unwrap();
        }
        let mut anchored = Chain::from_checkpoint(2, full.retrieve(2).unwrap().hash(), 100);
        // Empty anchored chain round-trips (a node that adopted a
        // checkpoint but crashed before the first suffix block arrived).
        let empty = anchored.export();
        let back = Chain::import(&empty).unwrap();
        assert_eq!(back.export(), empty);
        assert_eq!(back.height(), 2);
        assert_eq!(back.head_hash(), anchored.head_hash());

        anchored.append(full.retrieve(3).unwrap().clone()).unwrap();
        anchored.append(full.retrieve(4).unwrap().clone()).unwrap();
        let bytes = anchored.export();
        let back = Chain::import(&bytes).unwrap();
        assert_eq!(back.export(), bytes);
        assert_eq!(back.base(), 3);
        assert_eq!(back.height(), 4);

        // Every single-byte flip of the anchored export is detected.
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x80;
            assert!(
                Chain::import(&bad).is_err(),
                "flip of byte {i} went undetected"
            );
        }
    }

    #[test]
    fn import_corruption_matrix_errors_without_panicking() {
        // A valid export, then every class of corruption the wire can
        // produce. Each mutation must yield Err — never a panic, never a
        // silently wrong chain.
        let mut chain = Chain::new(b"t", 100);
        for i in 0..3 {
            chain
                .append(extend(&chain, vec![entry(i, Verdict::CheckedValid)]))
                .unwrap();
        }
        let good = chain.export();
        assert!(Chain::import(&good).is_ok(), "baseline export must import");

        // Truncated body: every prefix shorter than the full export.
        for cut in [0, 1, 15, 16, 23, 24, 55, 56, good.len() / 2, good.len() - 1] {
            assert!(
                Chain::import(&good[..cut]).is_err(),
                "truncation to {cut} bytes must fail"
            );
        }

        // Inflated count: header promises more blocks than the body holds.
        let mut inflated = good.clone();
        inflated[16..24].copy_from_slice(&u64::MAX.to_be_bytes());
        assert!(Chain::import(&inflated).is_err());

        // Oversized b_limit: u64::MAX either exceeds the platform word
        // size (32-bit) or trips the authentication trailer (64-bit); it
        // must never truncate into a small bound.
        let mut oversized = good.clone();
        oversized[..8].copy_from_slice(&u64::MAX.to_be_bytes());
        assert!(Chain::import(&oversized).is_err());

        // Nonzero base with no anchor bytes where the first block was: the
        // digest read consumes block bytes, so decode or trailer must trip.
        let mut rebased = good.clone();
        rebased[8..16].copy_from_slice(&1u64.to_be_bytes());
        assert!(Chain::import(&rebased).is_err());

        // Flipped trailer byte: the authentication trailer must reject.
        let mut flipped = good.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x01;
        assert!(Chain::import(&flipped).is_err());
    }

    #[test]
    fn import_rejects_every_single_byte_flip() {
        // Every byte of the export is structural or hash-committed, so any
        // one-bit corruption must surface as an error (and must not panic).
        let mut chain = Chain::new(b"t", 16);
        chain
            .append(extend(&chain, vec![entry(0, Verdict::CheckedValid)]))
            .unwrap();
        let good = chain.export();
        for i in 0..good.len() {
            let mut bad = good.clone();
            bad[i] ^= 0x80;
            assert!(
                Chain::import(&bad).is_err(),
                "flip of byte {i} went undetected"
            );
        }
    }

    #[test]
    fn import_rejects_duplicate_serials_in_the_body() {
        let mut chain = Chain::new(b"t", 100);
        let b1 = extend(&chain, vec![entry(0, Verdict::CheckedValid)]);
        chain.append(b1.clone()).unwrap();
        // Hand-craft an export whose body repeats serial 1: the header
        // promises 3 blocks, the body is [genesis, b1, b1], and the
        // trailer is recomputed over the claimed head — structurally
        // plausible, so only the append replay can catch the duplicate.
        let mut out = Vec::new();
        out.extend_from_slice(&100u64.to_be_bytes());
        out.extend_from_slice(&0u64.to_be_bytes());
        out.extend_from_slice(&3u64.to_be_bytes());
        for block in [chain.retrieve(0).unwrap(), &b1, &b1] {
            codec::encode_block(&mut out, block);
        }
        let mut h = prb_crypto::sha256::Sha256::new();
        h.update_field(b"prb-chain-export");
        h.update(&100u64.to_be_bytes());
        h.update(&0u64.to_be_bytes());
        h.update_field(&[]);
        h.update_field(b1.hash().as_bytes());
        out.extend_from_slice(h.finalize().as_bytes());
        let err = Chain::import(&out).unwrap_err();
        assert_eq!(err.serial(), Some(1));
        assert!(err.offset().is_some(), "replay errors carry an offset");
        match err {
            ImportError::Invalid {
                source:
                    ChainError::NonConsecutiveSerial {
                        expected: 2,
                        got: 1,
                    },
                ..
            } => {}
            other => panic!("unexpected error: {other:?}"),
        }
    }

    #[test]
    fn import_error_pinpoints_offset_and_serial() {
        let mut chain = Chain::new(b"t", 100);
        for i in 0..3 {
            chain
                .append(extend(&chain, vec![entry(i, Verdict::CheckedValid)]))
                .unwrap();
        }
        let good = chain.export();
        // Cut the export mid-way through the last block: the decode error
        // must name the serial the replay expected and an offset inside
        // the body (past the 24-byte header).
        let cut = good.len() - 40;
        let err = Chain::import(&good[..cut]).unwrap_err();
        match err {
            ImportError::Decode { serial, offset, .. } => {
                assert_eq!(serial, 3);
                assert!(offset >= 24, "offset {offset} inside the header");
                assert!(offset < cut);
            }
            ImportError::Truncated { .. } => panic!("cut leaves a plausible body"),
            other => panic!("unexpected error: {other:?}"),
        }
        assert_eq!(err.kind(), "decode");
    }

    #[test]
    fn pop_then_reimport_roundtrips_byte_identically() {
        let mut chain = Chain::new(b"t", 100);
        for i in 0..4 {
            chain
                .append(extend(&chain, vec![entry(i, Verdict::CheckedValid)]))
                .unwrap();
        }
        let full = chain.export();
        let popped = chain.pop().unwrap();
        let short = chain.export();
        assert_ne!(full, short, "the export must pin the head");
        // The shortened export round-trips byte for byte, and re-appending
        // the popped head restores the original bytes exactly — rollback
        // plus replay is lossless down to the last byte.
        let mut imported = Chain::import(&short).unwrap();
        assert_eq!(imported.export(), short);
        imported.append(popped.clone()).unwrap();
        assert_eq!(imported.export(), full);
        chain.append(popped).unwrap();
        assert_eq!(chain.export(), full);
    }

    #[test]
    fn error_display() {
        let e = ChainError::NonConsecutiveSerial {
            expected: 2,
            got: 7,
        };
        assert!(e.to_string().contains("expected serial 2"));
        assert!(ChainError::BrokenHashChain { serial: 3 }
            .to_string()
            .contains("block 3"));
        let ie = ImportError::Invalid {
            serial: 3,
            offset: 99,
            source: ChainError::BrokenHashChain { serial: 3 },
        };
        assert!(ie.to_string().contains("byte 99"));
        assert_eq!(ie.kind(), "broken_hash_chain");
        assert!(std::error::Error::source(&ie).is_some());
    }
}

//! The hash-chained ledger with the paper's safety properties enforced on
//! append and checkable after the fact.
//!
//! §3.1 properties implemented here:
//! - **Agreement** — `retrieve(s)` is a pure lookup; all replicas appending
//!   the same blocks return identical results (checked across replicas by
//!   the integration tests).
//! - **Chain Integrity** — `append` rejects a block whose `prev_hash` is not
//!   `H(latest)`.
//! - **No Skipping** — `append` rejects serial numbers other than
//!   `latest + 1`, so retrieval of serial `s` implies all of `1..s` exist.

use std::fmt;

use prb_crypto::fxhash::{fx_map, FxMap};

use crate::block::{Block, BlockEntry, Verdict};
use crate::codec;
use crate::transaction::TxId;

/// Errors returned by [`Chain::append`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChainError {
    /// The block's serial is not exactly `latest + 1`.
    NonConsecutiveSerial {
        /// Serial the chain expected.
        expected: u64,
        /// Serial the block carried.
        got: u64,
    },
    /// The block's `prev_hash` does not equal the hash of the latest block.
    BrokenHashChain {
        /// The offending block's serial.
        serial: u64,
    },
    /// The block's Merkle root does not match its entries.
    MerkleMismatch {
        /// The offending block's serial.
        serial: u64,
    },
    /// The block exceeds the universal transaction bound `b_limit`.
    BlockTooLarge {
        /// Number of transactions in the block.
        got: usize,
        /// The configured `b_limit`.
        limit: usize,
    },
}

impl fmt::Display for ChainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChainError::NonConsecutiveSerial { expected, got } => {
                write!(f, "expected serial {expected}, block has {got}")
            }
            ChainError::BrokenHashChain { serial } => {
                write!(f, "block {serial} does not extend the chain head")
            }
            ChainError::MerkleMismatch { serial } => {
                write!(f, "block {serial} merkle root does not match entries")
            }
            ChainError::BlockTooLarge { got, limit } => {
                write!(f, "block has {got} transactions, limit is {limit}")
            }
        }
    }
}

impl std::error::Error for ChainError {}

/// Where a transaction ended up in the chain.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TxLocation {
    /// Block serial number.
    pub serial: u64,
    /// Index inside the block's entry list.
    pub index: usize,
}

/// The ledger: an append-only list of blocks with lookup indices.
///
/// # Examples
///
/// ```
/// use prb_ledger::chain::Chain;
///
/// let chain = Chain::new(b"example", 1024);
/// assert_eq!(chain.height(), 0);
/// assert!(chain.retrieve(0).is_some()); // genesis
/// ```
#[derive(Clone)]
pub struct Chain {
    blocks: Vec<Block>,
    // Keyed by a SHA-256 digest, so the seeded Fx mix is collision-safe
    // here; the default SipHash map cost ~2x on the per-commit index path.
    tx_index: FxMap<TxId, TxLocation>,
    b_limit: usize,
}

impl fmt::Debug for Chain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Chain")
            .field("height", &self.height())
            .field("transactions", &self.tx_index.len())
            .field("b_limit", &self.b_limit)
            .finish()
    }
}

impl Chain {
    /// Creates a chain holding only the genesis block for `chain_tag`.
    ///
    /// `b_limit` is the paper's universal bound on transactions per block.
    pub fn new(chain_tag: &[u8], b_limit: usize) -> Self {
        Chain {
            blocks: vec![Block::genesis(chain_tag)],
            tx_index: fx_map(),
            b_limit,
        }
    }

    /// The configured per-block transaction bound.
    pub fn b_limit(&self) -> usize {
        self.b_limit
    }

    /// Height = serial of the latest block (genesis is height 0).
    pub fn height(&self) -> u64 {
        self.blocks.len() as u64 - 1
    }

    /// The latest block.
    pub fn latest(&self) -> &Block {
        self.blocks.last().expect("chain always has genesis")
    }

    /// The paper's `retrieve(s)`: the block with serial `s`, if present.
    pub fn retrieve(&self, serial: u64) -> Option<&Block> {
        self.blocks.get(serial as usize)
    }

    /// Iterates over all blocks from genesis.
    pub fn iter(&self) -> impl Iterator<Item = &Block> {
        self.blocks.iter()
    }

    /// Appends a block after validating serial, hash chain, Merkle root and
    /// size bound.
    ///
    /// # Errors
    ///
    /// Returns a [`ChainError`] describing the violated invariant; the chain
    /// is unchanged on error.
    pub fn append(&mut self, block: Block) -> Result<(), ChainError> {
        let expected = self.height() + 1;
        if block.serial != expected {
            return Err(ChainError::NonConsecutiveSerial {
                expected,
                got: block.serial,
            });
        }
        if block.prev_hash != self.latest().hash() {
            return Err(ChainError::BrokenHashChain {
                serial: block.serial,
            });
        }
        if !block.merkle_consistent() {
            return Err(ChainError::MerkleMismatch {
                serial: block.serial,
            });
        }
        if block.tx_count() > self.b_limit {
            return Err(ChainError::BlockTooLarge {
                got: block.tx_count(),
                limit: self.b_limit,
            });
        }
        for (index, entry) in block.entries.iter().enumerate() {
            self.tx_index.entry(entry.tx.id()).or_insert(TxLocation {
                serial: block.serial,
                index,
            });
        }
        self.blocks.push(block);
        Ok(())
    }

    /// Finds the first recording of a transaction.
    pub fn find_tx(&self, id: TxId) -> Option<(TxLocation, &BlockEntry)> {
        let loc = *self.tx_index.get(&id)?;
        let entry = &self.blocks[loc.serial as usize].entries[loc.index];
        Some((loc, entry))
    }

    /// The latest verdict for a transaction (argue re-records supersede the
    /// original `UncheckedInvalid` entry).
    pub fn latest_verdict(&self, id: TxId) -> Option<Verdict> {
        // Walk from the tail: re-records are strictly later.
        for block in self.blocks.iter().rev() {
            if let Some((_, entry)) = block.entry(id) {
                return Some(entry.verdict);
            }
        }
        None
    }

    /// Removes and returns the head block, unwinding the transaction-index
    /// entries it introduced.
    ///
    /// Rollback support for head-fork resolution during crash recovery:
    /// when two governors self-elect under message loss, the loser undoes
    /// its provisional head and re-pools the displaced entries. The
    /// genesis block is never removed.
    pub fn pop(&mut self) -> Option<Block> {
        if self.blocks.len() <= 1 {
            return None;
        }
        let block = self.blocks.pop().expect("length checked above");
        // `append` only indexes first recordings, so every index entry
        // pointing at this serial was introduced by this block.
        self.tx_index.retain(|_, loc| loc.serial != block.serial);
        Some(block)
    }

    /// Full-chain integrity audit: rehashes every link and recomputes every
    /// Merkle root. Returns the serial of the first bad block, if any.
    pub fn audit(&self) -> Option<u64> {
        for window in self.blocks.windows(2) {
            let (prev, next) = (&window[0], &window[1]);
            if next.serial != prev.serial + 1
                || next.prev_hash != prev.hash()
                || !next.merkle_consistent()
            {
                return Some(next.serial);
            }
        }
        None
    }

    /// Total number of distinct transactions recorded.
    pub fn tx_count(&self) -> usize {
        self.tx_index.len()
    }

    /// Serializes the whole chain (genesis tag is implied by the genesis
    /// block itself) to canonical bytes for sync or offline audit.
    ///
    /// The file ends with an authentication trailer — the hash of the
    /// configuration and the chain head — so that *every* byte of the
    /// export is either structural or hash-committed: the hash chain
    /// covers all interior blocks, and the trailer pins the otherwise
    /// free-floating head header and `b_limit`.
    pub fn export(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&(self.b_limit as u64).to_be_bytes());
        out.extend_from_slice(&(self.blocks.len() as u64).to_be_bytes());
        for block in &self.blocks {
            codec::encode_block(&mut out, block);
        }
        out.extend_from_slice(self.export_trailer().as_bytes());
        out
    }

    fn export_trailer(&self) -> prb_crypto::sha256::Digest {
        let mut h = prb_crypto::sha256::Sha256::new();
        h.update_field(b"prb-chain-export");
        h.update(&(self.b_limit as u64).to_be_bytes());
        h.update_field(self.latest().hash().as_bytes());
        h.finalize()
    }

    /// Imports a chain exported with [`export`](Self::export), replaying
    /// every block through [`append`](Self::append) so all structural
    /// invariants (serial continuity, hash chaining, Merkle consistency,
    /// size bound) are re-verified.
    ///
    /// # Errors
    ///
    /// Returns a decode error description or the violated chain invariant.
    pub fn import(bytes: &[u8]) -> Result<Self, String> {
        if bytes.len() < 16 + 32 {
            return Err("input shorter than header + trailer".into());
        }
        let (body, trailer) = bytes.split_at(bytes.len() - 32);
        let mut r = codec::Reader::new(body);
        let header = &body[..16];
        // `b_limit` arrives as a u64 from untrusted bytes; a plain
        // `as usize` cast would silently truncate on 32-bit targets and
        // turn an absurd bound into a small one.
        let b_limit: usize = u64::from_be_bytes(header[..8].try_into().expect("8 bytes"))
            .try_into()
            .map_err(|_| "b_limit field exceeds the platform word size".to_string())?;
        let count = u64::from_be_bytes(header[8..16].try_into().expect("8 bytes"));
        // Skip the header in the reader.
        r.skip(16).expect("length checked above");
        let mut blocks = Vec::new();
        for i in 0..count {
            blocks.push(codec::decode_block(&mut r).map_err(|e| format!("block {i}: {e}"))?);
        }
        if r.remaining() != 0 {
            return Err("trailing bytes after chain".into());
        }
        let mut iter = blocks.into_iter();
        let genesis = iter.next().ok_or("empty chain has no genesis")?;
        if genesis.serial != 0 {
            return Err("first block is not a genesis block".into());
        }
        let mut chain = Chain {
            blocks: vec![genesis],
            tx_index: fx_map(),
            b_limit,
        };
        for block in iter {
            let serial = block.serial;
            chain
                .append(block)
                .map_err(|e| format!("block {serial}: {e}"))?;
        }
        if chain.export_trailer().as_bytes() != trailer {
            return Err("authentication trailer mismatch: head or b_limit tampered".into());
        }
        Ok(chain)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Verdict;
    use crate::transaction::{Label, SignedTx, TxPayload};
    use prb_crypto::identity::NodeId;
    use prb_crypto::signer::CryptoScheme;

    fn entry(nonce: u64, verdict: Verdict) -> BlockEntry {
        let key = CryptoScheme::sim().keypair_from_seed(b"p0");
        let tx = SignedTx::create(
            TxPayload {
                provider: NodeId::provider(0),
                nonce,
                data: vec![9],
            },
            1,
            &key,
        );
        BlockEntry {
            tx,
            verdict,
            reported_labels: vec![(NodeId::collector(0), Label::Valid)],
        }
    }

    fn extend(chain: &Chain, entries: Vec<BlockEntry>) -> Block {
        Block::build(
            chain.height() + 1,
            entries,
            chain.latest().hash(),
            NodeId::governor(0),
            10,
        )
    }

    #[test]
    fn append_and_retrieve() {
        let mut chain = Chain::new(b"t", 100);
        let b1 = extend(&chain, vec![entry(0, Verdict::CheckedValid)]);
        chain.append(b1.clone()).unwrap();
        assert_eq!(chain.height(), 1);
        assert_eq!(chain.retrieve(1), Some(&b1));
        assert_eq!(chain.retrieve(2), None);
        assert_eq!(chain.tx_count(), 1);
    }

    #[test]
    fn pop_unwinds_head_and_index_but_never_genesis() {
        let mut chain = Chain::new(b"t", 100);
        assert!(chain.pop().is_none(), "genesis must be irremovable");
        let b1 = extend(&chain, vec![entry(0, Verdict::CheckedValid)]);
        chain.append(b1.clone()).unwrap();
        let b2 = extend(&chain, vec![entry(1, Verdict::CheckedValid)]);
        chain.append(b2.clone()).unwrap();
        let tx1 = b1.entries[0].tx.id();
        let tx2 = b2.entries[0].tx.id();

        assert_eq!(chain.pop(), Some(b2));
        assert_eq!(chain.height(), 1);
        assert!(chain.find_tx(tx1).is_some(), "earlier recordings survive");
        assert!(chain.find_tx(tx2).is_none(), "popped recordings unwound");
        assert_eq!(chain.tx_count(), 1);

        // A re-record of tx1 at serial 2 must not be unwound when the
        // *re-recording* block is popped: the index points at serial 1.
        let b2b = extend(&chain, vec![entry(0, Verdict::CheckedValid)]);
        chain.append(b2b).unwrap();
        chain.pop().unwrap();
        assert!(chain.find_tx(tx1).is_some());

        assert_eq!(chain.pop(), Some(b1));
        assert!(chain.pop().is_none(), "genesis still irremovable");
        assert_eq!(chain.audit(), None);
    }

    #[test]
    fn no_skipping_enforced() {
        let mut chain = Chain::new(b"t", 100);
        let mut b = extend(&chain, vec![]);
        b.serial = 5;
        assert_eq!(
            chain.append(b),
            Err(ChainError::NonConsecutiveSerial {
                expected: 1,
                got: 5
            })
        );
    }

    #[test]
    fn chain_integrity_enforced() {
        let mut chain = Chain::new(b"t", 100);
        let mut b = extend(&chain, vec![]);
        b.prev_hash = prb_crypto::sha256::sha256(b"wrong");
        assert_eq!(
            chain.append(b),
            Err(ChainError::BrokenHashChain { serial: 1 })
        );
    }

    #[test]
    fn merkle_mismatch_rejected() {
        let mut chain = Chain::new(b"t", 100);
        let mut b = extend(&chain, vec![entry(0, Verdict::CheckedValid)]);
        b.entries.push(entry(1, Verdict::CheckedValid)); // root now stale
        assert_eq!(
            chain.append(b),
            Err(ChainError::MerkleMismatch { serial: 1 })
        );
    }

    #[test]
    fn block_limit_enforced() {
        let mut chain = Chain::new(b"t", 2);
        let b = extend(
            &chain,
            vec![
                entry(0, Verdict::CheckedValid),
                entry(1, Verdict::CheckedValid),
                entry(2, Verdict::CheckedValid),
            ],
        );
        assert_eq!(
            chain.append(b),
            Err(ChainError::BlockTooLarge { got: 3, limit: 2 })
        );
        assert_eq!(chain.b_limit(), 2);
    }

    #[test]
    fn find_tx_and_latest_verdict() {
        let mut chain = Chain::new(b"t", 100);
        let e = entry(0, Verdict::UncheckedInvalid);
        let id = e.tx.id();
        chain.append(extend(&chain, vec![e.clone()])).unwrap();
        let (loc, found) = chain.find_tx(id).unwrap();
        assert_eq!(
            loc,
            TxLocation {
                serial: 1,
                index: 0
            }
        );
        assert_eq!(found.verdict, Verdict::UncheckedInvalid);
        assert_eq!(chain.latest_verdict(id), Some(Verdict::UncheckedInvalid));

        // Argue re-records the same tx later; latest verdict updates.
        let mut argued = e;
        argued.verdict = Verdict::ArguedValid;
        chain.append(extend(&chain, vec![argued])).unwrap();
        assert_eq!(chain.latest_verdict(id), Some(Verdict::ArguedValid));
        // find_tx still reports the first location.
        assert_eq!(chain.find_tx(id).unwrap().0.serial, 1);
    }

    #[test]
    fn audit_detects_tampering() {
        let mut chain = Chain::new(b"t", 100);
        for i in 0..5 {
            chain
                .append(extend(&chain, vec![entry(i, Verdict::CheckedValid)]))
                .unwrap();
        }
        assert_eq!(chain.audit(), None);
        // Tamper with a middle block's entry (simulating a rewritten ledger).
        let mut broken = chain.clone();
        broken.blocks[2].entries[0].verdict = Verdict::ArguedValid;
        assert_eq!(broken.audit(), Some(2));
    }

    #[test]
    fn agreement_two_replicas_identical() {
        let mut a = Chain::new(b"t", 100);
        let mut b = Chain::new(b"t", 100);
        for i in 0..3 {
            let blk = extend(&a, vec![entry(i, Verdict::CheckedValid)]);
            a.append(blk.clone()).unwrap();
            b.append(blk).unwrap();
        }
        for s in 0..=3 {
            assert_eq!(a.retrieve(s), b.retrieve(s));
        }
    }

    #[test]
    fn import_corruption_matrix_errors_without_panicking() {
        // A valid export, then every class of corruption the wire can
        // produce. Each mutation must yield Err — never a panic, never a
        // silently wrong chain.
        let mut chain = Chain::new(b"t", 100);
        for i in 0..3 {
            chain
                .append(extend(&chain, vec![entry(i, Verdict::CheckedValid)]))
                .unwrap();
        }
        let good = chain.export();
        assert!(Chain::import(&good).is_ok(), "baseline export must import");

        // Truncated body: every prefix shorter than the full export.
        for cut in [0, 1, 15, 16, 47, 48, good.len() / 2, good.len() - 1] {
            assert!(
                Chain::import(&good[..cut]).is_err(),
                "truncation to {cut} bytes must fail"
            );
        }

        // Inflated count: header promises more blocks than the body holds.
        let mut inflated = good.clone();
        inflated[8..16].copy_from_slice(&u64::MAX.to_be_bytes());
        assert!(Chain::import(&inflated).is_err());

        // Oversized b_limit: u64::MAX either exceeds the platform word
        // size (32-bit) or trips the authentication trailer (64-bit); it
        // must never truncate into a small bound.
        let mut oversized = good.clone();
        oversized[..8].copy_from_slice(&u64::MAX.to_be_bytes());
        assert!(Chain::import(&oversized).is_err());

        // Flipped trailer byte: the authentication trailer must reject.
        let mut flipped = good.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x01;
        assert!(Chain::import(&flipped).is_err());
    }

    #[test]
    fn import_rejects_every_single_byte_flip() {
        // Every byte of the export is structural or hash-committed, so any
        // one-bit corruption must surface as an error (and must not panic).
        let mut chain = Chain::new(b"t", 16);
        chain
            .append(extend(&chain, vec![entry(0, Verdict::CheckedValid)]))
            .unwrap();
        let good = chain.export();
        for i in 0..good.len() {
            let mut bad = good.clone();
            bad[i] ^= 0x80;
            assert!(
                Chain::import(&bad).is_err(),
                "flip of byte {i} went undetected"
            );
        }
    }

    #[test]
    fn import_rejects_duplicate_serials_in_the_body() {
        let mut chain = Chain::new(b"t", 100);
        let b1 = extend(&chain, vec![entry(0, Verdict::CheckedValid)]);
        chain.append(b1.clone()).unwrap();
        // Hand-craft an export whose body repeats serial 1: the header
        // promises 3 blocks, the body is [genesis, b1, b1], and the
        // trailer is recomputed over the claimed head — structurally
        // plausible, so only the append replay can catch the duplicate.
        let mut out = Vec::new();
        out.extend_from_slice(&100u64.to_be_bytes());
        out.extend_from_slice(&3u64.to_be_bytes());
        for block in [chain.retrieve(0).unwrap(), &b1, &b1] {
            codec::encode_block(&mut out, block);
        }
        let mut h = prb_crypto::sha256::Sha256::new();
        h.update_field(b"prb-chain-export");
        h.update(&100u64.to_be_bytes());
        h.update_field(b1.hash().as_bytes());
        out.extend_from_slice(h.finalize().as_bytes());
        let err = Chain::import(&out).unwrap_err();
        assert!(err.contains("expected serial 2"), "got: {err}");
    }

    #[test]
    fn pop_then_reimport_roundtrips_byte_identically() {
        let mut chain = Chain::new(b"t", 100);
        for i in 0..4 {
            chain
                .append(extend(&chain, vec![entry(i, Verdict::CheckedValid)]))
                .unwrap();
        }
        let full = chain.export();
        let popped = chain.pop().unwrap();
        let short = chain.export();
        assert_ne!(full, short, "the export must pin the head");
        // The shortened export round-trips byte for byte, and re-appending
        // the popped head restores the original bytes exactly — rollback
        // plus replay is lossless down to the last byte.
        let mut imported = Chain::import(&short).unwrap();
        assert_eq!(imported.export(), short);
        imported.append(popped.clone()).unwrap();
        assert_eq!(imported.export(), full);
        chain.append(popped).unwrap();
        assert_eq!(chain.export(), full);
    }

    #[test]
    fn error_display() {
        let e = ChainError::NonConsecutiveSerial {
            expected: 2,
            got: 7,
        };
        assert!(e.to_string().contains("expected serial 2"));
        assert!(ChainError::BrokenHashChain { serial: 3 }
            .to_string()
            .contains("block 3"));
    }
}

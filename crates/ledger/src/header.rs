//! Light-client support: block headers and a header-only chain.
//!
//! Providers and auditors do not need full blocks to use the ledger: a
//! [`BlockHeader`] carries exactly the fields that [`crate::block::Block::hash`]
//! commits to, so a [`HeaderChain`] can verify chain integrity and check
//! Merkle inclusion proofs supplied by any full node — the light-client
//! counterpart of the paper's `retrieve(s)`.

use std::fmt;

use prb_crypto::identity::NodeId;
use prb_crypto::merkle::MerkleProof;
use prb_crypto::sha256::{Digest, Sha256};

use crate::block::{Block, BlockEntry};
use crate::chain::ChainError;

/// The hash-committed header of a block.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BlockHeader {
    /// Serial number.
    pub serial: u64,
    /// Hash of the previous block.
    pub prev_hash: Digest,
    /// Merkle root over the entries.
    pub merkle_root: Digest,
    /// Proposing governor.
    pub leader: NodeId,
    /// Proposal time.
    pub timestamp: u64,
    /// Number of entries in the block body.
    pub entry_count: u64,
}

impl BlockHeader {
    /// The header hash — identical to [`Block::hash`] of the full block.
    pub fn hash(&self) -> Digest {
        let mut h = Sha256::new();
        h.update_field(b"prb-block");
        h.update(&self.serial.to_be_bytes());
        h.update_field(self.prev_hash.as_bytes());
        h.update_field(self.merkle_root.as_bytes());
        h.update_field(&self.leader.to_bytes());
        h.update(&self.timestamp.to_be_bytes());
        h.update(&self.entry_count.to_be_bytes());
        h.finalize()
    }
}

impl Block {
    /// Extracts the hash-committed header of this block.
    pub fn header(&self) -> BlockHeader {
        BlockHeader {
            serial: self.serial,
            prev_hash: self.prev_hash,
            merkle_root: self.merkle_root,
            leader: self.leader,
            timestamp: self.timestamp,
            entry_count: self.entries.len() as u64,
        }
    }
}

/// A header-only replica of the ledger.
///
/// Enforces the same *Chain Integrity* and *No Skipping* rules as the full
/// [`crate::chain::Chain`] but stores ~100 bytes per block. Inclusion of a
/// specific transaction is verified against the stored Merkle root with a
/// proof obtained from any (untrusted) full node.
///
/// # Examples
///
/// ```
/// use prb_ledger::header::HeaderChain;
///
/// let light = HeaderChain::new(b"example");
/// assert_eq!(light.height(), 0);
/// ```
#[derive(Clone)]
pub struct HeaderChain {
    headers: Vec<BlockHeader>,
    /// Serial of `headers[0]`; nonzero when anchored at a checkpoint.
    base: u64,
    /// Certified hash of the block at `base - 1`; present iff `base > 0`.
    anchor: Option<Digest>,
}

impl fmt::Debug for HeaderChain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HeaderChain")
            .field("height", &self.height())
            .field("base", &self.base)
            .finish()
    }
}

impl HeaderChain {
    /// A light chain holding only the genesis header of `chain_tag`.
    pub fn new(chain_tag: &[u8]) -> Self {
        HeaderChain {
            headers: vec![Block::genesis(chain_tag).header()],
            base: 0,
            anchor: None,
        }
    }

    /// A light chain anchored at a quorum-certified checkpoint: the caller
    /// vouches that the block at `head_serial` hashes to `head_hash`, and
    /// the chain then only needs the headers *after* the checkpoint — a
    /// million-block ledger audits from a recent checkpoint in O(delta)
    /// headers instead of O(chain).
    ///
    /// # Panics
    ///
    /// Panics if `head_serial` is `u64::MAX`.
    pub fn from_checkpoint(head_serial: u64, head_hash: Digest) -> Self {
        assert!(head_serial < u64::MAX, "checkpoint serial overflow");
        HeaderChain {
            headers: Vec::new(),
            base: head_serial + 1,
            anchor: Some(head_hash),
        }
    }

    /// Serial of the first held header (0 unless anchored).
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Height (serial of the latest header; the certified checkpoint
    /// serial for a freshly anchored chain).
    pub fn height(&self) -> u64 {
        self.base + self.headers.len() as u64 - 1
    }

    /// The latest header.
    ///
    /// # Panics
    ///
    /// Panics on an anchored chain holding no headers yet; use
    /// [`head_hash`](Self::head_hash) where that state is reachable.
    pub fn latest(&self) -> &BlockHeader {
        self.headers.last().expect("chain holds no headers")
    }

    /// Hash of the block at [`height`](Self::height); the anchor hash for
    /// a freshly anchored chain.
    pub fn head_hash(&self) -> Digest {
        match self.headers.last() {
            Some(header) => header.hash(),
            None => self.anchor.expect("empty chain is always anchored"),
        }
    }

    /// The header with serial `s`, if present. Headers below an anchored
    /// chain's base are unavailable.
    pub fn retrieve(&self, serial: u64) -> Option<&BlockHeader> {
        let index = serial.checked_sub(self.base)?;
        self.headers.get(index as usize)
    }

    /// Appends a header after verifying serial continuity and the hash
    /// chain (the light-client analogue of [`crate::chain::Chain::append`];
    /// Merkle consistency of the body is checked lazily per inclusion
    /// proof). On a freshly anchored chain the hash check is against the
    /// anchor digest.
    ///
    /// # Errors
    ///
    /// Returns the violated invariant; the chain is unchanged on error.
    pub fn append(&mut self, header: BlockHeader) -> Result<(), ChainError> {
        let expected = self.height() + 1;
        if header.serial != expected {
            return Err(ChainError::NonConsecutiveSerial {
                expected,
                got: header.serial,
            });
        }
        if header.prev_hash != self.head_hash() {
            return Err(ChainError::BrokenHashChain {
                serial: header.serial,
            });
        }
        self.headers.push(header);
        Ok(())
    }

    /// Verifies that `entry` is included in block `serial` using a Merkle
    /// `proof` obtained from an untrusted full node.
    ///
    /// Returns `false` for unknown serials, bad proofs, or proofs against
    /// the wrong block.
    pub fn verify_inclusion(&self, serial: u64, proof: &MerkleProof, entry: &BlockEntry) -> bool {
        let Some(header) = self.retrieve(serial) else {
            return false;
        };
        if proof.leaf_index() as u64 >= header.entry_count {
            return false;
        }
        proof.verify(&header.merkle_root, &entry.leaf_bytes())
    }

    /// Syncs from a full chain iterator, appending every new block header.
    ///
    /// # Errors
    ///
    /// Returns the first integrity violation.
    pub fn sync_from<'a>(
        &mut self,
        blocks: impl IntoIterator<Item = &'a Block>,
    ) -> Result<(), ChainError> {
        for block in blocks {
            if block.serial <= self.height() {
                continue; // already have it
            }
            self.append(block.header())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Verdict;
    use crate::chain::Chain;
    use crate::transaction::{Label, SignedTx, TxPayload};
    use prb_crypto::signer::CryptoScheme;

    fn entry(nonce: u64) -> BlockEntry {
        let key = CryptoScheme::sim().keypair_from_seed(b"hdr-p0");
        BlockEntry {
            tx: SignedTx::create(
                TxPayload {
                    provider: NodeId::provider(0),
                    nonce,
                    data: vec![9, 9],
                },
                3,
                &key,
            ),
            verdict: Verdict::CheckedValid,
            reported_labels: vec![(NodeId::collector(1), Label::Valid)],
        }
    }

    fn full_chain(blocks: u64, per_block: u64) -> Chain {
        let mut chain = Chain::new(b"hdr", 64);
        let mut nonce = 0;
        for _ in 0..blocks {
            let entries = (0..per_block)
                .map(|_| {
                    nonce += 1;
                    entry(nonce)
                })
                .collect();
            let block = Block::build(
                chain.height() + 1,
                entries,
                chain.latest().hash(),
                NodeId::governor(0),
                nonce,
            );
            chain.append(block).unwrap();
        }
        chain
    }

    #[test]
    fn header_hash_matches_block_hash() {
        let chain = full_chain(3, 4);
        for block in chain.iter() {
            assert_eq!(
                block.header().hash(),
                block.hash(),
                "serial {}",
                block.serial
            );
        }
    }

    #[test]
    fn sync_and_integrity() {
        let chain = full_chain(5, 3);
        let mut light = HeaderChain::new(b"hdr");
        light.sync_from(chain.iter()).unwrap();
        assert_eq!(light.height(), 5);
        assert_eq!(light.latest().hash(), chain.latest().hash());
        // Re-sync is idempotent.
        light.sync_from(chain.iter()).unwrap();
        assert_eq!(light.height(), 5);
    }

    #[test]
    fn append_rejects_gaps_and_forks() {
        let chain = full_chain(3, 2);
        let mut light = HeaderChain::new(b"hdr");
        // Gap: block 2 before block 1.
        let h2 = chain.retrieve(2).unwrap().header();
        assert!(matches!(
            light.append(h2),
            Err(ChainError::NonConsecutiveSerial {
                expected: 1,
                got: 2
            })
        ));
        // Fork: block 1 with a doctored prev hash.
        let mut h1 = chain.retrieve(1).unwrap().header();
        h1.prev_hash = prb_crypto::sha256::sha256(b"fork");
        assert!(matches!(
            light.append(h1),
            Err(ChainError::BrokenHashChain { serial: 1 })
        ));
    }

    #[test]
    fn inclusion_proofs_verify_against_headers_only() {
        let chain = full_chain(4, 5);
        let mut light = HeaderChain::new(b"hdr");
        light.sync_from(chain.iter()).unwrap();
        // A full node serves a proof for entry 2 of block 3.
        let block = chain.retrieve(3).unwrap();
        let proof = block.prove_inclusion(2).unwrap();
        assert!(light.verify_inclusion(3, &proof, &block.entries[2]));
        // Wrong entry, wrong block, unknown serial: all rejected.
        assert!(!light.verify_inclusion(3, &proof, &block.entries[1]));
        assert!(!light.verify_inclusion(2, &proof, &block.entries[2]));
        assert!(!light.verify_inclusion(9, &proof, &block.entries[2]));
    }

    #[test]
    fn tampered_entry_fails_inclusion() {
        let chain = full_chain(2, 3);
        let mut light = HeaderChain::new(b"hdr");
        light.sync_from(chain.iter()).unwrap();
        let block = chain.retrieve(1).unwrap();
        let proof = block.prove_inclusion(0).unwrap();
        let mut tampered = block.entries[0].clone();
        tampered.verdict = Verdict::ArguedValid;
        assert!(!light.verify_inclusion(1, &proof, &tampered));
    }

    #[test]
    fn anchored_light_chain_audits_suffix_only() {
        let chain = full_chain(6, 3);
        // A provider that trusts a checkpoint at height 4 only ever sees
        // the suffix — O(delta) headers on a chain of any length.
        let mut light = HeaderChain::from_checkpoint(4, chain.retrieve(4).unwrap().hash());
        assert_eq!(light.height(), 4);
        assert_eq!(light.base(), 5);
        assert_eq!(light.head_hash(), chain.retrieve(4).unwrap().hash());
        assert_eq!(light.retrieve(4), None, "pre-anchor headers unavailable");

        // A suffix header that does not link into the anchor is rejected.
        let mut forged = chain.retrieve(5).unwrap().header();
        forged.prev_hash = prb_crypto::sha256::sha256(b"forged");
        assert!(matches!(
            light.append(forged),
            Err(ChainError::BrokenHashChain { serial: 5 })
        ));

        light.sync_from(chain.iter()).unwrap();
        assert_eq!(light.height(), 6);
        assert_eq!(light.head_hash(), chain.head_hash());

        // Inclusion proofs still verify against the suffix headers.
        let block = chain.retrieve(6).unwrap();
        let proof = block.prove_inclusion(1).unwrap();
        assert!(light.verify_inclusion(6, &proof, &block.entries[1]));
        assert!(!light.verify_inclusion(4, &proof, &block.entries[1]));
    }

    #[test]
    fn out_of_range_leaf_index_rejected() {
        let chain = full_chain(2, 2);
        let mut light = HeaderChain::new(b"hdr");
        light.sync_from(chain.iter()).unwrap();
        // A proof whose index exceeds the header's entry count cannot be
        // meaningful even if the hash math were made to work out.
        let big_block = full_chain(1, 10);
        let foreign = big_block.retrieve(1).unwrap();
        let proof = foreign.prove_inclusion(7).unwrap();
        assert!(!light.verify_inclusion(1, &proof, &foreign.entries[7]));
    }
}

//! Blocks: `B = (s, TXList, h)` plus integrity metadata.
//!
//! §3.1: a block carries a serial number, the list of signed transactions
//! with labels, and the hash of the previous block. We additionally commit
//! to the transaction list with a Merkle root so light verification and
//! inclusion proofs are possible, and record the proposing leader.

use std::fmt;

use prb_crypto::identity::NodeId;
use prb_crypto::merkle::{MerkleProof, MerkleTree};
use prb_crypto::sha256::{Digest, Sha256};

use crate::transaction::{Label, SignedTx, TxId};

/// How a transaction was recorded in a block (Algorithm 2's outcomes).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Verdict {
    /// The governor validated the transaction itself and found it valid.
    CheckedValid,
    /// The screening coin skipped validation; the transaction is recorded
    /// `(tx, invalid, unchecked)` on the strength of the drawn collector's
    /// `-1` label.
    UncheckedInvalid,
    /// The screening coin skipped validation and the drawn label was
    /// `+1`; only produced by the check-none baseline (the paper's
    /// mechanism always validates `+1`-labeled draws).
    UncheckedValid,
    /// Recorded valid after a provider's successful `argue(tx, s)`.
    ArguedValid,
}

impl Verdict {
    /// Whether the ledger currently treats the transaction as valid.
    pub fn counts_as_valid(self) -> bool {
        matches!(
            self,
            Verdict::CheckedValid | Verdict::ArguedValid | Verdict::UncheckedValid
        )
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Verdict::CheckedValid => "valid",
            Verdict::UncheckedInvalid => "invalid,unchecked",
            Verdict::UncheckedValid => "valid,unchecked",
            Verdict::ArguedValid => "valid,argued",
        })
    }
}

/// One entry of a block's `TXList`.
#[derive(Clone, Debug, PartialEq)]
pub struct BlockEntry {
    /// The provider-signed transaction.
    pub tx: SignedTx,
    /// The governor's recorded verdict.
    pub verdict: Verdict,
    /// The labels collectors reported for this transaction, as packed by
    /// the leader (collector id, label). Used for audits and revenue.
    pub reported_labels: Vec<(NodeId, Label)>,
}

impl BlockEntry {
    /// Canonical bytes committed into the Merkle tree.
    ///
    /// Commits to the transaction id (covering payload, provider and
    /// timestamp), the provider *signature* bytes (so an exported ledger
    /// is tamper-evident down to the last byte — signatures here are
    /// deterministic, so there is no malleability concern), the verdict
    /// and the reported labels.
    pub fn leaf_bytes(&self) -> Vec<u8> {
        let mut h = Sha256::new();
        h.update_field(b"prb-block-entry");
        h.update_field(self.tx.id().0.as_bytes());
        let mut sig_bytes = Vec::new();
        crate::codec::encode_sig(&mut sig_bytes, &self.tx.provider_sig);
        h.update_field(&sig_bytes);
        h.update(&[match self.verdict {
            Verdict::CheckedValid => 0u8,
            Verdict::UncheckedInvalid => 1,
            Verdict::ArguedValid => 2,
            Verdict::UncheckedValid => 3,
        }]);
        for (collector, label) in &self.reported_labels {
            h.update_field(&collector.to_bytes());
            h.update(&[label.to_i8() as u8]);
        }
        h.finalize().to_bytes().to_vec()
    }
}

/// A block: serial number, transaction list, previous-block hash.
#[derive(Clone, Debug, PartialEq)]
pub struct Block {
    /// Serial number `s`; the genesis block is serial 0.
    pub serial: u64,
    /// The recorded transaction list.
    pub entries: Vec<BlockEntry>,
    /// Hash of the previous block (`h` in the paper); all-zero for genesis.
    pub prev_hash: Digest,
    /// Merkle root over [`BlockEntry::leaf_bytes`].
    pub merkle_root: Digest,
    /// The governor that proposed the block.
    pub leader: NodeId,
    /// Proposal time (simulated ticks).
    pub timestamp: u64,
}

impl Block {
    /// Builds a block, computing the Merkle commitment.
    pub fn build(
        serial: u64,
        entries: Vec<BlockEntry>,
        prev_hash: Digest,
        leader: NodeId,
        timestamp: u64,
    ) -> Self {
        let merkle_root = Self::compute_merkle_root(&entries);
        Block {
            serial,
            entries,
            prev_hash,
            merkle_root,
            leader,
            timestamp,
        }
    }

    /// The genesis block for a chain identified by `chain_tag`.
    pub fn genesis(chain_tag: &[u8]) -> Self {
        let mut h = Sha256::new();
        h.update_field(b"prb-genesis");
        h.update_field(chain_tag);
        let tag = h.finalize();
        Block {
            serial: 0,
            entries: Vec::new(),
            prev_hash: tag,
            merkle_root: prb_crypto::merkle::empty_root(),
            leader: NodeId::governor(0),
            timestamp: 0,
        }
    }

    /// Merkle root over the entries' canonical leaf bytes.
    pub fn compute_merkle_root(entries: &[BlockEntry]) -> Digest {
        MerkleTree::from_leaves(entries.iter().map(BlockEntry::leaf_bytes)).root()
    }

    /// The block hash `H(B)` chained into the successor.
    ///
    /// Commits to the header (serial, previous hash, Merkle root, leader,
    /// timestamp, entry count); entry content is covered via the root.
    pub fn hash(&self) -> Digest {
        let mut h = Sha256::new();
        h.update_field(b"prb-block");
        h.update(&self.serial.to_be_bytes());
        h.update_field(self.prev_hash.as_bytes());
        h.update_field(self.merkle_root.as_bytes());
        h.update_field(&self.leader.to_bytes());
        h.update(&self.timestamp.to_be_bytes());
        h.update(&(self.entries.len() as u64).to_be_bytes());
        h.finalize()
    }

    /// Number of transactions in the block (`b ≤ b_limit`).
    pub fn tx_count(&self) -> usize {
        self.entries.len()
    }

    /// Looks up an entry by transaction id.
    pub fn entry(&self, id: TxId) -> Option<(usize, &BlockEntry)> {
        self.entries
            .iter()
            .enumerate()
            .find(|(_, e)| e.tx.id() == id)
    }

    /// Whether the stored Merkle root matches the entries.
    pub fn merkle_consistent(&self) -> bool {
        Self::compute_merkle_root(&self.entries) == self.merkle_root
    }

    /// Deferred-validation root: a commitment over exactly what the
    /// pipelined engine re-checks one serial behind — each entry's
    /// transaction id and provider-signature bytes, in block order.
    ///
    /// A proposer that ships a root disagreeing with its own entries is
    /// committing a detectable forgery: honest governors recompute this
    /// (hash-only, no signature verification) at ordering time and convict
    /// same-round on mismatch, while the signatures themselves are
    /// verified asynchronously.
    pub fn validation_root(&self) -> Digest {
        let mut h = Sha256::new();
        h.update_field(b"prb-validation-root");
        h.update(&self.serial.to_be_bytes());
        for entry in &self.entries {
            h.update_field(entry.tx.id().0.as_bytes());
            let mut sig_bytes = Vec::new();
            crate::codec::encode_sig(&mut sig_bytes, &entry.tx.provider_sig);
            h.update_field(&sig_bytes);
        }
        h.finalize()
    }

    /// Produces an inclusion proof for entry `index`.
    pub fn prove_inclusion(&self, index: usize) -> Option<MerkleProof> {
        MerkleTree::from_leaves(self.entries.iter().map(BlockEntry::leaf_bytes)).prove(index)
    }

    /// Verifies an inclusion proof against this block's root.
    pub fn verify_inclusion(&self, proof: &MerkleProof, entry: &BlockEntry) -> bool {
        proof.verify(&self.merkle_root, &entry.leaf_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transaction::TxPayload;
    use prb_crypto::signer::CryptoScheme;

    fn entry(nonce: u64, verdict: Verdict) -> BlockEntry {
        let key = CryptoScheme::sim().keypair_from_seed(b"p0");
        let tx = SignedTx::create(
            TxPayload {
                provider: NodeId::provider(0),
                nonce,
                data: vec![1, 2, 3],
            },
            50,
            &key,
        );
        BlockEntry {
            tx,
            verdict,
            reported_labels: vec![(NodeId::collector(0), Label::Valid)],
        }
    }

    fn sample_block() -> Block {
        let genesis = Block::genesis(b"test-chain");
        Block::build(
            1,
            vec![
                entry(0, Verdict::CheckedValid),
                entry(1, Verdict::UncheckedInvalid),
                entry(2, Verdict::ArguedValid),
            ],
            genesis.hash(),
            NodeId::governor(1),
            99,
        )
    }

    #[test]
    fn genesis_is_deterministic_per_tag() {
        assert_eq!(Block::genesis(b"a").hash(), Block::genesis(b"a").hash());
        assert_ne!(Block::genesis(b"a").hash(), Block::genesis(b"b").hash());
        assert_eq!(Block::genesis(b"a").serial, 0);
        assert!(Block::genesis(b"a").merkle_consistent());
    }

    #[test]
    fn hash_changes_with_any_header_field() {
        let b = sample_block();
        let base = b.hash();
        let mut c = b.clone();
        c.serial = 2;
        assert_ne!(c.hash(), base);
        let mut c = b.clone();
        c.timestamp += 1;
        assert_ne!(c.hash(), base);
        let mut c = b.clone();
        c.leader = NodeId::governor(2);
        assert_ne!(c.hash(), base);
        let mut c = b.clone();
        c.merkle_root = Digest::default();
        assert_ne!(c.hash(), base);
    }

    #[test]
    fn merkle_root_commits_to_entries() {
        let b = sample_block();
        assert!(b.merkle_consistent());
        let mut tampered = b.clone();
        tampered.entries[0].verdict = Verdict::ArguedValid;
        assert!(!tampered.merkle_consistent());
        let mut tampered = b.clone();
        tampered.entries[1].reported_labels[0].1 = Label::Invalid;
        assert!(!tampered.merkle_consistent());
    }

    #[test]
    fn entry_lookup() {
        let b = sample_block();
        let id = b.entries[1].tx.id();
        let (idx, e) = b.entry(id).unwrap();
        assert_eq!(idx, 1);
        assert_eq!(e.verdict, Verdict::UncheckedInvalid);
        let missing = entry(77, Verdict::CheckedValid).tx.id();
        assert!(b.entry(missing).is_none());
    }

    #[test]
    fn inclusion_proofs() {
        let b = sample_block();
        for i in 0..b.tx_count() {
            let proof = b.prove_inclusion(i).unwrap();
            assert!(b.verify_inclusion(&proof, &b.entries[i]));
        }
        // Proof for one entry does not verify another.
        let proof = b.prove_inclusion(0).unwrap();
        assert!(!b.verify_inclusion(&proof, &b.entries[1]));
        assert!(b.prove_inclusion(10).is_none());
    }

    #[test]
    fn validation_root_commits_to_tx_set_and_signatures() {
        let b = sample_block();
        let base = b.validation_root();
        assert_eq!(base, b.validation_root(), "deterministic");
        // Swapping an entry's signature for another tx's changes the root.
        let mut tampered = b.clone();
        tampered.entries[0].tx.provider_sig = b.entries[1].tx.provider_sig.clone();
        assert_ne!(tampered.validation_root(), base);
        // Dropping an entry changes the root.
        let mut short = b.clone();
        short.entries.pop();
        assert_ne!(short.validation_root(), base);
        // The serial is committed, so a replayed root cannot cover a
        // different position in the chain.
        let mut moved = b.clone();
        moved.serial = 7;
        assert_ne!(moved.validation_root(), base);
        // Verdict/label tampering is covered by the Merkle root, not this
        // one: the validation root only commits what deferred validation
        // re-checks.
        let mut verdict_flip = b.clone();
        verdict_flip.entries[0].verdict = Verdict::ArguedValid;
        assert_eq!(verdict_flip.validation_root(), base);
    }

    #[test]
    fn verdict_semantics() {
        assert!(Verdict::CheckedValid.counts_as_valid());
        assert!(Verdict::ArguedValid.counts_as_valid());
        assert!(Verdict::UncheckedValid.counts_as_valid());
        assert_eq!(Verdict::UncheckedValid.to_string(), "valid,unchecked");
        assert!(!Verdict::UncheckedInvalid.counts_as_valid());
        assert_eq!(Verdict::UncheckedInvalid.to_string(), "invalid,unchecked");
    }
}

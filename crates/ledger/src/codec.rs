//! Canonical binary serialization of ledger structures.
//!
//! Allows a governor to export its chain (e.g. for a new member syncing
//! into the alliance, or for offline audit) and any party to re-import and
//! re-verify it: [`crate::chain::Chain::import`] replays every block
//! through `append`, so Chain Integrity, No Skipping, size bounds and
//! Merkle consistency are re-checked structurally on import.
//!
//! The format is a simple length-prefixed canonical encoding (no external
//! serialization crates): every variable-length field is prefixed with a
//! `u32` big-endian length; integers are fixed-width big-endian; enums are
//! single tag bytes.

use std::fmt;

use prb_crypto::identity::{NodeId, Role};
use prb_crypto::sha256::Digest;
use prb_crypto::signer::Sig;

use crate::block::{Block, BlockEntry, Verdict};
use crate::transaction::{Label, SignedTx, TxPayload};

/// Errors from decoding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// Input ended before the structure was complete.
    UnexpectedEnd,
    /// An enum tag byte was not recognized.
    BadTag {
        /// What was being decoded.
        what: &'static str,
        /// The offending tag.
        tag: u8,
    },
    /// A declared length was implausibly large for the remaining input.
    BadLength,
    /// Trailing bytes after a complete structure.
    TrailingBytes,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnexpectedEnd => f.write_str("input truncated"),
            DecodeError::BadTag { what, tag } => write!(f, "bad tag {tag:#x} decoding {what}"),
            DecodeError::BadLength => f.write_str("declared length exceeds remaining input"),
            DecodeError::TrailingBytes => f.write_str("trailing bytes after structure"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// A byte reader with bounds checking.
#[derive(Debug)]
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wraps a byte slice.
    pub fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    /// Remaining unread bytes.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Skips `n` bytes.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::UnexpectedEnd`] when fewer remain.
    pub fn skip(&mut self, n: usize) -> Result<(), DecodeError> {
        self.take(n).map(|_| ())
    }

    /// Consumes and returns the next `n` bytes.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::UnexpectedEnd`] when fewer remain.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::UnexpectedEnd);
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::UnexpectedEnd`] when none remain.
    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a big-endian `u32`.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::UnexpectedEnd`] when fewer than 4 bytes remain.
    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_be_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads a big-endian `u64`.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::UnexpectedEnd`] when fewer than 8 bytes remain.
    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_be_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads a `u32` length prefix followed by that many bytes.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::BadLength`] when the prefix overruns the
    /// input, or [`DecodeError::UnexpectedEnd`] when the prefix itself is
    /// cut short.
    pub fn bytes_field(&mut self) -> Result<&'a [u8], DecodeError> {
        let len = self.u32()? as usize;
        if len > self.remaining() {
            return Err(DecodeError::BadLength);
        }
        self.take(len)
    }

    /// Reads a raw 32-byte SHA-256 digest.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::UnexpectedEnd`] when fewer than 32 bytes
    /// remain.
    pub fn digest(&mut self) -> Result<Digest, DecodeError> {
        Digest::from_slice(self.take(32)?).ok_or(DecodeError::UnexpectedEnd)
    }
}

fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    out.extend_from_slice(&(bytes.len() as u32).to_be_bytes());
    out.extend_from_slice(bytes);
}

fn encode_node_id(out: &mut Vec<u8>, id: NodeId) {
    out.push(match id.role {
        Role::Provider => 0,
        Role::Collector => 1,
        Role::Governor => 2,
    });
    out.extend_from_slice(&id.index.to_be_bytes());
}

fn decode_node_id(r: &mut Reader<'_>) -> Result<NodeId, DecodeError> {
    let role = match r.u8()? {
        0 => Role::Provider,
        1 => Role::Collector,
        2 => Role::Governor,
        tag => return Err(DecodeError::BadTag { what: "role", tag }),
    };
    Ok(NodeId {
        role,
        index: r.u32()?,
    })
}

/// Encodes a signature (canonical: tag byte + parts).
pub fn encode_sig(out: &mut Vec<u8>, sig: &Sig) {
    match sig {
        Sig::Sim(s) => {
            out.push(0);
            out.extend_from_slice(s.digest().as_bytes());
        }
        Sig::Schnorr(s) => {
            out.push(1);
            put_bytes(out, &s.r().to_bytes_be());
            put_bytes(out, &s.s().to_bytes_be());
        }
    }
}

/// Decodes a signature encoded with [`encode_sig`].
///
/// # Errors
///
/// Returns a [`DecodeError`] on truncation or an unknown scheme tag.
pub fn decode_sig(r: &mut Reader<'_>) -> Result<Sig, DecodeError> {
    match r.u8()? {
        0 => {
            let digest = r.digest()?;
            Ok(Sig::Sim(prb_crypto::sim::SimSignature::from_digest(digest)))
        }
        1 => {
            let big_r = prb_crypto::bigint::BigUint::from_bytes_be(r.bytes_field()?);
            let big_s = prb_crypto::bigint::BigUint::from_bytes_be(r.bytes_field()?);
            Ok(Sig::Schnorr(Box::new(
                prb_crypto::schnorr::Signature::from_parts(big_r, big_s),
            )))
        }
        tag => Err(DecodeError::BadTag { what: "sig", tag }),
    }
}

fn encode_label(out: &mut Vec<u8>, label: Label) {
    out.push(if label.is_valid() { 1 } else { 0 });
}

fn decode_label(r: &mut Reader<'_>) -> Result<Label, DecodeError> {
    match r.u8()? {
        0 => Ok(Label::Invalid),
        1 => Ok(Label::Valid),
        tag => Err(DecodeError::BadTag { what: "label", tag }),
    }
}

/// Encodes a signed transaction.
pub fn encode_signed_tx(out: &mut Vec<u8>, tx: &SignedTx) {
    encode_node_id(out, tx.payload.provider);
    out.extend_from_slice(&tx.payload.nonce.to_be_bytes());
    put_bytes(out, &tx.payload.data);
    out.extend_from_slice(&tx.timestamp.to_be_bytes());
    encode_sig(out, &tx.provider_sig);
}

/// Decodes a signed transaction.
///
/// # Errors
///
/// Returns a [`DecodeError`] on malformed input.
pub fn decode_signed_tx(r: &mut Reader<'_>) -> Result<SignedTx, DecodeError> {
    let provider = decode_node_id(r)?;
    let nonce = r.u64()?;
    let data = r.bytes_field()?.to_vec();
    let timestamp = r.u64()?;
    let provider_sig = decode_sig(r)?;
    Ok(SignedTx::from_parts(
        TxPayload {
            provider,
            nonce,
            data,
        },
        timestamp,
        provider_sig,
    ))
}

fn encode_verdict(out: &mut Vec<u8>, v: Verdict) {
    out.push(match v {
        Verdict::CheckedValid => 0,
        Verdict::UncheckedInvalid => 1,
        Verdict::ArguedValid => 2,
        Verdict::UncheckedValid => 3,
    });
}

fn decode_verdict(r: &mut Reader<'_>) -> Result<Verdict, DecodeError> {
    match r.u8()? {
        0 => Ok(Verdict::CheckedValid),
        1 => Ok(Verdict::UncheckedInvalid),
        2 => Ok(Verdict::ArguedValid),
        3 => Ok(Verdict::UncheckedValid),
        tag => Err(DecodeError::BadTag {
            what: "verdict",
            tag,
        }),
    }
}

/// Encodes a block entry.
pub fn encode_entry(out: &mut Vec<u8>, e: &BlockEntry) {
    encode_signed_tx(out, &e.tx);
    encode_verdict(out, e.verdict);
    out.extend_from_slice(&(e.reported_labels.len() as u32).to_be_bytes());
    for (collector, label) in &e.reported_labels {
        encode_node_id(out, *collector);
        encode_label(out, *label);
    }
}

/// Decodes a block entry.
///
/// # Errors
///
/// Returns a [`DecodeError`] on malformed input.
pub fn decode_entry(r: &mut Reader<'_>) -> Result<BlockEntry, DecodeError> {
    let tx = decode_signed_tx(r)?;
    let verdict = decode_verdict(r)?;
    let n = r.u32()? as usize;
    if n > r.remaining() {
        return Err(DecodeError::BadLength);
    }
    let mut reported_labels = Vec::with_capacity(n);
    for _ in 0..n {
        let id = decode_node_id(r)?;
        let label = decode_label(r)?;
        reported_labels.push((id, label));
    }
    Ok(BlockEntry {
        tx,
        verdict,
        reported_labels,
    })
}

/// Encodes a block (header + entries).
pub fn encode_block(out: &mut Vec<u8>, b: &Block) {
    out.extend_from_slice(&b.serial.to_be_bytes());
    out.extend_from_slice(b.prev_hash.as_bytes());
    out.extend_from_slice(b.merkle_root.as_bytes());
    encode_node_id(out, b.leader);
    out.extend_from_slice(&b.timestamp.to_be_bytes());
    out.extend_from_slice(&(b.entries.len() as u32).to_be_bytes());
    for e in &b.entries {
        encode_entry(out, e);
    }
}

/// Decodes a block.
///
/// # Errors
///
/// Returns a [`DecodeError`] on malformed input.
pub fn decode_block(r: &mut Reader<'_>) -> Result<Block, DecodeError> {
    let serial = r.u64()?;
    let prev_hash = r.digest()?;
    let merkle_root = r.digest()?;
    let leader = decode_node_id(r)?;
    let timestamp = r.u64()?;
    let n = r.u32()? as usize;
    if n > r.remaining() {
        return Err(DecodeError::BadLength);
    }
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        entries.push(decode_entry(r)?);
    }
    Ok(Block {
        serial,
        entries,
        prev_hash,
        merkle_root,
        leader,
        timestamp,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use prb_crypto::signer::CryptoScheme;

    fn sample_tx(scheme: &CryptoScheme, nonce: u64) -> SignedTx {
        let key = scheme.keypair_from_seed(b"codec-p0");
        SignedTx::create(
            TxPayload {
                provider: NodeId::provider(3),
                nonce,
                data: vec![1, 2, 3, 4, 5],
            },
            99,
            &key,
        )
    }

    fn sample_block(scheme: &CryptoScheme) -> Block {
        let entries = vec![
            BlockEntry {
                tx: sample_tx(scheme, 0),
                verdict: Verdict::CheckedValid,
                reported_labels: vec![
                    (NodeId::collector(0), Label::Valid),
                    (NodeId::collector(1), Label::Invalid),
                ],
            },
            BlockEntry {
                tx: sample_tx(scheme, 1),
                verdict: Verdict::UncheckedInvalid,
                reported_labels: vec![],
            },
        ];
        Block::build(
            1,
            entries,
            Block::genesis(b"codec").hash(),
            NodeId::governor(2),
            7,
        )
    }

    #[test]
    fn tx_roundtrip_sim_and_schnorr() {
        for scheme in [CryptoScheme::sim(), CryptoScheme::schnorr_test_256()] {
            let tx = sample_tx(&scheme, 5);
            let mut bytes = Vec::new();
            encode_signed_tx(&mut bytes, &tx);
            let mut r = Reader::new(&bytes);
            let decoded = decode_signed_tx(&mut r).unwrap();
            assert_eq!(r.remaining(), 0);
            assert_eq!(decoded, tx);
            assert_eq!(decoded.id(), tx.id());
            // The decoded signature still verifies.
            let pk = scheme.keypair_from_seed(b"codec-p0").public_key();
            assert!(decoded.verify(&pk));
        }
    }

    #[test]
    fn block_roundtrip_preserves_hash() {
        for scheme in [CryptoScheme::sim(), CryptoScheme::schnorr_test_256()] {
            let block = sample_block(&scheme);
            let mut bytes = Vec::new();
            encode_block(&mut bytes, &block);
            let mut r = Reader::new(&bytes);
            let decoded = decode_block(&mut r).unwrap();
            assert_eq!(r.remaining(), 0);
            assert_eq!(decoded, block);
            assert_eq!(decoded.hash(), block.hash());
            assert!(decoded.merkle_consistent());
        }
    }

    #[test]
    fn truncated_input_rejected() {
        let block = sample_block(&CryptoScheme::sim());
        let mut bytes = Vec::new();
        encode_block(&mut bytes, &block);
        for cut in [0, 1, 8, 40, bytes.len() / 2, bytes.len() - 1] {
            let mut r = Reader::new(&bytes[..cut]);
            assert!(decode_block(&mut r).is_err(), "cut at {cut} accepted");
        }
    }

    #[test]
    fn bad_tags_rejected() {
        let mut bytes = Vec::new();
        encode_node_id(&mut bytes, NodeId::provider(0));
        bytes[0] = 9; // invalid role tag
        let mut r = Reader::new(&bytes);
        assert_eq!(
            decode_node_id(&mut r),
            Err(DecodeError::BadTag {
                what: "role",
                tag: 9
            })
        );
    }

    #[test]
    fn absurd_length_rejected_without_allocation() {
        // A 4 GiB declared data field with 4 bytes of input.
        let mut bytes = Vec::new();
        encode_node_id(&mut bytes, NodeId::provider(0));
        bytes.extend_from_slice(&0u64.to_be_bytes()); // nonce
        bytes.extend_from_slice(&u32::MAX.to_be_bytes()); // data length
        let mut r = Reader::new(&bytes);
        assert_eq!(decode_signed_tx(&mut r), Err(DecodeError::BadLength));
    }

    #[test]
    fn error_display() {
        assert!(DecodeError::UnexpectedEnd.to_string().contains("truncated"));
        assert!(DecodeError::BadLength.to_string().contains("length"));
        assert!(DecodeError::TrailingBytes.to_string().contains("railing"));
    }
}

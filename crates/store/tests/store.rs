//! Integration tests of the durable block store: round-trips, segment
//! rolling, pops, torn-write recovery and checkpoint resets. The
//! exhaustive kill-at-any-byte matrix lives in the E16 harness
//! (`exp_persist`); these tests cover each recovery transition once.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

use prb_consensus::checkpoint::{CheckpointCert, CheckpointShare, CheckpointState};
use prb_crypto::identity::NodeId;
use prb_crypto::signer::CryptoScheme;
use prb_ledger::block::{Block, BlockEntry, Verdict};
use prb_ledger::chain::Chain;
use prb_ledger::transaction::{Label, SignedTx, TxPayload};
use prb_store::{BlockStore, FsyncPolicy, StoreOptions};

static DIRS: AtomicUsize = AtomicUsize::new(0);

/// A unique scratch directory per test invocation.
fn scratch(name: &str) -> PathBuf {
    let n = DIRS.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("prb-store-test-{}-{name}-{n}", std::process::id()))
}

fn opts(segment_bytes: u64) -> StoreOptions {
    StoreOptions {
        chain_tag: b"store-test".to_vec(),
        b_limit: 64,
        segment_bytes,
        fsync: FsyncPolicy::Always,
    }
}

fn entry(nonce: u64) -> BlockEntry {
    let key = CryptoScheme::sim().keypair_from_seed(b"store-p0");
    BlockEntry {
        tx: SignedTx::create(
            TxPayload {
                provider: NodeId::provider(0),
                nonce,
                data: vec![nonce as u8; 8],
            },
            nonce,
            &key,
        ),
        verdict: Verdict::CheckedValid,
        reported_labels: vec![(NodeId::collector(0), Label::Valid)],
    }
}

fn extend(chain: &Chain, entries: Vec<BlockEntry>) -> Block {
    Block::build(
        chain.next_serial(),
        entries,
        chain.head_hash(),
        NodeId::governor(0),
        chain.next_serial(),
    )
}

/// Builds a reference chain of `n` blocks and mirrors it into a store.
fn build(dir: &Path, n: u64, segment_bytes: u64) -> (BlockStore, Chain) {
    let (mut store, recovered) = BlockStore::open(dir, opts(segment_bytes)).unwrap();
    let mut chain = recovered.chain;
    for i in 0..n {
        let block = extend(&chain, vec![entry(i * 2), entry(i * 2 + 1)]);
        chain.append(block.clone()).unwrap();
        store.append(&block).unwrap();
    }
    (store, chain)
}

fn cleanup(dir: &Path) {
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn reopen_replays_byte_identically() {
    let dir = scratch("reopen");
    let (store, chain) = build(&dir, 6, 1 << 20);
    drop(store);
    let (store, recovered) = BlockStore::open(&dir, opts(1 << 20)).unwrap();
    assert_eq!(recovered.chain.export(), chain.export());
    assert_eq!(recovered.truncated_bytes, 0);
    assert_eq!(recovered.dropped_segments, 0);
    assert_eq!(store.next_serial(), 7);
    cleanup(&dir);
}

#[test]
fn segments_roll_and_recover_across_files() {
    let dir = scratch("roll");
    // Tiny segments force several rolls.
    let (store, chain) = build(&dir, 10, 256);
    assert!(
        store.segment_count() > 2,
        "expected rolls, got {} segment(s)",
        store.segment_count()
    );
    assert!(store.stats().rolls > 0);
    drop(store);
    let (_, recovered) = BlockStore::open(&dir, opts(256)).unwrap();
    assert_eq!(recovered.chain.export(), chain.export());
    cleanup(&dir);
}

#[test]
fn pops_mirror_the_chain_including_across_a_roll() {
    let dir = scratch("pop");
    let (mut store, mut chain) = build(&dir, 8, 256);
    // Pop back across at least one segment boundary.
    for _ in 0..3 {
        chain.pop().unwrap();
        store.pop().unwrap();
    }
    assert_eq!(store.next_serial(), chain.next_serial());
    drop(store);
    let (mut store, recovered) = BlockStore::open(&dir, opts(256)).unwrap();
    assert_eq!(recovered.chain.export(), chain.export());
    // Appending after the pops continues cleanly.
    let block = extend(&chain, vec![entry(99)]);
    chain.append(block.clone()).unwrap();
    store.append(&block).unwrap();
    drop(store);
    let (_, recovered) = BlockStore::open(&dir, opts(256)).unwrap();
    assert_eq!(recovered.chain.export(), chain.export());
    cleanup(&dir);
}

#[test]
fn read_back_by_serial_and_by_hash() {
    let dir = scratch("read");
    let (mut store, chain) = build(&dir, 5, 256);
    for serial in 1..=5 {
        let expect = chain.retrieve(serial).unwrap();
        let got = store.read(serial).unwrap().unwrap();
        assert_eq!(&got, expect);
        let got = store.read_by_hash(&expect.hash()).unwrap().unwrap();
        assert_eq!(&got, expect);
    }
    assert_eq!(
        store.read(0).unwrap(),
        None,
        "genesis is derived, not stored"
    );
    assert_eq!(store.read(6).unwrap(), None);
    let bogus = prb_crypto::sha256::sha256(b"nope");
    assert_eq!(store.read_by_hash(&bogus).unwrap(), None);
    cleanup(&dir);
}

#[test]
fn torn_tail_is_truncated_to_the_durable_prefix() {
    let dir = scratch("torn");
    let (store, chain) = build(&dir, 4, 1 << 20);
    drop(store);
    // Simulate a crash mid-write: garbage appended to the active segment.
    let seg = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .find(|p| p.to_string_lossy().contains("seg-"))
        .unwrap();
    let mut bytes = std::fs::read(&seg).unwrap();
    let clean_len = bytes.len();
    bytes.extend_from_slice(&[0xAB; 17]);
    std::fs::write(&seg, &bytes).unwrap();

    let (_, recovered) = BlockStore::open(&dir, opts(1 << 20)).unwrap();
    assert_eq!(
        recovered.chain.export(),
        chain.export(),
        "no durable block lost"
    );
    assert_eq!(recovered.truncated_bytes, 17);
    assert_eq!(
        std::fs::metadata(&seg).unwrap().len(),
        clean_len as u64,
        "tail physically truncated"
    );
    cleanup(&dir);
}

#[test]
fn corrupt_interior_byte_loses_only_the_suffix() {
    let dir = scratch("flip");
    let (store, chain) = build(&dir, 4, 1 << 20);
    drop(store);
    let seg = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .find(|p| p.to_string_lossy().contains("seg-"))
        .unwrap();
    let mut bytes = std::fs::read(&seg).unwrap();
    // Flip a byte inside the *second* record's payload.
    let flip_at = bytes.len() / 2;
    bytes[flip_at] ^= 0x40;
    std::fs::write(&seg, &bytes).unwrap();

    let (_, recovered) = BlockStore::open(&dir, opts(1 << 20)).unwrap();
    let h = recovered.chain.height();
    assert!(h < 4, "corrupt record must not survive");
    // The surviving prefix is byte-identical to the reference prefix.
    let mut prefix = Chain::new(b"store-test", 64);
    for s in 1..=h {
        prefix.append(chain.retrieve(s).unwrap().clone()).unwrap();
    }
    assert_eq!(recovered.chain.export(), prefix.export());
    cleanup(&dir);
}

#[test]
fn torn_segment_header_drops_segment_not_store() {
    let dir = scratch("badheader");
    let (store, chain) = build(&dir, 10, 256);
    assert!(store.segment_count() >= 3);
    drop(store);
    // Corrupt the *last* segment's magic: that whole segment is lost,
    // every earlier one survives.
    let mut segs: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.to_string_lossy().contains("seg-"))
        .collect();
    segs.sort();
    let last = segs.last().unwrap();
    let mut bytes = std::fs::read(last).unwrap();
    bytes[0] ^= 0xFF;
    std::fs::write(last, &bytes).unwrap();

    let (_, recovered) = BlockStore::open(&dir, opts(256)).unwrap();
    assert_eq!(recovered.dropped_segments, 1);
    let h = recovered.chain.height();
    assert!(h < 10 && h > 0);
    let mut prefix = Chain::new(b"store-test", 64);
    for s in 1..=h {
        prefix.append(chain.retrieve(s).unwrap().clone()).unwrap();
    }
    assert_eq!(recovered.chain.export(), prefix.export());
    cleanup(&dir);
}

fn toy_cert(chain: &Chain, serial: u64) -> CheckpointCert {
    let scheme = CryptoScheme::sim();
    let keys: Vec<_> = (0..4)
        .map(|g| scheme.keypair_from_seed(format!("store-g{g}").as_bytes()))
        .collect();
    let state = CheckpointState {
        serial,
        block_hash: chain.retrieve(serial).unwrap().hash(),
        stakes: vec![5, 5, 5, 5],
        stake_nonces: vec![0, 0, 1, 0],
        reputation: Vec::new(),
    };
    let digest = state.digest();
    let sigs = keys
        .iter()
        .enumerate()
        .map(|(g, k)| {
            let share = CheckpointShare::create(serial, digest, g as u32, k);
            (g as u32, share.sig)
        })
        .collect();
    CheckpointCert { state, sigs }
}

#[test]
fn checkpoint_reset_reopens_anchored() {
    let dir = scratch("ckpt");
    let (mut store, chain) = build(&dir, 6, 1 << 20);
    let cert = toy_cert(&chain, 4);
    store.reset_to_checkpoint(&cert).unwrap();
    assert_eq!(store.base(), 5);
    assert_eq!(store.next_serial(), 5);
    // Suffix blocks append on top of the anchor.
    store.append(chain.retrieve(5).unwrap()).unwrap();
    store.append(chain.retrieve(6).unwrap()).unwrap();
    drop(store);

    let (mut store, recovered) = BlockStore::open(&dir, opts(1 << 20)).unwrap();
    assert_eq!(recovered.cert.as_ref().unwrap(), &cert);
    let rc = &recovered.chain;
    assert!(rc.is_anchored());
    assert_eq!(rc.base(), 5);
    assert_eq!(rc.height(), 6);
    assert_eq!(rc.head_hash(), chain.head_hash());
    assert_eq!(rc.retrieve(4), None, "pre-checkpoint blocks not stored");
    // The anchored export round-trips through the ledger importer too.
    assert_eq!(Chain::import(&rc.export()).unwrap().export(), rc.export());
    // Reads work across the anchor window.
    assert_eq!(
        store.read(6).unwrap().unwrap().hash(),
        chain.retrieve(6).unwrap().hash()
    );
    assert_eq!(store.read(4).unwrap(), None);
    cleanup(&dir);
}

#[test]
fn crash_between_cert_save_and_segment_rebuild_recovers() {
    let dir = scratch("midreset");
    let (mut store, chain) = build(&dir, 6, 1 << 20);
    // Simulate the torn reset: the cert is durable but the segments were
    // never rebuilt (the old genesis-rooted log is still on disk, and is
    // *behind* the certified state... here it is ahead in blocks but the
    // cert wins only when strictly newer, so certify height 8 > 6).
    let mut longer = chain.clone();
    for i in 0..2 {
        let block = extend(&longer, vec![entry(200 + i)]);
        longer.append(block).unwrap();
    }
    let cert = toy_cert(&longer, 8);
    store.save_cert(&cert).unwrap();
    drop(store);

    let (store, recovered) = BlockStore::open(&dir, opts(1 << 20)).unwrap();
    assert!(recovered.chain.is_anchored());
    assert_eq!(recovered.chain.height(), 8);
    assert_eq!(recovered.chain.head_hash(), longer.head_hash());
    assert_eq!(store.base(), 9);
    cleanup(&dir);
}

#[test]
fn stale_cert_does_not_roll_back_a_longer_log() {
    let dir = scratch("stale");
    let (mut store, chain) = build(&dir, 6, 1 << 20);
    // A cert at height 3 while 6 blocks are durable: the log wins.
    let cert = toy_cert(&chain, 3);
    store.save_cert(&cert).unwrap();
    drop(store);
    let (_, recovered) = BlockStore::open(&dir, opts(1 << 20)).unwrap();
    assert!(!recovered.chain.is_anchored());
    assert_eq!(recovered.chain.export(), chain.export());
    assert_eq!(recovered.cert.as_ref().map(|c| c.state.serial), Some(3));
    cleanup(&dir);
}

#[test]
fn torn_cert_file_is_treated_as_absent() {
    let dir = scratch("torncert");
    let (mut store, chain) = build(&dir, 4, 1 << 20);
    let cert = toy_cert(&chain, 4);
    store.save_cert(&cert).unwrap();
    drop(store);
    // Flip one byte of the cert file: checksum fails, cert ignored,
    // segments still recover everything.
    let path = dir.join("checkpoint.cert");
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&path, &bytes).unwrap();
    let (_, recovered) = BlockStore::open(&dir, opts(1 << 20)).unwrap();
    assert!(recovered.cert.is_none());
    assert_eq!(recovered.chain.export(), chain.export());
    cleanup(&dir);
}

#[test]
fn manual_fsync_policy_still_recovers_a_consistent_prefix() {
    let dir = scratch("manual");
    let mut o = opts(1 << 20);
    o.fsync = FsyncPolicy::Manual;
    let (mut store, recovered) = BlockStore::open(&dir, o.clone()).unwrap();
    let mut chain = recovered.chain;
    let baseline = store.stats().fsyncs;
    for i in 0..5 {
        let block = extend(&chain, vec![entry(i)]);
        chain.append(block.clone()).unwrap();
        store.append(&block).unwrap();
    }
    assert_eq!(
        store.stats().fsyncs,
        baseline,
        "manual policy must not fsync per append"
    );
    store.sync().unwrap();
    assert_eq!(store.stats().fsyncs, baseline + 1);
    drop(store);
    let (_, recovered) = BlockStore::open(&dir, o).unwrap();
    assert_eq!(recovered.chain.export(), chain.export());
    cleanup(&dir);
}

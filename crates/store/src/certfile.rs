//! Atomic persistence of the latest checkpoint certificate.
//!
//! The cert is the store's trust anchor after a reset-to-checkpoint, so
//! it is written with full crash discipline: encode + trailing checksum
//! into a temp file, fsync, rename over the live name, fsync the
//! directory. A torn or tampered cert file fails its checksum and is
//! treated as absent — the store then recovers from whatever segments
//! remain, which is always safe (the cert is an optimization, the
//! segments are the ground truth for a genesis-rooted store).

use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use prb_consensus::checkpoint::{CheckpointCert, CheckpointState, CollectorSnapshot};
use prb_crypto::sha256::sha256;
use prb_ledger::codec::{self, DecodeError, Reader};

use crate::store::StoreError;

/// File name of the persisted certificate inside the store directory.
pub const CERT_FILE: &str = "checkpoint.cert";

/// Canonical encoding of a checkpoint certificate (no trailing checksum).
pub fn encode_cert(out: &mut Vec<u8>, cert: &CheckpointCert) {
    let s = &cert.state;
    out.extend_from_slice(&s.serial.to_be_bytes());
    out.extend_from_slice(s.block_hash.as_bytes());
    out.extend_from_slice(&(s.stakes.len() as u32).to_be_bytes());
    for &v in &s.stakes {
        out.extend_from_slice(&v.to_be_bytes());
    }
    for &v in &s.stake_nonces {
        out.extend_from_slice(&v.to_be_bytes());
    }
    out.extend_from_slice(&(s.reputation.len() as u32).to_be_bytes());
    for c in &s.reputation {
        out.extend_from_slice(&(c.weights.len() as u32).to_be_bytes());
        for &w in &c.weights {
            out.extend_from_slice(&w.to_bits().to_be_bytes());
        }
        out.extend_from_slice(&c.misreport.to_be_bytes());
        out.extend_from_slice(&c.forge.to_be_bytes());
    }
    out.extend_from_slice(&(cert.sigs.len() as u32).to_be_bytes());
    for (g, sig) in &cert.sigs {
        out.extend_from_slice(&g.to_be_bytes());
        codec::encode_sig(out, sig);
    }
}

/// Decodes a certificate encoded with [`encode_cert`].
///
/// # Errors
///
/// Returns a [`DecodeError`] on truncation or malformed fields.
pub fn decode_cert(r: &mut Reader<'_>) -> Result<CheckpointCert, DecodeError> {
    let serial = r.u64()?;
    let block_hash = r.digest()?;
    let n_stakes = r.u32()? as usize;
    if n_stakes > r.remaining() / 8 {
        return Err(DecodeError::BadLength);
    }
    let mut stakes = Vec::with_capacity(n_stakes);
    for _ in 0..n_stakes {
        stakes.push(r.u64()?);
    }
    let mut stake_nonces = Vec::with_capacity(n_stakes);
    for _ in 0..n_stakes {
        stake_nonces.push(r.u64()?);
    }
    let n_rep = r.u32()? as usize;
    if n_rep > r.remaining() / 20 {
        return Err(DecodeError::BadLength);
    }
    let mut reputation = Vec::with_capacity(n_rep);
    for _ in 0..n_rep {
        let n_w = r.u32()? as usize;
        if n_w > r.remaining() / 8 {
            return Err(DecodeError::BadLength);
        }
        let mut weights = Vec::with_capacity(n_w);
        for _ in 0..n_w {
            weights.push(f64::from_bits(r.u64()?));
        }
        let misreport = r.u64()? as i64;
        let forge = r.u64()? as i64;
        reputation.push(CollectorSnapshot {
            weights,
            misreport,
            forge,
        });
    }
    let n_sigs = r.u32()? as usize;
    if n_sigs > r.remaining() / 5 {
        return Err(DecodeError::BadLength);
    }
    let mut sigs = Vec::with_capacity(n_sigs);
    for _ in 0..n_sigs {
        let g = r.u32()?;
        sigs.push((g, codec::decode_sig(r)?));
    }
    Ok(CheckpointCert {
        state: CheckpointState {
            serial,
            block_hash,
            stakes,
            stake_nonces,
            reputation,
        },
        sigs,
    })
}

/// Atomically persists `cert` to `dir/checkpoint.cert`.
pub fn save(dir: &Path, cert: &CheckpointCert) -> Result<(), StoreError> {
    let mut bytes = Vec::new();
    encode_cert(&mut bytes, cert);
    let checksum = sha256(&bytes);
    bytes.extend_from_slice(checksum.as_bytes());
    let tmp: PathBuf = dir.join("checkpoint.cert.tmp");
    let live: PathBuf = dir.join(CERT_FILE);
    let mut file = OpenOptions::new()
        .write(true)
        .create(true)
        .truncate(true)
        .open(&tmp)?;
    file.write_all(&bytes)?;
    file.sync_data()?;
    drop(file);
    std::fs::rename(&tmp, &live)?;
    File::open(dir)?.sync_all()?;
    Ok(())
}

/// Loads the persisted certificate, if a valid one exists. Any torn,
/// truncated or tampered file is reported as `None` — never an error and
/// never a panic.
pub fn load(dir: &Path) -> Option<CheckpointCert> {
    let mut bytes = Vec::new();
    File::open(dir.join(CERT_FILE))
        .ok()?
        .read_to_end(&mut bytes)
        .ok()?;
    if bytes.len() < 32 {
        return None;
    }
    let (body, checksum) = bytes.split_at(bytes.len() - 32);
    if sha256(body).as_bytes() != checksum {
        return None;
    }
    let mut r = Reader::new(body);
    let cert = decode_cert(&mut r).ok()?;
    if r.remaining() != 0 {
        return None;
    }
    Some(cert)
}

//! One append-only segment file of the block store.
//!
//! Layout:
//!
//! ```text
//! +--------------------------------------------------+
//! | magic "PRBSEG\0\1" (8) | first_serial u64 BE (8) |  header, 16 bytes
//! +--------------------------------------------------+
//! | len u32 BE | sha256(payload) (32) | payload ...  |  record 0
//! | len u32 BE | sha256(payload) (32) | payload ...  |  record 1
//! | ...                                              |
//! +--------------------------------------------------+
//! ```
//!
//! Every record is individually checksummed, so a scan can tell exactly
//! how far the durable prefix extends: the first record whose length
//! field overruns the file or whose payload hash mismatches marks the
//! torn tail, and everything from there on is truncated away on open.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use prb_crypto::sha256::{sha256, Digest};

use crate::store::StoreError;

/// Magic + format version prefix of every segment file.
pub const MAGIC: &[u8; 8] = b"PRBSEG\x00\x01";
/// Bytes of the segment header (magic + first serial).
pub const HEADER_BYTES: u64 = 16;
/// Bytes of a record header (length prefix + payload checksum).
pub const RECORD_HEADER_BYTES: u64 = 4 + 32;

/// What a scan of an existing segment file found.
#[derive(Debug)]
pub struct ScanOutcome {
    /// The verified record payloads, in order.
    pub payloads: Vec<Vec<u8>>,
    /// Bytes of torn tail discarded (0 for a clean file).
    pub truncated_bytes: u64,
}

/// An open segment file: the fixed header plus verified record geometry.
#[derive(Debug)]
pub struct Segment {
    path: PathBuf,
    file: File,
    first_serial: u64,
    /// End offset of every record, so pops and reads are O(1) lookups.
    record_ends: Vec<u64>,
}

impl Segment {
    /// Creates a fresh segment whose first record will hold `first_serial`,
    /// writing (but not fsyncing) the header. The caller is responsible
    /// for directory durability.
    pub fn create(path: PathBuf, first_serial: u64) -> Result<Self, StoreError> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        file.write_all(MAGIC)?;
        file.write_all(&first_serial.to_be_bytes())?;
        Ok(Segment {
            path,
            file,
            first_serial,
            record_ends: Vec::new(),
        })
    }

    /// Opens an existing segment, verifying the header and every record
    /// checksum. A torn or corrupt tail is physically truncated so the
    /// file ends at its last durable record; the verified payloads are
    /// returned for replay.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::BadSegment`] when the header itself is
    /// unreadable — the caller treats the whole file (and every later
    /// segment) as lost.
    pub fn open(path: PathBuf) -> Result<(Self, ScanOutcome), StoreError> {
        let mut file = OpenOptions::new().read(true).write(true).open(&path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        if bytes.len() < HEADER_BYTES as usize || &bytes[..8] != MAGIC {
            return Err(StoreError::BadSegment {
                path: path.display().to_string(),
            });
        }
        let first_serial = u64::from_be_bytes(bytes[8..16].try_into().expect("8 bytes"));
        let mut payloads = Vec::new();
        let mut record_ends = Vec::new();
        let mut pos = HEADER_BYTES as usize;
        // Stop at the first record that is cut short or fails its
        // checksum: that is the torn tail.
        while bytes.len() - pos >= RECORD_HEADER_BYTES as usize {
            let len = u32::from_be_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
            let payload_start = pos + RECORD_HEADER_BYTES as usize;
            if bytes.len() - payload_start < len {
                break;
            }
            let stored = Digest::from_slice(&bytes[pos + 4..payload_start]).expect("32 bytes");
            let payload = &bytes[payload_start..payload_start + len];
            if sha256(payload) != stored {
                break;
            }
            payloads.push(payload.to_vec());
            pos = payload_start + len;
            record_ends.push(pos as u64);
        }
        let truncated_bytes = (bytes.len() - pos) as u64;
        if truncated_bytes > 0 {
            file.set_len(pos as u64)?;
            file.sync_data()?;
        }
        file.seek(SeekFrom::End(0))?;
        Ok((
            Segment {
                path,
                file,
                first_serial,
                record_ends,
            },
            ScanOutcome {
                payloads,
                truncated_bytes,
            },
        ))
    }

    /// Serial of the first record in this segment.
    pub fn first_serial(&self) -> u64 {
        self.first_serial
    }

    /// Number of records currently held.
    pub fn records(&self) -> usize {
        self.record_ends.len()
    }

    /// Current file length in bytes.
    pub fn len(&self) -> u64 {
        self.record_ends.last().copied().unwrap_or(HEADER_BYTES)
    }

    /// Whether the segment holds no records.
    pub fn is_empty(&self) -> bool {
        self.record_ends.is_empty()
    }

    /// Appends one checksummed record.
    pub fn append(&mut self, payload: &[u8]) -> Result<(), StoreError> {
        let mut record = Vec::with_capacity(RECORD_HEADER_BYTES as usize + payload.len());
        record.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        record.extend_from_slice(sha256(payload).as_bytes());
        record.extend_from_slice(payload);
        self.file.write_all(&record)?;
        self.record_ends.push(self.len() + record.len() as u64);
        Ok(())
    }

    /// Removes the last record by truncating the file.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::EmptyPop`] when no record remains.
    pub fn pop(&mut self) -> Result<(), StoreError> {
        if self.record_ends.pop().is_none() {
            return Err(StoreError::EmptyPop);
        }
        self.file.set_len(self.len())?;
        self.file.seek(SeekFrom::End(0))?;
        Ok(())
    }

    /// Reads record `index` back, re-verifying its checksum.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::BadSegment`] if the record was modified on
    /// disk since it was written.
    pub fn read(&mut self, index: usize) -> Result<Vec<u8>, StoreError> {
        let start = match index.checked_sub(1) {
            Some(prev) => self.record_ends[prev],
            None => HEADER_BYTES,
        };
        let end = self.record_ends[index];
        let mut record = vec![0u8; (end - start) as usize];
        self.file.seek(SeekFrom::Start(start))?;
        self.file.read_exact(&mut record)?;
        self.file.seek(SeekFrom::End(0))?;
        let stored = Digest::from_slice(&record[4..36]).expect("32 bytes");
        let payload = record[RECORD_HEADER_BYTES as usize..].to_vec();
        if sha256(&payload) != stored {
            return Err(StoreError::BadSegment {
                path: self.path.display().to_string(),
            });
        }
        Ok(payload)
    }

    /// Flushes and fsyncs the file.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        self.file.flush()?;
        self.file.sync_data()?;
        Ok(())
    }

    /// Closes and deletes the segment file.
    pub fn delete(self) -> Result<(), StoreError> {
        drop(self.file);
        std::fs::remove_file(&self.path)?;
        Ok(())
    }

    /// The on-disk path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

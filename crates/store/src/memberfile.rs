//! Atomic persistence of the membership-certificate log (E17).
//!
//! A governor's membership epochs must survive restart: the log of
//! quorum-certified join/leave/evict transitions is what lets a
//! recovered node re-derive the committee as it stood at any chain
//! serial and re-verify old checkpoint certs against the right quorum
//! size. The log is persisted with the same crash discipline as
//! [`crate::certfile`]: encode + trailing SHA-256 checksum into a temp
//! file, fsync, rename over the live name, fsync the directory. A torn
//! or tampered file fails its checksum and reads as an empty log —
//! safe, because certs are re-fetchable from peers and the chain.

use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use prb_consensus::membership::{MemberRole, MembershipAction, MembershipCert, MembershipRequest};
use prb_crypto::sha256::sha256;
use prb_ledger::codec::{self, DecodeError, Reader};

use crate::store::StoreError;

/// File name of the persisted membership log inside the store directory.
pub const MEMBER_FILE: &str = "membership.log";

fn encode_one(out: &mut Vec<u8>, cert: &MembershipCert) {
    let r = &cert.request;
    out.push(match r.role {
        MemberRole::Collector => 0,
        MemberRole::Governor => 1,
    });
    out.push(match r.action {
        MembershipAction::Join => 0,
        MembershipAction::Leave => 1,
        MembershipAction::Evict => 2,
    });
    out.extend_from_slice(&r.member.to_be_bytes());
    out.extend_from_slice(&r.bond.to_be_bytes());
    out.extend_from_slice(&r.effective_round.to_be_bytes());
    match &r.sig {
        Some(sig) => {
            out.push(1);
            codec::encode_sig(out, sig);
        }
        None => out.push(0),
    }
    out.extend_from_slice(&(cert.sigs.len() as u32).to_be_bytes());
    for (g, sig) in &cert.sigs {
        out.extend_from_slice(&g.to_be_bytes());
        codec::encode_sig(out, sig);
    }
}

fn decode_one(r: &mut Reader<'_>) -> Result<MembershipCert, DecodeError> {
    let role = match r.u8()? {
        0 => MemberRole::Collector,
        1 => MemberRole::Governor,
        _ => return Err(DecodeError::BadLength),
    };
    let action = match r.u8()? {
        0 => MembershipAction::Join,
        1 => MembershipAction::Leave,
        2 => MembershipAction::Evict,
        _ => return Err(DecodeError::BadLength),
    };
    let member = r.u32()?;
    let bond = r.u64()?;
    let effective_round = r.u64()?;
    let sig = match r.u8()? {
        0 => None,
        1 => Some(codec::decode_sig(r)?),
        _ => return Err(DecodeError::BadLength),
    };
    let n_sigs = r.u32()? as usize;
    if n_sigs > r.remaining() / 5 {
        return Err(DecodeError::BadLength);
    }
    let mut sigs = Vec::with_capacity(n_sigs);
    for _ in 0..n_sigs {
        let g = r.u32()?;
        sigs.push((g, codec::decode_sig(r)?));
    }
    Ok(MembershipCert {
        request: MembershipRequest {
            role,
            member,
            action,
            bond,
            effective_round,
            sig,
        },
        sigs,
    })
}

/// Canonical encoding of the full log (no trailing checksum).
pub fn encode_log(out: &mut Vec<u8>, certs: &[MembershipCert]) {
    out.extend_from_slice(&(certs.len() as u32).to_be_bytes());
    for c in certs {
        encode_one(out, c);
    }
}

/// Decodes a log encoded with [`encode_log`].
///
/// # Errors
///
/// Returns a [`DecodeError`] on truncation or malformed fields.
pub fn decode_log(r: &mut Reader<'_>) -> Result<Vec<MembershipCert>, DecodeError> {
    let n = r.u32()? as usize;
    if n > r.remaining() / 27 {
        return Err(DecodeError::BadLength);
    }
    let mut certs = Vec::with_capacity(n);
    for _ in 0..n {
        certs.push(decode_one(r)?);
    }
    Ok(certs)
}

/// Atomically persists the full membership log to `dir/membership.log`.
///
/// # Errors
///
/// Returns a [`StoreError`] on any I/O failure.
pub fn save(dir: &Path, certs: &[MembershipCert]) -> Result<(), StoreError> {
    let mut bytes = Vec::new();
    encode_log(&mut bytes, certs);
    let checksum = sha256(&bytes);
    bytes.extend_from_slice(checksum.as_bytes());
    let tmp: PathBuf = dir.join("membership.log.tmp");
    let live: PathBuf = dir.join(MEMBER_FILE);
    let mut file = OpenOptions::new()
        .write(true)
        .create(true)
        .truncate(true)
        .open(&tmp)?;
    file.write_all(&bytes)?;
    file.sync_data()?;
    drop(file);
    std::fs::rename(&tmp, &live)?;
    File::open(dir)?.sync_all()?;
    Ok(())
}

/// Loads the persisted membership log, if a valid one exists. Any torn,
/// truncated or tampered file is reported as an empty log — never an
/// error and never a panic.
pub fn load(dir: &Path) -> Vec<MembershipCert> {
    let Some(bytes) = read_raw(dir) else {
        return Vec::new();
    };
    if bytes.len() < 32 {
        return Vec::new();
    }
    let (body, checksum) = bytes.split_at(bytes.len() - 32);
    if sha256(body).as_bytes() != checksum {
        return Vec::new();
    }
    let mut r = Reader::new(body);
    match decode_log(&mut r) {
        Ok(certs) if r.remaining() == 0 => certs,
        _ => Vec::new(),
    }
}

fn read_raw(dir: &Path) -> Option<Vec<u8>> {
    let mut bytes = Vec::new();
    File::open(dir.join(MEMBER_FILE))
        .ok()?
        .read_to_end(&mut bytes)
        .ok()?;
    Some(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use prb_crypto::signer::CryptoScheme;

    fn sample() -> Vec<MembershipCert> {
        let scheme = CryptoScheme::sim();
        let subject = scheme.keypair_from_seed(b"memberfile-subject");
        let gov = scheme.keypair_from_seed(b"memberfile-g0");
        let join = MembershipRequest::create(
            MemberRole::Collector,
            3,
            MembershipAction::Join,
            2,
            7,
            &subject,
        );
        let evict = MembershipRequest::evict(MemberRole::Governor, 1, 9);
        [join, evict]
            .into_iter()
            .map(|request| {
                let digest = request.digest();
                let share = prb_consensus::membership::MembershipShare::create(digest, 0, &gov);
                MembershipCert {
                    request,
                    sigs: vec![(0, share.sig)],
                }
            })
            .collect()
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("prb-memberfile-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn roundtrips_through_disk() {
        let dir = tmpdir("roundtrip");
        let certs = sample();
        save(&dir, &certs).unwrap();
        assert_eq!(load(&dir), certs);
        // Overwrite with a longer log: the rename is atomic, reload sees
        // the new contents.
        let mut longer = certs.clone();
        longer.extend(certs.clone());
        save(&dir, &longer).unwrap();
        assert_eq!(load(&dir), longer);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_torn_or_tampered_files_read_as_empty() {
        let dir = tmpdir("torn");
        assert!(load(&dir).is_empty(), "missing file");
        let certs = sample();
        save(&dir, &certs).unwrap();
        // Truncate: checksum fails.
        let raw = read_raw(&dir).unwrap();
        std::fs::write(dir.join(MEMBER_FILE), &raw[..raw.len() - 7]).unwrap();
        assert!(load(&dir).is_empty(), "torn file");
        // Flip a byte: checksum fails.
        let mut flipped = raw.clone();
        flipped[4] ^= 0xff;
        std::fs::write(dir.join(MEMBER_FILE), &flipped).unwrap();
        assert!(load(&dir).is_empty(), "tampered file");
        // Restore: loads again.
        std::fs::write(dir.join(MEMBER_FILE), &raw).unwrap();
        assert_eq!(load(&dir), certs);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_log_roundtrips() {
        let dir = tmpdir("empty");
        save(&dir, &[]).unwrap();
        assert!(load(&dir).is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

//! The durable block store: an append-only segment log plus a
//! content-addressed index, with torn-write recovery.
//!
//! Recovery state machine (run by [`BlockStore::open`]):
//!
//! ```text
//!   load cert file (checksummed; torn => absent)
//!        |
//!   list segments, sorted by first serial
//!        |
//!   drop any segment whose header is torn or whose first serial does
//!   not continue the previous segment  ->  and every later segment
//!        |
//!   scan records: first bad checksum / short record marks the torn
//!   tail  ->  truncate file there, drop every later segment
//!        |
//!   replay payloads through Chain::append (re-verifies serials, hash
//!   chain, Merkle roots, b_limit)  ->  first failure truncates likewise
//!        |
//!   cert newer than the replayed chain?  ->  re-anchor at the cert
//!   (completes a reset-to-checkpoint that crashed mid-way)
//! ```
//!
//! The result is the longest durable prefix, byte-identical (via
//! [`Chain::export`]) to the in-memory chain at that height — the
//! property the E16 kill-at-any-byte matrix asserts offset by offset.

use std::fmt;
use std::path::{Path, PathBuf};

use prb_consensus::checkpoint::CheckpointCert;
use prb_crypto::fxhash::{fx_map, FxMap};
use prb_crypto::sha256::Digest;
use prb_ledger::block::Block;
use prb_ledger::chain::{Chain, ChainError};
use prb_ledger::codec::{self, Reader};
use prb_obs::ObsHandle;

use crate::certfile;
use crate::segment::{Segment, RECORD_HEADER_BYTES};

/// Errors from store operations.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying filesystem operation failed.
    Io(std::io::Error),
    /// A segment file's header is unreadable.
    BadSegment {
        /// The offending file.
        path: String,
    },
    /// Append out of order: the store only accepts the next serial.
    SerialGap {
        /// Serial the store expected.
        expected: u64,
        /// Serial the block carried.
        got: u64,
    },
    /// Pop on a store holding no blocks.
    EmptyPop,
    /// The appended block fails chain validation against the stored tail.
    Chain(ChainError),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store io: {e}"),
            StoreError::BadSegment { path } => write!(f, "unreadable segment {path}"),
            StoreError::SerialGap { expected, got } => {
                write!(f, "store expected serial {expected}, got {got}")
            }
            StoreError::EmptyPop => write!(f, "pop on an empty store"),
            StoreError::Chain(e) => write!(f, "stored chain violation: {e}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Chain(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<ChainError> for StoreError {
    fn from(e: ChainError) -> Self {
        StoreError::Chain(e)
    }
}

/// When the store fsyncs the active segment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// After every append — every acknowledged block is durable.
    Always,
    /// Only on segment roll and explicit [`BlockStore::sync`] — faster,
    /// but a crash can lose the blocks since the last sync (recovery
    /// still truncates to a consistent prefix).
    Manual,
}

/// Store configuration.
#[derive(Clone, Debug)]
pub struct StoreOptions {
    /// Chain tag the genesis block derives from.
    pub chain_tag: Vec<u8>,
    /// Per-block transaction bound of the mirrored chain.
    pub b_limit: usize,
    /// Roll to a new segment once the active one exceeds this many bytes.
    pub segment_bytes: u64,
    /// Fsync discipline.
    pub fsync: FsyncPolicy,
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions {
            chain_tag: b"prb-chain".to_vec(),
            b_limit: 4096,
            segment_bytes: 1 << 20,
            fsync: FsyncPolicy::Always,
        }
    }
}

/// What [`BlockStore::open`] recovered from disk.
#[derive(Debug)]
pub struct Recovered {
    /// The replayed chain: genesis-rooted, or anchored at the persisted
    /// checkpoint when the store was reset to one.
    pub chain: Chain,
    /// The persisted checkpoint certificate, if a valid one was found.
    pub cert: Option<CheckpointCert>,
    /// Torn-tail bytes truncated from the final surviving segment.
    pub truncated_bytes: u64,
    /// Whole segments dropped (torn headers or broken continuity).
    pub dropped_segments: usize,
}

/// Cumulative I/O counters, for benchmarks and the obs mirror.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Blocks appended this process lifetime.
    pub appends: u64,
    /// Payload bytes appended.
    pub append_bytes: u64,
    /// Blocks popped.
    pub pops: u64,
    /// fsync calls issued.
    pub fsyncs: u64,
    /// Segment rolls.
    pub rolls: u64,
}

/// The durable block store.
///
/// Mirrors a [`Chain`]: genesis is derived from the chain tag and never
/// stored; blocks `1..` (or `base..` after a checkpoint reset) live in
/// checksummed records across rolling segment files. A content-addressed
/// index maps block hashes to their records.
pub struct BlockStore {
    dir: PathBuf,
    opts: StoreOptions,
    /// Ordered by first serial; the last segment is the active one.
    segments: Vec<Segment>,
    /// Content address -> (segment index, record index).
    by_hash: FxMap<Digest, (usize, usize)>,
    /// Hash of block `base + i`, aligned with the stored records.
    hashes: Vec<Digest>,
    /// Serial of the first stored block.
    base: u64,
    next_serial: u64,
    stats: StoreStats,
    obs: ObsHandle,
}

impl fmt::Debug for BlockStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BlockStore")
            .field("dir", &self.dir)
            .field("segments", &self.segments.len())
            .field("base", &self.base)
            .field("next_serial", &self.next_serial)
            .finish()
    }
}

impl BlockStore {
    /// Opens (creating if necessary) the store in `dir`, running the
    /// torn-write recovery scan, and returns the store plus everything it
    /// recovered. Never panics on corrupt input: any unreadable tail is
    /// truncated to the last durable prefix.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] only for real filesystem failures
    /// (permissions, disk full) — corruption is recovered from, not
    /// reported as an error.
    pub fn open(dir: &Path, opts: StoreOptions) -> Result<(Self, Recovered), StoreError> {
        std::fs::create_dir_all(dir)?;
        let cert = certfile::load(dir);
        let mut names: Vec<PathBuf> = std::fs::read_dir(dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("seg-") && n.ends_with(".log"))
            })
            .collect();
        names.sort();

        let mut store = BlockStore {
            dir: dir.to_path_buf(),
            opts,
            segments: Vec::new(),
            by_hash: fx_map(),
            hashes: Vec::new(),
            base: 1,
            next_serial: 1,
            stats: StoreStats::default(),
            obs: prb_obs::Obs::off(),
        };
        let mut dropped = 0usize;
        let mut truncated = 0u64;

        // Pass 1: open segments in order, enforcing continuity; collect
        // verified payloads for replay.
        let mut scans: Vec<Vec<Vec<u8>>> = Vec::new();
        let mut expected_first: Option<u64> = None;
        let mut names = names.into_iter();
        for path in names.by_ref() {
            match Segment::open(path) {
                Ok((seg, scan)) => {
                    let continuous = match expected_first {
                        Some(next) => seg.first_serial() == next,
                        // The first segment determines the base; an
                        // anchored store needs its cert to vouch for it.
                        None => match (seg.first_serial(), &cert) {
                            (1, _) => true,
                            (first, Some(c)) => c.state.serial + 1 == first,
                            _ => false,
                        },
                    };
                    if !continuous {
                        dropped += 1;
                        let _ = seg.delete();
                        break;
                    }
                    expected_first = Some(seg.first_serial() + scan.payloads.len() as u64);
                    truncated += scan.truncated_bytes;
                    let short = scan.truncated_bytes > 0;
                    scans.push(scan.payloads);
                    store.segments.push(seg);
                    if short {
                        break; // a torn tail ends the durable prefix
                    }
                }
                Err(_) => {
                    dropped += 1;
                    break;
                }
            }
        }
        // Everything after the first break is beyond the durable prefix.
        for path in names {
            dropped += 1;
            let _ = std::fs::remove_file(path);
        }

        // Pass 2: replay payloads through the chain, which re-verifies
        // serials, the hash chain, Merkle roots and the size bound. The
        // first failure marks the end of the durable prefix.
        let mut chain = match store
            .segments
            .first()
            .map(|s| s.first_serial())
            .or(cert.as_ref().map(|c| c.state.serial + 1))
        {
            Some(first) if first > 1 => {
                let c = cert.as_ref().expect("anchored base requires a cert");
                Chain::from_checkpoint(c.state.serial, c.state.block_hash, store.opts.b_limit)
            }
            _ => Chain::new(&store.opts.chain_tag, store.opts.b_limit),
        };
        store.base = chain.next_serial();
        'replay: for (seg_idx, payloads) in scans.iter().enumerate() {
            for (rec_idx, payload) in payloads.iter().enumerate() {
                let mut r = Reader::new(payload);
                let ok = codec::decode_block(&mut r)
                    .ok()
                    .filter(|_| r.remaining() == 0)
                    .and_then(|block| {
                        let hash = block.hash();
                        chain.append(block).ok().map(|()| hash)
                    });
                match ok {
                    Some(hash) => {
                        store.by_hash.insert(hash, (seg_idx, rec_idx));
                        store.hashes.push(hash);
                    }
                    None => {
                        // Truncate the bad record and drop the rest.
                        truncated += store.truncate_from(seg_idx, rec_idx)?;
                        dropped += store.segments.len().saturating_sub(seg_idx + 1);
                        while store.segments.len() > seg_idx + 1 {
                            let seg = store.segments.pop().expect("length checked");
                            seg.delete()?;
                        }
                        break 'replay;
                    }
                }
            }
        }
        store.next_serial = chain.next_serial();

        // A cert strictly newer than the replayed chain means a
        // reset-to-checkpoint crashed between saving the cert and
        // rebuilding the segments: finish the job now.
        if let Some(c) = &cert {
            if c.state.serial > chain.height() {
                store.reset_to_checkpoint(c)?;
                chain =
                    Chain::from_checkpoint(c.state.serial, c.state.block_hash, store.opts.b_limit);
            }
        }

        // Make sure there is always an active segment to append into.
        if store.segments.is_empty() {
            store.roll(store.next_serial)?;
        }
        store.sync_dir()?;
        Ok((
            store,
            Recovered {
                chain,
                cert,
                truncated_bytes: truncated,
                dropped_segments: dropped,
            },
        ))
    }

    /// Routes the store's counters to an observability sink.
    pub fn set_obs(&mut self, obs: ObsHandle) {
        self.obs = obs;
    }

    /// Serial the next appended block must carry.
    pub fn next_serial(&self) -> u64 {
        self.next_serial
    }

    /// Serial of the first stored block.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Number of blocks currently stored.
    pub fn blocks(&self) -> u64 {
        self.next_serial - self.base
    }

    /// Number of live segment files.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Cumulative I/O counters.
    pub fn stats(&self) -> StoreStats {
        self.stats
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn segment_path(&self, first_serial: u64) -> PathBuf {
        self.dir.join(format!("seg-{first_serial:016x}.log"))
    }

    fn sync_dir(&self) -> Result<(), StoreError> {
        std::fs::File::open(&self.dir)?.sync_all()?;
        Ok(())
    }

    /// Starts a fresh active segment for `first_serial`.
    fn roll(&mut self, first_serial: u64) -> Result<(), StoreError> {
        if let Some(active) = self.segments.last_mut() {
            active.sync()?;
            self.stats.fsyncs += 1;
        }
        let seg = Segment::create(self.segment_path(first_serial), first_serial)?;
        self.segments.push(seg);
        self.sync_dir()?;
        self.stats.rolls += 1;
        self.stats.fsyncs += 1;
        self.obs.metrics().inc("store.roll");
        Ok(())
    }

    /// Truncates segment `seg_idx` so records `rec_idx..` are gone,
    /// returning the number of bytes removed.
    fn truncate_from(&mut self, seg_idx: usize, rec_idx: usize) -> Result<u64, StoreError> {
        let seg = &mut self.segments[seg_idx];
        let before = seg.len();
        while seg.records() > rec_idx {
            seg.pop()?;
        }
        seg.sync()?;
        Ok(before - seg.len())
    }

    /// Appends a block to the durable log. The block must already have
    /// passed chain validation (the store trusts its caller on semantic
    /// validity but still enforces serial continuity).
    ///
    /// # Errors
    ///
    /// [`StoreError::SerialGap`] for out-of-order appends, or an I/O
    /// error.
    pub fn append(&mut self, block: &Block) -> Result<(), StoreError> {
        if block.serial != self.next_serial {
            return Err(StoreError::SerialGap {
                expected: self.next_serial,
                got: block.serial,
            });
        }
        let mut payload = Vec::new();
        codec::encode_block(&mut payload, block);
        let active = self.segments.last().expect("open leaves an active segment");
        let record_len = RECORD_HEADER_BYTES + payload.len() as u64;
        if !active.is_empty() && active.len() + record_len > self.opts.segment_bytes {
            self.roll(block.serial)?;
        }
        let seg_idx = self.segments.len() - 1;
        let active = &mut self.segments[seg_idx];
        let rec_idx = active.records();
        active.append(&payload)?;
        if self.opts.fsync == FsyncPolicy::Always {
            active.sync()?;
            self.stats.fsyncs += 1;
            self.obs.metrics().inc("store.fsync");
        }
        let hash = block.hash();
        self.by_hash.insert(hash, (seg_idx, rec_idx));
        self.hashes.push(hash);
        self.next_serial += 1;
        self.stats.appends += 1;
        self.stats.append_bytes += payload.len() as u64;
        self.obs.metrics().inc("store.append");
        self.obs
            .metrics()
            .add("store.append_bytes", payload.len() as u64);
        Ok(())
    }

    /// Removes the last stored block (mirroring [`Chain::pop`]).
    ///
    /// # Errors
    ///
    /// [`StoreError::EmptyPop`] when nothing is stored.
    pub fn pop(&mut self) -> Result<(), StoreError> {
        if self.next_serial == self.base {
            return Err(StoreError::EmptyPop);
        }
        // An empty active segment means the popped record lives in the
        // previous one: drop the empty file first.
        if self.segments.last().expect("non-empty store").is_empty() {
            let seg = self.segments.pop().expect("non-empty store");
            seg.delete()?;
            self.sync_dir()?;
        }
        let active = self.segments.last_mut().expect("non-empty store");
        active.pop()?;
        if self.opts.fsync == FsyncPolicy::Always {
            active.sync()?;
            self.stats.fsyncs += 1;
        }
        let hash = self.hashes.pop().expect("aligned with blocks");
        self.by_hash.remove(&hash);
        self.next_serial -= 1;
        self.stats.pops += 1;
        self.obs.metrics().inc("store.pop");
        Ok(())
    }

    /// Flushes and fsyncs the active segment (a no-op under
    /// [`FsyncPolicy::Always`], where every append already synced).
    pub fn sync(&mut self) -> Result<(), StoreError> {
        if let Some(active) = self.segments.last_mut() {
            active.sync()?;
            self.stats.fsyncs += 1;
        }
        Ok(())
    }

    /// Reads back the block with `serial`, re-verifying its record
    /// checksum and decoding it.
    ///
    /// # Errors
    ///
    /// I/O errors, or [`StoreError::BadSegment`] if the record was
    /// modified on disk since written.
    pub fn read(&mut self, serial: u64) -> Result<Option<Block>, StoreError> {
        if serial < self.base || serial >= self.next_serial {
            return Ok(None);
        }
        let seg_idx = self
            .segments
            .partition_point(|s| s.first_serial() <= serial)
            - 1;
        let seg = &mut self.segments[seg_idx];
        let payload = seg.read((serial - seg.first_serial()) as usize)?;
        let mut r = Reader::new(&payload);
        let block = codec::decode_block(&mut r).map_err(|_| StoreError::BadSegment {
            path: seg.path().display().to_string(),
        })?;
        Ok(Some(block))
    }

    /// Content-addressed lookup: the block whose hash is `digest`.
    ///
    /// # Errors
    ///
    /// Same as [`read`](Self::read).
    pub fn read_by_hash(&mut self, digest: &Digest) -> Result<Option<Block>, StoreError> {
        let Some(&(_, _)) = self.by_hash.get(digest) else {
            return Ok(None);
        };
        // Resolve through the serial index so pops cannot leave stale
        // segment coordinates behind.
        let serial = self
            .hashes
            .iter()
            .position(|h| h == digest)
            .map(|i| self.base + i as u64)
            .expect("by_hash and hashes stay aligned");
        self.read(serial)
    }

    /// Persists `cert` as the store's checkpoint certificate (atomic:
    /// temp file + rename + fsync).
    ///
    /// # Errors
    ///
    /// I/O errors only.
    pub fn save_cert(&mut self, cert: &CheckpointCert) -> Result<(), StoreError> {
        certfile::save(&self.dir, cert)?;
        self.stats.fsyncs += 2;
        self.obs.metrics().inc("store.cert_saved");
        Ok(())
    }

    /// Persists the full membership-certificate log (atomic: temp file +
    /// rename + fsync), so committee epochs survive restart.
    ///
    /// # Errors
    ///
    /// I/O errors only.
    pub fn save_members(
        &mut self,
        certs: &[prb_consensus::membership::MembershipCert],
    ) -> Result<(), StoreError> {
        crate::memberfile::save(&self.dir, certs)?;
        self.stats.fsyncs += 2;
        self.obs.metrics().inc("store.members_saved");
        Ok(())
    }

    /// Loads the persisted membership log (empty when absent or torn).
    pub fn load_members(&self) -> Vec<prb_consensus::membership::MembershipCert> {
        crate::memberfile::load(&self.dir)
    }

    /// Re-anchors the store at a verified checkpoint: persists the cert,
    /// deletes every segment, and starts a fresh one at
    /// `cert.serial + 1`. Crash-safe in every interleaving: the cert is
    /// durable before any segment is removed, and recovery finishes an
    /// interrupted reset (see [`open`](Self::open)).
    ///
    /// # Errors
    ///
    /// I/O errors only.
    pub fn reset_to_checkpoint(&mut self, cert: &CheckpointCert) -> Result<(), StoreError> {
        certfile::save(&self.dir, cert)?;
        for seg in self.segments.drain(..) {
            seg.delete()?;
        }
        self.by_hash = fx_map();
        self.hashes.clear();
        self.base = cert.state.serial + 1;
        self.next_serial = self.base;
        self.roll(self.base)?;
        self.sync_dir()?;
        self.obs.metrics().inc("store.reset");
        Ok(())
    }
}

//! # prb-store
//!
//! Durable, crash-safe persistence for the `prb` permissioned blockchain
//! (reproduction of *"An Efficient Permissioned Blockchain with Provable
//! Reputation Mechanism"*, ICDCS 2021):
//!
//! - [`segment`] — append-only segment files of length-prefixed,
//!   SHA-256-checksummed block records,
//! - [`store`] — the [`BlockStore`]: rolling segments, a
//!   content-addressed index, explicit fsync discipline and torn-write
//!   recovery that reopens to the longest durable prefix — byte-identical
//!   (via `Chain::export`) to the in-memory chain at that height,
//! - [`certfile`] — atomic persistence of the latest quorum-signed
//!   checkpoint certificate, enabling O(delta) restarts: a long-crashed
//!   governor re-anchors at the checkpoint instead of replaying from
//!   genesis,
//! - [`memberfile`] — atomic persistence of the membership-certificate
//!   log, so committee epochs (join/leave/evict history) survive
//!   restart and old checkpoint certs verify against the right quorum
//!   size (E17).
//!
//! The crate is std-only (no external dependencies) like the rest of the
//! workspace, and deliberately knows nothing about the network: the
//! governor mirrors its chain mutations in, and recovery hands back a
//! replayed [`prb_ledger::chain::Chain`].
//!
//! # Quickstart
//!
//! ```no_run
//! use prb_store::{BlockStore, StoreOptions};
//!
//! let dir = std::path::Path::new("/tmp/prb-store-demo");
//! let (mut store, recovered) = BlockStore::open(dir, StoreOptions::default()).unwrap();
//! assert_eq!(recovered.chain.height(), store.next_serial() - 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod certfile;
pub mod memberfile;
pub mod segment;
pub mod store;

pub use store::{BlockStore, FsyncPolicy, Recovered, StoreError, StoreOptions, StoreStats};

//! Offline analysis of `--trace-out` JSONL traces: per-transaction
//! lifecycle timelines, stage/end-to-end latency percentiles, phase
//! attribution, and the machine-readable `BENCH_latency.json` artifact.
//!
//! The input is the flat JSONL the [`prb_obs::JsonlRecorder`] writes —
//! one object per line, string/u64/f64/bool/null values, no nesting —
//! so the parser here is a small hand-rolled scanner rather than a JSON
//! library. Every number the analyzer derives comes from *sim time* and
//! *rounds*, never wall clock, which is what makes the artifact
//! byte-identical across same-seed runs.
//!
//! A transaction's timeline is assembled first-wins per stage across
//! every replica's events (the replication factor means most stages fire
//! on several governors; the earliest occurrence is the one that defines
//! progress). Terminal state resolves as **committed wins over
//! dropped**: a censored or concealed copy can still commit through an
//! honest path, and the drop event merely records the detour.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use prb_obs::lifecycle::Stage;
use prb_obs::{Event, EventKind, Role};

/// One parsed scalar from a trace line.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// An unsigned integer (the common case: times, ids, counts).
    U64(u64),
    /// A float (sim configs may log rates).
    F64(f64),
    /// A boolean (`checked`, `valid`, …).
    Bool(bool),
    /// A string (kinds, roles, reasons).
    Str(String),
    /// JSON `null`.
    Null,
}

impl Value {
    /// The value as a `u64`, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// One trace line, decoded.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// Sim time (`"t"`).
    pub time: u64,
    /// Emitting node's network index (`"node"`).
    pub node: u64,
    /// Protocol round at emission (`"round"`).
    pub round: u64,
    /// Role string (`"governor"`, …).
    pub role: String,
    /// Dotted kind name (`"tx.committed"`, …).
    pub kind: String,
    /// Every other field on the line.
    pub fields: BTreeMap<String, Value>,
}

impl TraceEvent {
    /// The trace id, when this is a lifecycle event.
    pub fn trace(&self) -> Option<u64> {
        self.fields.get("trace").and_then(Value::as_u64)
    }
}

/// Parses one flat JSON object line.
///
/// # Errors
///
/// Returns a description of the first malformed construct.
pub fn parse_line(line: &str) -> Result<TraceEvent, String> {
    let mut fields = parse_flat_object(line)?;
    let take_u64 = |fields: &mut BTreeMap<String, Value>, key: &str| -> Result<u64, String> {
        fields
            .remove(key)
            .and_then(|v| v.as_u64())
            .ok_or_else(|| format!("missing or non-integer field \"{key}\""))
    };
    let time = take_u64(&mut fields, "t")?;
    // The simulation driver writes `"node":null` (see
    // `prb_obs::EXTERNAL_NODE`); map it back to the sentinel.
    let node = match fields.remove("node") {
        Some(Value::U64(n)) => n,
        Some(Value::Null) => prb_obs::EXTERNAL_NODE,
        _ => return Err("missing or non-integer field \"node\"".into()),
    };
    let round = take_u64(&mut fields, "round")?;
    let role = match fields.remove("role") {
        Some(Value::Str(s)) => s,
        _ => return Err("missing field \"role\"".into()),
    };
    let kind = match fields.remove("kind") {
        Some(Value::Str(s)) => s,
        _ => return Err("missing field \"kind\"".into()),
    };
    Ok(TraceEvent {
        time,
        node,
        round,
        role,
        kind,
        fields,
    })
}

/// Parses a whole trace (one event per non-empty line).
///
/// # Errors
///
/// Returns `(line number, description)` for the first bad line.
pub fn parse_trace(text: &str) -> Result<Vec<TraceEvent>, (usize, String)> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        out.push(parse_line(line).map_err(|e| (i + 1, e))?);
    }
    Ok(out)
}

fn parse_flat_object(line: &str) -> Result<BTreeMap<String, Value>, String> {
    let mut fields = BTreeMap::new();
    let bytes = line.as_bytes();
    let mut i = 0usize;
    let skip_ws = |bytes: &[u8], mut i: usize| {
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        i
    };
    i = skip_ws(bytes, i);
    if i >= bytes.len() || bytes[i] != b'{' {
        return Err("expected '{'".into());
    }
    i += 1;
    loop {
        i = skip_ws(bytes, i);
        if i < bytes.len() && bytes[i] == b'}' {
            i += 1;
            break;
        }
        let (key, next) = parse_string(line, i)?;
        i = skip_ws(bytes, next);
        if i >= bytes.len() || bytes[i] != b':' {
            return Err(format!("expected ':' after key \"{key}\""));
        }
        i = skip_ws(bytes, i + 1);
        let (value, next) = parse_value(line, i)?;
        fields.insert(key, value);
        i = skip_ws(bytes, next);
        match bytes.get(i) {
            Some(b',') => i += 1,
            Some(b'}') => {
                i += 1;
                break;
            }
            _ => return Err("expected ',' or '}'".into()),
        }
    }
    if skip_ws(bytes, i) != line.len() {
        return Err("trailing garbage after object".into());
    }
    Ok(fields)
}

fn parse_string(line: &str, start: usize) -> Result<(String, usize), String> {
    let bytes = line.as_bytes();
    if bytes.get(start) != Some(&b'"') {
        return Err("expected '\"'".into());
    }
    let mut out = String::new();
    let mut i = start + 1;
    while i < bytes.len() {
        match bytes[i] {
            b'"' => return Ok((out, i + 1)),
            b'\\' => {
                let esc = bytes.get(i + 1).ok_or("dangling escape")?;
                out.push(match esc {
                    b'"' => '"',
                    b'\\' => '\\',
                    b'/' => '/',
                    b'n' => '\n',
                    b't' => '\t',
                    b'r' => '\r',
                    _ => return Err(format!("unsupported escape \\{}", *esc as char)),
                });
                i += 2;
            }
            _ => {
                // Multi-byte UTF-8 passes through byte-exact.
                let ch_len = line[i..].chars().next().map_or(1, char::len_utf8);
                out.push_str(&line[i..i + ch_len]);
                i += ch_len;
            }
        }
    }
    Err("unterminated string".into())
}

fn parse_value(line: &str, start: usize) -> Result<(Value, usize), String> {
    let bytes = line.as_bytes();
    match bytes.get(start) {
        Some(b'"') => {
            let (s, next) = parse_string(line, start)?;
            Ok((Value::Str(s), next))
        }
        Some(b't') if line[start..].starts_with("true") => Ok((Value::Bool(true), start + 4)),
        Some(b'f') if line[start..].starts_with("false") => Ok((Value::Bool(false), start + 5)),
        Some(b'n') if line[start..].starts_with("null") => Ok((Value::Null, start + 4)),
        Some(c) if c.is_ascii_digit() || *c == b'-' => {
            let mut end = start + 1;
            while end < bytes.len()
                && (bytes[end].is_ascii_digit()
                    || matches!(bytes[end], b'.' | b'e' | b'E' | b'+' | b'-'))
            {
                end += 1;
            }
            let text = &line[start..end];
            if let Ok(n) = text.parse::<u64>() {
                Ok((Value::U64(n), end))
            } else if let Ok(f) = text.parse::<f64>() {
                Ok((Value::F64(f), end))
            } else {
                Err(format!("bad number {text}"))
            }
        }
        _ => Err("unsupported value".into()),
    }
}

/// A transaction's assembled lifecycle: first occurrence (sim time,
/// round) per stage across all replicas.
#[derive(Clone, Debug, Default)]
pub struct TxTimeline {
    /// The trace id.
    pub trace: u64,
    /// `tx.submitted`.
    pub submitted: Option<(u64, u64)>,
    /// `tx.admitted`.
    pub admitted: Option<(u64, u64)>,
    /// `gov.screened`.
    pub screened: Option<(u64, u64)>,
    /// `tx.validated`.
    pub validated: Option<(u64, u64)>,
    /// `tx.proposed`.
    pub proposed: Option<(u64, u64)>,
    /// `tx.committed`.
    pub committed: Option<(u64, u64)>,
    /// First `tx.dropped` (time, reason).
    pub dropped: Option<(u64, String)>,
}

impl TxTimeline {
    /// Terminal state with committed winning over dropped.
    pub fn terminal(&self) -> &'static str {
        if self.committed.is_some() {
            "committed"
        } else if self.dropped.is_some() {
            "dropped"
        } else if self.submitted.is_some() {
            "open"
        } else {
            "orphan"
        }
    }
}

/// Percentile summary of one latency population (exact, from the sorted
/// samples — the offline analyzer has no reason to bucket).
#[derive(Clone, Debug, Default)]
pub struct LatencyStats {
    /// Sample count.
    pub count: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median.
    pub p50: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
    /// Largest sample.
    pub max: u64,
}

impl LatencyStats {
    /// Computes the summary from raw samples.
    pub fn from_samples(mut samples: Vec<u64>) -> LatencyStats {
        if samples.is_empty() {
            return LatencyStats::default();
        }
        samples.sort_unstable();
        let count = samples.len() as u64;
        let mean = samples.iter().map(|&s| s as f64).sum::<f64>() / count as f64;
        let pick = |q: f64| {
            let idx = ((q * count as f64).ceil() as usize).clamp(1, samples.len()) - 1;
            samples[idx]
        };
        LatencyStats {
            count,
            mean,
            p50: pick(0.50),
            p99: pick(0.99),
            p999: pick(0.999),
            max: *samples.last().expect("non-empty"),
        }
    }
}

/// Everything the analyzer derives from one trace.
#[derive(Clone, Debug, Default)]
pub struct TraceReport {
    /// Per-transaction timelines, keyed by trace id.
    pub timelines: BTreeMap<u64, TxTimeline>,
    /// Terminal-state counts: submitted / committed / dropped / open /
    /// orphan.
    pub submitted: u64,
    /// Transactions whose timeline reached `tx.committed`.
    pub committed: u64,
    /// Terminal drops (never committed anywhere).
    pub dropped: u64,
    /// Submitted but neither committed nor dropped.
    pub open: u64,
    /// Lifecycle events whose trace never saw a submission.
    pub orphans: u64,
    /// Drop-reason counts over terminal drops.
    pub drop_reasons: BTreeMap<String, u64>,
    /// Per-stage and end-to-end latency in sim ticks, keyed by stage
    /// name (`submit_to_admit`, …, `submit_to_commit`).
    pub stages_ticks: BTreeMap<&'static str, LatencyStats>,
    /// End-to-end commit latency in rounds.
    pub commit_rounds: LatencyStats,
    /// Phase attribution from `phase.end`: name → (count, total ticks).
    pub phases: BTreeMap<String, (u64, u64)>,
    /// Total lifecycle events seen (for coverage statements).
    pub lifecycle_events: u64,
}

/// Builds the report from a parsed trace.
pub fn analyze(events: &[TraceEvent]) -> TraceReport {
    let mut report = TraceReport::default();
    for e in events {
        if e.kind == "phase.end" {
            if let (Some(name), Some(ticks)) = (
                e.fields.get("phase").and_then(Value::as_str),
                e.fields.get("ticks").and_then(Value::as_u64),
            ) {
                let slot = report.phases.entry(name.to_owned()).or_insert((0, 0));
                slot.0 += 1;
                slot.1 += ticks;
            }
            continue;
        }
        let Some(stage) = Stage::from_kind_name(&e.kind) else {
            continue;
        };
        let Some(trace) = e.trace() else { continue };
        report.lifecycle_events += 1;
        let tl = report.timelines.entry(trace).or_insert_with(|| TxTimeline {
            trace,
            ..TxTimeline::default()
        });
        let at = (e.time, e.round);
        let slot = match stage {
            Stage::Submitted => &mut tl.submitted,
            Stage::Admitted => &mut tl.admitted,
            Stage::Screened => &mut tl.screened,
            Stage::Validated => &mut tl.validated,
            Stage::Proposed => &mut tl.proposed,
            Stage::Committed => &mut tl.committed,
            Stage::Dropped => {
                if tl.dropped.is_none() {
                    let reason = e
                        .fields
                        .get("reason")
                        .and_then(Value::as_str)
                        .unwrap_or("unknown")
                        .to_owned();
                    tl.dropped = Some((e.time, reason));
                }
                continue;
            }
        };
        if slot.is_none() {
            *slot = Some(at);
        }
    }
    let mut submit_admit = Vec::new();
    let mut admit_screen = Vec::new();
    let mut screen_propose = Vec::new();
    let mut propose_commit = Vec::new();
    let mut submit_commit = Vec::new();
    let mut commit_rounds = Vec::new();
    for tl in report.timelines.values() {
        match tl.terminal() {
            "committed" => report.committed += 1,
            "dropped" => {
                report.dropped += 1;
                let reason = tl.dropped.as_ref().expect("terminal is dropped").1.clone();
                *report.drop_reasons.entry(reason).or_insert(0) += 1;
            }
            "open" => report.open += 1,
            _ => report.orphans += 1,
        }
        if tl.submitted.is_some() {
            report.submitted += 1;
        }
        let (Some(sub), Some(com)) = (tl.submitted, tl.committed) else {
            continue;
        };
        submit_commit.push(com.0.saturating_sub(sub.0));
        commit_rounds.push(com.1.saturating_sub(sub.1));
        if let Some(adm) = tl.admitted {
            submit_admit.push(adm.0.saturating_sub(sub.0));
            if let Some(scr) = tl.screened {
                admit_screen.push(scr.0.saturating_sub(adm.0));
            }
        }
        if let (Some(scr), Some(prop)) = (tl.screened, tl.proposed) {
            screen_propose.push(prop.0.saturating_sub(scr.0));
            propose_commit.push(com.0.saturating_sub(prop.0));
        }
    }
    report
        .stages_ticks
        .insert("submit_to_admit", LatencyStats::from_samples(submit_admit));
    report
        .stages_ticks
        .insert("admit_to_screen", LatencyStats::from_samples(admit_screen));
    report.stages_ticks.insert(
        "screen_to_propose",
        LatencyStats::from_samples(screen_propose),
    );
    report.stages_ticks.insert(
        "propose_to_commit",
        LatencyStats::from_samples(propose_commit),
    );
    report.stages_ticks.insert(
        "submit_to_commit",
        LatencyStats::from_samples(submit_commit),
    );
    report.commit_rounds = LatencyStats::from_samples(commit_rounds);
    report
}

/// Reconstructs typed lifecycle events so the shared state machine in
/// [`prb_obs::lifecycle`] can validate a replayed trace. Non-lifecycle
/// lines are skipped; unknown drop reasons map to `"other"`.
pub fn lifecycle_events(events: &[TraceEvent]) -> Vec<Event> {
    let u = |e: &TraceEvent, key: &str| e.fields.get(key).and_then(Value::as_u64).unwrap_or(0);
    let b = |e: &TraceEvent, key: &str| e.fields.get(key).and_then(Value::as_bool).unwrap_or(false);
    events
        .iter()
        .filter_map(|e| {
            let trace = e.trace()?;
            let kind = match e.kind.as_str() {
                "tx.submitted" => EventKind::TxSubmitted {
                    trace,
                    provider: u(e, "provider"),
                },
                "tx.admitted" => EventKind::TxAdmitted { trace },
                "gov.screened" => EventKind::TxScreened {
                    trace,
                    drawn: u(e, "drawn"),
                    checked: b(e, "checked"),
                    label_valid: b(e, "label_valid"),
                },
                "tx.validated" => EventKind::TxValidated {
                    trace,
                    valid: b(e, "valid"),
                },
                "tx.proposed" => EventKind::TxProposed {
                    trace,
                    serial: u(e, "serial"),
                },
                "tx.committed" => EventKind::TxCommitted {
                    trace,
                    serial: u(e, "serial"),
                },
                "tx.dropped" => EventKind::TxDropped {
                    trace,
                    reason: match e.fields.get("reason").and_then(Value::as_str) {
                        Some("concealed") => "concealed",
                        Some("forged") => "forged",
                        Some("invalid") => "invalid",
                        Some("censored") => "censored",
                        _ => "other",
                    },
                },
                _ => return None,
            };
            Some(Event {
                time: e.time,
                node: e.node,
                round: e.round,
                role: match e.role.as_str() {
                    "provider" => Role::Provider,
                    "collector" => Role::Collector,
                    "governor" => Role::Governor,
                    "replica" => Role::Replica,
                    _ => Role::External,
                },
                kind,
            })
        })
        .collect()
}

fn stats_line(out: &mut String, name: &str, s: &LatencyStats) {
    let _ = writeln!(
        out,
        "{name:<20} {:>8} {:>10.1} {:>8} {:>8} {:>8} {:>8}",
        s.count, s.mean, s.p50, s.p99, s.p999, s.max
    );
}

/// Renders the human report: coverage, latency tables, phase and
/// critical-path attribution.
pub fn render_report(report: &TraceReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "## lifecycle coverage");
    let _ = writeln!(
        out,
        "txs submitted {}  committed {}  dropped {}  open {}  orphans {}  (lifecycle events {})",
        report.submitted,
        report.committed,
        report.dropped,
        report.open,
        report.orphans,
        report.lifecycle_events
    );
    if !report.drop_reasons.is_empty() {
        let reasons: Vec<String> = report
            .drop_reasons
            .iter()
            .map(|(r, n)| format!("{r}={n}"))
            .collect();
        let _ = writeln!(out, "drop reasons: {}", reasons.join("  "));
    }
    let _ = writeln!(out, "\n## latency (sim ticks)");
    let _ = writeln!(
        out,
        "{:<20} {:>8} {:>10} {:>8} {:>8} {:>8} {:>8}",
        "stage", "count", "mean", "p50", "p99", "p999", "max"
    );
    for (name, s) in &report.stages_ticks {
        stats_line(&mut out, name, s);
    }
    stats_line(&mut out, "commit_rounds", &report.commit_rounds);
    let _ = writeln!(out, "(commit_rounds row is in rounds, not ticks)");
    if !report.phases.is_empty() {
        let _ = writeln!(out, "\n## phase attribution (sim ticks)");
        let total: u64 = report.phases.values().map(|(_, t)| t).sum();
        for (name, (count, ticks)) in &report.phases {
            let pct = if total > 0 {
                100.0 * *ticks as f64 / total as f64
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "{name:<12} spans {count:>6}  total {ticks:>10}  {pct:>5.1}%"
            );
        }
    }
    // Critical path: the mean stage deltas of a committed tx, in order.
    let path = [
        "submit_to_admit",
        "admit_to_screen",
        "screen_to_propose",
        "propose_to_commit",
    ];
    if report.committed > 0 {
        let _ = writeln!(out, "\n## critical path of a committed tx (mean ticks)");
        for name in path {
            if let Some(s) = report.stages_ticks.get(name) {
                if s.count > 0 {
                    let _ = writeln!(out, "{name:<20} {:>10.1}", s.mean);
                }
            }
        }
        if let Some(e2e) = report.stages_ticks.get("submit_to_commit") {
            let _ = writeln!(out, "{:<20} {:>10.1}", "end_to_end", e2e.mean);
        }
    }
    out
}

fn json_stats(out: &mut String, s: &LatencyStats) {
    let _ = write!(
        out,
        "{{\"count\":{},\"mean\":{:.3},\"p50\":{},\"p99\":{},\"p999\":{},\"max\":{}}}",
        s.count, s.mean, s.p50, s.p99, s.p999, s.max
    );
}

/// Renders `BENCH_latency.json`: hand-written, key-sorted, fixed float
/// formatting — byte-identical for identical traces.
pub fn to_json(report: &TraceReport) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"experiment\": \"latency\",\n");
    let _ = writeln!(
        out,
        "  \"txs\": {{\"submitted\":{},\"committed\":{},\"dropped\":{},\"open\":{},\"orphans\":{}}},",
        report.submitted, report.committed, report.dropped, report.open, report.orphans
    );
    out.push_str("  \"drop_reasons\": {");
    for (i, (reason, n)) in report.drop_reasons.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{reason}\":{n}");
    }
    out.push_str("},\n  \"stages_ticks\": {");
    for (i, (name, s)) in report.stages_ticks.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\n    \"{name}\": ");
        json_stats(&mut out, s);
    }
    out.push_str("\n  },\n  \"commit_rounds\": ");
    json_stats(&mut out, &report.commit_rounds);
    out.push_str(",\n  \"phases_ticks\": {");
    for (i, (name, (count, ticks))) in report.phases.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    \"{name}\": {{\"spans\":{count},\"total\":{ticks}}}"
        );
    }
    out.push_str("\n  }\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
{"t":1,"node":0,"role":"provider","round":1,"kind":"tx.submitted","trace":7,"provider":0}
{"t":5,"node":20,"role":"governor","round":1,"kind":"tx.admitted","trace":7}
{"t":9,"node":20,"role":"governor","round":1,"kind":"gov.screened","trace":7,"drawn":3,"checked":true,"label_valid":true}
{"t":9,"node":20,"role":"governor","round":1,"kind":"tx.validated","trace":7,"valid":true}
{"t":12,"node":20,"role":"governor","round":1,"kind":"tx.proposed","trace":7,"serial":1}
{"t":15,"node":20,"role":"governor","round":2,"kind":"tx.committed","trace":7,"serial":1}
{"t":16,"node":21,"role":"governor","round":2,"kind":"tx.committed","trace":7,"serial":1}
{"t":2,"node":8,"role":"collector","round":1,"kind":"tx.submitted","trace":8,"provider":1}
{"t":6,"node":9,"role":"collector","round":1,"kind":"tx.dropped","trace":8,"reason":"concealed"}
{"t":20,"node":20,"role":"governor","round":2,"kind":"phase.end","phase":"screening","ticks":4}
{"t":22,"node":20,"role":"governor","round":2,"kind":"phase.end","phase":"commit","ticks":6}
"#;

    #[test]
    fn parses_and_analyzes_the_sample() {
        let events = parse_trace(SAMPLE).expect("sample parses");
        assert_eq!(events.len(), 11);
        let report = analyze(&events);
        assert_eq!(report.submitted, 2);
        assert_eq!(report.committed, 1);
        assert_eq!(report.dropped, 1);
        assert_eq!(report.open, 0);
        assert_eq!(report.drop_reasons.get("concealed"), Some(&1));
        let e2e = &report.stages_ticks["submit_to_commit"];
        assert_eq!((e2e.count, e2e.p50, e2e.max), (1, 14, 14));
        assert_eq!(report.commit_rounds.p50, 1);
        assert_eq!(report.phases["screening"], (1, 4));
    }

    #[test]
    fn first_wins_across_replicas() {
        let events = parse_trace(SAMPLE).expect("sample parses");
        let report = analyze(&events);
        // Two governors committed trace 7; the timeline keeps the first.
        assert_eq!(report.timelines[&7].committed, Some((15, 2)));
    }

    #[test]
    fn committed_wins_over_dropped() {
        let text = r#"
{"t":1,"node":0,"role":"provider","round":1,"kind":"tx.submitted","trace":5,"provider":0}
{"t":3,"node":9,"role":"governor","round":1,"kind":"tx.dropped","trace":5,"reason":"censored"}
{"t":8,"node":10,"role":"governor","round":1,"kind":"tx.committed","trace":5,"serial":1}
"#;
        let report = analyze(&parse_trace(text).expect("parses"));
        assert_eq!(report.committed, 1);
        assert_eq!(report.dropped, 0);
        assert!(report.drop_reasons.is_empty());
    }

    #[test]
    fn orphan_events_are_counted_not_crashed() {
        let text =
            r#"{"t":5,"node":9,"role":"governor","round":1,"kind":"tx.admitted","trace":99}"#;
        let report = analyze(&parse_trace(text).expect("parses"));
        assert_eq!(report.orphans, 1);
        assert_eq!(report.submitted, 0);
    }

    #[test]
    fn replayed_stream_passes_the_shared_validator() {
        let events = parse_trace(SAMPLE).expect("sample parses");
        let typed = lifecycle_events(&events);
        assert_eq!(typed.len(), 9); // phase.end lines are not lifecycle
        prb_obs::lifecycle::validate(&typed, prb_obs::lifecycle::Checks::default())
            .expect("sample stream is legal");
    }

    #[test]
    fn json_artifact_is_stable_and_wellformed_enough() {
        let events = parse_trace(SAMPLE).expect("sample parses");
        let report = analyze(&events);
        let a = to_json(&report);
        let b = to_json(&analyze(&parse_trace(SAMPLE).expect("parses")));
        assert_eq!(a, b, "same trace, same bytes");
        assert!(a.contains("\"submit_to_commit\""));
        assert!(a.ends_with("}\n"));
        assert_eq!(a.matches('{').count(), a.matches('}').count());
    }

    #[test]
    fn latency_stats_edge_cases() {
        let empty = LatencyStats::from_samples(vec![]);
        assert_eq!(
            (empty.count, empty.p50, empty.p999, empty.max),
            (0, 0, 0, 0)
        );
        let one = LatencyStats::from_samples(vec![42]);
        assert_eq!(
            (one.count, one.p50, one.p99, one.p999, one.max),
            (1, 42, 42, 42, 42)
        );
        let run = LatencyStats::from_samples((1..=1000).collect());
        assert_eq!(run.p50, 500);
        assert_eq!(run.p99, 990);
        assert_eq!(run.p999, 999);
        assert_eq!(run.max, 1000);
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse_line("not json").is_err());
        assert!(parse_line("{\"t\":1}").is_err()); // missing fields
        assert!(parse_trace("{\"t\":oops}").is_err());
    }

    #[test]
    fn render_report_mentions_everything() {
        let events = parse_trace(SAMPLE).expect("sample parses");
        let text = render_report(&analyze(&events));
        assert!(text.contains("lifecycle coverage"));
        assert!(text.contains("submit_to_commit"));
        assert!(text.contains("critical path"));
        assert!(text.contains("phase attribution"));
    }
}

//! **Runs the entire experiment suite** (E1–E10, E15 and E16 plus ablations)
//! and emits one markdown report — the source of EXPERIMENTS.md.
//!
//! ```text
//! cargo build --release -p prb-bench
//! cargo run --release -p prb-bench --bin exp_all [--quick]
//! ```
//!
//! Each experiment binary is invoked as a sibling executable; `--quick`
//! shrinks seeds/rounds for a fast smoke pass. Per-experiment status and
//! timing are recorded in a `prb-obs` metrics registry and rendered as a
//! suite-summary table on stderr at the end (the report itself goes to
//! stdout untouched).

use std::process::Command;
use std::time::Instant;

use prb_bench::{Args, Table};
use prb_obs::Metrics;

fn main() {
    let args = Args::parse();
    let quick = args.flag("quick");
    let exe_dir = std::env::current_exe()
        .expect("own path")
        .parent()
        .expect("exe has a parent dir")
        .to_path_buf();

    let experiments: Vec<(&str, Vec<&str>)> = vec![
        (
            "exp_regret",
            if quick {
                vec![
                    "--seeds",
                    "8",
                    "--proto-seeds",
                    "3",
                    "--ablate-beta",
                    "--ablate-gamma",
                ]
            } else {
                vec![
                    "--seeds",
                    "30",
                    "--proto-seeds",
                    "8",
                    "--ablate-beta",
                    "--ablate-gamma",
                ]
            },
        ),
        (
            "exp_unchecked",
            if quick {
                vec!["--seeds", "4", "--rounds", "6"]
            } else {
                vec!["--seeds", "10", "--rounds", "12"]
            },
        ),
        (
            "exp_tail",
            if quick {
                vec!["--trials", "1000"]
            } else {
                vec!["--trials", "4000"]
            },
        ),
        (
            "exp_loss",
            if quick {
                vec!["--seeds", "4", "--rounds", "12"]
            } else {
                vec!["--seeds", "8", "--rounds", "25"]
            },
        ),
        (
            "exp_loss#u",
            if quick {
                vec!["--sweep-u", "--seeds", "4", "--rounds", "10"]
            } else {
                vec!["--sweep-u", "--seeds", "8", "--rounds", "20"]
            },
        ),
        (
            "exp_throughput",
            if quick {
                vec!["--seeds", "3", "--rounds", "10"]
            } else {
                vec!["--seeds", "6", "--rounds", "20"]
            },
        ),
        ("exp_messages", vec!["--ablate-election"]),
        (
            "exp_incentives",
            if quick {
                vec![
                    "--seeds",
                    "3",
                    "--rounds",
                    "15",
                    "--ablate-floor",
                    "--floor-rounds",
                    "25",
                ]
            } else {
                vec![
                    "--seeds",
                    "6",
                    "--rounds",
                    "25",
                    "--ablate-floor",
                    "--floor-rounds",
                    "40",
                ]
            },
        ),
        (
            "exp_election",
            if quick {
                vec!["--rounds", "4000"]
            } else {
                vec!["--rounds", "20000"]
            },
        ),
        (
            "exp_apps",
            if quick {
                vec!["--seeds", "3", "--rounds", "10"]
            } else {
                vec!["--seeds", "6", "--rounds", "20"]
            },
        ),
        ("exp_properties", vec!["--rounds", "12"]),
        (
            "exp_scale",
            if quick {
                vec!["--quick", "--bench-out", "/tmp/BENCH_scale.json"]
            } else {
                vec!["--bench-out", "BENCH_scale.json"]
            },
        ),
        (
            "exp_persist",
            if quick {
                vec!["--quick", "--bench-out", "/tmp/BENCH_persist.json"]
            } else {
                vec!["--bench-out", "BENCH_persist.json"]
            },
        ),
        (
            "exp_churn",
            if quick {
                vec!["--quick", "--bench-out", "/tmp/BENCH_churn.json"]
            } else {
                vec!["--bench-out", "BENCH_churn.json"]
            },
        ),
    ];

    println!("# prb experiment suite — full run\n");
    println!("(regenerate with `cargo run --release -p prb-bench --bin exp_all`)\n");
    let metrics = Metrics::new();
    let mut summary = Table::new(
        "suite summary",
        &["experiment", "status", "seconds", "report KiB"],
    );
    for (name, exp_args) in experiments {
        let bin = name.split('#').next().expect("non-empty name");
        let path = exe_dir.join(bin);
        let started = Instant::now();
        let output = Command::new(&path)
            .args(&exp_args)
            .output()
            .unwrap_or_else(|e| panic!("failed to launch {path:?}: {e}; build with `cargo build --release -p prb-bench` first"));
        let secs = started.elapsed().as_secs_f64();
        metrics.observe("exp.millis", (secs * 1000.0) as u64);
        if !output.status.success() {
            metrics.inc("exp.failed");
            summary.row(vec![
                format!(
                    "{name} — {}",
                    String::from_utf8_lossy(&output.stderr)
                        .lines()
                        .last()
                        .unwrap_or("no stderr")
                ),
                "FAILED".to_owned(),
                format!("{secs:.1}"),
                "0".to_owned(),
            ]);
            continue;
        }
        metrics.inc("exp.ok");
        metrics.add("exp.report_bytes", output.stdout.len() as u64);
        summary.row(vec![
            name.to_owned(),
            "ok".to_owned(),
            format!("{secs:.1}"),
            (output.stdout.len() / 1024).to_string(),
        ]);
        println!("{}", String::from_utf8_lossy(&output.stdout));
        println!("\n---\n");
    }
    // The summary goes to stderr so stdout stays a clean report.
    eprint!("{}", summary.to_markdown());
    let (ok, failed) = (metrics.counter("exp.ok"), metrics.counter("exp.failed"));
    if let Some(h) = metrics.histogram("exp.millis") {
        eprintln!(
            "{ok} ok, {failed} failed; per-experiment millis p50={} p95={} max={}; report {} KiB total",
            h.p50(),
            h.p95(),
            h.max(),
            metrics.counter("exp.report_bytes") / 1024,
        );
    }
    if failed > 0 {
        std::process::exit(1);
    }
}

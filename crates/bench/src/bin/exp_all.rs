//! **Runs the entire experiment suite** (E1–E10 plus ablations) and emits
//! one markdown report — the source of EXPERIMENTS.md.
//!
//! ```text
//! cargo build --release -p prb-bench
//! cargo run --release -p prb-bench --bin exp_all [--quick]
//! ```
//!
//! Each experiment binary is invoked as a sibling executable; `--quick`
//! shrinks seeds/rounds for a fast smoke pass.

use std::process::Command;

use prb_bench::Args;

fn main() {
    let args = Args::parse();
    let quick = args.flag("quick");
    let exe_dir = std::env::current_exe()
        .expect("own path")
        .parent()
        .expect("exe has a parent dir")
        .to_path_buf();

    let experiments: Vec<(&str, Vec<&str>)> = vec![
        (
            "exp_regret",
            if quick {
                vec!["--seeds", "8", "--proto-seeds", "3", "--ablate-beta", "--ablate-gamma"]
            } else {
                vec!["--seeds", "30", "--proto-seeds", "8", "--ablate-beta", "--ablate-gamma"]
            },
        ),
        (
            "exp_unchecked",
            if quick { vec!["--seeds", "4", "--rounds", "6"] } else { vec!["--seeds", "10", "--rounds", "12"] },
        ),
        ("exp_tail", if quick { vec!["--trials", "1000"] } else { vec!["--trials", "4000"] }),
        (
            "exp_loss",
            if quick { vec!["--seeds", "4", "--rounds", "12"] } else { vec!["--seeds", "8", "--rounds", "25"] },
        ),
        (
            "exp_loss#u",
            if quick {
                vec!["--sweep-u", "--seeds", "4", "--rounds", "10"]
            } else {
                vec!["--sweep-u", "--seeds", "8", "--rounds", "20"]
            },
        ),
        (
            "exp_throughput",
            if quick { vec!["--seeds", "3", "--rounds", "10"] } else { vec!["--seeds", "6", "--rounds", "20"] },
        ),
        ("exp_messages", vec!["--ablate-election"]),
        (
            "exp_incentives",
            if quick {
                vec!["--seeds", "3", "--rounds", "15", "--ablate-floor", "--floor-rounds", "25"]
            } else {
                vec!["--seeds", "6", "--rounds", "25", "--ablate-floor", "--floor-rounds", "40"]
            },
        ),
        ("exp_election", if quick { vec!["--rounds", "4000"] } else { vec!["--rounds", "20000"] }),
        (
            "exp_apps",
            if quick { vec!["--seeds", "3", "--rounds", "10"] } else { vec!["--seeds", "6", "--rounds", "20"] },
        ),
        ("exp_properties", vec!["--rounds", "12"]),
    ];

    println!("# prb experiment suite — full run\n");
    println!("(regenerate with `cargo run --release -p prb-bench --bin exp_all`)\n");
    let mut failures = Vec::new();
    for (name, exp_args) in experiments {
        let bin = name.split('#').next().expect("non-empty name");
        let path = exe_dir.join(bin);
        eprintln!(">> running {name} {exp_args:?}");
        let output = Command::new(&path)
            .args(&exp_args)
            .output()
            .unwrap_or_else(|e| panic!("failed to launch {path:?}: {e}; build with `cargo build --release -p prb-bench` first"));
        if !output.status.success() {
            failures.push(name);
            eprintln!("!! {name} failed: {}", String::from_utf8_lossy(&output.stderr));
            continue;
        }
        println!("{}", String::from_utf8_lossy(&output.stdout));
        println!("\n---\n");
    }
    if failures.is_empty() {
        eprintln!("all experiments completed");
    } else {
        eprintln!("FAILED experiments: {failures:?}");
        std::process::exit(1);
    }
}

//! **E12 — byzantine governors: fault injection with accountable
//! equivocation evidence.**
//!
//! ```text
//! cargo run --release -p prb-bench --bin exp_byzantine [--seeds 3] [--rounds 10]
//!     [--quick] [--bench-out BENCH_byzantine.json]
//! ```
//!
//! §2 assumes governors follow the protocol; this experiment drops that
//! assumption for a minority and measures what the accountability layer
//! buys. A 7-governor committee runs with `b ∈ 0..=⌈m/3⌉` byzantine
//! members (always the highest indices — governor 0 stays honest as the
//! driver's bookkeeping replica), each byzantine governor a sleeper that
//! behaves honestly until round 2 and then follows one of four modes:
//!
//! - **equivocate**: double-sign two conflicting blocks for the same
//!   serial and split-send them across the committee,
//! - **invalid**: smuggle a forged (unauthenticated) entry into led
//!   proposals,
//! - **censor**: drop half the collected entries from led proposals,
//! - **silent**: mint no election claims at all (crash-equivalent).
//!
//! Hard asserts: honest-governor chain prefixes stay byte-identical and
//! the committee keeps committing for `b < m/3`; every equivocation is
//! detected from the self-verifying evidence and its culprit expelled on
//! every honest node within one round of the crime; forged proposals are
//! rejected and their proposer convicted from its own signed header;
//! censorship and silence cause no expulsions
//! (they are tolerated, not provable); and two identical runs produce
//! byte-identical ledgers and identical `byzantine.*` counter values.
//! The machine-readable summary is written to `BENCH_byzantine.json`
//! (override with `--bench-out`); `--quick` trims the sweep to a single
//! seed for CI smoke runs.

use std::fmt::Write as _;
use std::rc::Rc;

use prb_bench::{mean, run_seeds, seed_list, Args, Table};
use prb_core::behavior::GovernorProfile;
use prb_core::config::ProtocolConfig;
use prb_core::sim::Simulation;
use prb_obs::Obs;

/// Committee size. `⌈m/3⌉ = 3` byzantine governors at most.
const M: u32 = 7;
/// Round the sleeper profiles wake up and start misbehaving.
const SLEEPER_ROUND: u64 = 2;
/// The `byzantine.*` observability counters compared across the
/// determinism re-runs.
const COUNTERS: [&str; 9] = [
    "byzantine.equivocations_sent",
    "byzantine.equivocations_detected",
    "byzantine.evidence_broadcast",
    "byzantine.evidence_received",
    "byzantine.expulsions",
    "byzantine.invalid_proposals_sent",
    "byzantine.invalid_blocks_rejected",
    "byzantine.censored_txs",
    "byzantine.blocks_ignored",
];

fn profile_for(mode: &str) -> GovernorProfile {
    let p = match mode {
        "equivocate" => GovernorProfile::equivocator(),
        "invalid" => GovernorProfile::invalid_proposer(),
        "censor" => GovernorProfile::censor(),
        "silent" => GovernorProfile::silent(),
        other => panic!("unknown mode {other}"),
    };
    p.sleeper(SLEEPER_ROUND)
}

/// Everything one run reports.
struct ByzRun {
    committed_tx: u64,
    prefix_agree: bool,
    liveness: bool,
    equivocations_sent: u64,
    /// Every acting equivocator was expelled on every honest node.
    detected_everywhere: bool,
    /// Per (honest node, culprit): expulsion round − crime round.
    detection_latencies: Vec<u64>,
    invalid_sent: u64,
    invalid_rejected: u64,
    censored: u64,
    silent_rounds: u64,
    /// Expulsions recorded by honest nodes (any culprit).
    honest_expulsions: u64,
    /// Governor 0's exported ledger bytes (determinism witness).
    ledger: Vec<u8>,
    /// Snapshot of [`COUNTERS`] (determinism witness).
    counters: Vec<u64>,
}

fn run_once(seed: u64, rounds: u32, mode: &str, b: u32) -> ByzRun {
    let mut profiles = vec![GovernorProfile::honest(); M as usize];
    for g in M - b..M {
        profiles[g as usize] = profile_for(mode);
    }
    let cfg = ProtocolConfig {
        governors: M,
        verify_blocks: true,
        reliable_delivery: true,
        governor_profiles: profiles,
        seed,
        ..Default::default()
    };
    let mut sim = Simulation::new(cfg.clone()).expect("valid config");
    let obs = Obs::counting();
    sim.set_obs(Rc::clone(&obs));
    sim.run(rounds);
    sim.run_drain_rounds(2);
    // Let the final round's dissemination, echoes, and evidence land.
    sim.settle(3 * cfg.round_ticks());

    let honest: Vec<u32> = (0..M - b).collect();
    let byz: Vec<u32> = (M - b..M).collect();
    let head = sim.governor(0).chain().height();
    let committed_tx = {
        let chain = sim.governor(0).chain();
        (1..=head)
            .map(|s| chain.retrieve(s).expect("contiguous chain").entries.len() as u64)
            .sum()
    };

    let mut detected_everywhere = true;
    let mut detection_latencies = Vec::new();
    let mut equivocations_sent = 0;
    let mut invalid_sent = 0;
    let mut censored = 0;
    let mut silent_rounds = 0;
    for &c in &byz {
        let mc = sim.metrics(c);
        equivocations_sent += mc.equivocations_sent;
        invalid_sent += mc.invalid_proposals_sent;
        censored += mc.censored_txs;
        silent_rounds += mc.silent_rounds;
        if mc.equivocations_sent >= 1 {
            let crime = mc
                .first_equivocation_round
                .expect("equivocations_sent implies a first round");
            for &g in &honest {
                match sim.metrics(g).expulsion_round.get(&c) {
                    Some(&r) => detection_latencies.push(r.saturating_sub(crime)),
                    None => detected_everywhere = false,
                }
            }
        }
    }
    let mut invalid_rejected = 0;
    let mut honest_expulsions = 0;
    for &g in &honest {
        let m = sim.metrics(g);
        invalid_rejected += m.invalid_blocks_rejected;
        honest_expulsions += m.expulsions;
    }

    ByzRun {
        committed_tx,
        prefix_agree: sim.chains_prefix_agree(&honest),
        liveness: 2 * head >= u64::from(rounds),
        equivocations_sent,
        detected_everywhere,
        detection_latencies,
        invalid_sent,
        invalid_rejected,
        censored,
        silent_rounds,
        honest_expulsions,
        ledger: sim.governor(0).chain().export(),
        counters: COUNTERS
            .iter()
            .map(|name| obs.metrics().counter(name))
            .collect(),
    }
}

/// Sums a counter over runs.
fn total(runs: &[ByzRun], f: impl Fn(&ByzRun) -> u64) -> u64 {
    runs.iter().map(f).sum()
}

fn json_bool(b: bool) -> &'static str {
    if b {
        "true"
    } else {
        "false"
    }
}

fn main() {
    let args = Args::parse();
    let quick = args.flag("quick");
    let rounds = args.get_or("rounds", 10u32);
    let seeds = seed_list(120, if quick { 1 } else { args.get_or("seeds", 3) });
    let out_path = args.get("bench-out").unwrap_or("BENCH_byzantine.json");
    let modes = ["equivocate", "invalid", "censor", "silent"];
    let bs: &[u32] = if quick { &[1, 3] } else { &[1, 2, 3] };
    // b < m/3 is the accountability envelope: safety and liveness are
    // asserted inside it, reported as data at the b = ⌈m/3⌉ boundary.
    let b_envelope = (M - 1) / 3;

    println!("# E12 — byzantine governors, equivocation evidence, expulsion\n");

    // --- Fault-free baseline --------------------------------------------
    let baseline_runs = run_seeds(&seeds, |s| run_once(s, rounds, "equivocate", 0));
    for r in &baseline_runs {
        assert!(r.prefix_agree, "baseline prefixes diverged");
        assert!(r.liveness, "baseline committee stalled");
        assert_eq!(r.honest_expulsions, 0, "baseline expelled somebody");
    }
    let baseline_tx = mean(
        &baseline_runs
            .iter()
            .map(|r| r.committed_tx as f64)
            .collect::<Vec<_>>(),
    );
    println!(
        "baseline (b = 0): {baseline_tx:.1} committed tx over {} round(s), \
         honest prefixes byte-identical\n",
        rounds
    );

    // --- Mode × b sweep -------------------------------------------------
    let mut table = Table::new(
        &format!(
            "byzantine sweep: {M}-governor committee, b sleepers wake at round \
             {SLEEPER_ROUND} (mean over {} seed(s))",
            seeds.len()
        ),
        &[
            "mode",
            "b",
            "committed tx",
            "vs baseline",
            "equivocations",
            "expelled everywhere",
            "latency (rounds)",
            "forged rejected",
            "prefix agree",
            "live",
        ],
    );
    let mut rows = Vec::new();
    for mode in modes {
        for &b in bs {
            let runs = run_seeds(&seeds, |s| run_once(s, rounds, mode, b));
            let in_envelope = b <= b_envelope;
            for r in &runs {
                if in_envelope {
                    assert!(
                        r.prefix_agree,
                        "honest prefixes diverged (mode {mode}, b {b})"
                    );
                    assert!(r.liveness, "committee stalled (mode {mode}, b {b})");
                }
                // Accountability holds at any b: equivocation evidence is
                // self-verifying, so detection needs no quorum.
                assert!(
                    r.detected_everywhere,
                    "an equivocator escaped expulsion (mode {mode}, b {b})"
                );
                for &lat in &r.detection_latencies {
                    assert!(lat <= 1, "detection took {lat} rounds (mode {mode}, b {b})");
                }
                if r.invalid_sent >= 1 {
                    assert!(
                        r.invalid_rejected >= 1,
                        "a forged proposal went unrejected (mode {mode}, b {b})"
                    );
                }
                if mode == "censor" || mode == "silent" {
                    // Tolerated misbehaviour: nothing provable, nobody expelled.
                    assert_eq!(
                        r.honest_expulsions, 0,
                        "an unprovable fault triggered an expulsion (mode {mode}, b {b})"
                    );
                }
            }
            let committed = mean(
                &runs
                    .iter()
                    .map(|r| r.committed_tx as f64)
                    .collect::<Vec<_>>(),
            );
            let rel = if baseline_tx > 0.0 {
                committed / baseline_tx
            } else {
                0.0
            };
            let lats: Vec<f64> = runs
                .iter()
                .flat_map(|r| r.detection_latencies.iter().map(|&l| l as f64))
                .collect();
            table.row(vec![
                mode.into(),
                format!("{b}"),
                format!("{committed:.1}"),
                format!("{rel:.2}×"),
                format!("{}", total(&runs, |r| r.equivocations_sent)),
                if runs.iter().all(|r| r.detected_everywhere) {
                    "yes"
                } else {
                    "no"
                }
                .into(),
                if lats.is_empty() {
                    "—".into()
                } else {
                    format!("{:.2}", mean(&lats))
                },
                format!("{}", total(&runs, |r| r.invalid_rejected)),
                if runs.iter().all(|r| r.prefix_agree) {
                    "yes"
                } else {
                    "no"
                }
                .into(),
                if runs.iter().all(|r| r.liveness) {
                    "yes"
                } else {
                    "no"
                }
                .into(),
            ]);
            rows.push((mode, b, committed, rel, lats, runs));
        }
        // Each mode's sleepers must actually have fired somewhere in the
        // sweep, or the asserts above were vacuous.
        let mode_rows = rows.iter().filter(|(m, ..)| *m == mode);
        let acted: u64 = mode_rows
            .flat_map(|(.., runs)| runs.iter())
            .map(|r| match mode {
                "equivocate" => r.equivocations_sent,
                "invalid" => r.invalid_sent,
                "censor" => r.censored,
                "silent" => r.silent_rounds,
                _ => unreachable!(),
            })
            .sum();
        assert!(acted >= 1, "no {mode} governor ever acted across the sweep");
    }
    table.print();

    // --- Two-run determinism --------------------------------------------
    // Same seed, same schedule, twice: the ledgers must be byte-identical
    // and the byzantine.* counters must match exactly.
    let mut ledger_identical = true;
    let mut counters_identical = true;
    for mode in modes {
        let a = run_once(seeds[0], rounds, mode, 1);
        let b = run_once(seeds[0], rounds, mode, 1);
        ledger_identical &= a.ledger == b.ledger;
        counters_identical &= a.counters == b.counters;
    }
    assert!(
        ledger_identical,
        "two identical runs exported different ledgers"
    );
    assert!(
        counters_identical,
        "two identical runs disagreed on byzantine.* counters"
    );
    println!(
        "determinism: ledgers and byzantine.* counters byte-identical across \
         repeated runs of every mode\n"
    );

    println!("Interpretation: equivocation is the one provable crime — conflicting");
    println!("signed headers assemble into self-verifying evidence that convicts");
    println!("the culprit on every honest node within a round, slashes its stake,");
    println!("and recomputes the election quorum without it. Forged proposals are");
    println!("rejected on arrival and convict their proposer too: the signed");
    println!("header over the garbage block is self-incriminating. Censorship and");
    println!("silence degrade throughput but produce no false expulsions: the");
    println!("committee tolerates what it cannot prove.");

    // --- BENCH_byzantine.json -------------------------------------------
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"experiment\": \"byzantine\",");
    let _ = writeln!(
        out,
        "  \"config\": {{\"governors\": {M}, \"sleeper_round\": {SLEEPER_ROUND}, \
         \"rounds\": {rounds}, \"seeds\": {}, \"b_values\": {bs:?}, \
         \"verify_blocks\": true, \"reliable_delivery\": true}},",
        seeds.len()
    );
    let _ = writeln!(
        out,
        "  \"baseline\": {{\"committed_tx_mean\": {baseline_tx}}},"
    );
    let _ = writeln!(out, "  \"sweep\": [");
    for (i, (mode, b, committed, rel, lats, runs)) in rows.iter().enumerate() {
        let latency = if lats.is_empty() {
            "null".to_string()
        } else {
            format!("{:.4}", mean(lats))
        };
        let _ = writeln!(
            out,
            "    {{\"mode\": \"{mode}\", \"b\": {b}, \"committed_tx_mean\": {committed}, \
             \"throughput_vs_baseline\": {rel:.4}, \"equivocations_sent\": {}, \
             \"detected_everywhere\": {}, \"detection_latency_rounds_mean\": {latency}, \
             \"invalid_sent\": {}, \"invalid_rejected\": {}, \"censored_txs\": {}, \
             \"silent_rounds\": {}, \"honest_expulsions\": {}, \"prefix_agree\": {}, \
             \"liveness\": {}}}{}",
            total(runs, |r| r.equivocations_sent),
            json_bool(runs.iter().all(|r| r.detected_everywhere)),
            total(runs, |r| r.invalid_sent),
            total(runs, |r| r.invalid_rejected),
            total(runs, |r| r.censored),
            total(runs, |r| r.silent_rounds),
            total(runs, |r| r.honest_expulsions),
            json_bool(runs.iter().all(|r| r.prefix_agree)),
            json_bool(runs.iter().all(|r| r.liveness)),
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(
        out,
        "  \"determinism\": {{\"ledger_identical\": {}, \"counters_identical\": {}}},",
        json_bool(ledger_identical),
        json_bool(counters_identical)
    );
    // The asserts above panic on violation, so reaching this point means
    // every invariant held (prefix agreement and liveness are asserted for
    // b < m/3, the accountability envelope; b = ⌈m/3⌉ is data only).
    let _ = writeln!(
        out,
        "  \"asserts\": {{\"honest_prefix_agreement_b_lt_third\": \"pass\", \
         \"liveness_b_lt_third\": \"pass\", \
         \"equivocators_expelled_within_one_round\": \"pass\", \
         \"forged_proposals_rejected\": \"pass\", \
         \"no_expulsions_without_evidence\": \"pass\", \
         \"two_run_determinism\": \"pass\"}}"
    );
    out.push_str("}\n");
    std::fs::write(out_path, &out).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    println!("\nwritten to {out_path}");
}

//! **E6 — §4.1 communication complexity** (plus ablation A4: leader
//! election schemes).
//!
//! ```text
//! cargo run --release -p prb-bench --bin exp_messages [--ablate-election]
//! ```
//!
//! The paper claims `O(b_limit · m)` messages to disseminate an ordinary
//! block and `O(m²)` for a stake-transform block (and classical PBFT costs
//! `O(m²)` *per decision*). We measure all three over sweeps of `m` and of
//! the block size `b`, and report the growth ratios (×4 per doubling ⇒
//! quadratic; ×2 ⇒ linear).

use prb_bench::{Args, Table};
use prb_consensus::pbft::{PbftMsg, PbftReplica};
use prb_consensus::rotation::{RotationMsg, RotationReplica};
use prb_consensus::stake::{StakeTable, StakeTransfer};
use prb_consensus::stake_block::{StakeGovernor, StakeMsg};
use prb_core::behavior::ProviderProfile;
use prb_core::config::ProtocolConfig;
use prb_core::sim::Simulation;
use prb_crypto::signer::{CryptoScheme, KeyPair, PublicKey};
use prb_net::sim::{NetConfig, Network};
use prb_net::time::{SimDuration, SimTime};

/// Ordinary-block dissemination bytes/messages per round in the full
/// protocol, for a given governor count and per-round block size.
fn ordinary_block(m: u32, tx_per_provider: u32) -> (u64, u64) {
    let cfg = ProtocolConfig {
        governors: m,
        tx_per_provider,
        b_limit: 16_384,
        seed: 5,
        ..Default::default()
    };
    let mut sim = Simulation::builder(cfg)
        .provider_profiles(vec![ProviderProfile::honest_active(); 8])
        .build()
        .expect("valid config");
    sim.run(4);
    let stats = sim.net_stats();
    let proposals = stats.kind("block-proposal");
    (proposals.sent / 4, proposals.bytes_sent / 4)
}

fn stake_block_messages(m: u32) -> u64 {
    let scheme = CryptoScheme::sim();
    let keys: Vec<KeyPair> = (0..m)
        .map(|g| scheme.keypair_from_seed(format!("sg{g}").as_bytes()))
        .collect();
    let pks: Vec<PublicKey> = keys.iter().map(|k| k.public_key()).collect();
    let mut net = Network::new(NetConfig::uniform(1, 5), 31);
    for g in 0..m {
        net.add_node(StakeGovernor::new(
            g,
            m,
            0,
            keys[g as usize].clone(),
            pks.clone(),
            StakeTable::uniform(m as usize, 16),
        ));
    }
    for g in 0..m {
        let t = StakeTransfer::create(g, (g + 1) % m, 1, 0, &keys[g as usize]);
        net.send_external(
            g as usize,
            "submit",
            StakeMsg::SubmitTransfer(t),
            SimTime(0),
        );
    }
    for g in 0..m as usize {
        net.send_external(
            g,
            "start-round",
            StakeMsg::StartRound {
                round: 1,
                leader: 0,
            },
            SimTime(100),
        );
    }
    net.run_until_idle(1_000_000);
    let s = net.stats();
    s.kind("stake-transfer").sent
        + s.kind("stake-newstate").sent
        + s.kind("stake-ack").sent
        + s.kind("stake-commit").sent
}

fn pbft_messages(m: u32) -> u64 {
    let mut net = Network::new(NetConfig::uniform(1, 4), 77);
    for i in 0..m {
        net.add_node(PbftReplica::new(i, m, 0, SimDuration(10_000)));
    }
    let v = prb_crypto::sha256::sha256(b"block");
    net.send_external(0, "client", PbftMsg::ClientRequest(v), SimTime(0));
    net.run_until(SimTime(5_000));
    let s = net.stats();
    s.kind("pbft-preprepare").sent + s.kind("pbft-prepare").sent + s.kind("pbft-commit").sent
}

fn rotation_messages(m: u32) -> u64 {
    let mut net = Network::new(NetConfig::uniform(1, 4), 55);
    for i in 0..m {
        net.add_node(RotationReplica::new(i, m, 0, SimDuration(5_000)));
    }
    let value = prb_crypto::sha256::sha256(b"block");
    for g in 0..m as usize {
        net.send_external(
            g,
            "start",
            RotationMsg::StartHeight { height: 0, value },
            SimTime(0),
        );
    }
    net.run_until(SimTime(4_000));
    net.stats().kind("rot-propose").sent + net.stats().kind("rot-vote").sent
}

fn growth(values: &[u64]) -> String {
    values
        .windows(2)
        .map(|w| format!("×{:.1}", w[1] as f64 / w[0].max(1) as f64))
        .collect::<Vec<_>>()
        .join(" ")
}

fn main() {
    let args = Args::parse();
    // Shared `--trace-out FILE` flag: one traced run of a representative
    // deployment (JSONL trace + summary) instead of the sweeps.
    if prb_bench::run_traced(&args, 10, 2, || prb_bench::traced_default_sim(100)) {
        return;
    }
    println!("# E6 — message complexity (§4.1)\n");

    // Sweep m.
    let ms = [4u32, 8, 16, 32];
    let mut ordinary = Vec::new();
    let mut ordinary_bytes = Vec::new();
    let mut stake = Vec::new();
    let mut pbft = Vec::new();
    let mut rotation = Vec::new();
    for &m in &ms {
        let (msgs, bytes) = ordinary_block(m, 4);
        ordinary.push(msgs);
        ordinary_bytes.push(bytes);
        stake.push(stake_block_messages(m));
        pbft.push(pbft_messages(m));
        rotation.push(rotation_messages(m));
    }
    let mut t1 = Table::new(
        "messages per committed block vs governor count m (fixed b = 32)",
        &[
            "m",
            "ordinary block msgs",
            "stake block msgs",
            "PBFT msgs/decision",
            "rotation msgs/decision",
        ],
    );
    for (i, &m) in ms.iter().enumerate() {
        t1.row(vec![
            m.to_string(),
            ordinary[i].to_string(),
            stake[i].to_string(),
            pbft[i].to_string(),
            rotation[i].to_string(),
        ]);
    }
    t1.row(vec![
        "growth/doubling".into(),
        growth(&ordinary),
        growth(&stake),
        growth(&pbft),
        growth(&rotation),
    ]);
    t1.print();

    // Sweep b at fixed m: ordinary block *bytes* scale with b·m.
    let mut t2 = Table::new(
        "ordinary block dissemination vs block size b (m = 8)",
        &["b (txs/block)", "messages", "bytes", "bytes growth"],
    );
    let mut prev_bytes = None;
    for tx_per_provider in [2u32, 4, 8, 16] {
        let (msgs, bytes) = ordinary_block(8, tx_per_provider);
        let growth = prev_bytes
            .map(|p: u64| format!("×{:.1}", bytes as f64 / p as f64))
            .unwrap_or_else(|| "—".into());
        prev_bytes = Some(bytes);
        t2.row(vec![
            (tx_per_provider * 8).to_string(),
            msgs.to_string(),
            bytes.to_string(),
            growth,
        ]);
    }
    t2.print();

    if args.flag("ablate-election") {
        let mut t3 = Table::new(
            "A4: election-related messages per round vs m",
            &[
                "m",
                "VRF election msgs",
                "round-robin msgs",
                "PBFT view msgs (crash-free)",
            ],
        );
        for &m in &ms {
            // VRF claims: every governor broadcasts one claim → m(m−1).
            let cfg = ProtocolConfig {
                governors: m,
                seed: 6,
                ..Default::default()
            };
            let mut sim = Simulation::new(cfg).expect("valid config");
            sim.run(3);
            let claims = sim.net_stats().kind("election-claim").sent / 3;
            t3.row(vec![
                m.to_string(),
                claims.to_string(),
                "0 (deterministic schedule)".into(),
                "0 (primary fixed per view)".into(),
            ]);
        }
        t3.print();
        println!("A4 note: VRF-PoS costs m(m−1) small messages per round but is");
        println!("unpredictable and stake-proportional; rotation is free but");
        println!("predictable (the paper argues predictability is acceptable only");
        println!("because governors are assumed not to attack the chain).");
    }

    println!("Interpretation: ordinary-block messages grow ×2 per doubling of m");
    println!("(linear, O(b·m) with bytes scaling in b as the second table shows),");
    println!("while stake blocks and PBFT grow ×4 per doubling (quadratic, O(m²))");
    println!("— the complexity separation claimed in §4.1.");
}

//! **E5 — efficiency: the validation-cost / loss tradeoff that motivates
//! the paper.**
//!
//! ```text
//! cargo run --release -p prb-bench --bin exp_throughput [--seeds 6] [--rounds 20]
//! cargo run --release -p prb-bench --bin exp_throughput -- \
//!     --bench-out BENCH_crypto.json [--crypto NAME] [--iters 20] [--bench-rounds 3]
//! cargo run --release -p prb-bench --bin exp_throughput -- \
//!     --pipeline [--quick] [--bench-out BENCH_throughput.json] [--crypto NAME]
//! ```
//!
//! The second form skips the sweeps and emits the machine-readable crypto
//! micro-benchmark (see [`prb_bench::crypto_bench`]). The third runs the
//! E14 serial-vs-pipelined round-engine sweep (see
//! [`prb_bench::pipeline_bench`]); `--quick` is the CI smoke variant.
//!
//! §1/§3.4: *"The larger f is, the less probability a transaction is
//! checked, thus the faster the execution of the protocol"*. We sweep `f`
//! and the two baselines (check-all and check-none) under a hostile-half
//! adversary mix and report: validations per transaction, the modeled
//! processing time, a derived throughput (one validation = 50 µs, one
//! tick = 1 µs), and the governor's realized loss. The reputation
//! mechanism should dominate check-all on cost at near-zero extra loss,
//! and dominate check-none on loss.

use prb_bench::{pm, run_seeds, seed_list, Args, Table};
use prb_core::behavior::ProviderProfile;
use prb_core::config::{GovernorMode, ProtocolConfig};
use prb_core::sim::Simulation;
use prb_crypto::signer::CryptoScheme;
use prb_workload::adversary::AdversaryMix;

struct Throughput {
    validations_per_tx: f64,
    processing_ms: f64,
    tx_per_sec: f64,
    realized_loss: f64,
    loss_per_ktx: f64,
}

fn run_once(seed: u64, mode: GovernorMode, f: f64, rounds: u32) -> Throughput {
    let mut cfg = ProtocolConfig {
        governor_mode: mode,
        tx_per_provider: 8,
        b_limit: 8192,
        seed,
        ..Default::default()
    };
    cfg.reputation.f = f;
    let mut sim = Simulation::builder(cfg.clone())
        .collector_profiles(AdversaryMix::HalfMisreport(40).profiles(8))
        .provider_profiles(vec![
            ProviderProfile {
                invalid_rate: 0.4,
                active: false
            };
            8
        ])
        .build()
        .expect("valid config");
    sim.run(rounds);
    sim.run_drain_rounds(3);
    let m = sim.metrics(0);
    let txs = m.screened.max(1) as f64;
    // Modeled processing: network time is identical across modes; the
    // differentiator is validation work.
    let validation_ticks = m.validation_ticks(cfg.validation_cost) as f64;
    let base_ticks = (sim.rounds_run() * cfg.round_ticks()) as f64;
    let total_ticks = base_ticks + validation_ticks;
    Throughput {
        validations_per_tx: m.validations as f64 / txs,
        processing_ms: total_ticks / 1_000.0,
        tx_per_sec: txs / (total_ticks / 1_000_000.0),
        realized_loss: m.realized_loss,
        loss_per_ktx: 1_000.0 * m.realized_loss / txs,
    }
}

/// Wall-clock cost of real cryptography: the same 3-round deployment under
/// each signature scheme, actually measured (not modeled). This is the
/// empirical basis of DESIGN.md substitution 3.
fn measure_crypto(args: &Args) {
    let reps = args.get_or("crypto-reps", 3u32).max(1);
    let mut table = Table::new(
        "measured wall-clock per protocol round (4p/4c/3g, 2 tx/provider, 3 rounds, fastest of 3 runs, release build)",
        &["crypto scheme", "wall-clock / round", "vs sim"],
    );
    let mut schemes = vec![
        CryptoScheme::sim(),
        CryptoScheme::schnorr_test_256(),
        CryptoScheme::schnorr_test_512(),
    ];
    if args.flag("with-2048") {
        schemes.push(CryptoScheme::schnorr_2048());
    }
    let mut sim_time = None;
    for scheme in schemes {
        let name = scheme.name();
        // Fastest-of-`reps` fresh runs: a single 3-round sample is at the
        // mercy of scheduler noise at the ms scale, and the minimum is the
        // standard low-noise estimator for "how fast can this go".
        let per_round = (0..reps)
            .map(|_| {
                let cfg = ProtocolConfig {
                    providers: 4,
                    collectors: 4,
                    governors: 3,
                    replication: 2,
                    tx_per_provider: 2,
                    crypto: scheme.clone(),
                    seed: 60,
                    ..Default::default()
                };
                let mut sim = Simulation::new(cfg).expect("valid config");
                let start = std::time::Instant::now();
                sim.run(3);
                start.elapsed() / 3
            })
            .min()
            .expect("reps >= 1");
        let ratio = match sim_time {
            None => {
                sim_time = Some(per_round);
                "1×".to_owned()
            }
            Some(base) => format!(
                "{:.0}×",
                per_round.as_secs_f64() / base.as_secs_f64().max(1e-12)
            ),
        };
        table.row(vec![name.into(), format!("{per_round:.2?}"), ratio]);
    }
    table.print();
    println!("(pass --with-2048 to include the secure RFC 3526 parameter set;");
    println!("Montgomery-accelerated and batch-verified, but still ~ms per");
    println!("exponentiation; --crypto-reps N controls the repetition count)");
}

/// `--bench-out FILE` mode: the machine-readable crypto micro-benchmark.
/// Measures sign/verify/VRF/round wall-clock per scheme (all Schnorr
/// parameter sets by default, or just `--crypto NAME`), writes the JSON
/// document (with embedded pre-optimization baselines and speedups), and
/// prints the same numbers as a table.
fn bench_crypto_json(args: &Args, path: &str) {
    let iters = args.get_or("iters", 20u32);
    let sim_rounds = args.get_or("bench-rounds", 3u32);
    let schemes = match args.get("crypto") {
        Some(name) => {
            vec![CryptoScheme::parse(name).unwrap_or_else(|| panic!("unknown crypto scheme {name}"))]
        }
        None => vec![
            CryptoScheme::sim(),
            CryptoScheme::schnorr_test_256(),
            CryptoScheme::schnorr_test_512(),
            CryptoScheme::schnorr_2048(),
        ],
    };
    let rows = prb_bench::crypto_bench::run_and_write(&schemes, iters, sim_rounds, path);
    let mut table = Table::new(
        "crypto micro-benchmark (µs/op, release build; tables warmed)",
        &[
            "scheme",
            "sign",
            "verify",
            "vrf eval",
            "vrf verify",
            "batch32/sig",
            "batch speedup",
            "round",
        ],
    );
    for r in &rows {
        let batch32 = r.batch.iter().find(|b| b.size == 32);
        table.row(vec![
            r.scheme.clone(),
            format!("{:.1}", r.sign_us),
            format!("{:.1}", r.verify_us),
            format!("{:.1}", r.vrf_evaluate_us),
            format!("{:.1}", r.vrf_verify_us),
            batch32.map_or("-".into(), |b| format!("{:.1}", b.per_sig_us)),
            batch32.map_or("-".into(), |b| format!("{:.1}×", b.speedup)),
            format!("{:.1}", r.round_us),
        ]);
    }
    table.print();
    println!("batch columns: randomized-linear-combination verification of 32");
    println!("signatures per call (the governor's per-block drain path)");
    println!("written to {path}");
}

fn main() {
    let args = Args::parse();
    // Shared `--trace-out FILE` flag: one traced run of a representative
    // deployment (JSONL trace + summary) instead of the sweeps.
    if prb_bench::run_traced(&args, 10, 2, || prb_bench::traced_default_sim(100)) {
        return;
    }
    // E14: serial-vs-pipelined round-engine sweep → BENCH_throughput.json.
    if args.flag("pipeline") {
        let path = args.get("bench-out").unwrap_or("BENCH_throughput.json");
        let path = path.to_owned();
        prb_bench::pipeline_bench::run(&args, &path);
        return;
    }
    if let Some(path) = args.get("bench-out") {
        let path = path.to_owned();
        bench_crypto_json(&args, &path);
        return;
    }
    let seeds = seed_list(70, args.get_or("seeds", 6));
    let rounds = args.get_or("rounds", 20u32);

    println!("# E5 — validation cost vs loss (the efficiency claim)\n");
    let mut table = Table::new(
        "governor cost/loss across modes (1 validation = 50 µs; mean ± std over seeds)",
        &[
            "mode",
            "validations/tx",
            "run time (ms, modeled)",
            "throughput (tx/s)",
            "realized loss",
            "loss / 1k txs",
        ],
    );
    let mut configs: Vec<(String, GovernorMode, f64)> =
        vec![("check-all (baseline)".into(), GovernorMode::CheckAll, 0.5)];
    for f in [0.1, 0.3, 0.5, 0.7, 0.9] {
        configs.push((format!("reputation f={f:.1}"), GovernorMode::Reputation, f));
    }
    configs.push(("check-none (baseline)".into(), GovernorMode::CheckNone, 0.5));

    for (name, mode, f) in configs {
        let runs = run_seeds(&seeds, |s| run_once(s, mode, f, rounds));
        table.row(vec![
            name,
            pm(&runs
                .iter()
                .map(|r| r.validations_per_tx)
                .collect::<Vec<_>>()),
            pm(&runs.iter().map(|r| r.processing_ms).collect::<Vec<_>>()),
            pm(&runs.iter().map(|r| r.tx_per_sec).collect::<Vec<_>>()),
            pm(&runs.iter().map(|r| r.realized_loss).collect::<Vec<_>>()),
            pm(&runs.iter().map(|r| r.loss_per_ktx).collect::<Vec<_>>()),
        ]);
    }
    table.print();
    println!("Interpretation: check-all pays a validation per transaction for zero");
    println!("loss; check-none pays nothing and bleeds the most loss. The");
    println!("reputation mechanism spans the gap: raising f sheds validation work");
    println!("(validations/tx falls below 1) while the reputation-guided draw");
    println!("keeps the loss per thousand transactions an order of magnitude");
    println!("below check-none — who wins and where the crossover falls matches");
    println!("the paper's qualitative claim.");
    println!();
    measure_crypto(&args);
}

//! **E13 — per-transaction lifecycle tracing, latency attribution, and
//! tracing overhead.**
//!
//! ```text
//! cargo run --release -p prb-bench --bin exp_latency [--quick] \
//!     [--rounds N] [--drain N] [--seed S] [--out BENCH_latency.json] \
//!     [--trace-out FILE] [--overhead-reps N] [--overhead-rounds N]
//! ```
//!
//! One traced run of the standard deployment, then **hard asserts**:
//!
//! 1. **Coverage** — every submitted transaction reaches a terminal
//!    lifecycle state (no trace is left open after the drain rounds),
//!    the replayed stream passes the shared state-machine validator,
//!    and no lifecycle event is orphaned.
//! 2. **Reconciliation** — per-stage event counts line up with
//!    independent ground truth: kernel `MessageStats` for the transport
//!    (`tx.submitted` × replication = `tx-broadcast` sends; every
//!    traced message kind matches the kernel's counters), governor
//!    protocol metrics for screening, and the committed ledgers for
//!    commits.
//! 3. **Determinism** — a second same-seed run produces a
//!    byte-identical `BENCH_latency.json`.
//! 4. **Overhead** — full tracing costs ≤ 5% wall-clock versus
//!    `Obs::off()` on a crypto-bearing deployment (fastest-of-N reps on
//!    both legs; the secure parameter set makes the round cost real).
//!
//! On any assert failure the flight recorder dumps the last events to
//! stderr before the process dies.

use std::cell::RefCell;
use std::io::Write;
use std::rc::Rc;

use prb_bench::trace::{analyze, lifecycle_events, parse_trace, render_report, to_json};
use prb_bench::{print_reconciliation, with_flight_dump, Args, Table, FLIGHT_RING_CAPACITY};
use prb_core::config::ProtocolConfig;
use prb_core::sim::Simulation;
use prb_crypto::signer::CryptoScheme;
use prb_obs::lifecycle::{validate, Checks};
use prb_obs::{JsonlRecorder, Obs, Recorder, RingRecorder, TeeRecorder};

/// An in-memory trace sink the harness can read back after the run.
#[derive(Clone, Debug, Default)]
struct SharedBuf(Rc<RefCell<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.borrow_mut().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Runs the standard traced deployment, returning the finished sim, the
/// JSONL trace text, and the flight-recorder ring.
fn traced_run(seed: u64, rounds: u32, drain: u32) -> (Simulation, String, Rc<RingRecorder>) {
    let buf = SharedBuf::default();
    let jsonl: Rc<dyn Recorder> = Rc::new(JsonlRecorder::new(buf.clone()));
    let ring = Rc::new(RingRecorder::new(FLIGHT_RING_CAPACITY));
    let tee = TeeRecorder::new(jsonl, Rc::clone(&ring) as Rc<dyn Recorder>);
    let obs = Obs::with_sink(Rc::new(tee));
    let mut sim = prb_bench::traced_default_sim(seed);
    sim.set_obs(Rc::clone(&obs));
    with_flight_dump(&ring, || {
        sim.run(rounds);
        sim.run_drain_rounds(drain);
    });
    obs.flush();
    let text = String::from_utf8(buf.0.borrow().clone()).expect("trace is UTF-8");
    (sim, text, ring)
}

/// Raw occurrence count of one event kind in the trace.
fn kind_count(events: &[prb_bench::trace::TraceEvent], kind: &str) -> u64 {
    events.iter().filter(|e| e.kind == kind).count() as u64
}

/// The overhead-leg deployment: the secure RFC 3526 parameter set makes
/// every round's crypto real wall-clock work, so the tracing share is
/// measured against an honest denominator.
fn overhead_sim(seed: u64) -> Simulation {
    let cfg = ProtocolConfig {
        providers: 4,
        collectors: 4,
        governors: 3,
        replication: 2,
        tx_per_provider: 2,
        crypto: CryptoScheme::schnorr_2048(),
        seed,
        ..Default::default()
    };
    Simulation::new(cfg).expect("valid config")
}

/// Fastest-of-`reps` wall-clock for `rounds` rounds, with tracing on or
/// off. The traced leg runs the full pipeline (JSONL into memory + the
/// flight ring) — exactly what `--trace-out` costs.
fn measure_leg(traced: bool, reps: u32, rounds: u32) -> std::time::Duration {
    (0..reps)
        .map(|_| {
            let mut sim = overhead_sim(424242);
            if traced {
                let jsonl: Rc<dyn Recorder> = Rc::new(JsonlRecorder::new(SharedBuf::default()));
                let ring: Rc<dyn Recorder> = Rc::new(RingRecorder::new(FLIGHT_RING_CAPACITY));
                sim.set_obs(Obs::with_sink(Rc::new(TeeRecorder::new(jsonl, ring))));
            }
            let start = std::time::Instant::now();
            sim.run(rounds);
            start.elapsed()
        })
        .min()
        .expect("reps >= 1")
}

fn main() {
    let args = Args::parse();
    let quick = args.flag("quick");
    let rounds = args.get_or("rounds", if quick { 6 } else { 20u32 });
    let drain = args.get_or("drain", 3u32);
    let seed = args.get_or("seed", 100u64);
    let out_path = args.get("out").unwrap_or("BENCH_latency.json").to_owned();

    println!("# E13 — transaction lifecycle latency attribution\n");
    let (sim, text, ring) = traced_run(seed, rounds, drain);
    println!("{}", sim.obs_summary());

    if let Some(path) = args.get("trace-out") {
        std::fs::write(path, &text).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("trace written to {path} ({} lines)", text.lines().count());
    }

    // Every hard assert runs under the flight recorder: a failure dumps
    // the last events to stderr before the process dies.
    let json = with_flight_dump(&ring, || {
        // 1a. Transport reconciliation: every traced message kind matches
        // the kernel's own counters.
        assert!(
            print_reconciliation(&sim),
            "trace ↔ kernel message reconciliation failed"
        );

        // 1b. Full lifecycle coverage: nothing submitted is still open.
        let open = sim.obs().open_traces();
        assert!(
            open.is_empty(),
            "{} transactions never reached a terminal state: {:?}",
            open.len(),
            &open[..open.len().min(8)]
        );

        // 1c. The replayed stream obeys the lifecycle state machine.
        let events = parse_trace(&text)
            .unwrap_or_else(|(line, e)| panic!("trace line {line} failed to parse: {e}"));
        let typed = lifecycle_events(&events);
        if let Err(violations) = validate(&typed, Checks::default()) {
            panic!(
                "{} lifecycle violations; first: {}",
                violations.len(),
                violations[0]
            );
        }

        let report = analyze(&events);
        println!("{}", render_report(&report));
        assert_eq!(report.orphans, 0, "lifecycle events without a submission");

        // 2. Per-stage counts against independent ground truth.
        let counts = sim.obs().lifecycle_counts();
        assert_eq!(
            report.submitted, counts.submitted,
            "analyzer vs hub: submitted"
        );
        assert_eq!(
            report.committed, counts.committed,
            "analyzer vs hub: committed"
        );
        assert_eq!(counts.open, 0, "hub still tracks open transactions");

        let submitted_events = kind_count(&events, "tx.submitted");
        let cfg = sim.config();
        let broadcast_sent = sim.net_stats().kind("tx-broadcast").sent;
        assert_eq!(
            submitted_events * cfg.replication as u64,
            broadcast_sent,
            "each submission broadcasts to exactly `replication` collectors"
        );

        let screened_events = kind_count(&events, "gov.screened");
        let screened_metrics: u64 = (0..cfg.governors).map(|g| sim.metrics(g).screened).sum();
        assert_eq!(
            screened_events, screened_metrics,
            "gov.screened events vs governor metrics"
        );

        let committed_events = kind_count(&events, "tx.committed");
        let ledger_entries: u64 = (0..cfg.governors)
            .map(|g| {
                let chain = sim.governor(g).chain();
                (1..=chain.height())
                    .map(|s| chain.retrieve(s).expect("no gaps").entries.len() as u64)
                    .sum::<u64>()
            })
            .sum();
        assert_eq!(
            committed_events, ledger_entries,
            "tx.committed events vs total committed ledger entries"
        );

        let mut table = Table::new(
            "per-stage reconciliation (trace events vs ground truth)",
            &["stage", "trace", "ground truth", "source"],
        );
        table.row(vec![
            "submitted".into(),
            submitted_events.to_string(),
            (broadcast_sent / cfg.replication as u64).to_string(),
            "MessageStats tx-broadcast / replication".into(),
        ]);
        table.row(vec![
            "screened".into(),
            screened_events.to_string(),
            screened_metrics.to_string(),
            "Σ governor metrics.screened".into(),
        ]);
        table.row(vec![
            "committed".into(),
            committed_events.to_string(),
            ledger_entries.to_string(),
            "Σ ledger entries".into(),
        ]);
        table.print();

        // 3. Determinism: a second same-seed run yields byte-identical
        // trace and artifact.
        let (_sim2, text2, _ring2) = traced_run(seed, rounds, drain);
        assert_eq!(text, text2, "same seed, same trace bytes");
        let json = to_json(&report);
        let json2 = to_json(&analyze(&parse_trace(&text2).expect("second trace parses")));
        assert_eq!(json, json2, "same seed, same BENCH_latency.json bytes");
        json
    });

    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    println!("machine-readable artifact written to {out_path}");

    // 4. Tracing overhead ≤ 5% of round wall-clock.
    let reps = args
        .get_or("overhead-reps", if quick { 2 } else { 3u32 })
        .max(1);
    let orounds = args.get_or("overhead-rounds", 2u32).max(1);
    let off = measure_leg(false, reps, orounds);
    let traced = measure_leg(true, reps, orounds);
    let overhead = traced.as_secs_f64() / off.as_secs_f64().max(1e-9) - 1.0;
    println!(
        "tracing overhead: off {:.2?}, traced {:.2?} over {orounds} rounds \
         (fastest of {reps}) → {:+.2}%",
        off,
        traced,
        overhead * 100.0
    );
    assert!(
        overhead <= 0.05,
        "tracing overhead {:.2}% exceeds the 5% budget",
        overhead * 100.0
    );
    println!("\nall hard asserts passed: coverage, reconciliation, determinism, overhead");
}

//! **E2 — Lemma 2: a transaction goes unchecked with probability ≤ f.**
//!
//! ```text
//! cargo run --release -p prb-bench --bin exp_unchecked [--seeds 10] [--rounds 12]
//! ```
//!
//! Part 1 samples the screening rule in isolation across weight profiles,
//! comparing the measured skip rate against the analytic
//! `Σ f·w²/W²` and the Lemma 2 bound `f` (the bound is *tight* in the
//! single-reporter worst case).
//!
//! Part 2 sweeps `f` in the full protocol (honest collectors, 90% invalid
//! workload so the `−1` path dominates) and reports every governor's
//! measured unchecked fraction.

use prb_bench::{mean, pm, run_seeds, seed_list, Args, Table};
use prb_core::behavior::ProviderProfile;
use prb_core::config::ProtocolConfig;
use prb_core::sim::Simulation;
use prb_reputation::screening::{prob_unchecked, screen, Report};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn isolated_rate(reports: &[Report], f: f64, samples: u32, seed: u64) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut skipped = 0u32;
    for _ in 0..samples {
        if !screen(reports, f, &mut rng).expect("non-empty").check {
            skipped += 1;
        }
    }
    skipped as f64 / samples as f64
}

fn main() {
    let args = Args::parse();
    // Shared `--trace-out FILE` flag: one traced run of a representative
    // deployment (JSONL trace + summary) instead of the sweeps.
    if prb_bench::run_traced(&args, 10, 2, || prb_bench::traced_default_sim(100)) {
        return;
    }
    println!("# E2 — unchecked probability vs the Lemma 2 bound\n");

    // Part 1: the screening rule in isolation.
    let profiles: Vec<(&str, Vec<Report>)> = vec![
        (
            "1 reporter, -1 (worst case)",
            vec![Report {
                collector: 0,
                labeled_valid: false,
                weight: 1.0,
            }],
        ),
        (
            "4 equal reporters, all -1",
            (0..4)
                .map(|c| Report {
                    collector: c,
                    labeled_valid: false,
                    weight: 1.0,
                })
                .collect(),
        ),
        (
            "4 equal reporters, 2 of each label",
            (0..4)
                .map(|c| Report {
                    collector: c,
                    labeled_valid: c < 2,
                    weight: 1.0,
                })
                .collect(),
        ),
        (
            "skewed weights 8:1:1:1, heavy says -1",
            vec![
                Report {
                    collector: 0,
                    labeled_valid: false,
                    weight: 8.0,
                },
                Report {
                    collector: 1,
                    labeled_valid: true,
                    weight: 1.0,
                },
                Report {
                    collector: 2,
                    labeled_valid: true,
                    weight: 1.0,
                },
                Report {
                    collector: 3,
                    labeled_valid: true,
                    weight: 1.0,
                },
            ],
        ),
    ];
    let mut t1 = Table::new(
        "screening rule in isolation (100k samples per cell)",
        &[
            "profile",
            "f",
            "measured P[unchecked]",
            "analytic Σf·w²/W²",
            "bound f",
            "≤ f?",
        ],
    );
    for (name, reports) in &profiles {
        for f in [0.2, 0.5, 0.8] {
            let measured = isolated_rate(reports, f, 100_000, 42);
            let analytic = prob_unchecked(reports, f);
            t1.row(vec![
                (*name).into(),
                format!("{f:.1}"),
                format!("{measured:.4}"),
                format!("{analytic:.4}"),
                format!("{f:.1}"),
                (measured <= f + 0.01).to_string(),
            ]);
        }
    }
    t1.print();

    // Part 2: the full protocol.
    let seeds = seed_list(7, args.get_or("seeds", 10));
    let rounds = args.get_or("rounds", 12u32);
    let mut t2 = Table::new(
        "full protocol: measured unchecked fraction per governor (mean ± std over seeds)",
        &["f", "unchecked fraction", "max over governors", "bound f"],
    );
    for f in [0.1, 0.3, 0.5, 0.7, 0.9] {
        let runs = run_seeds(&seeds, |seed| {
            let mut cfg = ProtocolConfig {
                seed,
                ..Default::default()
            };
            cfg.reputation.f = f;
            let mut sim = Simulation::builder(cfg)
                .provider_profiles(vec![
                    ProviderProfile {
                        invalid_rate: 0.9,
                        active: false
                    };
                    8
                ])
                .build()
                .expect("valid config");
            sim.run(rounds);
            let fractions: Vec<f64> = (0..4)
                .map(|g| sim.metrics(g).unchecked_fraction())
                .collect();
            (
                mean(&fractions),
                fractions.iter().cloned().fold(0.0, f64::max),
            )
        });
        let means: Vec<f64> = runs.iter().map(|r| r.0).collect();
        let maxes: Vec<f64> = runs.iter().map(|r| r.1).collect();
        t2.row(vec![
            format!("{f:.1}"),
            pm(&means),
            format!("{:.3}", maxes.iter().cloned().fold(0.0, f64::max)),
            format!("{f:.1}"),
        ]);
    }
    t2.print();
    println!("Interpretation: every measured rate sits at the analytic value and");
    println!("below the Lemma 2 bound; the single-reporter worst case makes the");
    println!("bound tight (measured ≈ f). In the full protocol with r = 4 honest");
    println!("equal-weight reporters the rate concentrates near f/r, far under f.");
}

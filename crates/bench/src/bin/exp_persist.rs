//! **E16 — durability: crash-safe persistence, signed checkpoints, and
//! O(delta) state-sync.**
//!
//! ```text
//! cargo run --release -p prb-bench --bin exp_persist [--quick]
//!     [--bench-out BENCH_persist.json]
//! ```
//!
//! Three phases, all assertion-gated:
//!
//! - **kill-at-any-byte matrix**: a reference chain is mirrored into a
//!   durable store with small segments (forcing rolls), then the
//!   on-disk byte stream is cut at every offset `k` and reopened. Each
//!   recovery must land exactly on the last durable block boundary
//!   (computed independently from the record layout), export
//!   byte-identical to the reference prefix at that height, and accept
//!   the remaining suffix back to the reference head.
//! - **checkpoint state-sync**: a governor crashed across several
//!   checkpoint intervals recovers by adopting a quorum-signed
//!   checkpoint certificate from the anti-entropy sync path and then
//!   fetches only the `delta = head − serial` suffix: the page count
//!   after adoption is asserted `≤ delta / sync_page + 1`.
//! - **restart**: a deployment with `store_dir` set is torn down and
//!   rebuilt over the same directories; every governor must reopen
//!   byte-identical to its pre-crash chain (same master seed — the
//!   committee identities derive from it — with a fresh `driver_seed`
//!   decorrelating the resumed workload) and keep committing. A second
//!   restart with one governor's segment tail physically truncated must
//!   recover the surviving prefix and resync the lost blocks from its
//!   peers.
//!
//! The machine-readable summary goes to `BENCH_persist.json` (override
//! with `--bench-out`). Every field is deterministic — no wall-clock,
//! no filesystem paths — so two runs of the same mode produce
//! byte-identical files; `--quick` strides the kill matrix and shrinks
//! the runs for CI smoke.

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

use prb_bench::{Args, Table};
use prb_core::config::{GovernorMode, ProtocolConfig};
use prb_core::sim::Simulation;
use prb_crypto::identity::NodeId;
use prb_crypto::signer::CryptoScheme;
use prb_ledger::block::{Block, BlockEntry, Verdict};
use prb_ledger::chain::Chain;
use prb_ledger::transaction::{Label, SignedTx, TxPayload};
use prb_net::fault::FaultPlan;
use prb_net::time::SimTime;
use prb_store::{BlockStore, FsyncPolicy, StoreOptions};

/// Root scratch directory for this run (removed before exit).
fn scratch_root() -> PathBuf {
    std::env::temp_dir().join(format!("prb-exp-persist-{}", std::process::id()))
}

fn store_opts(segment_bytes: u64) -> StoreOptions {
    StoreOptions {
        chain_tag: b"persist-exp".to_vec(),
        b_limit: 64,
        segment_bytes,
        fsync: FsyncPolicy::Always,
    }
}

fn entry(nonce: u64) -> BlockEntry {
    let key = CryptoScheme::sim().keypair_from_seed(b"persist-p0");
    BlockEntry {
        tx: SignedTx::create(
            TxPayload {
                provider: NodeId::provider(0),
                nonce,
                data: vec![nonce as u8; 24],
            },
            nonce,
            &key,
        ),
        verdict: Verdict::CheckedValid,
        reported_labels: vec![(NodeId::collector(0), Label::Valid)],
    }
}

fn extend(chain: &Chain, entries: Vec<BlockEntry>) -> Block {
    Block::build(
        chain.next_serial(),
        entries,
        chain.head_hash(),
        NodeId::governor(0),
        chain.next_serial(),
    )
}

/// Sorted segment files of a store directory.
fn segment_files(dir: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = fs::read_dir(dir)
        .expect("store dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("seg-"))
        })
        .collect();
    files.sort();
    files
}

/// What the kill-at-any-byte matrix reports.
struct KillMatrix {
    cuts: u64,
    total_bytes: u64,
    segments: usize,
    max_truncated_bytes: u64,
    torn_header_cuts: u64,
}

/// Builds a reference store, then cuts the concatenated segment byte
/// stream at every offset (striding in quick mode) and proves each
/// recovery byte-identical and forward-completable.
fn kill_matrix(root: &Path, blocks: u64, segment_bytes: u64, stride: usize) -> KillMatrix {
    let golden = root.join("golden");
    let (_store, chain, snapshots) = {
        let (mut store, recovered) =
            BlockStore::open(&golden, store_opts(segment_bytes)).expect("golden store");
        let mut chain = recovered.chain;
        let mut snapshots = vec![chain.export()];
        for i in 0..blocks {
            let block = extend(&chain, vec![entry(i * 2), entry(i * 2 + 1)]);
            chain.append(block.clone()).expect("reference append");
            store.append(&block).expect("golden append");
            snapshots.push(chain.export());
        }
        (store, chain, snapshots)
    };

    // Independent ground truth from the on-disk layout: the global end
    // offset of every record, walking the segment format directly
    // (16-byte segment header, then `len | checksum32 | payload`
    // records). `expected(k)` = records wholly durable within `k` bytes.
    let files = segment_files(&golden);
    let mut record_ends = Vec::new();
    let mut global = 0u64;
    let mut file_bytes = Vec::new();
    for path in &files {
        let bytes = fs::read(path).expect("segment bytes");
        let mut pos = 16u64;
        while (pos as usize) < bytes.len() {
            let len = u32::from_be_bytes(
                bytes[pos as usize..pos as usize + 4]
                    .try_into()
                    .expect("len header"),
            ) as u64;
            pos += 36 + len;
            record_ends.push(global + pos);
        }
        global += bytes.len() as u64;
        file_bytes.push(bytes);
    }
    let total: u64 = global;
    assert_eq!(record_ends.len() as u64, blocks, "one record per block");

    let scratch = root.join("cut");
    let mut cuts = 0u64;
    let mut max_truncated = 0u64;
    let mut torn_header_cuts = 0u64;
    let mut prev_height = 0u64;
    let mut heights_seen = vec![false; blocks as usize + 1];
    for k in (0..=total as usize).step_by(stride) {
        let k = k as u64;
        let _ = fs::remove_dir_all(&scratch);
        fs::create_dir_all(&scratch).expect("scratch dir");
        // Materialize exactly the first `k` bytes of the stream: files
        // wholly before the cut copy verbatim, the straddling file is
        // cut short, later files never existed.
        let mut off = 0u64;
        for (path, bytes) in files.iter().zip(&file_bytes) {
            let end = off + bytes.len() as u64;
            if k > off {
                let take = (k - off).min(bytes.len() as u64) as usize;
                fs::write(
                    scratch.join(path.file_name().expect("segment name")),
                    &bytes[..take],
                )
                .expect("write cut segment");
            }
            off = end;
        }
        let (mut store, recovered) =
            BlockStore::open(&scratch, store_opts(segment_bytes)).expect("reopen after cut");
        let height = recovered.chain.height();
        let expected = record_ends.iter().filter(|&&e| e <= k).count() as u64;
        assert_eq!(
            height, expected,
            "cut at byte {k}: recovered height {height}, layout says {expected}"
        );
        assert_eq!(
            recovered.chain.export(),
            snapshots[height as usize],
            "cut at byte {k}: recovered prefix is not byte-identical"
        );
        assert!(height >= prev_height, "recovery regressed at byte {k}");
        prev_height = height;
        heights_seen[height as usize] = true;
        max_truncated = max_truncated.max(recovered.truncated_bytes);
        if recovered.dropped_segments > 0 {
            torn_header_cuts += 1;
        }
        // Forward completion: the survivor accepts the lost suffix and
        // ends at the reference head, byte-identical.
        let mut cut_chain = recovered.chain;
        for s in height + 1..=blocks {
            let block = chain.retrieve(s).expect("reference block").clone();
            cut_chain.append(block.clone()).expect("suffix re-append");
            store.append(&block).expect("suffix re-append to store");
        }
        assert_eq!(
            cut_chain.export(),
            snapshots[blocks as usize],
            "cut at byte {k}: suffix replay diverged from the reference head"
        );
        cuts += 1;
    }
    if stride == 1 {
        // Every cut offset visited: every intermediate height must have
        // been recovered at least once.
        assert!(
            heights_seen.iter().all(|&s| s),
            "some durable height was never produced by any cut"
        );
    }
    KillMatrix {
        cuts,
        total_bytes: total,
        segments: files.len(),
        max_truncated_bytes: max_truncated,
        torn_header_cuts,
    }
}

/// What the checkpoint state-sync phase reports.
struct CheckpointSync {
    head: u64,
    adopted_serial: u64,
    delta: u64,
    pages_after_adopt: u64,
    page_bound: u64,
    certs_formed: u64,
    shares_sent: u64,
    base_after_adopt: u64,
}

/// A governor crashed across several checkpoint intervals recovers via
/// a quorum-signed checkpoint plus an O(delta) suffix fetch.
fn checkpoint_sync(rounds: u32) -> CheckpointSync {
    let cfg = ProtocolConfig {
        governor_mode: GovernorMode::CheckAll,
        checkpoint_interval: 2,
        sync_page: 4,
        seed: 31,
        ..Default::default()
    };
    let rt = cfg.round_ticks();
    let mut sim = Simulation::new(cfg.clone()).expect("valid config");
    let mut faults = FaultPlan::none();
    faults.crash_window(sim.governor_net_index(3), SimTime(rt), SimTime(10 * rt));
    sim.set_faults(faults);
    sim.run(rounds);
    sim.run_drain_rounds(2);

    let m3 = sim.metrics(3);
    assert!(m3.checkpoints_adopted >= 1, "governor 3 never adopted");
    let head = sim.governor(0).chain().height();
    let adopted = m3.adopted_serial;
    let delta = head - adopted;
    let bound = delta / cfg.sync_page as u64 + 1;
    assert!(
        m3.pages_after_adopt <= bound,
        "O(delta) violated: {} pages for delta {delta}",
        m3.pages_after_adopt
    );
    let chain3 = sim.governor(3).chain();
    assert!(chain3.is_anchored(), "adopter should be anchored");
    assert!(sim.chains_agree(), "suffix disagrees after adoption");
    let (mut certs, mut shares) = (0, 0);
    for g in 0..cfg.governors {
        certs += sim.metrics(g).checkpoint_certs_formed;
        shares += sim.metrics(g).checkpoint_shares_sent;
    }
    CheckpointSync {
        head,
        adopted_serial: adopted,
        delta,
        pages_after_adopt: m3.pages_after_adopt,
        page_bound: bound,
        certs_formed: certs,
        shares_sent: shares,
        base_after_adopt: chain3.base(),
    }
}

/// What the restart phase reports.
struct Restart {
    first_height: u64,
    resumed_height: u64,
    cert_recovered_height: u64,
    torn_first_height: u64,
    torn_recovered_height: u64,
    final_height: u64,
}

/// Tear down a deployment with durable stores, rebuild it over the same
/// directories, and prove byte-identical recovery plus continued
/// progress — then repeat with one governor's tail physically truncated.
fn restart(root: &Path, rounds: u32) -> Restart {
    let dir = root.join("deployment");
    let cfg = ProtocolConfig {
        governor_mode: GovernorMode::CheckAll,
        checkpoint_interval: 2,
        store_dir: Some(dir.clone()),
        seed: 101,
        ..Default::default()
    };

    let mut sim = Simulation::new(cfg.clone()).expect("valid config");
    sim.run(rounds);
    sim.run_drain_rounds(1);
    let first_height = sim.governor(0).chain().height();
    let exports: Vec<Vec<u8>> = (0..cfg.governors)
        .map(|g| sim.governor(g).chain().export())
        .collect();
    assert!(first_height >= u64::from(rounds) - 1, "first run stalled");
    drop(sim);

    // Restart 1: clean recovery. Same master seed (same committee, so
    // persisted certs verify), fresh driver seed (fresh workload).
    let mut sim = Simulation::new(ProtocolConfig {
        driver_seed: Some(7),
        ..cfg.clone()
    })
    .expect("valid config");
    for g in 0..cfg.governors {
        assert_eq!(
            sim.governor(g).chain().export(),
            exports[g as usize],
            "governor {g} did not reopen byte-identically"
        );
    }
    sim.run(rounds);
    sim.run_drain_rounds(1);
    let resumed_height = sim.governor(0).chain().height();
    assert!(
        resumed_height > first_height,
        "restarted run never progressed"
    );
    assert!(sim.chains_agree(), "restarted committee diverged");
    drop(sim);

    // Restart 2: governor 3's newest segment loses its tail — a crash
    // mid-append. The lost blocks are *covered by its persisted
    // checkpoint certificate*, so recovery heals through the cert: the
    // store re-anchors at the certified head and loses nothing.
    truncate_tail(&dir.join("g3"), 40);
    let sim = Simulation::new(ProtocolConfig {
        driver_seed: Some(8),
        ..cfg.clone()
    })
    .expect("valid config");
    let cert_recovered_height = sim.governor(3).chain().height();
    // The cert certifies the newest interval boundary; truncation costs
    // one block, so recovery lands at full height (cert ahead of the
    // torn prefix — re-anchored) or one short (boundary was the torn
    // block itself — plain prefix recovery). Either way the durable
    // prefix survives.
    assert!(
        cert_recovered_height >= resumed_height.saturating_sub(1),
        "the torn tail cost more than its unsynced record \
         (recovered {cert_recovered_height}, pre-crash {resumed_height})"
    );
    if cert_recovered_height == resumed_height {
        assert!(
            sim.governor(3).chain().is_anchored(),
            "full-height recovery after a torn tail is only reachable \
             through the persisted cert, which re-anchors"
        );
    }
    drop(sim);

    // Restart 3: the same torn tail with checkpointing disabled — no
    // cert can mask the loss, so governor 3 must reopen on the
    // surviving prefix and resync the lost blocks from its peers.
    let torn_dir = root.join("deployment-torn");
    let torn_cfg = ProtocolConfig {
        governor_mode: GovernorMode::CheckAll,
        checkpoint_interval: 0,
        store_dir: Some(torn_dir.clone()),
        seed: 103,
        ..Default::default()
    };
    let mut sim = Simulation::new(torn_cfg.clone()).expect("valid config");
    sim.run(rounds);
    sim.run_drain_rounds(1);
    let torn_first_height = sim.governor(0).chain().height();
    drop(sim);

    truncate_tail(&torn_dir.join("g3"), 40);
    let mut sim = Simulation::new(ProtocolConfig {
        driver_seed: Some(9),
        ..torn_cfg.clone()
    })
    .expect("valid config");
    let torn_recovered_height = sim.governor(3).chain().height();
    assert!(
        torn_recovered_height < torn_first_height,
        "truncation should have cost governor 3 at least its head block"
    );
    sim.run(rounds);
    sim.run_drain_rounds(2);
    let final_height = sim.governor(0).chain().height();
    for g in 0..torn_cfg.governors {
        assert_eq!(
            sim.governor(g).chain().height(),
            final_height,
            "governor {g} did not rejoin the live head"
        );
    }
    assert!(
        sim.chains_prefix_agree(&(0..torn_cfg.governors).collect::<Vec<_>>()),
        "prefixes diverged after torn-tail resync"
    );
    Restart {
        first_height,
        resumed_height,
        cert_recovered_height,
        torn_first_height,
        torn_recovered_height,
        final_height,
    }
}

/// Chops `bytes` off a store directory's newest segment — a crash
/// mid-append.
fn truncate_tail(store_dir: &Path, bytes: u64) {
    let segs = segment_files(store_dir);
    let tail = segs.last().expect("store has segments");
    let len = fs::metadata(tail).expect("tail metadata").len();
    fs::OpenOptions::new()
        .write(true)
        .open(tail)
        .expect("open tail segment")
        .set_len(len.saturating_sub(bytes))
        .expect("truncate tail segment");
}

fn main() {
    let args = Args::parse();
    let quick = args.flag("quick");
    let out_path = args.get("bench-out").unwrap_or("BENCH_persist.json");
    let root = scratch_root();
    let _ = fs::remove_dir_all(&root);
    fs::create_dir_all(&root).expect("scratch root");

    let blocks = if quick { 6 } else { 12 };
    let stride = if quick { 13 } else { 1 };
    let rounds = if quick { 5 } else { 8 };
    let sync_rounds = if quick { 14 } else { 16 };

    println!("# E16 — durable store, signed checkpoints, O(delta) state-sync\n");

    let km = kill_matrix(&root, blocks, 512, stride);
    let mut table = Table::new(
        "kill-at-any-byte matrix (every recovery byte-identical and forward-completable)",
        &[
            "cuts",
            "stream bytes",
            "segments",
            "max torn bytes",
            "torn-header cuts",
        ],
    );
    table.row(vec![
        km.cuts.to_string(),
        km.total_bytes.to_string(),
        km.segments.to_string(),
        km.max_truncated_bytes.to_string(),
        km.torn_header_cuts.to_string(),
    ]);
    table.print();

    let cs = checkpoint_sync(sync_rounds);
    let mut table = Table::new(
        "checkpoint state-sync (governor 3 crashed across checkpoint intervals)",
        &[
            "head",
            "adopted serial",
            "delta",
            "pages after adopt",
            "bound",
            "certs formed",
            "shares sent",
        ],
    );
    table.row(vec![
        cs.head.to_string(),
        cs.adopted_serial.to_string(),
        cs.delta.to_string(),
        cs.pages_after_adopt.to_string(),
        cs.page_bound.to_string(),
        cs.certs_formed.to_string(),
        cs.shares_sent.to_string(),
    ]);
    table.print();

    let rs = restart(&root, rounds);
    let mut table = Table::new(
        "restart over durable stores (byte-identical reopen, cert heal, torn-tail resync)",
        &[
            "first height",
            "resumed height",
            "cert-heal height",
            "torn-run height",
            "torn recovery height",
            "final height",
        ],
    );
    table.row(vec![
        rs.first_height.to_string(),
        rs.resumed_height.to_string(),
        rs.cert_recovered_height.to_string(),
        rs.torn_first_height.to_string(),
        rs.torn_recovered_height.to_string(),
        rs.final_height.to_string(),
    ]);
    table.print();

    println!("Interpretation: the store's recovery invariant holds at every byte");
    println!("offset — a crash can only cost the unsynced tail, never a durable");
    println!("prefix, and the survivor always re-accepts the lost suffix. A node");
    println!("that slept through checkpoint intervals rejoins via one signed");
    println!("checkpoint plus an O(delta) page fetch instead of replaying the");
    println!("chain, and a restarted deployment picks up exactly where its");
    println!("stores left off.");

    // --- BENCH_persist.json (deterministic: no wall-clock, no paths) ----
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"experiment\": \"persist\",");
    let _ = writeln!(
        out,
        "  \"config\": {{\"blocks\": {blocks}, \"segment_bytes\": 512, \
         \"stride\": {stride}, \"rounds\": {rounds}, \
         \"sync_rounds\": {sync_rounds}, \"checkpoint_interval\": 2, \
         \"sync_page\": 4}},"
    );
    let _ = writeln!(
        out,
        "  \"kill_matrix\": {{\"cuts\": {}, \"stream_bytes\": {}, \
         \"segments\": {}, \"max_truncated_bytes\": {}, \
         \"torn_header_cuts\": {}, \"byte_identical\": true}},",
        km.cuts, km.total_bytes, km.segments, km.max_truncated_bytes, km.torn_header_cuts
    );
    let _ = writeln!(
        out,
        "  \"checkpoint_sync\": {{\"head\": {}, \"adopted_serial\": {}, \
         \"delta\": {}, \"pages_after_adopt\": {}, \"page_bound\": {}, \
         \"anchored_base\": {}, \"certs_formed\": {}, \"shares_sent\": {}}},",
        cs.head,
        cs.adopted_serial,
        cs.delta,
        cs.pages_after_adopt,
        cs.page_bound,
        cs.base_after_adopt,
        cs.certs_formed,
        cs.shares_sent
    );
    let _ = writeln!(
        out,
        "  \"restart\": {{\"first_height\": {}, \"resumed_height\": {}, \
         \"cert_recovered_height\": {}, \"torn_first_height\": {}, \
         \"torn_recovered_height\": {}, \"final_height\": {}, \
         \"byte_identical_reopen\": true, \"torn_tail_resynced\": true}},",
        rs.first_height,
        rs.resumed_height,
        rs.cert_recovered_height,
        rs.torn_first_height,
        rs.torn_recovered_height,
        rs.final_height
    );
    // The asserts above panic on violation; reaching this point means
    // every invariant held.
    let _ = writeln!(
        out,
        "  \"asserts\": {{\"kill_matrix_byte_identical\": \"pass\", \
         \"kill_matrix_exact_boundary\": \"pass\", \
         \"suffix_replay_completes\": \"pass\", \
         \"pages_within_delta_bound\": \"pass\", \
         \"restart_byte_identical\": \"pass\", \
         \"torn_tail_resynced\": \"pass\"}}"
    );
    out.push_str("}\n");
    fs::remove_dir_all(&root).expect("scratch cleanup");
    std::fs::write(out_path, &out).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    println!("\nwritten to {out_path}");
}

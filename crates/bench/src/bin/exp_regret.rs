//! **E1 — Theorem 1: governor regret is `O(√T)`** (plus ablations A1/A2).
//!
//! ```text
//! cargo run --release -p prb-bench --bin exp_regret [--seeds 30] [--ablate-beta] [--ablate-gamma]
//! ```
//!
//! Part 1 runs the learning-theoretic process of Theorem 1 directly
//! (r = 8 collectors over one provider, one perfectly honest, the rest
//! mislabeling at graded rates) over a sweep of horizons `T`, and reports
//! the measured regret `L_T − S^min_T`, the normalized `regret/√T` (flat
//! ⇒ the √ shape holds), and the closed-form theorem bound.
//!
//! Part 2 cross-checks inside the full protocol: the same adversary mix
//! drives a real deployment and regret is measured from governor 0's
//! metrics over revealed unchecked transactions.

use prb_bench::{mean, pm, run_seeds, run_traced, seed_list, Args, Table};
use prb_core::behavior::ProviderProfile;
use prb_core::config::ProtocolConfig;
use prb_core::sim::Simulation;
use prb_reputation::params::ReputationParams;
use prb_reputation::rwm::{Advice, GammaMode, Rwm};
use prb_workload::adversary::AdversaryMix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const R: usize = 8;

fn theory_regret(
    t: u64,
    seed: u64,
    beta: f64,
    gamma_mode: GammaMode,
    best_err: f64,
) -> (f64, f64, f64) {
    let mut rwm = Rwm::new(R, beta);
    rwm.set_gamma_mode(gamma_mode);
    let mut pick_rng = StdRng::seed_from_u64(seed);
    let mut advice_rng = StdRng::seed_from_u64(seed ^ 0xabcd);
    for _ in 0..t {
        let advice: Vec<Advice> = (0..R)
            .map(|i| {
                if i == 0 {
                    if best_err > 0.0 && advice_rng.gen::<f64>() < best_err {
                        Advice::Wrong
                    } else {
                        Advice::Correct
                    }
                } else {
                    // Hard instances set best_err near 0.5 so the noisy
                    // experts are only marginally worse.
                    let p = if best_err >= 0.4 {
                        0.5
                    } else {
                        0.2 + 0.6 * i as f64 / R as f64
                    };
                    if advice_rng.gen::<f64>() < p {
                        Advice::Wrong
                    } else {
                        Advice::Correct
                    }
                }
            })
            .collect();
        rwm.round(&advice, &mut pick_rng);
    }
    (rwm.regret(), rwm.best_expert_loss(), rwm.theorem_bound(t))
}

fn theory_table(
    seeds: &[u64],
    gamma_mode: GammaMode,
    fixed_beta: Option<f64>,
    best_err: f64,
    horizons: &[u64],
    title: &str,
) {
    let mut table = Table::new(
        title,
        &[
            "T",
            "beta",
            "regret L_T − S_min",
            "regret/√T",
            "S_min",
            "theorem bound",
        ],
    );
    for &t in horizons {
        let beta = fixed_beta.unwrap_or_else(|| ReputationParams::theorem_beta(R, t));
        let runs = run_seeds(seeds, |s| theory_regret(t, s, beta, gamma_mode, best_err));
        let regrets: Vec<f64> = runs.iter().map(|r| r.0).collect();
        let smins: Vec<f64> = runs.iter().map(|r| r.1).collect();
        let bounds: Vec<f64> = runs.iter().map(|r| r.2).collect();
        let norm: Vec<f64> = regrets.iter().map(|r| r / (t as f64).sqrt()).collect();
        table.row(vec![
            t.to_string(),
            format!("{beta:.3}"),
            pm(&regrets),
            pm(&norm),
            pm(&smins),
            format!("{:.0}", mean(&bounds)),
        ]);
    }
    table.print();
}

/// The E1b deployment: 8 providers, the 1-honest-7-noisy collector mix.
fn build_protocol_sim(seed: u64) -> Simulation {
    let mut cfg = ProtocolConfig {
        providers: 8,
        collectors: 8,
        replication: 8, // every collector watches every provider: r = 8
        governors: 4,
        tx_per_provider: 6,
        seed,
        ..Default::default()
    };
    cfg.reputation.f = 0.8;
    Simulation::builder(cfg)
        .collector_profiles(AdversaryMix::OneHonestRestNoisy.profiles(8))
        .provider_profiles(vec![
            ProviderProfile {
                invalid_rate: 0.5,
                active: false
            };
            8
        ])
        .build()
        .expect("valid config")
}

fn protocol_regret(seed: u64, rounds: u32) -> (f64, f64, f64) {
    let mut sim = build_protocol_sim(seed);
    sim.run(rounds);
    sim.run_drain_rounds(3);
    let m = sim.metrics(0);
    let mut regret_sum = 0.0;
    let mut smin_sum = 0.0;
    for p in 0..8 {
        let collectors = sim.topology().collectors_of(p).to_vec();
        regret_sum += m.regret(p, &collectors);
        smin_sum += m.best_collector_loss(p, &collectors);
    }
    (regret_sum, smin_sum, m.revealed as f64)
}

fn main() {
    let args = Args::parse();
    // `--trace-out FILE`: one traced run of the smallest E1b deployment
    // (10 rounds, seed 100) instead of the sweeps; prints the event
    // summary, phase percentiles, and the trace ↔ kernel reconciliation.
    if run_traced(&args, args.get_or("trace-rounds", 10), 3, || {
        build_protocol_sim(100)
    }) {
        return;
    }
    let seeds = seed_list(100, args.get_or("seeds", 30));

    println!("# E1 — regret of the reputation mechanism (Theorem 1)\n");
    theory_table(
        &seeds,
        GammaMode::PaperMax,
        None,
        0.0,
        &[250, 500, 1000, 2000, 4000, 8000, 16000],
        "E1a: one PERFECT collector — regret plateaus (stronger than the O(√T) bound)",
    );
    theory_table(
        &seeds,
        GammaMode::PaperMax,
        None,
        0.45,
        // The paper notes its beta choice is valid for T ≤ 4800 (r = 8):
        // sweep inside that region.
        &[300, 600, 1200, 2400, 4800],
        "E1a': hard instance (best collector 45% error vs 50% rest) — the √T regime (T ≤ 4800 per the paper)",
    );

    if args.flag("ablate-beta") {
        theory_table(
            &seeds,
            GammaMode::PaperMax,
            Some(0.9),
            0.45,
            &[300, 600, 1200, 2400, 4800],
            "A1: fixed beta = 0.9 (the paper's practical choice) instead of theorem-optimal",
        );
    }
    if args.flag("ablate-gamma") {
        theory_table(
            &seeds,
            GammaMode::FixedBeta,
            None,
            0.45,
            &[300, 600, 1200, 2400, 4800],
            "A2: naive gamma = beta — hard instance",
        );
        theory_table(
            &seeds,
            GammaMode::FixedBeta,
            None,
            0.0,
            &[250, 500, 1000, 2000, 4000],
            "A2': naive gamma = beta — one perfect collector (compare the E1a plateau)",
        );
    }

    println!("## E1b: regret inside the full protocol\n");
    let proto_seeds = seed_list(500, args.get_or("proto-seeds", 8));
    let mut table = Table::new(
        "protocol-level regret (sum over 8 providers; governor g0)",
        &["rounds", "revealed txs T", "regret", "regret/√T", "S_min"],
    );
    for rounds in [10u32, 20, 40] {
        let runs = run_seeds(&proto_seeds, |s| protocol_regret(s, rounds));
        let regrets: Vec<f64> = runs.iter().map(|r| r.0).collect();
        let smins: Vec<f64> = runs.iter().map(|r| r.1).collect();
        let ts: Vec<f64> = runs.iter().map(|r| r.2).collect();
        let norm: Vec<f64> = runs
            .iter()
            .map(|r| if r.2 > 0.0 { r.0 / r.2.sqrt() } else { 0.0 })
            .collect();
        table.row(vec![
            rounds.to_string(),
            pm(&ts),
            pm(&regrets),
            pm(&norm),
            pm(&smins),
        ]);
    }
    table.print();
    println!("Interpretation: with a perfect collector present, regret *plateaus*");
    println!("(the adversaries' weights decay geometrically) — even stronger than");
    println!("the O(√T) guarantee. When the best collector itself errs, regret");
    println!("grows ∝ √T: the `regret/√T` column stays flat while T grows 64×.");
    println!("The theorem bound dominates every measured regret.");
}

//! **`prb-trace` — replay and analyze a `--trace-out` JSONL trace.**
//!
//! ```text
//! cargo run --release -p prb-bench --bin prb-trace -- --in trace.jsonl \
//!     [--out BENCH_latency.json] [--timelines N] [--check] [--no-strict-propose]
//! ```
//!
//! Reads the trace any experiment wrote via the shared `--trace-out`
//! flag and prints the per-transaction lifecycle report: coverage,
//! per-stage and end-to-end latency percentiles (p50/p99/p999 in sim
//! ticks and rounds), phase attribution, and the critical path of a
//! committed transaction. `--out` additionally writes the deterministic
//! machine-readable `BENCH_latency.json`. `--timelines N` prints the
//! first N per-transaction timelines. `--check` replays the stream
//! through the shared lifecycle state-machine validator
//! (`prb_obs::lifecycle`); pass `--no-strict-propose` for traces from
//! byzantine (equivocating) runs, where a committed twin block's
//! proposal event names the other twin.

use prb_bench::trace::{analyze, lifecycle_events, parse_trace, render_report, to_json};
use prb_bench::Args;
use prb_obs::lifecycle::{validate, Checks};

fn fmt_stage(at: Option<(u64, u64)>) -> String {
    match at {
        Some((t, r)) => format!("t={t} r={r}"),
        None => "-".into(),
    }
}

fn main() {
    let args = Args::parse();
    let Some(path) = args.get("in") else {
        eprintln!(
            "usage: prb-trace --in TRACE.jsonl [--out BENCH_latency.json] \
             [--timelines N] [--check] [--no-strict-propose]"
        );
        std::process::exit(2);
    };
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read trace {path}: {e}"));
    let events = parse_trace(&text).unwrap_or_else(|(line, e)| panic!("{path}:{line}: {e}"));
    println!(
        "# prb-trace: {path} ({} events, {} lines)\n",
        events.len(),
        text.lines().count()
    );

    if args.flag("check") {
        let checks = Checks {
            strict_propose: !args.flag("no-strict-propose"),
        };
        match validate(&lifecycle_events(&events), checks) {
            Ok(()) => println!("lifecycle state machine: OK\n"),
            Err(violations) => {
                eprintln!("lifecycle state machine: {} violations", violations.len());
                for v in violations.iter().take(20) {
                    eprintln!("  {v}");
                }
                std::process::exit(1);
            }
        }
    }

    let report = analyze(&events);
    println!("{}", render_report(&report));

    let n = args.get_or("timelines", 0usize);
    if n > 0 {
        println!("## first {n} transaction timelines");
        println!(
            "{:<20} {:>9} {:>14} {:>14} {:>14} {:>14} {:>14} dropped",
            "trace", "terminal", "submitted", "admitted", "screened", "proposed", "committed"
        );
        for tl in report.timelines.values().take(n) {
            println!(
                "{:<20} {:>9} {:>14} {:>14} {:>14} {:>14} {:>14} {}",
                format!("{:016x}", tl.trace),
                tl.terminal(),
                fmt_stage(tl.submitted),
                fmt_stage(tl.admitted),
                fmt_stage(tl.screened),
                fmt_stage(tl.proposed),
                fmt_stage(tl.committed),
                tl.dropped
                    .as_ref()
                    .map_or("-".into(), |(t, r)| format!("t={t} ({r})")),
            );
        }
        println!();
    }

    if let Some(out) = args.get("out") {
        std::fs::write(out, to_json(&report)).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
        println!("machine-readable artifact written to {out}");
    }
}

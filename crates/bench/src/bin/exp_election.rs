//! **E8 — §3.4.3: VRF-PoS leader election is stake-proportional.**
//!
//! ```text
//! cargo run --release -p prb-bench --bin exp_election [--rounds 20000] [--crypto sim]
//! ```
//!
//! Ten governors hold stakes 1..10; over many rounds each governor's
//! election frequency should match its stake share (the paper's
//! pseudorandomness claim). We report frequencies, the χ² statistic
//! against the stake-proportional null (9 degrees of freedom;
//! χ²₀.₉₉ = 21.67), and contrast with the round-robin baseline under the
//! same skewed stakes.

use prb_bench::{crypto_from_args, Args, Table};
use prb_consensus::election::{elect, ElectionClaim};
use prb_consensus::round_robin::{leader_of_round, weighted_leader_of_round};
use prb_crypto::signer::{KeyPair, PublicKey};

fn main() {
    let args = Args::parse();
    // Shared `--trace-out FILE` flag: one traced run of a representative
    // deployment (JSONL trace + summary) instead of the sweeps.
    if prb_bench::run_traced(&args, 10, 2, || prb_bench::traced_default_sim(100)) {
        return;
    }
    let rounds = args.get_or("rounds", 20_000u64);
    let scheme = crypto_from_args(&args);
    let m = 10u32;
    let stakes: Vec<u64> = (1..=m as u64).collect();
    let total: u64 = stakes.iter().sum();

    let keys: Vec<KeyPair> = (0..m)
        .map(|g| scheme.keypair_from_seed(format!("election-{g}").as_bytes()))
        .collect();
    let pks: Vec<PublicKey> = keys.iter().map(|k| k.public_key()).collect();

    let mut wins = vec![0u64; m as usize];
    let mut rr_wins = vec![0u64; m as usize];
    let mut wrr_wins = vec![0u64; m as usize];
    for round in 0..rounds {
        let claims: Vec<ElectionClaim> = keys
            .iter()
            .enumerate()
            .filter_map(|(g, k)| {
                ElectionClaim::compute(b"exp-election", round, g as u32, stakes[g], k)
            })
            .collect();
        let (result, rejections) = elect(b"exp-election", round, &claims, &stakes, &pks);
        assert!(rejections.is_empty());
        wins[result.expect("someone wins").leader as usize] += 1;
        rr_wins[leader_of_round(round, m) as usize] += 1;
        wrr_wins[weighted_leader_of_round(round, &stakes) as usize] += 1;
    }

    println!(
        "# E8 — leader election fairness ({rounds} rounds, crypto = {})\n",
        scheme.name()
    );
    let mut table = Table::new(
        "election frequency vs stake share",
        &[
            "governor",
            "stake",
            "expected %",
            "VRF-PoS %",
            "round-robin %",
            "weighted rotation %",
        ],
    );
    let mut chi2 = 0.0;
    for g in 0..m as usize {
        let expected = stakes[g] as f64 / total as f64;
        let observed = wins[g] as f64 / rounds as f64;
        let exp_count = expected * rounds as f64;
        chi2 += (wins[g] as f64 - exp_count).powi(2) / exp_count;
        table.row(vec![
            format!("g{g}"),
            stakes[g].to_string(),
            format!("{:.2}", 100.0 * expected),
            format!("{:.2}", 100.0 * observed),
            format!("{:.2}", 100.0 * rr_wins[g] as f64 / rounds as f64),
            format!("{:.2}", 100.0 * wrr_wins[g] as f64 / rounds as f64),
        ]);
    }
    table.print();
    println!("χ² against stake-proportional null: {chi2:.2} (9 dof; accept at 1% if < 21.67)");
    println!("stake-proportional: {}", chi2 < 21.67);
    println!("\nInterpretation: VRF-PoS frequencies match stake shares (χ² accepts");
    println!("the null); plain round-robin ignores stake entirely (every governor");
    println!("10%), and weighted rotation matches stake but is fully predictable —");
    println!("the paper's §3.4.3 trade-off.");
}

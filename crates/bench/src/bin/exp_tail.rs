//! **E3 — Theorem 3: the Hoeffding tail on the number of unchecked
//! transactions.**
//!
//! ```text
//! cargo run --release -p prb-bench --bin exp_tail [--trials 4000]
//! ```
//!
//! Theorem 3: with `N` transactions,
//! `P[#unchecked > (f+δ)N] ≤ e^{−2δ²N}`. We Monte-Carlo the *worst case*
//! admitted by Lemma 2 — every transaction independently unchecked with
//! probability exactly `f` (the single-reporter profile) — and compare the
//! empirical tail with the bound. Any other weight profile only lowers the
//! per-transaction probability and hence the tail.

use prb_bench::{Args, Table};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn empirical_tail(n: u32, f: f64, delta: f64, trials: u32, seed: u64) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let threshold = (f + delta) * n as f64;
    let mut exceed = 0u32;
    for _ in 0..trials {
        let mut unchecked = 0u32;
        for _ in 0..n {
            if rng.gen::<f64>() < f {
                unchecked += 1;
            }
        }
        if unchecked as f64 > threshold {
            exceed += 1;
        }
    }
    exceed as f64 / trials as f64
}

fn main() {
    let args = Args::parse();
    // Shared `--trace-out FILE` flag: one traced run of a representative
    // deployment (JSONL trace + summary) instead of the sweeps.
    if prb_bench::run_traced(&args, 10, 2, || prb_bench::traced_default_sim(100)) {
        return;
    }
    let trials = args.get_or("trials", 4_000u32);
    let f = args.get_or("f", 0.5f64);

    println!("# E3 — Hoeffding tail of the unchecked count (Theorem 3)\n");
    let mut table = Table::new(
        &format!("worst-case screening (per-tx skip prob = f = {f}), {trials} trials"),
        &[
            "N",
            "δ",
            "empirical P[#unchecked > (f+δ)N]",
            "bound e^(−2δ²N)",
            "within bound?",
        ],
    );
    for n in [100u32, 500, 1000] {
        for delta in [0.02, 0.05, 0.10, 0.15, 0.20] {
            let emp = empirical_tail(n, f, delta, trials, 9_000 + n as u64);
            let bound = (-2.0 * delta * delta * n as f64).exp();
            table.row(vec![
                n.to_string(),
                format!("{delta:.2}"),
                format!("{emp:.4}"),
                format!("{bound:.4}"),
                (emp <= bound + 1.0 / trials as f64).to_string(),
            ]);
        }
    }
    table.print();
    println!("Interpretation: the empirical tail is dominated by the Hoeffding");
    println!("bound everywhere, and both decay to 0 as δ²N grows — with N = 1000");
    println!("and δ = 0.1 fewer than e^(−20) ≈ 2·10⁻⁹ of runs exceed (f+δ)N.");
}

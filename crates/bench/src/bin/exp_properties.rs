//! **E10 — §3.1 safety & liveness properties under fault injection.**
//!
//! ```text
//! cargo run --release -p prb-bench --bin exp_properties [--rounds 12]
//! ```
//!
//! Exercises the five properties across a fault matrix:
//!
//! - clean run,
//! - forging + misreporting collectors,
//! - a crashed (non-observer) governor,
//! - lossy provider→collector links,
//!
//! and reports Agreement, Chain Integrity, No Skipping, Almost No
//! Creation, and Validity per scenario.

use prb_bench::{Args, Table};
use prb_core::behavior::{CollectorProfile, ProviderProfile};
use prb_core::config::{ProtocolConfig, RevealPolicy};
use prb_core::sim::Simulation;
use prb_ledger::block::Verdict;
use prb_net::fault::FaultPlan;
use prb_net::time::SimTime;

struct PropertyResult {
    agreement: bool,
    integrity: bool,
    no_skipping: bool,
    no_creation: bool,
    validity: bool,
}

fn check_properties(sim: &Simulation, live_governors: &[u32]) -> PropertyResult {
    let agreement = sim.chains_agree_among(live_governors);
    let integrity = live_governors
        .iter()
        .all(|&g| sim.governor(g).chain().audit().is_none());
    let chain = sim.governor(live_governors[0]).chain();
    let no_skipping = (0..=chain.height()).all(|s| chain.retrieve(s).is_some());
    let oracle = sim.oracle();
    let no_creation = chain
        .iter()
        .flat_map(|b| &b.entries)
        .all(|e| oracle.borrow().peek(e.tx.id()).is_some());
    // Validity (liveness for active providers): every *argued-valid* entry
    // is genuinely valid, and no genuinely-valid tx of an active provider
    // remains buried given unlimited argue budget (checked as: every
    // buried valid tx was eventually re-recorded).
    let mut buried_forever = 0;
    for block in chain.iter() {
        for entry in &block.entries {
            if entry.verdict == Verdict::UncheckedInvalid
                && oracle.borrow().peek(entry.tx.id()) == Some(true)
                && chain.latest_verdict(entry.tx.id()) == Some(Verdict::UncheckedInvalid)
            {
                buried_forever += 1;
            }
        }
    }
    let argued_ok = chain
        .iter()
        .flat_map(|b| &b.entries)
        .filter(|e| e.verdict == Verdict::ArguedValid)
        .all(|e| oracle.borrow().peek(e.tx.id()) == Some(true));
    PropertyResult {
        agreement,
        integrity,
        no_skipping,
        no_creation,
        validity: argued_ok && buried_forever == 0,
    }
}

fn scenario(
    name: &str,
    rounds: u32,
    table: &mut Table,
    build: impl FnOnce() -> (Simulation, Vec<u32>),
) {
    let (mut sim, live) = build();
    sim.run(rounds);
    sim.run_drain_rounds(4);
    let r = check_properties(&sim, &live);
    table.row(vec![
        name.into(),
        r.agreement.to_string(),
        r.integrity.to_string(),
        r.no_skipping.to_string(),
        r.no_creation.to_string(),
        r.validity.to_string(),
    ]);
    assert!(
        r.agreement && r.integrity && r.no_skipping && r.no_creation && r.validity,
        "property violated in scenario '{name}'"
    );
}

fn base_cfg(seed: u64) -> ProtocolConfig {
    let mut cfg = ProtocolConfig {
        tx_per_provider: 4,
        seed,
        ..Default::default()
    };
    cfg.reputation.f = 0.7;
    cfg.reveal = RevealPolicy::AfterRounds(1);
    cfg
}

fn main() {
    let args = Args::parse();
    // Shared `--trace-out FILE` flag: one traced run of a representative
    // deployment (JSONL trace + summary) instead of the sweeps.
    if prb_bench::run_traced(&args, 10, 2, || prb_bench::traced_default_sim(100)) {
        return;
    }
    let rounds = args.get_or("rounds", 12u32);

    println!("# E10 — §3.1 properties under fault injection\n");
    let mut table = Table::new(
        "property matrix (all cells must be true)",
        &[
            "scenario",
            "Agreement",
            "Chain Integrity",
            "No Skipping",
            "Almost No Creation",
            "Validity",
        ],
    );

    scenario("clean run", rounds, &mut table, || {
        let sim = Simulation::builder(base_cfg(1))
            .provider_profiles(vec![
                ProviderProfile {
                    invalid_rate: 0.2,
                    active: true
                };
                8
            ])
            .build()
            .expect("valid config");
        (sim, (0..4).collect())
    });

    scenario("forger + misreporters", rounds, &mut table, || {
        let sim = Simulation::builder(base_cfg(2))
            .collector_profile(0, CollectorProfile::forger(0.5))
            .collector_profile(1, CollectorProfile::misreporter(0.8))
            .collector_profile(2, CollectorProfile::misreporter(0.8))
            .provider_profiles(vec![
                ProviderProfile {
                    invalid_rate: 0.2,
                    active: true
                };
                8
            ])
            .build()
            .expect("valid config");
        (sim, (0..4).collect())
    });

    scenario("governor g3 crashed from t=0", rounds, &mut table, || {
        let mut sim = Simulation::builder(base_cfg(3))
            .provider_profiles(vec![
                ProviderProfile {
                    invalid_rate: 0.2,
                    active: true
                };
                8
            ])
            .build()
            .expect("valid config");
        let mut faults = FaultPlan::none();
        faults.crash(sim.governor_net_index(3), SimTime(0));
        sim.set_faults(faults);
        (sim, vec![0, 1, 2])
    });

    scenario(
        "g3 crashes rounds 2–4, recovers and syncs",
        rounds.max(8),
        &mut table,
        || {
            let cfg = base_cfg(5);
            let round_ticks = cfg.round_ticks();
            let mut sim = Simulation::builder(cfg)
                .provider_profiles(vec![
                    ProviderProfile {
                        invalid_rate: 0.2,
                        active: true
                    };
                    8
                ])
                .build()
                .expect("valid config");
            let mut faults = FaultPlan::none();
            faults.crash_window(
                sim.governor_net_index(3),
                SimTime(round_ticks),
                SimTime(4 * round_ticks),
            );
            sim.set_faults(faults);
            (sim, (0..4).collect())
        },
    );

    scenario(
        "10% loss on provider→collector links",
        rounds,
        &mut table,
        || {
            let mut sim = Simulation::builder(base_cfg(4))
                .provider_profiles(vec![
                    ProviderProfile {
                        invalid_rate: 0.2,
                        active: true
                    };
                    8
                ])
                .build()
                .expect("valid config");
            let mut faults = FaultPlan::none();
            for p in 0..8 {
                for c in 0..8 {
                    faults.drop_link(sim.provider_net_index(p), sim.collector_net_index(c), 0.1);
                }
            }
            sim.set_faults(faults);
            (sim, (0..4).collect())
        },
    );

    table.print();
    println!("Interpretation: all five §3.1 properties hold in every scenario:");
    println!("forged transactions never enter the ledger (detected with");
    println!("overwhelming probability via signatures), a crashed governor does");
    println!("not disturb the survivors' agreement (the paper assumes governors");
    println!("do not equivocate; its VRF election is deterministic given claims),");
    println!("and active providers recover every wrongly-buried transaction.");
}

//! **E7 — §4.2 incentives: dishonest collectors earn less.**
//!
//! ```text
//! cargo run --release -p prb-bench --bin exp_incentives [--seeds 6] [--rounds 25]
//! ```
//!
//! Eight collectors with one behaviour profile each (honest, three grades
//! of misreporting, a concealer, a forger, a sleeper, and a second honest
//! control) run together; we report each one's final reputation vector
//! components and cumulative revenue share. The paper's claim: revenue is
//! monotone in honesty, and every misbehaviour class is punished through
//! its own component of `∏w · μ^mis · ν^forge`.

use prb_bench::{mean, pm, run_seeds, seed_list, Args, Table};
use prb_core::behavior::{CollectorProfile, ProviderProfile};
use prb_core::config::ProtocolConfig;
use prb_core::sim::Simulation;

/// The forgiveness ablation: a collector that misreports for the first 12
/// rounds and reforms. Under the paper's rule (floor = 0) its screening
/// weight never recovers; with a positive floor it regains influence.
fn ablate_floor(args: &Args) {
    let seeds = seed_list(400, args.get_or("seeds", 6));
    let rounds = args.get_or("floor-rounds", 40u32);
    let mut table = Table::new(
        "extension ablation: weight floor vs a reformed collector (always-lies rounds 1–20, honest after)",
        &["weight floor", "reformed min weight (end)", "reformed revenue share %", "governor expected loss"],
    );
    for floor in [0.0, 0.1, 0.25] {
        let runs = run_seeds(&seeds, |seed| {
            let mut cfg = ProtocolConfig {
                tx_per_provider: 6,
                seed,
                ..Default::default()
            };
            cfg.reputation.f = 0.9;
            cfg.reputation.weight_floor = floor;
            let mut sim = Simulation::builder(cfg)
                .collector_profile(1, CollectorProfile::misreporter(1.0).reformed_at(20))
                .provider_profiles(vec![
                    ProviderProfile {
                        invalid_rate: 0.5,
                        active: true
                    };
                    8
                ])
                .build()
                .expect("valid config");
            sim.run(rounds);
            sim.run_drain_rounds(3);
            let table = sim.governor(0).reputation();
            let reformed = table.collector(1);
            let min_w = reformed
                .weights()
                .iter()
                .cloned()
                .fold(f64::INFINITY, f64::min);
            let mut paid = [0.0f64; 8];
            for g in 0..4 {
                for (c, share) in sim.metrics(g).revenue_paid.iter().enumerate() {
                    paid[c] += share;
                }
            }
            let total: f64 = paid.iter().sum::<f64>().max(1e-12);
            (min_w, 100.0 * paid[1] / total, sim.metrics(0).expected_loss)
        });
        table.row(vec![
            format!("{floor:.2}"),
            pm(&runs.iter().map(|r| r.0).collect::<Vec<_>>()),
            pm(&runs.iter().map(|r| r.1).collect::<Vec<_>>()),
            pm(&runs.iter().map(|r| r.2).collect::<Vec<_>>()),
        ]);
    }
    table.print();
    println!("Ablation note (two honest findings): (1) the paper's rule (floor 0)");
    println!("is unforgiving — after reform the collector's screening weight stays");
    println!("collapsed, so it can effectively never be drawn again; a positive");
    println!("floor preserves a minimum of screening influence at a small loss");
    println!("cost. (2) a floor alone does NOT restore *revenue*: the μ^misreport");
    println!("counter dominates the §3.4.3 product and keeps a past liar's share");
    println!("at zero regardless — forgiveness would need counter amnesty too.");
}

fn main() {
    let args = Args::parse();
    // Shared `--trace-out FILE` flag: one traced run of a representative
    // deployment (JSONL trace + summary) instead of the sweeps.
    if prb_bench::run_traced(&args, 10, 2, || prb_bench::traced_default_sim(100)) {
        return;
    }
    let seeds = seed_list(200, args.get_or("seeds", 6));
    let rounds = args.get_or("rounds", 25u32);

    let profiles: Vec<(&str, CollectorProfile)> = vec![
        ("honest", CollectorProfile::honest()),
        ("honest (control)", CollectorProfile::honest()),
        ("misreport 20%", CollectorProfile::misreporter(0.2)),
        ("misreport 50%", CollectorProfile::misreporter(0.5)),
        ("misreport 80%", CollectorProfile::misreporter(0.8)),
        ("conceal 50%", CollectorProfile::concealer(0.5)),
        ("forge 30%", CollectorProfile::forger(0.3)),
        (
            "sleeper (hostile from round 12)",
            CollectorProfile::misreporter(0.8).sleeper(12),
        ),
    ];

    println!("# E7 — incentives: behaviour vs reputation vs revenue\n");
    struct Row {
        mean_weight: Vec<f64>,
        misreport: Vec<f64>,
        forge: Vec<f64>,
        revenue_share: Vec<f64>,
    }
    let mut rows: Vec<Row> = (0..8)
        .map(|_| Row {
            mean_weight: vec![],
            misreport: vec![],
            forge: vec![],
            revenue_share: vec![],
        })
        .collect();

    let runs = run_seeds(&seeds, |seed| {
        let mut cfg = ProtocolConfig {
            tx_per_provider: 6,
            seed,
            ..Default::default()
        };
        cfg.reputation.f = 0.6;
        let mut sim = Simulation::builder(cfg)
            .collector_profiles(profiles.iter().map(|(_, p)| *p).collect())
            .provider_profiles(vec![
                ProviderProfile {
                    invalid_rate: 0.4,
                    active: true
                };
                8
            ])
            .build()
            .expect("valid config");
        sim.run(rounds);
        sim.run_drain_rounds(3);
        // Total revenue over all leading governors.
        let mut paid = [0.0f64; 8];
        for g in 0..4 {
            for (c, share) in sim.metrics(g).revenue_paid.iter().enumerate() {
                paid[c] += share;
            }
        }
        let total: f64 = paid.iter().sum::<f64>().max(1e-12);
        let table = sim.governor(0).reputation();
        (0..8usize)
            .map(|c| {
                let v = table.collector(c);
                (
                    v.weights().iter().sum::<f64>() / v.weights().len() as f64,
                    v.misreport() as f64,
                    v.forge() as f64,
                    paid[c] / total,
                )
            })
            .collect::<Vec<_>>()
    });
    for run in &runs {
        for (c, &(w, mis, forge, share)) in run.iter().enumerate() {
            rows[c].mean_weight.push(w);
            rows[c].misreport.push(mis);
            rows[c].forge.push(forge);
            rows[c].revenue_share.push(share);
        }
    }

    let mut table = Table::new(
        "per-collector outcome after 25 rounds (governor g0's table; mean ± std)",
        &[
            "collector",
            "behaviour",
            "mean weight",
            "misreport ctr",
            "forge ctr",
            "revenue share %",
        ],
    );
    for (c, (name, _)) in profiles.iter().enumerate() {
        table.row(vec![
            format!("c{c}"),
            (*name).into(),
            pm(&rows[c].mean_weight),
            pm(&rows[c].misreport),
            pm(&rows[c].forge),
            format!(
                "{:.2} ± {:.2}",
                100.0 * mean(&rows[c].revenue_share),
                100.0 * prb_bench::std_dev(&rows[c].revenue_share)
            ),
        ]);
    }
    table.print();

    // Ordering checks the experiment asserts.
    let share = |c: usize| mean(&rows[c].revenue_share);
    let ordered = share(0) > share(2)
        && share(2) > share(3)
        && share(3) >= share(4)
        && share(0) > share(5)
        && share(0) > share(6)
        && share(0) > share(7);
    println!("honesty-revenue ordering holds: {ordered}");
    if args.flag("ablate-floor") {
        println!();
        ablate_floor(&args);
    }
    println!("\nInterpretation: revenue falls monotonically with the misreporting");
    println!("rate; concealment is punished through the β-discounted weights and");
    println!("missed upload opportunities; forging annihilates revenue through");
    println!("ν^forge; and the sleeper keeps only what it earned while honest.");
}

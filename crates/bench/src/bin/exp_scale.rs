//! **E15 — open-loop scale: the sustained-throughput knee at 10⁵–10⁶
//! simulated providers.**
//!
//! ```text
//! cargo run --release -p prb-bench --bin exp_scale            # full: 2·10⁵ providers
//! cargo run --release -p prb-bench --bin exp_scale -- --quick # CI: 10⁴ providers
//! cargo run --release -p prb-bench --bin exp_scale -- \
//!     [--providers N] [--pool N] [--rounds N] [--rates 8,16,24,32,40] \
//!     [--seed N] [--invalid-rate F] [--bench-out BENCH_scale.json] [--no-wall]
//! ```
//!
//! The closed-loop driver generates `tx_per_provider` per round — load
//! and capacity move together, so it can never show where the protocol
//! *saturates*. This harness drives **open-loop** arrival: a
//! [`ScaleWorkload`] injects transactions at a configured rate
//! (tx/sim-tick) regardless of what the chain absorbs, the collectors'
//! bounded mempools shed the overflow accountably, and the sweep walks
//! the rate axis to find the knee — the highest rate the deployment
//! sustains with zero shed and full commitment.
//!
//! Every rate leg hard-asserts the E15 closing invariants:
//!
//! 1. **Zero unaccounted transactions** — `submitted == committed +
//!    dropped` in the lifecycle tracker and no open traces after drain.
//! 2. **Bounded memory** — every pool's high-water mark is within its
//!    configured capacity.
//! 3. **Counter reconciliation** — per-node shed counters equal the obs
//!    metrics (`mempool.shed`, `gov.pending.shed`).
//!
//! plus a same-seed two-run ledger byte-identity check on the first leg.
//! `--no-wall` omits the wall-clock section from `BENCH_scale.json`, so
//! two same-seed runs of the document are byte-identical (the CI
//! determinism check diffs exactly that form).

use prb_bench::Args;
use prb_core::config::{ProtocolConfig, RevealPolicy};
use prb_core::scale::{PoolStats, ScaleSim};
use prb_obs::Obs;
use prb_workload::ScaleWorkload;

/// Everything one rate leg produced. `wall_ns` is the only
/// non-deterministic field; the JSON writer segregates it.
struct Leg {
    rate: f64,
    injected: u64,
    committed: u64,
    dropped: u64,
    shed_mempool: u64,
    shed_pending: u64,
    retry_dropped: u64,
    mempool_high_water: usize,
    pending_high_water: usize,
    drain_rounds: u32,
    /// Commit latency percentiles in sim ticks (submit → first commit).
    lat_p50: u64,
    lat_p99: u64,
    lat_p999: u64,
    /// Committed tx per sim-second (1 tick = 1 µs convention).
    sim_tx_per_sec: f64,
    /// Wall-clock nanoseconds spent inside the arrival+drain rounds.
    wall_ns: u64,
    ledger_hash_hex: String,
}

fn scale_config(args: &Args, quick: bool) -> (ProtocolConfig, u32) {
    let providers: u32 = args.get_or("providers", if quick { 10_000 } else { 200_000 });
    let collectors: u32 = args.get_or("collectors", 50);
    let replication: u32 = args.get_or("replication", 2);
    let b_limit: usize = args.get_or("b-limit", 4096);
    // Admission aligned with block capacity: each collector's mempool
    // holds its share of one block (`b_limit · r / n`), so over-rate
    // traffic sheds accountably at the edge instead of accumulating in
    // the governors' ready buffers.
    let share = (b_limit * replication as usize).div_ceil(collectors as usize);
    let mempool_capacity: usize = args.get_or("mempool-capacity", share.max(1));
    let cfg = ProtocolConfig {
        providers,
        collectors,
        governors: args.get_or("governors", 4),
        replication,
        b_limit,
        tx_per_provider: 0,
        open_loop: true,
        reveal: RevealPolicy::ArgueOnly,
        mempool_capacity,
        seed: args.get_or("seed", 150),
        ..Default::default()
    };
    let pool: u32 = args.get_or("pool", 64);
    (cfg, pool)
}

fn run_leg(cfg: &ProtocolConfig, pool: u32, rate: f64, rounds: u32, invalid_rate: f64) -> Leg {
    let mut sim = ScaleSim::new(cfg.clone(), pool).expect("valid scale config");
    sim.set_obs(Obs::counting());
    let mut wl = ScaleWorkload::for_sim(&sim, invalid_rate);
    let ticks = sim.round_ticks();

    let wall = std::time::Instant::now();
    for _ in 0..rounds {
        let t0 = sim.next_round_start();
        let arrivals = wl.window(t0, ticks, rate);
        sim.run_round(arrivals);
    }
    let drain_rounds = sim.drain(256);
    let wall_ns = wall.elapsed().as_nanos() as u64;
    assert!(
        sim.drained(),
        "rate {rate}: queues failed to drain within 256 arrival-free rounds"
    );

    // Invariant 1: zero unaccounted transactions.
    let counts = sim.obs().lifecycle_counts();
    assert_eq!(
        counts.submitted,
        sim.injected(),
        "rate {rate}: tracker lost submissions"
    );
    assert_eq!(
        counts.committed + counts.dropped,
        counts.submitted,
        "rate {rate}: submitted != committed + dropped"
    );
    assert_eq!(counts.open, 0, "rate {rate}: open traces after drain");
    let open = sim.obs().open_traces();
    assert!(open.is_empty(), "rate {rate}: {} open traces", open.len());

    // Invariant 2: bounded memory.
    let mempool: PoolStats = sim.mempool_stats();
    let pending: PoolStats = sim.pending_stats();
    let retry: PoolStats = sim.retry_stats();
    assert!(
        mempool.high_water <= cfg.mempool_capacity,
        "rate {rate}: mempool high-water {} exceeds capacity {}",
        mempool.high_water,
        cfg.mempool_capacity
    );
    assert!(
        pending.high_water <= cfg.pending_capacity,
        "rate {rate}: pending high-water {} exceeds capacity {}",
        pending.high_water,
        cfg.pending_capacity
    );

    // Invariant 3: per-node shed counters reconcile with the obs metrics.
    let metrics = sim.obs().metrics();
    assert_eq!(
        metrics.counter("mempool.shed"),
        mempool.shed,
        "rate {rate}: mempool.shed counter out of sync"
    );
    assert_eq!(
        metrics.counter("gov.pending.shed"),
        pending.shed,
        "rate {rate}: gov.pending.shed counter out of sync"
    );

    assert!(sim.chains_agree(), "rate {rate}: governors diverged");

    let lat = metrics.histogram("lat.submit_to_commit");
    let (p50, p99, p999) = lat
        .as_ref()
        .map(|h| (h.p50(), h.p99(), h.p999()))
        .unwrap_or_default();
    let total_ticks = (sim.rounds_run() * ticks).max(1);
    let ledger_hash_hex = prb_crypto::hex::encode(sim.governor(0).chain().latest().hash().as_ref());
    Leg {
        rate,
        injected: sim.injected(),
        committed: counts.committed,
        dropped: counts.dropped,
        shed_mempool: mempool.shed,
        shed_pending: pending.shed,
        retry_dropped: retry.shed,
        mempool_high_water: mempool.high_water,
        pending_high_water: pending.high_water,
        drain_rounds,
        lat_p50: p50,
        lat_p99: p99,
        lat_p999: p999,
        sim_tx_per_sec: counts.committed as f64 / (total_ticks as f64 / 1e6),
        wall_ns,
        ledger_hash_hex,
    }
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".into()
    }
}

#[allow(clippy::too_many_lines)]
fn main() {
    let args = Args::parse();
    let quick = args.flag("quick");
    let no_wall = args.flag("no-wall");
    let (cfg, pool) = scale_config(&args, quick);
    let rounds: u32 = args.get_or("rounds", if quick { 5 } else { 20 });
    let invalid_rate: f64 = args.get_or("invalid-rate", 0.0);
    let rates: Vec<f64> = args
        .get("rates")
        .map(|s| {
            s.split(',')
                .map(|r| r.trim().parse().expect("numeric rate"))
                .collect()
        })
        .unwrap_or_else(|| {
            if quick {
                vec![8.0, 24.0, 48.0]
            } else {
                vec![4.0, 8.0, 16.0, 24.0, 32.0, 40.0, 48.0]
            }
        });
    let ticks = cfg.round_ticks();

    println!(
        "# E15 — open-loop scale: l = {} providers over {} collectors / {} governors",
        cfg.providers, cfg.collectors, cfg.governors
    );
    println!(
        "round = {ticks} ticks, b_limit = {}, mempool = {}/collector, {} signing identities\n",
        cfg.b_limit, cfg.mempool_capacity, pool
    );

    // Same-seed determinism: the cheapest leg twice, ledgers compared by
    // their head hash and the accounting by value.
    {
        let probe_rate = rates.first().copied().unwrap_or(4.0);
        let a = run_leg(&cfg, pool, probe_rate, rounds.min(3), invalid_rate);
        let b = run_leg(&cfg, pool, probe_rate, rounds.min(3), invalid_rate);
        assert_eq!(
            a.ledger_hash_hex, b.ledger_hash_hex,
            "same-seed runs produced different ledgers"
        );
        assert_eq!(
            (a.injected, a.committed, a.dropped),
            (b.injected, b.committed, b.dropped)
        );
        println!(
            "determinism probe @ rate {probe_rate}: two runs, one ledger ({}…)\n",
            &a.ledger_hash_hex[..16]
        );
    }

    let legs: Vec<Leg> = rates
        .iter()
        .map(|&rate| {
            let leg = run_leg(&cfg, pool, rate, rounds, invalid_rate);
            println!(
                "rate {:>5.1} tx/tick: injected {:>7}  committed {:>7}  shed {:>6}  \
                 p50/p99/p999 = {}/{}/{} ticks  sustained {:.0} tx/s(sim)",
                leg.rate,
                leg.injected,
                leg.committed,
                leg.shed_mempool + leg.shed_pending,
                leg.lat_p50,
                leg.lat_p99,
                leg.lat_p999,
                leg.sim_tx_per_sec,
            );
            leg
        })
        .collect();

    // The knee: the highest swept rate that lost nothing — no shed, no
    // dropped traces — i.e. open-loop arrival the deployment fully
    // absorbed. (Block packing bounds it near b_limit / round_ticks.)
    let knee = legs
        .iter()
        .filter(|l| l.shed_mempool + l.shed_pending == 0 && l.dropped == 0)
        .map(|l| l.rate)
        .fold(0.0f64, f64::max);
    let sustained = legs.iter().map(|l| l.sim_tx_per_sec).fold(0.0f64, f64::max);
    println!(
        "\nknee: {knee} tx/tick fully absorbed (block capacity {:.1} tx/tick); \
         peak sustained {sustained:.0} tx/s in sim time",
        cfg.b_limit as f64 / ticks as f64
    );

    // BENCH_scale.json — deterministic core first, wall-clock section
    // last and omissible (--no-wall) for byte-identity diffs.
    let path = args
        .get("bench-out")
        .unwrap_or("BENCH_scale.json")
        .to_owned();
    let mut out = String::from("{\n  \"bench\": \"scale\",\n");
    out.push_str("  \"schema\": \"prb-bench/scale-v1\",\n");
    out.push_str(&format!("  \"quick\": {quick},\n"));
    out.push_str(&format!("  \"providers\": {},\n", cfg.providers));
    out.push_str(&format!("  \"collectors\": {},\n", cfg.collectors));
    out.push_str(&format!("  \"governors\": {},\n", cfg.governors));
    out.push_str(&format!("  \"replication\": {},\n", cfg.replication));
    out.push_str(&format!("  \"signer_pool\": {pool},\n"));
    out.push_str(&format!("  \"b_limit\": {},\n", cfg.b_limit));
    out.push_str(&format!(
        "  \"mempool_capacity\": {},\n",
        cfg.mempool_capacity
    ));
    out.push_str(&format!(
        "  \"pending_capacity\": {},\n",
        cfg.pending_capacity
    ));
    out.push_str(&format!("  \"round_ticks\": {ticks},\n"));
    out.push_str(&format!("  \"rounds_per_leg\": {rounds},\n"));
    out.push_str(&format!("  \"seed\": {},\n", cfg.seed));
    out.push_str(&format!(
        "  \"invalid_rate\": {},\n",
        json_f64(invalid_rate)
    ));
    out.push_str("  \"units\": {\"rate\": \"tx/tick\", \"latency\": \"sim ticks\", \"throughput\": \"tx/s at 1 tick = 1 us\"},\n");
    out.push_str("  \"legs\": [\n");
    for (i, l) in legs.iter().enumerate() {
        out.push_str("    {");
        out.push_str(&format!("\"rate\": {}, ", json_f64(l.rate)));
        out.push_str(&format!("\"injected\": {}, ", l.injected));
        out.push_str(&format!("\"committed\": {}, ", l.committed));
        out.push_str(&format!("\"dropped\": {}, ", l.dropped));
        out.push_str(&format!("\"shed_mempool\": {}, ", l.shed_mempool));
        out.push_str(&format!("\"shed_pending\": {}, ", l.shed_pending));
        out.push_str(&format!("\"retry_dropped\": {}, ", l.retry_dropped));
        out.push_str(&format!(
            "\"mempool_high_water\": {}, ",
            l.mempool_high_water
        ));
        out.push_str(&format!(
            "\"pending_high_water\": {}, ",
            l.pending_high_water
        ));
        out.push_str(&format!("\"drain_rounds\": {}, ", l.drain_rounds));
        out.push_str(&format!("\"commit_latency_p50\": {}, ", l.lat_p50));
        out.push_str(&format!("\"commit_latency_p99\": {}, ", l.lat_p99));
        out.push_str(&format!("\"commit_latency_p999\": {}, ", l.lat_p999));
        out.push_str(&format!(
            "\"sim_tx_per_sec\": {}, ",
            json_f64(l.sim_tx_per_sec)
        ));
        out.push_str(&format!("\"ledger_head\": \"{}\"", l.ledger_hash_hex));
        out.push_str(if i + 1 == legs.len() { "}\n" } else { "},\n" });
    }
    out.push_str("  ],\n");
    out.push_str(&format!("  \"knee_rate\": {},\n", json_f64(knee)));
    out.push_str(&format!(
        "  \"block_capacity_rate\": {},\n",
        json_f64(cfg.b_limit as f64 / ticks as f64)
    ));
    out.push_str(&format!(
        "  \"peak_sim_tx_per_sec\": {},\n",
        json_f64(sustained)
    ));
    out.push_str("  \"hot_path_notes\": [\n");
    out.push_str("    \"provider_slot: O(s) linear scan per report replaced by binary search over the sorted slot list\",\n");
    out.push_str("    \"fan-out clones: provider broadcast, collector upload and governor broadcast now move the last copy instead of cloning every envelope (r-1 / m-2 clones per tx instead of r / m-1)\",\n");
    out.push_str("    \"hashing: governor pending/history/sig-memo, chain tx index and obs lifecycle tracker moved from SipHash/BTreeMap to a seeded deterministic Fx hasher (hash_seed_never_changes_the_ledger holds the consensus line)\",\n");
    out.push_str("    \"admission: bounded collector mempools + governor pending pool + retry queue shed oldest-first with tx.dropped{shed} accounting instead of growing without bound\"\n");
    out.push_str("  ]");
    if no_wall {
        out.push_str("\n}\n");
    } else {
        // Non-deterministic tail: everything below this key varies
        // run-to-run; strip it (or pass --no-wall) before diffing.
        out.push_str(",\n  \"wall_clock\": {\n");
        let total_wall_ns: u64 = legs.iter().map(|l| l.wall_ns).sum();
        out.push_str(&format!("    \"total_ns\": {total_wall_ns},\n"));
        out.push_str("    \"legs\": [\n");
        for (i, l) in legs.iter().enumerate() {
            // ns per sim tick over the leg converts sim-time latency to
            // wall-clock; committed over wall seconds is the honest
            // host-side throughput.
            let leg_ticks = ((rounds as u64 + u64::from(l.drain_rounds)) * ticks).max(1);
            let ns_per_tick = l.wall_ns as f64 / leg_ticks as f64;
            out.push_str("      {");
            out.push_str(&format!("\"rate\": {}, ", json_f64(l.rate)));
            out.push_str(&format!(
                "\"wall_ms\": {}, ",
                json_f64(l.wall_ns as f64 / 1e6)
            ));
            out.push_str(&format!(
                "\"wall_tx_per_sec\": {}, ",
                json_f64(l.committed as f64 / (l.wall_ns as f64 / 1e9).max(1e-9))
            ));
            out.push_str(&format!("\"ns_per_tick\": {}, ", json_f64(ns_per_tick)));
            out.push_str(&format!(
                "\"commit_latency_p50_ms\": {}, ",
                json_f64(l.lat_p50 as f64 * ns_per_tick / 1e6)
            ));
            out.push_str(&format!(
                "\"commit_latency_p99_ms\": {}, ",
                json_f64(l.lat_p99 as f64 * ns_per_tick / 1e6)
            ));
            out.push_str(&format!(
                "\"commit_latency_p999_ms\": {}",
                json_f64(l.lat_p999 as f64 * ns_per_tick / 1e6)
            ));
            out.push_str(if i + 1 == legs.len() { "}\n" } else { "},\n" });
        }
        out.push_str("    ]\n  }\n}\n");
    }
    std::fs::write(&path, &out).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    println!("written to {path}");
}

//! E17 — dynamic membership under churn.
//!
//! The static-committee experiments (E1–E16) all assume the roster fixed
//! at genesis. E17 exercises the membership subsystem end to end:
//! stake-backed joins and voluntary leaves certified by governor quorum,
//! reputation bootstrapping for newcomers, decay for silent members, and
//! epoch-aware quorum sizing — all while the usual screening/validation
//! pipeline keeps running.
//!
//! Three phases, each with hard asserts:
//!
//! - **Churn sweep** — join/leave rates × a silent byzantine governor ×
//!   seeds, with a scripted governor leave+rejoin so every run crosses
//!   at least two committee epochs. Asserts: honest chains agree, no
//!   append failures, every membership certificate re-verifies
//!   externally against re-derived keys at the quorum of *its* epoch,
//!   and governor screening regret over the surviving honest collectors
//!   stays within the Theorem-1 `O(sqrt(T ln n))` envelope.
//! - **Newcomer convergence** — a collector leaves early and rejoins
//!   mid-run at the configured bootstrap prior. Asserts: the rejoin
//!   weight equals `bootstrap_rep` exactly, the newcomer's post-rejoin
//!   empirical loss rate converges to the incumbent honest rate within
//!   epsilon in `O(sqrt(T))` rounds, and it ends ranked above the
//!   incumbent misreporter despite the discounted prior.
//! - **Determinism** — the same churn cell run twice must produce
//!   byte-identical ledgers and byte-identical membership certificates.
//!
//! Output: markdown tables plus `BENCH_churn.json` with machine-readable
//! pass markers. `--quick` shrinks rounds and seeds for CI smoke runs.

use std::fmt::Write as _;

use prb_bench::{apply_churn_args, mean, Args, Table};
use prb_consensus::membership::{MemberRole, MembershipAction, MembershipCert};
use prb_core::behavior::{CollectorProfile, GovernorProfile, ProviderProfile};
use prb_core::config::ProtocolConfig;
use prb_core::sim::Simulation;
use prb_crypto::identity::{IdentityManager, NodeId};
use prb_crypto::signer::PublicKey;

/// Collector index cast as the committee misreporter in every phase.
const MISREPORTER: u32 = 1;
/// Misreport probability for the planted liar.
const MISREPORT_P: f64 = 0.75;
/// Collector index cast as the permanently silent member (conceals
/// every transaction) — the decay → eviction path's test subject.
const SILENT: u32 = 2;
/// Screening prior for admitted newcomers.
const BOOTSTRAP_REP: f64 = 0.5;
/// Decay half-life (rounds of silence) used whenever churn is on.
/// One round halves a silent member's weight, so the planted concealer
/// crosses the governors' eviction floor (1e-3) after ~10 silent rounds
/// — inside even the quick horizon. The reputation `weight_floor` stays
/// at its 0.0 default: a positive floor would also clamp misreport
/// penalties and turn the misreporter's regret contribution linear.
const DECAY_HALFLIFE: u64 = 1;
/// Provider invalid-transaction rate; reveals (and hence reputation
/// signal) only accrue when some transactions are genuinely invalid.
const INVALID_RATE: f64 = 0.5;

/// Re-derive the deployment's public keys exactly as the simulation
/// enrolls them (deterministic in the master seed), so certificates can
/// be audited without trusting any governor's internal state.
fn derive_pks(cfg: &ProtocolConfig) -> (Vec<PublicKey>, Vec<PublicKey>) {
    let mut im = IdentityManager::new(cfg.crypto.clone(), &cfg.seed.to_be_bytes());
    for p in 0..cfg.providers {
        im.enroll(NodeId::provider(p)).expect("enroll provider");
    }
    let collectors = (0..cfg.collectors)
        .map(|c| {
            im.enroll(NodeId::collector(c))
                .expect("enroll collector")
                .certificate
                .public_key
        })
        .collect();
    let governors = (0..cfg.governors)
        .map(|g| {
            im.enroll(NodeId::governor(g))
                .expect("enroll governor")
                .certificate
                .public_key
        })
        .collect();
    (collectors, governors)
}

fn churn_cfg(seed: u64, join: f64, leave: f64, byz_silent: bool) -> ProtocolConfig {
    let mut cfg = ProtocolConfig {
        seed,
        join_rate: join,
        leave_rate: leave,
        bootstrap_rep: BOOTSTRAP_REP,
        decay_halflife: DECAY_HALFLIFE,
        ..ProtocolConfig::default()
    };
    // Trust the screening draw more (fewer validations) so unchecked
    // transactions — the ones whose later reveal feeds the reputation
    // signal — accrue fast enough to measure regret and convergence.
    cfg.reputation.f = 0.8;
    if byz_silent {
        let mut profiles = vec![GovernorProfile::honest(); cfg.governors as usize];
        // One of four governors crash-equivalent: mints no claims and
        // proposes nothing, but the committee stays above quorum.
        profiles[cfg.governors as usize - 1] = GovernorProfile::silent();
        cfg.governor_profiles = profiles;
    }
    cfg
}

fn build_sim(cfg: ProtocolConfig) -> Simulation {
    let n = cfg.collectors as usize;
    let l = cfg.providers as usize;
    let mut collectors = vec![CollectorProfile::honest(); n];
    collectors[MISREPORTER as usize] = CollectorProfile::misreporter(MISREPORT_P);
    collectors[SILENT as usize] = CollectorProfile::concealer(1.0);
    Simulation::builder(cfg)
        .collector_profiles(collectors)
        .provider_profiles(vec![
            ProviderProfile {
                invalid_rate: INVALID_RATE,
                active: true,
            };
            l
        ])
        .build()
        .expect("churn config must validate")
}

/// Audit every certificate in a governor's membership log against
/// externally re-derived keys, sized by the committee epoch in force at
/// the certificate's effective round. Returns (joins, leaves, evicts).
fn audit_certs(sim: &Simulation, cfg: &ProtocolConfig) -> (u64, u64, u64) {
    let (collector_pks, governor_pks) = derive_pks(cfg);
    let g0 = sim.governor(0);
    let epoch_log = g0.epoch_log();
    let (mut joins, mut leaves, mut evicts) = (0u64, 0u64, 0u64);
    for cert in g0.membership_certs() {
        let subject_pk = match cert.request.role {
            MemberRole::Collector => &collector_pks[cert.request.member as usize],
            MemberRole::Governor => &governor_pks[cert.request.member as usize],
        };
        let active = epoch_log.active_at(cert.request.effective_round);
        cert.verify(subject_pk, &governor_pks, active)
            .unwrap_or_else(|e| {
                panic!(
                    "membership cert for {:?} {} ({:?}) failed epoch-quorum audit: {e:?}",
                    cert.request.role, cert.request.member, cert.request.action
                )
            });
        match cert.request.action {
            MembershipAction::Join => joins += 1,
            MembershipAction::Leave => leaves += 1,
            MembershipAction::Evict => evicts += 1,
        }
    }
    (joins, leaves, evicts)
}

struct CellResult {
    joins: u64,
    leaves: u64,
    evicts: u64,
    epoch_events: usize,
    live_end: usize,
    height: u64,
    max_regret: f64,
    max_bound: f64,
    regret_checked: usize,
}

/// One churn-sweep cell: rate-driven collector churn plus a scripted
/// governor leave+rejoin so the run crosses two committee epochs.
fn run_cell(seed: u64, join: f64, leave: f64, byz_silent: bool, rounds: u32) -> CellResult {
    let cfg = churn_cfg(seed, join, leave, byz_silent);
    let mut sim = build_sim(cfg.clone());
    let leave_at = rounds / 3;
    let rejoin_at = 2 * rounds / 3;
    for r in 0..rounds {
        if r == leave_at {
            sim.submit_membership(MemberRole::Governor, 1, MembershipAction::Leave)
                .expect("governor leave");
        }
        if r == rejoin_at {
            sim.submit_membership(MemberRole::Governor, 1, MembershipAction::Join)
                .expect("governor rejoin");
        }
        sim.run_round();
    }
    sim.run_drain_rounds(2);

    // Quorum safety: every certified transition re-verifies against the
    // committee size of its own epoch, from keys the harness derived
    // independently of the governors.
    let (joins, leaves, evicts) = audit_certs(&sim, &cfg);
    let epoch_events = sim.governor(0).epoch_log().events().len();
    assert!(
        epoch_events >= 2,
        "scripted governor leave+rejoin must log two epoch events, got {epoch_events}"
    );

    // Safety across epochs: honest governors (the departed-and-returned
    // g1 included — it warm-rejoins from followed blocks) agree on one
    // ledger, and nobody ever failed an append.
    let honest: Vec<u32> = if byz_silent {
        (0..cfg.governors - 1).collect()
    } else {
        (0..cfg.governors).collect()
    };
    assert!(
        sim.chains_agree_among(&honest),
        "honest governors diverged under churn (seed {seed}, join {join}, leave {leave})"
    );
    for &g in &honest {
        assert_eq!(
            sim.metrics(g).append_failures,
            0,
            "governor g{g} failed an append under churn"
        );
    }

    // E1 under churn: governor 0's screening regret against the honest
    // collectors that stayed in the committee for the whole run, per
    // provider, inside the Theorem-1 envelope C*sqrt(T ln n) + C'*ln n.
    // Theorem 1 compares against experts present for all T rounds; a
    // churned collector accrues no loss while absent (the screening
    // exemption), so measuring regret against it would not be
    // apples-to-apples.
    let n_total = cfg.collectors as f64;
    let survivors: Vec<u32> = sim
        .live_collectors()
        .into_iter()
        .filter(|&c| c != MISREPORTER && c != SILENT)
        .collect();
    let churned: std::collections::HashSet<u32> = sim
        .governor(0)
        .membership_certs()
        .iter()
        .filter(|c| c.request.role == MemberRole::Collector)
        .map(|c| c.request.member)
        .collect();
    let steady: Vec<u32> = survivors
        .iter()
        .copied()
        .filter(|c| !churned.contains(c))
        .collect();
    // The driver's leave floor keeps strictly more than half the
    // committee live; a governor-side eviction can take one more.
    assert!(
        survivors.len() >= 2,
        "churn floor violated: only {} honest collectors live at end",
        survivors.len()
    );
    // Eviction of the always-silent collector is asserted per cell in
    // `main` (aggregated over seeds): a single seed can legitimately
    // see zero evictions when the rate churn draws the silent member
    // out before decay reaches the floor. The deterministic venue for
    // the hard per-run assert is `run_convergence` (no rate churn).
    let m0 = sim.metrics(0);
    let mut max_regret = 0.0f64;
    let mut max_bound = 0.0f64;
    let mut regret_checked = 0usize;
    for p in 0..cfg.providers {
        let linked: Vec<u32> = sim
            .topology()
            .collectors_of(p)
            .iter()
            .copied()
            .filter(|c| steady.contains(c))
            .collect();
        let t = m0.revealed_by_provider.get(&p).copied().unwrap_or(0) as f64;
        if linked.is_empty() || t < 3.0 {
            continue;
        }
        let regret = m0.regret(p, &linked);
        let bound = 4.0 * (t * n_total.ln()).sqrt() + 2.0 * n_total.ln();
        assert!(
            regret <= bound,
            "provider {p}: regret {regret:.2} exceeds churn envelope {bound:.2} \
             (T={t}, seed {seed})"
        );
        max_regret = max_regret.max(regret);
        max_bound = max_bound.max(bound);
        regret_checked += 1;
    }
    assert!(
        regret_checked > 0,
        "regret assert is hollow: no provider accumulated enough reveals"
    );

    CellResult {
        joins,
        leaves,
        evicts,
        epoch_events,
        live_end: sim.live_collectors().len(),
        height: sim.governor(0).chain().height(),
        max_regret,
        max_bound,
        regret_checked,
    }
}

struct Convergence {
    rejoin_round: u64,
    bootstrap_weight: f64,
    eps: f64,
    converged_after: u64,
    convergence_budget: u64,
    final_gap: f64,
    newcomer_weight_end: f64,
    newcomer_rate: f64,
    misreporter_rate: f64,
}

/// Mean screening weight governor 0 assigns collector `c`.
fn mean_weight(sim: &Simulation, c: usize) -> f64 {
    let w = sim.governor(0).reputation().collector(c).weights();
    w.iter().sum::<f64>() / w.len() as f64
}

/// Sum of governor 0's revealed counts and per-collector loss over the
/// providers linked to collector `c` — the denominators and numerators
/// of an empirical per-reveal loss rate.
fn loss_stats(sim: &Simulation, c: u32) -> (u64, f64) {
    let m0 = sim.metrics(0);
    let mut revealed = 0u64;
    let mut loss = 0.0f64;
    for &p in sim.topology().providers_of(c) {
        revealed += m0.revealed_by_provider.get(&p).copied().unwrap_or(0);
        loss += m0.collector_loss.get(&(p, c)).copied().unwrap_or(0.0);
    }
    (revealed, loss)
}

/// Scripted leave+rejoin for one collector; no rate churn, so the only
/// membership traffic is the newcomer under test.
fn run_convergence(seed: u64, rounds: u32) -> Convergence {
    let newcomer: u32 = 0;
    let cfg = churn_cfg(seed, 0.0, 0.0, false);
    let mut sim = build_sim(cfg.clone());
    let leave_submit = 2;
    let rejoin_submit = rounds / 3;
    let incumbents: Vec<u32> = (0..cfg.collectors)
        .filter(|&c| c != newcomer && c != MISREPORTER && c != SILENT)
        .collect();

    let mut rejoin_round = 0u64;
    let mut bootstrap_weight = f64::NAN;
    // Snapshots taken at the rejoin boundary: (revealed, loss) for the
    // newcomer and each incumbent, so post-rejoin rates are deltas.
    let mut base_newcomer = (0u64, 0.0f64);
    let mut base_misreporter = (0u64, 0.0f64);
    let mut base_incumbents: Vec<(u64, f64)> = Vec::new();
    let mut converged_after = u64::MAX;
    let eps_floor = 0.15f64;
    let mut eps = eps_floor;

    let gap_now = |sim: &Simulation,
                   base_newcomer: &(u64, f64),
                   base_incumbents: &[(u64, f64)]|
     -> Option<f64> {
        let (r_now, l_now) = loss_stats(sim, newcomer);
        let dr = r_now.saturating_sub(base_newcomer.0);
        if dr < 2 {
            return None;
        }
        let newcomer_rate = (l_now - base_newcomer.1) / dr as f64;
        let mut incumbent_rates = Vec::new();
        for (i, &c) in incumbents.iter().enumerate() {
            let (r, l) = loss_stats(sim, c);
            let d = r.saturating_sub(base_incumbents[i].0);
            if d >= 2 {
                incumbent_rates.push((l - base_incumbents[i].1) / d as f64);
            }
        }
        if incumbent_rates.is_empty() {
            return None;
        }
        Some((newcomer_rate - mean(&incumbent_rates)).abs())
    };

    for r in 0..rounds {
        if r == leave_submit {
            sim.submit_membership(MemberRole::Collector, newcomer, MembershipAction::Leave)
                .expect("collector leave");
        }
        if r == rejoin_submit {
            sim.submit_membership(MemberRole::Collector, newcomer, MembershipAction::Join)
                .expect("collector rejoin");
        }
        let was_live = sim.collector_is_live(newcomer);
        let outcome = sim.run_round();
        if !was_live && sim.collector_is_live(newcomer) {
            // The join cert just took effect: the governor re-admitted
            // the collector at the configured prior this round, and no
            // reveal can have touched it yet.
            rejoin_round = outcome.round;
            bootstrap_weight = mean_weight(&sim, newcomer as usize);
            base_newcomer = loss_stats(&sim, newcomer);
            base_misreporter = loss_stats(&sim, MISREPORTER);
            base_incumbents = incumbents.iter().map(|&c| loss_stats(&sim, c)).collect();
            let t_post = (rounds as u64).saturating_sub(rejoin_round) as f64;
            eps = eps_floor.max(1.5 / t_post.sqrt());
        }
        if rejoin_round != 0 && converged_after == u64::MAX {
            if let Some(gap) = gap_now(&sim, &base_newcomer, &base_incumbents) {
                if gap <= eps {
                    converged_after = outcome.round - rejoin_round;
                }
            }
        }
    }
    sim.run_drain_rounds(2);

    assert!(rejoin_round != 0, "newcomer never rejoined (seed {seed})");
    assert!(
        (bootstrap_weight - BOOTSTRAP_REP).abs() < 1e-9,
        "rejoin weight {bootstrap_weight} is not the bootstrap prior {BOOTSTRAP_REP}"
    );
    let final_gap = gap_now(&sim, &base_newcomer, &base_incumbents)
        .expect("post-rejoin window too short to measure a loss rate");
    assert!(
        final_gap <= eps,
        "newcomer loss rate never converged: final gap {final_gap:.3} > eps {eps:.3}"
    );
    // O(sqrt(T)) convergence: the gap must close within a sqrt budget of
    // the post-rejoin horizon, not merely by the end of the run.
    let t_post = rounds as u64 - rejoin_round;
    let convergence_budget = (2.0 * (t_post as f64).sqrt()).ceil() as u64 + 2;
    assert!(
        converged_after <= convergence_budget,
        "newcomer took {converged_after} rounds to converge, budget {convergence_budget}"
    );
    // An honest rejoiner must never be charged for its absence: no
    // Missed penalties from the departed window, no silence decay while
    // unwatched, so its weight holds at the prior (it can only fall on
    // genuine post-rejoin mistakes, and an honest member makes none).
    let newcomer_weight_end = mean_weight(&sim, newcomer as usize);
    assert!(
        newcomer_weight_end >= BOOTSTRAP_REP - 1e-9,
        "newcomer weight {newcomer_weight_end:.3} fell below the bootstrap prior — \
         stale penalties from the departed window leaked through"
    );
    // Relative standing: the incumbent misreporter's post-rejoin loss
    // rate must clearly exceed the newcomer's — the mechanism keeps
    // discriminating behaviour, not tenure, across membership changes.
    let rate = |(r0, l0): (u64, f64), (r1, l1): (u64, f64)| {
        let d = r1.saturating_sub(r0);
        assert!(d >= 2, "too few post-rejoin reveals to compare rates");
        (l1 - l0) / d as f64
    };
    let newcomer_rate = rate(base_newcomer, loss_stats(&sim, newcomer));
    let misreporter_rate = rate(base_misreporter, loss_stats(&sim, MISREPORTER));
    assert!(
        misreporter_rate > newcomer_rate + eps,
        "misreporter rate {misreporter_rate:.3} should exceed newcomer rate \
         {newcomer_rate:.3} by at least eps {eps:.3}"
    );
    // Deterministic eviction: with no rate churn, the always-silent
    // collector's only exit is decay to the floor followed by a
    // governor-originated, quorum-signed Evict certificate.
    let (_, _, evicts) = audit_certs(&sim, &cfg);
    assert!(
        evicts >= 1,
        "silent collector was never evicted in the scripted run (seed {seed})"
    );
    assert!(
        !sim.collector_is_live(SILENT),
        "silent collector still live after floor-triggered eviction"
    );

    Convergence {
        rejoin_round,
        bootstrap_weight,
        eps,
        converged_after,
        convergence_budget,
        final_gap,
        newcomer_weight_end,
        newcomer_rate,
        misreporter_rate,
    }
}

/// Serialize a membership certificate into a canonical comparison blob.
fn cert_blob(cert: &MembershipCert) -> String {
    format!("{cert:?}")
}

/// Run one churn cell twice from scratch; ledgers and certificate logs
/// must match byte for byte.
fn run_determinism(seed: u64, rounds: u32) -> (usize, usize) {
    let run = || {
        let cfg = churn_cfg(seed, 0.20, 0.10, false);
        let mut sim = build_sim(cfg);
        for r in 0..rounds {
            if r == rounds / 3 {
                sim.submit_membership(MemberRole::Governor, 1, MembershipAction::Leave)
                    .expect("governor leave");
            }
            sim.run_round();
        }
        sim.run_drain_rounds(2);
        let chain = sim.governor(0).chain().export();
        let certs: Vec<String> = sim
            .governor(0)
            .membership_certs()
            .iter()
            .map(cert_blob)
            .collect();
        (chain, certs)
    };
    let (chain_a, certs_a) = run();
    let (chain_b, certs_b) = run();
    assert_eq!(
        chain_a, chain_b,
        "two identical churn runs exported different ledgers"
    );
    assert_eq!(
        certs_a, certs_b,
        "two identical churn runs formed different membership certificates"
    );
    assert!(
        !certs_a.is_empty(),
        "determinism cell formed no membership certificates"
    );
    (chain_a.len(), certs_a.len())
}

fn main() {
    let args = Args::parse();
    let quick = args.flag("quick");
    let out_path = args
        .get("bench-out")
        .unwrap_or("BENCH_churn.json")
        .to_owned();

    let rounds: u32 = if quick { 16 } else { 36 };
    let seeds: Vec<u64> = if quick {
        vec![11, 12]
    } else {
        vec![11, 12, 13, 14]
    };
    let rates: &[(f64, f64)] = &[(0.08, 0.05), (0.20, 0.10)];
    // Flag overrides are parsed for parity with prb-sim, but the sweep
    // grid itself is fixed so the asserts stay meaningful.
    let mut probe = ProtocolConfig::default();
    apply_churn_args(&args, &mut probe);

    println!("# E17 — dynamic membership under churn");
    println!();
    println!(
        "{rounds} rounds per cell, seeds {seeds:?}, rates {rates:?}, \
         bootstrap {BOOTSTRAP_REP}, decay half-life {DECAY_HALFLIFE}"
    );

    // ---- Phase 1: churn sweep ------------------------------------------
    let mut table = Table::new(
        "churn sweep",
        &[
            "join",
            "leave",
            "byz",
            "joins",
            "leaves",
            "evicts",
            "epochs",
            "live@end",
            "height",
            "max regret",
            "envelope",
        ],
    );
    let mut total_certs = 0u64;
    let mut sweep_regret = Vec::new();
    for &(join, leave) in rates {
        for byz in [false, true] {
            let mut cells = Vec::new();
            for &seed in &seeds {
                cells.push(run_cell(seed, join, leave, byz, rounds));
            }
            let joins = cells.iter().map(|c| c.joins).sum::<u64>();
            let leaves = cells.iter().map(|c| c.leaves).sum::<u64>();
            let evicts = cells.iter().map(|c| c.evicts).sum::<u64>();
            total_certs += joins + leaves + evicts;
            let regret: Vec<f64> = cells.iter().map(|c| c.max_regret).collect();
            let bound: Vec<f64> = cells.iter().map(|c| c.max_bound).collect();
            sweep_regret.push((join, leave, byz, mean(&regret), mean(&bound)));
            table.row(vec![
                format!("{join:.2}"),
                format!("{leave:.2}"),
                if byz {
                    "1 silent".into()
                } else {
                    "none".into()
                },
                joins.to_string(),
                leaves.to_string(),
                evicts.to_string(),
                format!(
                    "{:.1}",
                    mean(
                        &cells
                            .iter()
                            .map(|c| c.epoch_events as f64)
                            .collect::<Vec<_>>()
                    )
                ),
                format!(
                    "{:.1}",
                    mean(&cells.iter().map(|c| c.live_end as f64).collect::<Vec<_>>())
                ),
                format!(
                    "{:.1}",
                    mean(&cells.iter().map(|c| c.height as f64).collect::<Vec<_>>())
                ),
                format!("{:.2}", mean(&regret)),
                format!("{:.2}", mean(&bound)),
            ]);
            let checked: usize = cells.iter().map(|c| c.regret_checked).sum();
            assert!(checked > 0);
            // Floor-triggered eviction of the planted silent collector
            // fires somewhere in every cell. A single seed can miss it
            // (rate churn can draw the silent member out before decay
            // reaches the floor), so assert on the cell aggregate.
            assert!(
                evicts >= 1,
                "no eviction across any seed of cell (join {join}, leave {leave}, byz {byz})"
            );
        }
    }
    println!();
    println!("## churn sweep (means over {} seeds)", seeds.len());
    println!();
    table.print();
    println!();
    println!(
        "every cell passed: honest chains agree, zero append failures, all {total_certs} \
         membership certs re-verified at their epoch quorum, regret within the envelope."
    );

    // ---- Phase 2: newcomer convergence ---------------------------------
    let conv = run_convergence(seeds[0], rounds.max(18));
    println!();
    println!("## newcomer convergence (scripted leave + rejoin)");
    println!();
    let mut ct = Table::new(
        "newcomer convergence",
        &[
            "rejoin round",
            "bootstrap w",
            "eps",
            "converged after",
            "budget",
            "final gap",
            "newcomer rate",
            "misreporter rate",
        ],
    );
    ct.row(vec![
        conv.rejoin_round.to_string(),
        format!("{:.3}", conv.bootstrap_weight),
        format!("{:.3}", conv.eps),
        conv.converged_after.to_string(),
        conv.convergence_budget.to_string(),
        format!("{:.3}", conv.final_gap),
        format!("{:.3}", conv.newcomer_rate),
        format!("{:.3}", conv.misreporter_rate),
    ]);
    ct.print();
    println!();
    println!(
        "the rejoining collector re-enters at exactly the bootstrap prior (held at \
         {:.3} through the end — no stale penalties from the departed window), its \
         empirical loss rate matches the incumbent honest rate within eps inside the \
         sqrt budget, and the incumbent misreporter's rate stays clearly above it. \
         the planted always-silent collector decayed below the eviction floor and \
         was evicted by quorum certificate.",
        conv.newcomer_weight_end
    );

    // ---- Phase 3: determinism ------------------------------------------
    let (chain_bytes, det_certs) = run_determinism(seeds[0], rounds.min(20));
    println!();
    println!("## determinism");
    println!();
    println!(
        "two fresh runs of the same churn cell: ledgers byte-identical \
         ({chain_bytes} bytes), membership cert logs identical ({det_certs} certs)."
    );

    // ---- JSON ----------------------------------------------------------
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"experiment\": \"churn\",");
    let _ = writeln!(out, "  \"quick\": {quick},");
    let _ = writeln!(out, "  \"rounds\": {rounds},");
    let _ = writeln!(out, "  \"seeds\": {:?},", seeds);
    let _ = writeln!(
        out,
        "  \"config\": {{\"bootstrap_rep\": {BOOTSTRAP_REP}, \"decay_halflife\": {DECAY_HALFLIFE}, \
         \"misreport_p\": {MISREPORT_P}}},"
    );
    let _ = writeln!(out, "  \"sweep\": [");
    for (i, (join, leave, byz, regret, bound)) in sweep_regret.iter().enumerate() {
        let comma = if i + 1 == sweep_regret.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"join_rate\": {join}, \"leave_rate\": {leave}, \"byz_silent\": {byz}, \
             \"mean_max_regret\": {regret:.4}, \"mean_envelope\": {bound:.4}}}{comma}"
        );
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"membership_certs_audited\": {total_certs},");
    let _ = writeln!(
        out,
        "  \"convergence\": {{\"rejoin_round\": {}, \"bootstrap_weight\": {:.4}, \
         \"eps\": {:.4}, \"converged_after\": {}, \"budget\": {}, \"final_gap\": {:.4}}},",
        conv.rejoin_round,
        conv.bootstrap_weight,
        conv.eps,
        conv.converged_after,
        conv.convergence_budget,
        conv.final_gap
    );
    let _ = writeln!(
        out,
        "  \"determinism\": {{\"chain_bytes\": {chain_bytes}, \"certs\": {det_certs}}},"
    );
    let _ = writeln!(out, "  \"asserts\": {{");
    let _ = writeln!(out, "    \"regret_bound_under_churn\": \"pass\",");
    let _ = writeln!(out, "    \"newcomer_convergence\": \"pass\",");
    let _ = writeln!(out, "    \"quorum_safety_across_epochs\": \"pass\",");
    let _ = writeln!(out, "    \"silence_eviction\": \"pass\",");
    let _ = writeln!(out, "    \"two_run_determinism\": \"pass\"");
    let _ = writeln!(out, "  }}");
    out.push_str("}\n");
    std::fs::write(&out_path, &out).expect("write bench json");
    println!("\nwritten to {out_path}");
}

//! **E11 — robustness: graceful degradation and crash recovery under
//! faults.**
//!
//! ```text
//! cargo run --release -p prb-bench --bin exp_faults [--seeds 3] [--rounds 10]
//!     [--quick] [--bench-out BENCH_faults.json]
//! ```
//!
//! §3.1 assumes crash faults and message loss inside a synchrony budget;
//! this experiment drives the protocol through the fault schedules the
//! kernel can throw at it and measures how gracefully it degrades:
//!
//! - **drop sweep**: uniform message loss 0–0.5 with reliable delivery
//!   on; committed throughput vs the fault-free baseline plus the
//!   `net.retry.*` counters behind it,
//! - **crash recovery**: crash-recovery windows on a minority of
//!   governors (never governor 0 — the driver's bookkeeping replica);
//!   healed nodes must detect their stale height and resync to the live
//!   head via the anti-entropy chain sync,
//! - **partition heal**: one governor isolated from its peers for two
//!   rounds, then healed.
//!
//! Inside the graceful-degradation envelope (`drop ≤ 0.3`, crash and
//! partition schedules) every run asserts the safety invariant that all
//! governors hold byte-identical chain prefixes; beyond the envelope the
//! bounded retry budget can exhaust, so prefix agreement is reported as
//! data. Crash schedules assert that every crashed node resynced to the
//! live head, and the drop sweep asserts committed throughput at
//! `drop = 0.1` stays within 2× of the fault-free baseline. The machine-readable summary is written to
//! `BENCH_faults.json` (override with `--bench-out`); `--quick` trims the
//! sweep to a single seed for CI smoke runs.

use std::fmt::Write as _;
use std::rc::Rc;

use prb_bench::{mean, run_seeds, seed_list, Args, Table};
use prb_core::config::ProtocolConfig;
use prb_core::sim::Simulation;
use prb_net::fault::{FaultPlan, Partition};
use prb_net::time::SimTime;
use prb_obs::Obs;

/// Governors crashed in the crash-recovery schedules: a minority of the
/// five, and never governor 0 (the driver reads committed blocks from it).
const CRASHED: [u32; 2] = [1, 2];
/// Governor isolated in the partition-heal schedule.
const ISOLATED: u32 = 4;

/// One fault schedule: uniform drop plus optional crash windows (rounds
/// 3..=5 on [`CRASHED`]) and an optional partition (rounds 7..=8 around
/// [`ISOLATED`]).
#[derive(Clone, Copy, Debug, Default)]
struct Schedule {
    drop: f64,
    crash: bool,
    partition: bool,
}

/// Everything one run reports.
struct FaultRun {
    committed_tx: u64,
    retry_sent: u64,
    retry_resent: u64,
    retry_exhausted: u64,
    sync_requested: u64,
    sync_recovered: u64,
    sync_abandoned: u64,
    duplicate_blocks: u64,
    recovery_ticks: Vec<u64>,
    prefix_agree: bool,
    resynced_to_head: bool,
}

fn run_once(seed: u64, rounds: u32, sched: Schedule) -> FaultRun {
    let cfg = ProtocolConfig {
        governors: 5,
        reliable_delivery: true,
        seed,
        ..Default::default()
    };
    let mut sim = Simulation::new(cfg.clone()).expect("valid config");
    let obs = Obs::counting();
    sim.set_obs(Rc::clone(&obs));
    let rt = cfg.round_ticks();
    let mut faults = FaultPlan::none();
    faults.drop_all(sched.drop);
    if sched.crash {
        for &g in &CRASHED {
            // Deaf and mute for rounds 3..=5, healed with rounds to spare.
            faults.crash_window(sim.governor_net_index(g), SimTime(2 * rt), SimTime(5 * rt));
        }
    }
    if sched.partition {
        let isolated = vec![sim.governor_net_index(ISOLATED)];
        let rest = (0..cfg.governors)
            .filter(|&g| g != ISOLATED)
            .map(|g| sim.governor_net_index(g))
            .collect();
        // Collectors and providers stay bystanders: the isolated governor
        // keeps hearing uploads but misses its peers' blocks.
        faults.partition(Partition {
            groups: vec![isolated, rest],
            from: SimTime(6 * rt),
            until: SimTime(8 * rt),
        });
    }
    sim.set_faults(faults);
    sim.run(rounds);
    sim.run_drain_rounds(2);
    // Let the final round's block dissemination (and any last sync
    // exchange) finish: the retry schedule spans ~4.5 rounds of backoff.
    sim.settle(5 * rt);

    let head = sim.governor(0).chain().height();
    let committed_tx = {
        let chain = sim.governor(0).chain();
        (1..=head)
            .map(|s| chain.retrieve(s).expect("contiguous chain").entries.len() as u64)
            .sum()
    };
    let affected: &[u32] = if sched.crash {
        &CRASHED
    } else if sched.partition {
        &[ISOLATED]
    } else {
        &[]
    };
    let mut run = FaultRun {
        committed_tx,
        retry_sent: obs.metrics().counter("net.retry.sent"),
        retry_resent: obs.metrics().counter("net.retry.resent"),
        retry_exhausted: obs.metrics().counter("net.retry.exhausted"),
        sync_requested: 0,
        sync_recovered: 0,
        sync_abandoned: 0,
        duplicate_blocks: 0,
        recovery_ticks: Vec::new(),
        prefix_agree: sim.chains_prefix_agree(&(0..cfg.governors).collect::<Vec<_>>()),
        resynced_to_head: affected
            .iter()
            .all(|&g| sim.governor(g).chain().height() == head),
    };
    for g in 0..cfg.governors {
        let m = sim.metrics(g);
        run.sync_requested += m.sync_requested;
        run.sync_recovered += m.sync_recovered;
        run.sync_abandoned += m.sync_abandoned;
        run.duplicate_blocks += m.duplicate_blocks;
        run.recovery_ticks.extend(&m.recovery_ticks);
    }
    run
}

/// Sums a counter over runs.
fn total(runs: &[FaultRun], f: impl Fn(&FaultRun) -> u64) -> u64 {
    runs.iter().map(f).sum()
}

fn json_bool(b: bool) -> &'static str {
    if b {
        "true"
    } else {
        "false"
    }
}

fn main() {
    let args = Args::parse();
    let quick = args.flag("quick");
    let rounds = args.get_or("rounds", 10u32);
    let seeds = seed_list(90, if quick { 1 } else { args.get_or("seeds", 3) });
    let out_path = args.get("bench-out").unwrap_or("BENCH_faults.json");
    let drops: &[f64] = if quick {
        &[0.0, 0.1, 0.3]
    } else {
        &[0.0, 0.1, 0.2, 0.3, 0.4, 0.5]
    };

    println!("# E11 — robustness under message loss, crashes, and partitions\n");

    // --- Drop sweep -----------------------------------------------------
    let mut table = Table::new(
        "committed throughput vs uniform drop probability (reliable delivery on; mean over seeds)",
        &[
            "drop",
            "committed tx",
            "vs baseline",
            "retries sent",
            "resent",
            "exhausted",
            "prefix agree",
        ],
    );
    let mut drop_rows = Vec::new();
    let mut baseline = 0.0;
    let mut at_drop_01 = 0.0;
    for &drop in drops {
        let runs = run_seeds(&seeds, |s| {
            run_once(
                s,
                rounds,
                Schedule {
                    drop,
                    ..Default::default()
                },
            )
        });
        // Hard safety bar: within the graceful-degradation envelope
        // (drop ≤ 0.3) every run must keep byte-identical prefixes.
        // Beyond it the bounded retry budget (5 attempts) can exhaust,
        // so prefix agreement is reported as data instead of asserted.
        let prefix_agree_all = runs.iter().all(|r| r.prefix_agree);
        if drop <= 0.3 + 1e-9 {
            assert!(prefix_agree_all, "chain prefixes diverged at drop {drop}");
        }
        let committed = mean(
            &runs
                .iter()
                .map(|r| r.committed_tx as f64)
                .collect::<Vec<_>>(),
        );
        if drop == 0.0 {
            baseline = committed;
        }
        if (drop - 0.1).abs() < 1e-9 {
            at_drop_01 = committed;
        }
        let rel = if baseline > 0.0 {
            committed / baseline
        } else {
            0.0
        };
        table.row(vec![
            format!("{drop:.1}"),
            format!("{committed:.1}"),
            format!("{rel:.2}×"),
            format!("{}", total(&runs, |r| r.retry_sent)),
            format!("{}", total(&runs, |r| r.retry_resent)),
            format!("{}", total(&runs, |r| r.retry_exhausted)),
            if prefix_agree_all { "yes" } else { "no" }.into(),
        ]);
        drop_rows.push((drop, committed, rel, runs));
    }
    table.print();
    assert!(
        2.0 * at_drop_01 >= baseline,
        "throughput at drop 0.1 ({at_drop_01:.1}) fell below half the \
         fault-free baseline ({baseline:.1})"
    );

    // --- Crash recovery -------------------------------------------------
    let crash_drops: &[f64] = if quick { &[0.1] } else { &[0.0, 0.1, 0.3] };
    let mut table = Table::new(
        "crash recovery: governors 1 and 2 deaf for rounds 3..=5, then healed (totals over seeds)",
        &[
            "drop",
            "sync requested",
            "recovered",
            "abandoned",
            "dup blocks",
            "recovery ticks (mean)",
            "resynced to head",
        ],
    );
    let mut crash_rows = Vec::new();
    for &drop in crash_drops {
        let runs = run_seeds(&seeds, |s| {
            run_once(
                s,
                rounds,
                Schedule {
                    drop,
                    crash: true,
                    partition: false,
                },
            )
        });
        for r in &runs {
            assert!(
                r.prefix_agree,
                "chain prefixes diverged (crash, drop {drop})"
            );
            assert!(
                r.resynced_to_head,
                "a crashed governor failed to resync to the live head (drop {drop})"
            );
            assert!(
                r.sync_recovered >= 1,
                "no recovery completed despite crash windows (drop {drop})"
            );
        }
        let ticks: Vec<f64> = runs
            .iter()
            .flat_map(|r| r.recovery_ticks.iter().map(|&t| t as f64))
            .collect();
        table.row(vec![
            format!("{drop:.1}"),
            format!("{}", total(&runs, |r| r.sync_requested)),
            format!("{}", total(&runs, |r| r.sync_recovered)),
            format!("{}", total(&runs, |r| r.sync_abandoned)),
            format!("{}", total(&runs, |r| r.duplicate_blocks)),
            format!("{:.0}", mean(&ticks)),
            "yes".into(),
        ]);
        crash_rows.push((drop, runs, ticks));
    }
    table.print();

    // --- Partition heal -------------------------------------------------
    let partition_runs = run_seeds(&seeds, |s| {
        run_once(
            s,
            rounds,
            Schedule {
                drop: 0.1,
                crash: false,
                partition: true,
            },
        )
    });
    for r in &partition_runs {
        assert!(r.prefix_agree, "chain prefixes diverged (partition heal)");
        assert!(
            r.resynced_to_head,
            "the isolated governor failed to rejoin the live head"
        );
    }
    println!(
        "partition heal (governor {ISOLATED} isolated rounds 7..=8, drop 0.1): \
         {} recoveries over {} seed(s), isolated governor back at the live head\n",
        total(&partition_runs, |r| r.sync_recovered),
        seeds.len()
    );

    println!("Interpretation: reliable delivery absorbs uniform loss — committed");
    println!("throughput degrades smoothly rather than collapsing, and retransmits");
    println!("(not divergence) pay for the loss. Healed crash windows and");
    println!("partitions trigger the governor sync state machine: every affected");
    println!("replica detects its stale height, pages the missing blocks from a");
    println!("peer, and ends byte-identical with the live prefix.");

    // --- BENCH_faults.json ----------------------------------------------
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"experiment\": \"faults\",");
    let _ = writeln!(
        out,
        "  \"config\": {{\"governors\": 5, \"crashed_governors\": [1, 2], \
         \"isolated_governor\": {ISOLATED}, \"rounds\": {rounds}, \"seeds\": {}, \
         \"reliable_delivery\": true}},",
        seeds.len()
    );
    let _ = writeln!(out, "  \"drop_sweep\": [");
    for (i, (drop, committed, rel, runs)) in drop_rows.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"drop\": {drop}, \"committed_tx_mean\": {committed}, \
             \"throughput_vs_baseline\": {rel:.4}, \"retry_sent\": {}, \
             \"retry_resent\": {}, \"retry_exhausted\": {}, \"prefix_agree\": {}}}{}",
            total(runs, |r| r.retry_sent),
            total(runs, |r| r.retry_resent),
            total(runs, |r| r.retry_exhausted),
            json_bool(runs.iter().all(|r| r.prefix_agree)),
            if i + 1 < drop_rows.len() { "," } else { "" }
        );
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"crash_recovery\": [");
    for (i, (drop, runs, ticks)) in crash_rows.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"drop\": {drop}, \"sync_requested\": {}, \"sync_recovered\": {}, \
             \"sync_abandoned\": {}, \"duplicate_blocks\": {}, \
             \"recovery_ticks_mean\": {:.1}, \"resynced_to_head\": {}, \
             \"prefix_agree\": {}}}{}",
            total(runs, |r| r.sync_requested),
            total(runs, |r| r.sync_recovered),
            total(runs, |r| r.sync_abandoned),
            total(runs, |r| r.duplicate_blocks),
            mean(ticks),
            json_bool(runs.iter().all(|r| r.resynced_to_head)),
            json_bool(runs.iter().all(|r| r.prefix_agree)),
            if i + 1 < crash_rows.len() { "," } else { "" }
        );
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(
        out,
        "  \"partition_heal\": {{\"drop\": 0.1, \"sync_recovered\": {}, \
         \"resynced_to_head\": {}, \"prefix_agree\": {}}},",
        total(&partition_runs, |r| r.sync_recovered),
        json_bool(partition_runs.iter().all(|r| r.resynced_to_head)),
        json_bool(partition_runs.iter().all(|r| r.prefix_agree))
    );
    // The asserts above panic on violation, so reaching this point means
    // every invariant held (prefix agreement is asserted for drop ≤ 0.3,
    // the graceful-degradation envelope; higher drops are data only).
    let _ = writeln!(
        out,
        "  \"asserts\": {{\"prefix_agreement_drop_le_0.3\": \"pass\", \
         \"crashed_nodes_resynced\": \"pass\", \
         \"throughput_within_2x_at_drop_0.1\": \"pass\"}}"
    );
    out.push_str("}\n");
    std::fs::write(out_path, &out).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    println!("\nwritten to {out_path}");
}

//! **E9 — §5 use cases: car-sharing and insurance on the protocol.**
//!
//! ```text
//! cargo run --release -p prb-bench --bin exp_apps [--seeds 6] [--rounds 20]
//! ```
//!
//! Runs both scenario workloads with embedded dishonest intermediaries and
//! reports domain-level outcomes: whether the reputation ranking exposes
//! the dishonest drivers/agents, and how the fraud slip-through rate falls
//! as the spot-check parameter tightens.

use prb_bench::{mean, pm, run_seeds, seed_list, Args, Table};
use prb_core::behavior::{CollectorProfile, ProviderProfile};
use prb_core::config::{GovernorMode, ProtocolConfig};
use prb_core::sim::Simulation;
use prb_workload::carshare::CarShareWorkload;
use prb_workload::insurance::InsuranceWorkload;

/// Runs a scenario with two dishonest collectors; returns
/// `(both_detected, fraud_slip_rate, honest_revenue_ratio)`.
fn run_scenario(
    seed: u64,
    rounds: u32,
    f: f64,
    insurance: bool,
    mode: GovernorMode,
) -> (bool, f64, f64) {
    let mut cfg = ProtocolConfig {
        providers: 12,
        collectors: 6,
        governors: 3,
        replication: 3,
        tx_per_provider: 5,
        governor_mode: mode,
        seed,
        ..Default::default()
    };
    cfg.reputation.f = f;
    let dishonest = [1u32, 4];
    let mut builder = Simulation::builder(cfg).provider_profiles(vec![
        ProviderProfile {
            invalid_rate: 0.0,
            active: true
        };
        12
    ]);
    for &d in &dishonest {
        builder = builder.collector_profile(d, CollectorProfile::misreporter(0.7));
    }
    let mut sim = if insurance {
        builder.workload(Box::new(InsuranceWorkload::new(0.3)))
    } else {
        builder.workload(Box::new(CarShareWorkload::new(0.3)))
    }
    .build()
    .expect("valid config");
    sim.run(rounds);
    sim.run_drain_rounds(3);

    // Detection: are the two dishonest collectors the two lowest-ranked?
    let table = sim.governor(0).reputation();
    let mut ranked: Vec<(u32, f64)> = (0..6)
        .map(|c| {
            let v = table.collector(c as usize);
            (
                c,
                v.weights().iter().sum::<f64>() + v.misreport() as f64 * 1e-6,
            )
        })
        .collect();
    ranked.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));
    let bottom_two: Vec<u32> = ranked[..2].iter().map(|(c, _)| *c).collect();
    let detected = dishonest.iter().all(|d| bottom_two.contains(d));

    // Fraud slip rate: invalid txs recorded as valid in the ledger.
    let chain = sim.governor(0).chain();
    let oracle = sim.oracle();
    let mut frauds_recorded_ok = 0usize;
    let mut frauds_total = 0usize;
    for block in chain.iter() {
        for entry in &block.entries {
            if oracle.borrow().peek(entry.tx.id()) == Some(false) {
                frauds_total += 1;
                if entry.verdict.counts_as_valid() {
                    frauds_recorded_ok += 1;
                }
            }
        }
    }
    let slip = if frauds_total == 0 {
        0.0
    } else {
        frauds_recorded_ok as f64 / frauds_total as f64
    };

    // Revenue ratio dishonest/honest.
    let mut paid = [0.0f64; 6];
    for g in 0..3 {
        for (c, share) in sim.metrics(g).revenue_paid.iter().enumerate() {
            paid[c] += share;
        }
    }
    let honest_avg: f64 = (0..6)
        .filter(|c| !dishonest.contains(&(*c as u32)))
        .map(|c| paid[c])
        .sum::<f64>()
        / 4.0;
    let dishonest_avg: f64 = dishonest.iter().map(|&d| paid[d as usize]).sum::<f64>() / 2.0;
    let ratio = if honest_avg > 0.0 {
        dishonest_avg / honest_avg
    } else {
        0.0
    };
    (detected, slip, ratio)
}

fn main() {
    let args = Args::parse();
    // Shared `--trace-out FILE` flag: one traced run of a representative
    // deployment (JSONL trace + summary) instead of the sweeps.
    if prb_bench::run_traced(&args, 10, 2, || prb_bench::traced_default_sim(100)) {
        return;
    }
    let seeds = seed_list(300, args.get_or("seeds", 6));
    let rounds = args.get_or("rounds", 20u32);

    println!("# E9 — the paper's use cases (§5)\n");
    for (scenario, insurance) in [("car-sharing (§5.1)", false), ("insurance (§5.2)", true)] {
        let mut table = Table::new(
            &format!("{scenario}: 2 dishonest intermediaries among 6"),
            &[
                "spot-check f",
                "dishonest pair detected (of seeds)",
                "fraud slip-through % (reputation)",
                "fraud slip-through % (check-none)",
                "dishonest/honest revenue %",
            ],
        );
        for f in [0.3, 0.6, 0.9] {
            let runs = run_seeds(&seeds, |s| {
                run_scenario(s, rounds, f, insurance, GovernorMode::Reputation)
            });
            let baseline = run_seeds(&seeds, |s| {
                run_scenario(s, rounds, f, insurance, GovernorMode::CheckNone)
            });
            let detected = runs.iter().filter(|r| r.0).count();
            let slips: Vec<f64> = runs.iter().map(|r| 100.0 * r.1).collect();
            let base_slips: Vec<f64> = baseline.iter().map(|r| 100.0 * r.1).collect();
            let ratios: Vec<f64> = runs.iter().map(|r| 100.0 * r.2).collect();
            table.row(vec![
                format!("{f:.1}"),
                format!("{detected}/{}", runs.len()),
                pm(&slips),
                pm(&base_slips),
                format!("{:.1}", mean(&ratios)),
            ]);
        }
        table.print();
    }
    println!("Interpretation: in both domains the reputation ranking singles out");
    println!("the dishonest intermediaries and their revenue collapses. Fraud");
    println!("slip-through is structurally ZERO under the paper's mechanism: an");
    println!("unchecked transaction is only ever recorded under a drawn -1 label,");
    println!("so no invalid transaction can be recorded valid without a governor");
    println!("validating it. The check-none baseline shows what trusting labels");
    println!("blindly would cost instead.");
}

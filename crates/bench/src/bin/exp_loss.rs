//! **E4 — Theorem 4: end-to-end governor loss `L ≤ S + O(√((f+δ)N))`**
//! (plus ablation A3: the argue latency bound `U`).
//!
//! ```text
//! cargo run --release -p prb-bench --bin exp_loss [--seeds 8] [--rounds 25] [--sweep-u]
//! ```
//!
//! Runs the full protocol with the Theorem 4 adversary mix (one honest
//! collector per provider group, the rest noisy) and sweeps `f`,
//! reporting the governor's expected loss `L`, the best collector's loss
//! `S`, the number of unchecked transactions, and the `O(√((f+δ)N))`
//! reference with δ = 0.05. With `--sweep-u` it instead sweeps the argue
//! bound `U` under an argue-only reveal policy and reports how many valid
//! transactions are permanently lost.

use prb_bench::{pm, run_seeds, seed_list, Args, Table};
use prb_core::behavior::ProviderProfile;
use prb_core::config::{ProtocolConfig, RevealPolicy};
use prb_core::sim::Simulation;
use prb_workload::adversary::AdversaryMix;

struct LossOutcome {
    expected_loss: f64,
    best_loss: f64,
    unchecked: f64,
    total_txs: f64,
}

fn run_once(seed: u64, f: f64, rounds: u32) -> LossOutcome {
    let mut cfg = ProtocolConfig {
        providers: 8,
        collectors: 8,
        replication: 8,
        governors: 4,
        tx_per_provider: 6,
        seed,
        ..Default::default()
    };
    cfg.reputation.f = f;
    let mut sim = Simulation::builder(cfg)
        .collector_profiles(AdversaryMix::OneHonestRestNoisy.profiles(8))
        .provider_profiles(vec![
            ProviderProfile {
                invalid_rate: 0.5,
                active: false
            };
            8
        ])
        .build()
        .expect("valid config");
    sim.run(rounds);
    sim.run_drain_rounds(3);
    let m = sim.metrics(0);
    let mut best = 0.0;
    for p in 0..8 {
        let collectors = sim.topology().collectors_of(p).to_vec();
        best += m.best_collector_loss(p, &collectors);
    }
    LossOutcome {
        expected_loss: m.expected_loss,
        best_loss: best,
        unchecked: m.unchecked as f64,
        total_txs: m.screened as f64,
    }
}

fn sweep_f(args: &Args) {
    let seeds = seed_list(40, args.get_or("seeds", 8));
    let rounds = args.get_or("rounds", 25u32);
    let delta = 0.05;
    let mut table = Table::new(
        "end-to-end loss vs f (one honest collector, rest noisy; governor g0)",
        &[
            "f",
            "N (screened)",
            "unchecked",
            "L (expected loss)",
            "S (best collector)",
            "L − S",
            "√((f+δ)N) ref",
            "L ≤ S + 16√((f+δ)N)?",
        ],
    );
    for f in [0.1, 0.3, 0.5, 0.7, 0.9] {
        let runs = run_seeds(&seeds, |s| run_once(s, f, rounds));
        let l: Vec<f64> = runs.iter().map(|r| r.expected_loss).collect();
        let s_: Vec<f64> = runs.iter().map(|r| r.best_loss).collect();
        let unchecked: Vec<f64> = runs.iter().map(|r| r.unchecked).collect();
        let n: Vec<f64> = runs.iter().map(|r| r.total_txs).collect();
        let gap: Vec<f64> = runs.iter().map(|r| r.expected_loss - r.best_loss).collect();
        let refs: Vec<f64> = runs
            .iter()
            .map(|r| ((f + delta) * r.total_txs).sqrt())
            .collect();
        let within = runs
            .iter()
            .all(|r| r.expected_loss <= r.best_loss + 16.0 * ((f + delta) * r.total_txs).sqrt());
        table.row(vec![
            format!("{f:.1}"),
            pm(&n),
            pm(&unchecked),
            pm(&l),
            pm(&s_),
            pm(&gap),
            pm(&refs),
            within.to_string(),
        ]);
    }
    table.print();
    println!("Interpretation: the loss gap `L − S` stays within a small multiple of");
    println!("√((f+δ)N) at every f — the Theorem 4 shape — while the unchecked");
    println!("count (the validation work saved) grows with f.");
}

fn sweep_u(args: &Args) {
    let seeds = seed_list(60, args.get_or("seeds", 8));
    let rounds = args.get_or("rounds", 20u32);
    let mut table = Table::new(
        "A3: argue latency bound U (argue-only reveals, hostile majority)",
        &[
            "U",
            "argues accepted",
            "argues rejected",
            "valid txs lost",
            "expected loss",
        ],
    );
    for u in [0u64, 2, 8, 32, 128, 512] {
        let runs = run_seeds(&seeds, |seed| {
            let mut cfg = ProtocolConfig {
                argue_limit_u: u,
                tx_per_provider: 6,
                seed,
                ..Default::default()
            };
            cfg.reputation.f = 0.9;
            cfg.reveal = RevealPolicy::ArgueOnly;
            let mut sim = Simulation::builder(cfg)
                .collector_profiles(AdversaryMix::HalfMisreport(90).profiles(8))
                .provider_profiles(vec![ProviderProfile::honest_active(); 8])
                .build()
                .expect("valid config");
            sim.run(rounds);
            sim.run_drain_rounds(4);
            let m = sim.metrics(0);
            (
                m.argue_accepted as f64,
                m.argue_rejected as f64,
                m.lost_valid as f64,
                m.expected_loss,
            )
        });
        table.row(vec![
            u.to_string(),
            pm(&runs.iter().map(|r| r.0).collect::<Vec<_>>()),
            pm(&runs.iter().map(|r| r.1).collect::<Vec<_>>()),
            pm(&runs.iter().map(|r| r.2).collect::<Vec<_>>()),
            pm(&runs.iter().map(|r| r.3).collect::<Vec<_>>()),
        ]);
    }
    table.print();
    println!("Interpretation: small U permanently buries valid transactions of");
    println!("even *active* providers (argues bounce); past the point where U");
    println!("covers one round's unchecked volume per provider, nothing is lost.");
}

fn main() {
    let args = Args::parse();
    // Shared `--trace-out FILE` flag: one traced run of a representative
    // deployment (JSONL trace + summary) instead of the sweeps.
    if prb_bench::run_traced(&args, 10, 2, || prb_bench::traced_default_sim(100)) {
        return;
    }
    println!("# E4 — end-to-end governor loss (Theorem 4)\n");
    if args.flag("sweep-u") {
        sweep_u(&args);
    } else {
        sweep_f(&args);
    }
}

//! # prb-bench
//!
//! Shared machinery for the experiment binaries (`exp_*`): markdown table
//! rendering, summary statistics over seeds, a tiny CLI flag parser, and a
//! parallel multi-seed runner.
//!
//! Each experiment in DESIGN.md maps to one binary:
//!
//! | Experiment | Binary |
//! |---|---|
//! | E1 regret `O(√T)` + A1/A2 ablations | `exp_regret` |
//! | E2 unchecked fraction ≤ f | `exp_unchecked` |
//! | E3 Hoeffding tail | `exp_tail` |
//! | E4 end-to-end loss + A3 (U sweep) | `exp_loss` |
//! | E5 validation cost / throughput | `exp_throughput` |
//! | E6 message complexity + A4 | `exp_messages` |
//! | E7 incentives | `exp_incentives` |
//! | E8 election fairness | `exp_election` |
//! | E9 applications | `exp_apps` |
//! | E10 safety/liveness properties | `exp_properties` |
//! | E11 robustness under faults | `exp_faults` |
//! | everything | `exp_all` |

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod crypto_bench;
pub mod pipeline_bench;
pub mod trace;

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::rc::Rc;

use prb_core::behavior::{CollectorProfile, ProviderProfile};
use prb_core::config::{ProtocolConfig, RevealPolicy};
use prb_core::sim::Simulation;
use prb_obs::{JsonlRecorder, Obs, RingRecorder, TeeRecorder};

/// A markdown table under construction.
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_owned(),
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    ///
    /// # Panics
    ///
    /// Panics if the arity differs from the header count.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Renders the table as markdown. `|` inside headers or cells is
    /// escaped so it cannot break the column structure.
    pub fn to_markdown(&self) -> String {
        let esc = |cells: &[String]| {
            cells
                .iter()
                .map(|c| c.replace('|', "\\|"))
                .collect::<Vec<_>>()
                .join(" | ")
        };
        let mut out = String::new();
        let _ = writeln!(out, "### {}\n", self.title);
        let _ = writeln!(out, "| {} |", esc(&self.headers));
        let _ = writeln!(
            out,
            "|{}|",
            self.headers
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", esc(row));
        }
        out
    }

    /// Prints the markdown to stdout.
    pub fn print(&self) {
        println!("{}", self.to_markdown());
    }
}

/// Mean of a sample.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation (n−1 denominator; 0 for n < 2).
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}

/// Formats `mean ± std` compactly.
pub fn pm(xs: &[f64]) -> String {
    format!("{:.2} ± {:.2}", mean(xs), std_dev(xs))
}

/// Runs `f(seed)` for every seed, in parallel across threads, preserving
/// seed order in the output.
pub fn run_seeds<T, F>(seeds: &[u64], f: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64) -> T + Sync,
{
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(seeds.len().max(1));
    let mut results: Vec<Option<T>> = (0..seeds.len()).map(|_| None).collect();
    std::thread::scope(|scope| {
        let chunks = seeds.len().div_ceil(threads);
        for (chunk_idx, (seed_chunk, out_chunk)) in seeds
            .chunks(chunks)
            .zip(results.chunks_mut(chunks))
            .enumerate()
        {
            let f = &f;
            let _ = chunk_idx;
            scope.spawn(move || {
                for (seed, slot) in seed_chunk.iter().zip(out_chunk.iter_mut()) {
                    *slot = Some(f(*seed));
                }
            });
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every slot filled"))
        .collect()
}

/// Minimal `--key value` / `--flag` argument parser for the experiment
/// binaries.
#[derive(Clone, Debug, Default)]
pub struct Args {
    values: BTreeMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parses the process arguments.
    pub fn parse() -> Self {
        Self::from_args(std::env::args().skip(1))
    }

    /// Parses from an explicit iterator (testable).
    pub fn from_args<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut out = Args::default();
        let mut iter = args.into_iter().peekable();
        while let Some(arg) = iter.next() {
            let Some(name) = arg.strip_prefix("--") else {
                continue;
            };
            match iter.peek() {
                Some(next) if !next.starts_with("--") => {
                    let value = iter.next().expect("peeked");
                    out.values.insert(name.to_owned(), value);
                }
                _ => out.flags.push(name.to_owned()),
            }
        }
        out
    }

    /// Whether `--name` was passed as a bare flag.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// The value of `--name value`, if present.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }

    /// Parses `--name value` as `T`, with a default.
    pub fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        self.get(name)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }
}

/// Applies the shared dynamic-membership flags — `--join-rate`,
/// `--leave-rate`, `--bootstrap-rep`, `--decay-halflife` — onto `cfg`
/// (E17). Absent or malformed values leave the config's own defaults in
/// place, so a plain invocation keeps the static committee.
pub fn apply_churn_args(args: &Args, cfg: &mut ProtocolConfig) {
    cfg.join_rate = args.get_or("join-rate", cfg.join_rate);
    cfg.leave_rate = args.get_or("leave-rate", cfg.leave_rate);
    cfg.bootstrap_rep = args.get_or("bootstrap-rep", cfg.bootstrap_rep);
    cfg.decay_halflife = args.get_or("decay-halflife", cfg.decay_halflife);
}

/// The crypto scheme chosen by `--crypto` (default `sim`).
///
/// # Panics
///
/// Panics on an unknown scheme name.
pub fn crypto_from_args(args: &Args) -> prb_crypto::signer::CryptoScheme {
    let name = args.get("crypto").unwrap_or("sim");
    prb_crypto::signer::CryptoScheme::parse(name).unwrap_or_else(|| {
        panic!(
            "unknown crypto scheme {name}; use \
             sim|schnorr-256|schnorr-512|schnorr-2048|schnorr-3072|schnorr-4096"
        )
    })
}

/// Standard seed list for multi-seed experiments: `base..base+count`.
pub fn seed_list(base: u64, count: u64) -> Vec<u64> {
    (base..base + count).collect()
}

/// The standard small traced deployment: the default config with active
/// providers and one strong misreporter among the collectors, revealing
/// one round after commitment — every event kind has a chance to fire.
pub fn traced_default_sim(seed: u64) -> Simulation {
    let cfg = ProtocolConfig {
        seed,
        reveal: RevealPolicy::AfterRounds(1),
        ..Default::default()
    };
    let mut collectors = vec![CollectorProfile::honest(); cfg.collectors as usize];
    collectors[0] = CollectorProfile::misreporter(0.8);
    let providers = vec![ProviderProfile::honest_active(); cfg.providers as usize];
    Simulation::builder(cfg)
        .collector_profiles(collectors)
        .provider_profiles(providers)
        .build()
        .expect("default config is valid")
}

/// Runs `build()`'s deployment under a JSONL trace when the shared
/// `--trace-out FILE` flag was passed: `rounds` live rounds plus `drain`
/// drain rounds, then the event/phase summary and the trace ↔ kernel
/// reconciliation table. Returns `true` when a traced run happened (the
/// caller then typically skips its sweeps), `false` without the flag.
///
/// # Panics
///
/// Panics if the trace file cannot be created.
pub fn run_traced<F>(args: &Args, rounds: u32, drain: u32, build: F) -> bool
where
    F: FnOnce() -> Simulation,
{
    let Some(path) = args.get("trace-out") else {
        return false;
    };
    let recorder = JsonlRecorder::create(path)
        .unwrap_or_else(|e| panic!("cannot create trace file {path}: {e}"));
    // Tee into a flight recorder so a hard-assert panic anywhere in the
    // run can still dump the last events for post-mortem.
    let ring = Rc::new(RingRecorder::new(FLIGHT_RING_CAPACITY));
    let tee = TeeRecorder::new(
        Rc::new(recorder),
        Rc::clone(&ring) as Rc<dyn prb_obs::Recorder>,
    );
    let obs = Obs::with_sink(Rc::new(tee));
    let mut sim = build();
    sim.set_obs(Rc::clone(&obs));
    with_flight_dump(&ring, || {
        sim.run(rounds);
        sim.run_drain_rounds(drain);
    });
    println!("{}", sim.obs_summary());
    let ok = print_reconciliation(&sim);
    println!(
        "trace written to {path}; reconciliation: {}",
        if ok { "OK" } else { "MISMATCH" }
    );
    true
}

/// Events the flight recorder keeps for a post-mortem dump.
pub const FLIGHT_RING_CAPACITY: usize = 512;

/// Runs `f`; when it panics (a failed `assert!` in an experiment's hard
/// checks, say), dumps the flight recorder's tail to stderr as JSONL
/// before resuming the unwind — the last events before death are the
/// first thing in the post-mortem.
pub fn with_flight_dump<R>(ring: &Rc<RingRecorder>, f: impl FnOnce() -> R) -> R {
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
    match result {
        Ok(r) => r,
        Err(payload) => {
            eprintln!(
                "\n=== flight recorder: last {} events before the failure ===",
                ring.len()
            );
            let mut err = std::io::stderr().lock();
            if let Err(e) = ring.dump_jsonl(&mut err) {
                eprintln!("(flight dump failed: {e})");
            }
            eprintln!("=== end flight recorder ===");
            std::panic::resume_unwind(payload);
        }
    }
}

/// Prints the per-message-kind reconciliation of trace events against the
/// kernel's own `MessageStats`; `OK` on every row is the proof that the
/// trace misses nothing. Returns whether everything matched.
pub fn print_reconciliation(sim: &Simulation) -> bool {
    let mut table = Table::new(
        "trace ↔ kernel reconciliation (trace events / MessageStats)",
        &["msg kind", "sent", "delivered", "dropped", "status"],
    );
    let counts = sim.obs().msg_counts();
    let mut ok = true;
    for (kind, c) in &counts {
        let k = sim.net_stats().kind(kind);
        let row_ok = c.sent == k.sent && c.delivered == k.delivered && c.dropped == k.dropped;
        ok &= row_ok;
        table.row(vec![
            (*kind).to_owned(),
            format!("{}/{}", c.sent, k.sent),
            format!("{}/{}", c.delivered, k.delivered),
            format!("{}/{}", c.dropped, k.dropped),
            if row_ok { "OK" } else { "MISMATCH" }.to_owned(),
        ]);
    }
    table.print();
    ok
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_markdown() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        let md = t.to_markdown();
        assert!(md.contains("### demo"));
        assert!(md.contains("| a | b |"));
        assert!(md.contains("| 1 | 2 |"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn table_rejects_wrong_arity() {
        Table::new("t", &["a"]).row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn table_escapes_pipes() {
        let mut t = Table::new("t", &["a|b", "c"]);
        t.row(vec!["x|y".into(), "z".into()]);
        let md = t.to_markdown();
        assert!(md.contains("| a\\|b | c |"), "{md}");
        assert!(md.contains("| x\\|y | z |"), "{md}");
        // The separator row is structural and stays unescaped.
        assert!(md.contains("|---|---|"), "{md}");
    }

    #[test]
    fn stats() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
        assert!((std_dev(&[1.0, 2.0, 3.0]) - 1.0).abs() < 1e-12);
        assert_eq!(std_dev(&[5.0]), 0.0);
        assert!(pm(&[1.0, 3.0]).contains("2.00"));
    }

    #[test]
    fn run_seeds_preserves_order() {
        let seeds = seed_list(10, 17);
        let out = run_seeds(&seeds, |s| s * 2);
        assert_eq!(out, seeds.iter().map(|s| s * 2).collect::<Vec<_>>());
    }

    #[test]
    fn args_parse_values_and_flags() {
        let args = Args::from_args(
            ["--rounds", "20", "--verbose", "--f", "0.5"]
                .into_iter()
                .map(String::from),
        );
        assert_eq!(args.get_or("rounds", 0u32), 20);
        assert_eq!(args.get_or::<f64>("f", 0.0), 0.5);
        assert!(args.flag("verbose"));
        assert!(!args.flag("quiet"));
        assert_eq!(args.get_or("missing", 7u32), 7);
    }

    #[test]
    fn stats_edge_cases() {
        assert_eq!(std_dev(&[]), 0.0);
        assert_eq!(mean(&[4.5]), 4.5);
        let one = pm(&[4.5]);
        assert!(one.contains("4.50") && one.contains("0.00"), "{one}");
        assert_eq!(pm(&[]), "0.00 \u{b1} 0.00");
    }

    #[test]
    fn args_unknown_flag_and_missing_value() {
        let args = Args::from_args(["--rounds", "20"].into_iter().map(String::from));
        assert!(!args.flag("nope"));
        assert_eq!(args.get("nope"), None);
        // A trailing `--key` with no value parses as a bare flag, not a
        // value, and `get` does not see it.
        let args = Args::from_args(["--quick", "--seeds"].into_iter().map(String::from));
        assert!(args.flag("quick"));
        assert!(args.flag("seeds"));
        assert_eq!(args.get("seeds"), None);
        // Tokens without a `--` prefix (and not a value) are skipped.
        let args = Args::from_args(["stray", "--f", "0.5"].into_iter().map(String::from));
        assert_eq!(args.get_or::<f64>("f", 0.0), 0.5);
    }

    #[test]
    fn trace_out_passes_through_the_shared_parser() {
        let args = Args::from_args(
            ["--trace-out", "/tmp/t.jsonl", "--seeds", "3"]
                .into_iter()
                .map(String::from),
        );
        assert_eq!(args.get("trace-out"), Some("/tmp/t.jsonl"));
        assert_eq!(args.get_or("seeds", 0u32), 3);
        // Without the flag, run_traced declines immediately.
        let untraced = Args::from_args(["--seeds", "3"].into_iter().map(String::from));
        assert!(!run_traced(&untraced, 1, 0, || unreachable!(
            "must not build"
        )));
    }

    #[test]
    fn churn_flags_wire_into_the_config() {
        let args = Args::from_args(
            [
                "--join-rate",
                "0.1",
                "--leave-rate",
                "0.05",
                "--bootstrap-rep",
                "0.6",
                "--decay-halflife",
                "4",
            ]
            .into_iter()
            .map(String::from),
        );
        let mut cfg = ProtocolConfig::default();
        assert!(!cfg.churn_enabled());
        apply_churn_args(&args, &mut cfg);
        assert_eq!(cfg.join_rate, 0.1);
        assert_eq!(cfg.leave_rate, 0.05);
        assert_eq!(cfg.bootstrap_rep, 0.6);
        assert_eq!(cfg.decay_halflife, 4);
        assert!(cfg.churn_enabled());
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn churn_flags_default_to_the_static_committee() {
        let args = Args::from_args(["--rounds", "5"].into_iter().map(String::from));
        let mut cfg = ProtocolConfig::default();
        apply_churn_args(&args, &mut cfg);
        assert!(!cfg.churn_enabled());
        assert_eq!(cfg.bootstrap_rep, 1.0);
        // A malformed value falls back to the config default instead of
        // silently enabling churn.
        let bad = Args::from_args(["--join-rate", "lots"].into_iter().map(String::from));
        apply_churn_args(&bad, &mut cfg);
        assert_eq!(cfg.join_rate, 0.0);
        assert!(!cfg.churn_enabled());
    }

    #[test]
    fn crypto_parsing() {
        let args = Args::from_args(["--crypto", "schnorr-256"].into_iter().map(String::from));
        assert_eq!(crypto_from_args(&args).name(), "test-256");
        let default = Args::default();
        assert_eq!(crypto_from_args(&default).name(), "sim");
    }
}

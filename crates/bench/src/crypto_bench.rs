//! Machine-readable crypto micro-benchmark: per-scheme sign / verify /
//! VRF / protocol-round timings, written to `BENCH_crypto.json`.
//!
//! Two entry points share this module: `exp_throughput --bench-out FILE`
//! and the `crypto_json` bench target (`cargo bench --bench crypto_json`).
//! Timings are wall-clock means over `iters` iterations after a warm-up
//! that trains the fixed-base window tables — the steady state a long run
//! pays, which is what the reputation-chain experiments care about.
//!
//! Each row embeds the pre-optimization baseline (measured on this
//! machine, release build, before the Montgomery-context / fixed-base /
//! Straus overhaul) so the JSON is self-describing about the speedup.

use std::time::Instant;

use prb_core::config::ProtocolConfig;
use prb_core::sim::Simulation;
use prb_crypto::signer::CryptoScheme;

/// One baseline row: `(scheme, sign, verify, vrf_evaluate, vrf_verify)`.
type BaselineRow = (&'static str, f64, f64, Option<f64>, Option<f64>);

/// Pre-overhaul timings in microseconds. `None` where the baseline run
/// did not measure the operation.
const BASELINE_US: &[BaselineRow] = &[
    ("test-256", 88.7, 198.5, None, None),
    ("test-512", 265.3, 581.0, None, None),
    ("rfc3526-2048", 2253.3, 13635.6, Some(6919.3), Some(33071.5)),
];

/// Batch sizes measured for the batch-vs-sequential comparison.
pub const BATCH_SIZES: &[usize] = &[8, 32, 128];

/// Randomized-linear-combination batch verification timing at one size.
#[derive(Clone, Debug)]
pub struct BatchTiming {
    /// Number of signatures verified per batch call.
    pub size: usize,
    /// Mean time per signature inside the batch.
    pub per_sig_us: f64,
    /// `verify_us / per_sig_us`: throughput multiple over one-at-a-time
    /// verification of the same signatures.
    pub speedup: f64,
}

/// Measured timings for one scheme, microseconds per operation.
#[derive(Clone, Debug)]
pub struct SchemeTiming {
    /// Scheme name (`sim`, `test-256`, …, `rfc3526-2048`).
    pub scheme: String,
    /// Mean time to sign one message.
    pub sign_us: f64,
    /// Mean time to verify one (valid) signature.
    pub verify_us: f64,
    /// Mean time to evaluate the VRF.
    pub vrf_evaluate_us: f64,
    /// Mean time to verify a VRF proof.
    pub vrf_verify_us: f64,
    /// Batch verification at each of [`BATCH_SIZES`].
    pub batch: Vec<BatchTiming>,
    /// Mean wall-clock per protocol round of a tiny 4p/4c/3g deployment.
    pub round_us: f64,
}

fn time_us<T>(iters: u32, mut f: impl FnMut(u32) -> T) -> f64 {
    let start = Instant::now();
    for i in 0..iters {
        std::hint::black_box(f(i));
    }
    start.elapsed().as_secs_f64() * 1e6 / f64::from(iters.max(1))
}

/// Measures `scheme` end to end: `iters` timed iterations per operation
/// (after table-training warm-up) plus `sim_rounds` rounds of a tiny
/// deployment for the per-round wall-clock.
pub fn measure_scheme(scheme: &CryptoScheme, iters: u32, sim_rounds: u32) -> SchemeTiming {
    let kp = scheme.keypair_from_seed(b"crypto-bench");
    let pk = kp.public_key();
    // Warm-up: trains the generator table (threshold 2) and the per-key
    // verification table (threshold 3) so the timed loop measures the
    // steady state.
    for i in 0..4u32 {
        let msg = i.to_be_bytes();
        let sig = kp.sign(&msg);
        assert!(pk.verify(&msg, &sig));
        let eval = kp.vrf_evaluate(&msg);
        assert!(pk.vrf_verify(&msg, &eval).is_some());
    }
    let sign_us = time_us(iters, |i| kp.sign(&i.to_be_bytes()));
    let sigs: Vec<_> = (0..iters).map(|i| kp.sign(&i.to_be_bytes())).collect();
    let verify_us = time_us(iters, |i| {
        assert!(pk.verify(&i.to_be_bytes(), &sigs[i as usize]))
    });
    let vrf_evaluate_us = time_us(iters, |i| kp.vrf_evaluate(&i.to_be_bytes()));
    let evals: Vec<_> = (0..iters)
        .map(|i| kp.vrf_evaluate(&i.to_be_bytes()))
        .collect();
    let vrf_verify_us = time_us(iters, |i| {
        assert!(pk
            .vrf_verify(&i.to_be_bytes(), &evals[i as usize])
            .is_some())
    });

    // Batch verification: a few distinct (warmed) keys cycling through the
    // batch, the shape a governor sees when draining one block's worth of
    // provider signatures.
    let keys: Vec<_> = (0..4u32)
        .map(|k| scheme.keypair_from_seed(format!("crypto-bench-{k}").as_bytes()))
        .collect();
    let pks: Vec<_> = keys.iter().map(|k| k.public_key()).collect();
    for (k, key) in keys.iter().enumerate() {
        for i in 0..4u32 {
            let msg = (i * 31 + k as u32).to_be_bytes();
            assert!(pks[k].verify(&msg, &key.sign(&msg)));
        }
    }
    let max_size = BATCH_SIZES.iter().copied().max().unwrap_or(0);
    let msgs: Vec<[u8; 4]> = (0..max_size as u32).map(|i| i.to_be_bytes()).collect();
    let batch_sigs: Vec<_> = msgs
        .iter()
        .enumerate()
        .map(|(i, m)| keys[i % keys.len()].sign(m))
        .collect();
    let batch = BATCH_SIZES
        .iter()
        .map(|&size| {
            let items: Vec<(&[u8], _, _)> = (0..size)
                .map(|i| (&msgs[i][..], &batch_sigs[i], &pks[i % pks.len()]))
                .collect();
            // Amortize so each size gets roughly `iters` verified sigs.
            let reps = (iters / size as u32).max(1);
            let call_us = time_us(reps, |_| {
                assert!(prb_crypto::signer::verify_batch(&items)
                    .iter()
                    .all(|&ok| ok))
            });
            let per_sig_us = call_us / size as f64;
            BatchTiming {
                size,
                per_sig_us,
                speedup: verify_us / per_sig_us,
            }
        })
        .collect();

    let cfg = ProtocolConfig {
        providers: 4,
        collectors: 4,
        governors: 3,
        replication: 2,
        tx_per_provider: 2,
        crypto: scheme.clone(),
        seed: 60,
        ..Default::default()
    };
    let mut sim = Simulation::new(cfg).expect("valid config");
    let start = Instant::now();
    sim.run(sim_rounds.max(1));
    let round_us = start.elapsed().as_secs_f64() * 1e6 / f64::from(sim_rounds.max(1));

    SchemeTiming {
        scheme: scheme.name().to_owned(),
        sign_us,
        verify_us,
        vrf_evaluate_us,
        vrf_verify_us,
        batch,
        round_us,
    }
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.1}")
    } else {
        "null".to_owned()
    }
}

/// Renders the rows as the `BENCH_crypto.json` document (pretty-printed,
/// stable field order, no external JSON dependency).
pub fn render_json(rows: &[SchemeTiming], iters: u32, sim_rounds: u32) -> String {
    let mut out = String::from("{\n  \"bench\": \"crypto\",\n");
    out.push_str(&format!(
        "  \"iters\": {iters},\n  \"sim_rounds\": {sim_rounds},\n"
    ));
    out.push_str("  \"units\": \"microseconds\",\n  \"schemes\": [\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"scheme\": \"{}\",\n", row.scheme));
        out.push_str(&format!("      \"sign_us\": {},\n", json_f64(row.sign_us)));
        out.push_str(&format!(
            "      \"verify_us\": {},\n",
            json_f64(row.verify_us)
        ));
        out.push_str(&format!(
            "      \"vrf_evaluate_us\": {},\n",
            json_f64(row.vrf_evaluate_us)
        ));
        out.push_str(&format!(
            "      \"vrf_verify_us\": {},\n",
            json_f64(row.vrf_verify_us)
        ));
        if !row.batch.is_empty() {
            out.push_str("      \"batch_verify\": [\n");
            for (j, b) in row.batch.iter().enumerate() {
                out.push_str(&format!(
                    "        {{ \"size\": {}, \"per_sig_us\": {}, \"speedup_vs_sequential\": {} }}{}\n",
                    b.size,
                    json_f64(b.per_sig_us),
                    json_f64(b.speedup),
                    if j + 1 == row.batch.len() { "" } else { "," }
                ));
            }
            out.push_str("      ],\n");
        }
        out.push_str(&format!("      \"round_us\": {}", json_f64(row.round_us)));
        if let Some((_, sign, verify, vrf_eval, vrf_ver)) = BASELINE_US
            .iter()
            .find(|(name, ..)| *name == row.scheme)
            .copied()
        {
            out.push_str(",\n      \"baseline_pre_pr\": {\n");
            out.push_str(&format!("        \"sign_us\": {},\n", json_f64(sign)));
            out.push_str(&format!("        \"verify_us\": {}", json_f64(verify)));
            if let (Some(e), Some(v)) = (vrf_eval, vrf_ver) {
                out.push_str(&format!(
                    ",\n        \"vrf_evaluate_us\": {},\n",
                    json_f64(e)
                ));
                out.push_str(&format!("        \"vrf_verify_us\": {}", json_f64(v)));
            }
            out.push_str("\n      },\n");
            out.push_str("      \"speedup\": {\n");
            out.push_str(&format!(
                "        \"sign\": {},\n",
                json_f64(sign / row.sign_us)
            ));
            out.push_str(&format!(
                "        \"verify\": {}",
                json_f64(verify / row.verify_us)
            ));
            if let (Some(e), Some(v)) = (vrf_eval, vrf_ver) {
                out.push_str(&format!(
                    ",\n        \"vrf_evaluate\": {},\n",
                    json_f64(e / row.vrf_evaluate_us)
                ));
                out.push_str(&format!(
                    "        \"vrf_verify\": {}",
                    json_f64(v / row.vrf_verify_us)
                ));
            }
            out.push_str("\n      }\n");
        } else {
            out.push('\n');
        }
        out.push_str(if i + 1 == rows.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Measures every scheme in `schemes` and writes `BENCH_crypto.json` to
/// `path`. Returns the rows for table rendering.
///
/// # Panics
///
/// Panics if the file cannot be written.
pub fn run_and_write(
    schemes: &[CryptoScheme],
    iters: u32,
    sim_rounds: u32,
    path: &str,
) -> Vec<SchemeTiming> {
    let rows: Vec<SchemeTiming> = schemes
        .iter()
        .map(|s| measure_scheme(s, iters, sim_rounds))
        .collect();
    std::fs::write(path, render_json(&rows, iters, sim_rounds))
        .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_json_is_well_formed_and_carries_baselines() {
        let rows = vec![
            SchemeTiming {
                scheme: "sim".into(),
                sign_us: 1.0,
                verify_us: 2.0,
                vrf_evaluate_us: 3.0,
                vrf_verify_us: 4.0,
                batch: vec![],
                round_us: 5.0,
            },
            SchemeTiming {
                scheme: "rfc3526-2048".into(),
                sign_us: 500.0,
                verify_us: 1000.0,
                vrf_evaluate_us: 2000.0,
                vrf_verify_us: 3000.0,
                batch: vec![
                    BatchTiming {
                        size: 8,
                        per_sig_us: 400.0,
                        speedup: 2.5,
                    },
                    BatchTiming {
                        size: 32,
                        per_sig_us: 250.0,
                        speedup: 4.0,
                    },
                ],
                round_us: 9.0,
            },
        ];
        let json = render_json(&rows, 7, 2);
        // Balanced braces/brackets (poor man's JSON validation, good
        // enough to catch broken string assembly).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("\"iters\": 7"));
        // sim has no baseline (row closes right after round_us); 2048 has
        // one, with a computed speedup.
        assert!(json.contains("\"round_us\": 5.0\n    },"));
        assert!(json.contains("\"baseline_pre_pr\""));
        assert!(json.contains(&format!("\"verify\": {}", json_f64(13635.6 / 1000.0))));
        // Batch rows render only when measured, in field order.
        assert!(json
            .contains("{ \"size\": 32, \"per_sig_us\": 250.0, \"speedup_vs_sequential\": 4.0 }"));
        assert!(!json.contains("\"batch_verify\": []"));
    }

    #[test]
    fn measure_scheme_smoke() {
        let t = measure_scheme(&CryptoScheme::sim(), 2, 1);
        assert_eq!(t.scheme, "sim");
        assert!(t.sign_us >= 0.0 && t.round_us > 0.0);
        assert_eq!(t.batch.len(), BATCH_SIZES.len());
        assert!(t.batch.iter().all(|b| b.per_sig_us > 0.0));
    }
}

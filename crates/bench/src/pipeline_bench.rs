//! E14 — the pipelined round engine's serial-vs-pipelined sweep, written
//! to `BENCH_throughput.json` (`exp_throughput -- --pipeline`).
//!
//! Two measured legs of the same deployment under real cryptography:
//! `pipeline_depth = 0` (the serial engine: every provider signature and
//! block entry verifies inline on the main thread) and `pipeline_depth =
//! 2` (consensus on serial `N+1` overlaps deferred validation of serial
//! `N` on background workers). The claim under test: the pipelined round
//! wall-clock approaches `max(consensus, validation)` instead of their
//! sum. The hard assert (full mode) is
//!
//! ```text
//! pipelined_round <= 1.25 * max(consensus_component, validation_work)
//! ```
//!
//! where `consensus_component` is the serial leg's round time minus the
//! crypto the pipeline moved off the main thread, and `validation_work`
//! is the background validator's measured work per round. Ledgers are
//! additionally asserted **byte-identical** between the legs across
//! seeds and verify-thread widths (`"ledger_identity": "pass"` in the
//! JSON — the CI smoke greps for it), and a small
//! `verify_inline_min` micro-sweep rides along (satellite: the pool's
//! inline threshold is a constructor parameter now, not a constant).

use std::rc::Rc;
use std::time::Instant;

use prb_core::config::ProtocolConfig;
use prb_core::sim::Simulation;
use prb_crypto::signer::CryptoScheme;
use prb_obs::{Obs, Recorder, RingRecorder};

use crate::{Args, Table};

/// One measured leg (or identity-only run) of the sweep.
struct LegRun {
    /// Wall-clock per main round, microseconds, in round order.
    round_us: Vec<f64>,
    /// Main-thread crypto per round (µs): verify-pool batches + VRF.
    crypto_us: f64,
    /// Background validator work per round (µs; 0 for the serial leg).
    defer_work_us: f64,
    /// Main-thread stall joining background batches per round (µs).
    defer_wait_us: f64,
    /// Wall-clock bought back by overlapping per round (µs).
    overlap_us: f64,
    /// Entries committed on governor 0 during the timed window.
    committed: u64,
    /// Governor 0's exported chain after the drain rounds.
    ledger: Vec<u8>,
}

fn run_leg(
    scheme: &CryptoScheme,
    depth: usize,
    threads: usize,
    inline_min: usize,
    seed: u64,
    rounds: u32,
) -> LegRun {
    let cfg = ProtocolConfig {
        providers: 4,
        collectors: 4,
        governors: 4,
        replication: 2,
        tx_per_provider: 2,
        verify_blocks: true,
        pipeline_depth: depth,
        verify_threads: threads,
        verify_inline_min: inline_min,
        crypto: scheme.clone(),
        seed,
        ..Default::default()
    };
    let mut sim = Simulation::new(cfg).expect("valid config");
    // A throwaway ring: only the metrics registry is read, but counters
    // need an enabled hub.
    let obs = Obs::with_sink(Rc::new(RingRecorder::new(4096)) as Rc<dyn Recorder>);
    sim.set_obs(Rc::clone(&obs));
    let mut round_us = Vec::with_capacity(rounds as usize);
    for _ in 0..rounds {
        let t0 = Instant::now();
        sim.run_round();
        round_us.push(t0.elapsed().as_secs_f64() * 1e6);
    }
    let m = obs.metrics();
    if std::env::var_os("PRB_PIPELINE_DEBUG").is_some() {
        eprintln!("--- leg depth={depth} threads={threads} ---");
        for (name, v) in m.counters() {
            eprintln!("  {name} = {v}");
        }
    }
    let per_round = |ns: u64| ns as f64 / 1e3 / f64::from(rounds.max(1));
    let crypto_us = per_round(m.counter("wall.crypto_ns"));
    let defer_work_us = per_round(m.counter("wall.defer_work_ns"));
    let defer_wait_us = per_round(m.counter("wall.defer_wait_ns"));
    let overlap_us = per_round(m.counter("wall.overlap_ns"));
    let committed: u64 = {
        let chain = sim.governor(0).chain();
        (1..=chain.height())
            .map(|s| chain.retrieve(s).map_or(0, |b| b.entries.len() as u64))
            .sum()
    };
    sim.run_drain_rounds(2);
    LegRun {
        round_us,
        crypto_us,
        defer_work_us,
        defer_wait_us,
        overlap_us,
        committed,
        ledger: sim.governor(0).chain().export(),
    }
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() as f64 * p).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

struct LegStats {
    avg_us: f64,
    p50_us: f64,
    p99_us: f64,
    rounds_per_sec: f64,
    tx_per_sec: f64,
}

fn stats(run: &LegRun) -> LegStats {
    let mut sorted = run.round_us.clone();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let total_us: f64 = run.round_us.iter().sum();
    let avg = total_us / run.round_us.len().max(1) as f64;
    LegStats {
        avg_us: avg,
        p50_us: percentile(&sorted, 0.5),
        p99_us: percentile(&sorted, 0.99),
        rounds_per_sec: 1e6 * run.round_us.len() as f64 / total_us.max(1e-9),
        tx_per_sec: 1e6 * run.committed as f64 / total_us.max(1e-9),
    }
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.1}")
    } else {
        "null".to_owned()
    }
}

fn leg_json(out: &mut String, name: &str, depth: usize, run: &LegRun, s: &LegStats, last: bool) {
    out.push_str("    {\n");
    out.push_str(&format!("      \"engine\": \"{name}\",\n"));
    out.push_str(&format!("      \"pipeline_depth\": {depth},\n"));
    out.push_str(&format!(
        "      \"rounds_per_sec\": {},\n",
        json_f64(s.rounds_per_sec)
    ));
    out.push_str(&format!(
        "      \"committed_tx_per_sec\": {},\n",
        json_f64(s.tx_per_sec)
    ));
    out.push_str(&format!(
        "      \"round_wall_us\": {{ \"avg\": {}, \"p50\": {}, \"p99\": {} }},\n",
        json_f64(s.avg_us),
        json_f64(s.p50_us),
        json_f64(s.p99_us)
    ));
    out.push_str(&format!(
        "      \"crypto_us_per_round\": {},\n",
        json_f64(run.crypto_us)
    ));
    out.push_str(&format!(
        "      \"noncrypto_us_per_round\": {},\n",
        json_f64(s.avg_us - run.crypto_us)
    ));
    out.push_str(&format!(
        "      \"defer_work_us_per_round\": {},\n",
        json_f64(run.defer_work_us)
    ));
    out.push_str(&format!(
        "      \"defer_wait_us_per_round\": {},\n",
        json_f64(run.defer_wait_us)
    ));
    out.push_str(&format!(
        "      \"overlap_us_per_round\": {}\n",
        json_f64(run.overlap_us)
    ));
    out.push_str(if last { "    }\n" } else { "    },\n" });
}

/// Runs the sweep and writes the `prb-bench/throughput-v1` document.
/// Quick mode (CI): a light scheme and the ledger-identity assert only.
/// Full mode: schnorr-2048 (per the acceptance criterion) and the hard
/// `<= 1.25 * max(consensus, validation)` wall-clock assert.
pub fn run(args: &Args, path: &str) {
    let quick = args.flag("quick");
    let scheme = match args.get("crypto") {
        Some(name) => {
            CryptoScheme::parse(name).unwrap_or_else(|| panic!("unknown crypto scheme {name}"))
        }
        None if quick => CryptoScheme::schnorr_test_256(),
        None => CryptoScheme::schnorr_2048(),
    };
    let rounds = args.get_or("rounds", if quick { 3u32 } else { 5 });
    let depth = args.get_or("depth", 2usize);
    let seed = args.get_or("seed", 90u64);

    println!(
        "# E14 — serial vs pipelined round engine ({})\n",
        scheme.name()
    );
    // Measured legs run single-threaded verification so the serial
    // baseline is the honest sum (consensus + inline validation on one
    // thread) and the pipelined leg's gain is attributable to the
    // engine, not the pool's intra-batch fan-out.
    let serial = run_leg(&scheme, 0, 1, 8, seed, rounds);
    let pipelined = run_leg(&scheme, depth, 1, 8, seed, rounds);
    let s_stats = stats(&serial);
    let p_stats = stats(&pipelined);

    // Ledger identity: the measurement pair, plus two more seeds across
    // verify-thread widths (3 seeds total, per the acceptance bar).
    let mut identity = serial.ledger == pipelined.ledger;
    for (extra_seed, threads) in [(seed + 1, 2usize), (seed + 2, 0usize)] {
        let a = run_leg(&scheme, 0, threads, 8, extra_seed, rounds.min(3));
        let b = run_leg(&scheme, depth, threads, 8, extra_seed, rounds.min(3));
        identity &= a.ledger == b.ledger;
    }
    assert!(
        identity,
        "pipelined ledger diverged from the serial engine's"
    );

    // The pipelining claim. `consensus_us` is what the round costs with
    // the deferrable crypto taken off the main thread (election VRF and
    // straggler verifies stay, hence `+ pipelined.crypto_us`);
    // `validation` is the background work actually done per round.
    let consensus_us = (s_stats.avg_us - serial.crypto_us) + pipelined.crypto_us;
    let bound_us = 1.25 * consensus_us.max(pipelined.defer_work_us);
    let wall_pass = p_stats.avg_us <= bound_us;
    // Engine-level decoupling: validation settles behind the main
    // thread's back — the join stall is a small fraction of the
    // validation work actually performed.
    let decoupled = pipelined.defer_wait_us <= 0.10 * pipelined.defer_work_us + 50.0;
    let parallelism = std::thread::available_parallelism().map_or(1, |n| n.get());
    if !quick {
        if parallelism >= 2 {
            assert!(
                wall_pass,
                "pipelined round {:.0}µs exceeds 1.25 × max(consensus {:.0}µs, validation {:.0}µs)",
                p_stats.avg_us, consensus_us, pipelined.defer_work_us
            );
        } else {
            // One hardware thread: consensus and validation time-share a
            // single core, so the wall-clock sum is physically
            // irreducible no matter how the engine schedules it. The
            // enforceable claim here is the decoupling property — the
            // verdicts are ready before the main thread needs them.
            assert!(
                decoupled,
                "single-core host: deferred join stall {:.0}µs exceeds 10% of \
                 validation work {:.0}µs — validation is back on the critical path",
                pipelined.defer_wait_us, pipelined.defer_work_us
            );
        }
    }

    // Satellite micro-sweep: the inline threshold governs both the
    // pool's inline/fan-out cutover and the eager screening-batch
    // coalescing granularity.
    let sweep: Vec<(usize, f64)> = [2usize, 8, 32]
        .iter()
        .map(|&im| {
            let r = run_leg(&scheme, depth, 1, im, seed, rounds.min(3));
            (im, stats(&r).avg_us)
        })
        .collect();

    let mut out = String::from("{\n  \"bench\": \"throughput\",\n");
    out.push_str("  \"schema\": \"prb-bench/throughput-v1\",\n");
    out.push_str(&format!("  \"scheme\": \"{}\",\n", scheme.name()));
    out.push_str(&format!("  \"rounds\": {rounds},\n"));
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str(&format!("  \"quick\": {quick},\n"));
    out.push_str(&format!("  \"host_parallelism\": {parallelism},\n"));
    out.push_str("  \"units\": \"microseconds\",\n");
    out.push_str("  \"legs\": [\n");
    leg_json(&mut out, "serial", 0, &serial, &s_stats, false);
    leg_json(&mut out, "pipelined", depth, &pipelined, &p_stats, true);
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"speedup_round_wall\": {},\n",
        json_f64(s_stats.avg_us / p_stats.avg_us.max(1e-9))
    ));
    out.push_str("  \"pipeline_assert\": {\n");
    out.push_str(&format!(
        "    \"pipelined_round_us\": {},\n",
        json_f64(p_stats.avg_us)
    ));
    out.push_str(&format!(
        "    \"consensus_component_us\": {},\n",
        json_f64(consensus_us)
    ));
    out.push_str(&format!(
        "    \"validation_work_us\": {},\n",
        json_f64(pipelined.defer_work_us)
    ));
    out.push_str(&format!("    \"bound_us\": {},\n", json_f64(bound_us)));
    out.push_str(&format!(
        "    \"defer_wait_us\": {},\n",
        json_f64(pipelined.defer_wait_us)
    ));
    out.push_str(&format!("    \"wall_pass\": {wall_pass},\n"));
    out.push_str(&format!("    \"decoupled_pass\": {decoupled},\n"));
    out.push_str(&format!(
        "    \"enforced\": \"{}\"\n",
        if quick {
            "none"
        } else if parallelism >= 2 {
            "wall"
        } else {
            "decoupling"
        }
    ));
    out.push_str("  },\n");
    out.push_str("  \"inline_min_sweep\": [\n");
    for (i, (im, us)) in sweep.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"verify_inline_min\": {im}, \"round_wall_us\": {} }}{}\n",
            json_f64(*us),
            if i + 1 == sweep.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"ledger_identity\": \"pass\"\n");
    out.push_str("}\n");
    std::fs::write(path, &out).unwrap_or_else(|e| panic!("writing {path}: {e}"));

    let mut table = Table::new(
        "serial vs pipelined (4p/4c/4g, 2 tx/provider; wall-clock per round)",
        &[
            "engine",
            "round avg",
            "p50",
            "p99",
            "crypto/round",
            "defer work",
            "overlap",
            "tx/s",
        ],
    );
    for (name, run, s) in [
        ("serial", &serial, &s_stats),
        ("pipelined", &pipelined, &p_stats),
    ] {
        table.row(vec![
            name.into(),
            format!("{:.0} µs", s.avg_us),
            format!("{:.0} µs", s.p50_us),
            format!("{:.0} µs", s.p99_us),
            format!("{:.0} µs", run.crypto_us),
            format!("{:.0} µs", run.defer_work_us),
            format!("{:.0} µs", run.overlap_us),
            format!("{:.0}", s.tx_per_sec),
        ]);
    }
    table.print();
    println!(
        "pipelined round {:.0} µs vs bound {:.0} µs (1.25 × max(consensus {:.0}, validation {:.0})): {}",
        p_stats.avg_us,
        bound_us,
        consensus_us,
        pipelined.defer_work_us,
        if wall_pass { "PASS" } else { "FAIL" }
    );
    println!(
        "decoupling (join stall {:.0} µs vs validation work {:.0} µs): {}   [host parallelism {}; enforcing {}]",
        pipelined.defer_wait_us,
        pipelined.defer_work_us,
        if decoupled { "PASS" } else { "FAIL" },
        parallelism,
        if quick {
            "neither (quick)"
        } else if parallelism >= 2 {
            "wall bound"
        } else {
            "decoupling (single-core host)"
        }
    );
    println!("ledger identity (serial vs pipelined, 3 seeds, thread widths 0/1/2): PASS");
    println!("written to {path}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_are_order_statistics() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.5), 2.0);
        assert_eq!(percentile(&xs, 0.99), 4.0);
        assert!(percentile(&[], 0.5).is_nan());
    }

    #[test]
    fn json_f64_renders_null_for_non_finite() {
        assert_eq!(json_f64(1.25), "1.2");
        assert_eq!(json_f64(f64::NAN), "null");
    }
}

//! Criterion macro-benchmarks: whole protocol rounds end to end.
//!
//! The headline numbers: a full round (32 txs through 3 tiers, screening,
//! reputation, block) under the fast sim scheme, under real Schnorr
//! (256-bit test group), and across governor modes.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use prb_core::behavior::ProviderProfile;
use prb_core::config::{GovernorMode, ProtocolConfig};
use prb_core::sim::Simulation;
use prb_crypto::signer::CryptoScheme;

fn build(crypto: CryptoScheme, mode: GovernorMode) -> Simulation {
    let cfg = ProtocolConfig {
        crypto,
        governor_mode: mode,
        seed: 77,
        ..Default::default()
    };
    Simulation::builder(cfg)
        .provider_profiles(vec![
            ProviderProfile {
                invalid_rate: 0.3,
                active: true
            };
            8
        ])
        .build()
        .expect("valid config")
}

fn bench_rounds(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocol-round");
    // 8 providers × 4 txs per round.
    group.throughput(Throughput::Elements(32));
    group.bench_function("round/sim-crypto", |b| {
        b.iter_batched(
            || build(CryptoScheme::sim(), GovernorMode::Reputation),
            |mut sim| {
                sim.run_round();
                sim
            },
            BatchSize::LargeInput,
        )
    });
    group.sample_size(10);
    group.bench_function("round/schnorr-256", |b| {
        b.iter_batched(
            || build(CryptoScheme::schnorr_test_256(), GovernorMode::Reputation),
            |mut sim| {
                sim.run_round();
                sim
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

fn bench_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("governor-mode");
    group.throughput(Throughput::Elements(32 * 5));
    for (name, mode) in [
        ("reputation", GovernorMode::Reputation),
        ("check-all", GovernorMode::CheckAll),
        ("check-none", GovernorMode::CheckNone),
    ] {
        group.bench_function(format!("5-rounds/{name}"), |b| {
            b.iter_batched(
                || build(CryptoScheme::sim(), mode),
                |mut sim| {
                    sim.run(5);
                    sim
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_rounds, bench_modes);
criterion_main!(benches);

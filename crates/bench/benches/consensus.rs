//! Criterion micro-benchmarks for the consensus layer: VRF-PoS election
//! and the PBFT/stake-block message protocols over the simulated network.

use criterion::{criterion_group, criterion_main, Criterion};

use prb_consensus::election::{elect, ElectionClaim};
use prb_consensus::pbft::{PbftMsg, PbftReplica};
use prb_consensus::stake::{StakeTable, StakeTransfer};
use prb_consensus::stake_block::{StakeGovernor, StakeMsg};
use prb_crypto::signer::{CryptoScheme, KeyPair, PublicKey};
use prb_net::sim::{NetConfig, Network};
use prb_net::time::{SimDuration, SimTime};

fn keys(m: u32) -> (Vec<KeyPair>, Vec<PublicKey>) {
    let scheme = CryptoScheme::sim();
    let keys: Vec<KeyPair> = (0..m)
        .map(|g| scheme.keypair_from_seed(format!("bench-{g}").as_bytes()))
        .collect();
    let pks = keys.iter().map(|k| k.public_key()).collect();
    (keys, pks)
}

fn bench_election(c: &mut Criterion) {
    let mut group = c.benchmark_group("election");
    let (keys, pks) = keys(8);
    let stakes = vec![4u64; 8];
    group.bench_function("claim/stake=4", |b| {
        b.iter(|| ElectionClaim::compute(b"bench", 7, 0, 4, std::hint::black_box(&keys[0])))
    });
    let claims: Vec<ElectionClaim> = keys
        .iter()
        .enumerate()
        .filter_map(|(g, k)| ElectionClaim::compute(b"bench", 7, g as u32, 4, k))
        .collect();
    group.bench_function("elect/m=8", |b| {
        b.iter(|| elect(b"bench", 7, std::hint::black_box(&claims), &stakes, &pks))
    });
    group.finish();
}

fn bench_pbft_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("pbft");
    for m in [4u32, 16] {
        group.bench_function(format!("decision/m={m}"), |b| {
            b.iter(|| {
                let mut net = Network::new(NetConfig::uniform(1, 4), 9);
                for i in 0..m {
                    net.add_node(PbftReplica::new(i, m, 0, SimDuration(10_000)));
                }
                let v = prb_crypto::sha256::sha256(b"bench-block");
                net.send_external(0, "client", PbftMsg::ClientRequest(v), SimTime(0));
                net.run_until(SimTime(2_000));
                assert_eq!(net.node(1).decided().len(), 1);
            })
        });
    }
    group.finish();
}

fn bench_stake_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("stake-block");
    for m in [4u32, 16] {
        let (keys, pks) = keys(m);
        group.bench_function(format!("round/m={m}"), |b| {
            b.iter(|| {
                let mut net = Network::new(NetConfig::uniform(1, 5), 3);
                for g in 0..m {
                    net.add_node(StakeGovernor::new(
                        g,
                        m,
                        0,
                        keys[g as usize].clone(),
                        pks.clone(),
                        StakeTable::uniform(m as usize, 8),
                    ));
                }
                let t = StakeTransfer::create(0, 1, 1, 0, &keys[0]);
                net.send_external(0, "submit", StakeMsg::SubmitTransfer(t), SimTime(0));
                for g in 0..m as usize {
                    net.send_external(
                        g,
                        "start",
                        StakeMsg::StartRound {
                            round: 1,
                            leader: 0,
                        },
                        SimTime(50),
                    );
                }
                net.run_until_idle(1_000_000);
                assert_eq!(net.node(1).committed().len(), 1);
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_election, bench_pbft_round, bench_stake_round);
criterion_main!(benches);

//! Thin `cargo bench` wrapper around [`prb_bench::crypto_bench`]: measures
//! every Schnorr parameter set plus the sim scheme and writes
//! `BENCH_crypto.json` to the workspace root (same document as
//! `exp_throughput --bench-out BENCH_crypto.json`).

use prb_crypto::signer::CryptoScheme;

fn main() {
    // `cargo bench` passes harness flags (e.g. `--bench`); ignore them.
    let schemes = [
        CryptoScheme::sim(),
        CryptoScheme::schnorr_test_256(),
        CryptoScheme::schnorr_test_512(),
        CryptoScheme::schnorr_2048(),
    ];
    let rows = prb_bench::crypto_bench::run_and_write(&schemes, 20, 3, "BENCH_crypto.json");
    for r in &rows {
        println!(
            "{:>14}: sign {:8.1}µs  verify {:8.1}µs  vrf-eval {:8.1}µs  vrf-verify {:8.1}µs  round {:10.1}µs",
            r.scheme, r.sign_us, r.verify_us, r.vrf_evaluate_us, r.vrf_verify_us, r.round_us
        );
    }
    println!("written to BENCH_crypto.json");
}

//! Criterion micro-benchmarks for the cryptographic substrate.
//!
//! Quantifies the cost gap motivating the `SimSigner` substitution
//! (DESIGN.md substitution 3): hash vs Schnorr vs group size.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use prb_crypto::group::SchnorrGroup;
use prb_crypto::merkle::MerkleTree;
use prb_crypto::schnorr::SigningKey;
use prb_crypto::sha256::sha256;
use prb_crypto::signer::CryptoScheme;
use prb_crypto::vrf::VrfKeyPair;

fn bench_sha256(c: &mut Criterion) {
    let mut group = c.benchmark_group("sha256");
    for size in [64usize, 1024, 16 * 1024] {
        let data = vec![0xabu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_function(format!("{size}B"), |b| {
            b.iter(|| sha256(std::hint::black_box(&data)))
        });
    }
    group.finish();
}

fn bench_signatures(c: &mut Criterion) {
    let mut group = c.benchmark_group("sign-verify");
    let msg = b"a labeled transaction upload";
    for scheme in [
        CryptoScheme::sim(),
        CryptoScheme::schnorr_test_256(),
        CryptoScheme::schnorr_test_512(),
    ] {
        let kp = scheme.keypair_from_seed(b"bench");
        let pk = kp.public_key();
        let sig = kp.sign(msg);
        group.bench_function(format!("sign/{}", scheme.name()), |b| {
            b.iter(|| kp.sign(std::hint::black_box(msg)))
        });
        group.bench_function(format!("verify/{}", scheme.name()), |b| {
            b.iter(|| pk.verify(std::hint::black_box(msg), &sig))
        });
    }
    group.finish();
}

fn bench_schnorr_2048(c: &mut Criterion) {
    // Kept separate (and small) — this is the slow secure parameter set.
    let mut group = c.benchmark_group("schnorr-2048");
    group.sample_size(10);
    let sk = SigningKey::from_seed(&SchnorrGroup::rfc3526_2048(), b"bench-2048");
    let msg = b"secure parameter set";
    let sig = sk.sign(msg);
    group.bench_function("sign", |b| b.iter(|| sk.sign(std::hint::black_box(msg))));
    group.bench_function("verify", |b| {
        b.iter(|| sk.verifying_key().verify(std::hint::black_box(msg), &sig))
    });
    group.finish();
}

fn bench_vrf(c: &mut Criterion) {
    let mut group = c.benchmark_group("vrf");
    let kp = VrfKeyPair::from_seed(&SchnorrGroup::test_256(), b"vrf-bench");
    let (_, proof) = kp.evaluate(b"round-1");
    group.bench_function("evaluate/test-256", |b| {
        b.iter(|| kp.evaluate(std::hint::black_box(b"round-1")))
    });
    group.bench_function("verify/test-256", |b| {
        b.iter(|| proof.verify(kp.public_key(), std::hint::black_box(b"round-1")))
    });
    group.finish();
}

fn bench_merkle(c: &mut Criterion) {
    let mut group = c.benchmark_group("merkle");
    for leaves in [64usize, 1024] {
        let data: Vec<Vec<u8>> = (0..leaves)
            .map(|i| format!("leaf-{i}").into_bytes())
            .collect();
        group.bench_function(format!("build/{leaves}"), |b| {
            b.iter(|| MerkleTree::from_leaves(std::hint::black_box(&data)))
        });
        let tree = MerkleTree::from_leaves(&data);
        let proof = tree.prove(leaves / 2).expect("in range");
        let root = tree.root();
        let target = &data[leaves / 2];
        group.bench_function(format!("verify-proof/{leaves}"), |b| {
            b.iter(|| proof.verify(&root, std::hint::black_box(target)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_sha256,
    bench_signatures,
    bench_schnorr_2048,
    bench_vrf,
    bench_merkle
);
criterion_main!(benches);

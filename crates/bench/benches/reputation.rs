//! Criterion micro-benchmarks for the reputation mechanism: the per-
//! transaction costs of screening, RWM updates, and revenue distribution.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use prb_reputation::params::ReputationParams;
use prb_reputation::revenue;
use prb_reputation::rwm::{Advice, Rwm};
use prb_reputation::screening::{screen, Report};
use prb_reputation::update::{ReputationTable, RevealedBehaviour, RevealedReport};

fn bench_screening(c: &mut Criterion) {
    let mut group = c.benchmark_group("screening");
    for r in [4usize, 8, 32] {
        let reports: Vec<Report> = (0..r)
            .map(|i| Report {
                collector: i as u32,
                labeled_valid: i % 3 == 0,
                weight: 1.0 / (i + 1) as f64,
            })
            .collect();
        group.bench_function(format!("screen/r={r}"), |b| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| screen(std::hint::black_box(&reports), 0.5, &mut rng))
        });
    }
    group.finish();
}

fn bench_rwm(c: &mut Criterion) {
    let mut group = c.benchmark_group("rwm");
    for experts in [8usize, 64] {
        let advice: Vec<Advice> = (0..experts)
            .map(|i| match i % 3 {
                0 => Advice::Correct,
                1 => Advice::Wrong,
                _ => Advice::Abstain,
            })
            .collect();
        group.bench_function(format!("round/experts={experts}"), |b| {
            let mut rwm = Rwm::new(experts, 0.9);
            let mut rng = StdRng::seed_from_u64(2);
            b.iter(|| rwm.round(std::hint::black_box(&advice), &mut rng))
        });
    }
    group.finish();
}

fn bench_table_updates(c: &mut Criterion) {
    let mut group = c.benchmark_group("reputation-table");
    let reports: Vec<RevealedReport> = (0..8)
        .map(|i| RevealedReport {
            collector: i,
            provider_slot: 0,
            behaviour: match i % 3 {
                0 => RevealedBehaviour::Correct,
                1 => RevealedBehaviour::Wrong,
                _ => RevealedBehaviour::Missed,
            },
        })
        .collect();
    group.bench_function("record_revealed/8", |b| {
        let mut table = ReputationTable::new(8, 4, ReputationParams::default());
        b.iter(|| table.record_revealed(std::hint::black_box(&reports)))
    });
    let checked: Vec<(usize, bool)> = (0..8).map(|i| (i, i % 2 == 0)).collect();
    group.bench_function("record_checked/8", |b| {
        let mut table = ReputationTable::new(8, 4, ReputationParams::default());
        b.iter(|| table.record_checked(std::hint::black_box(&checked)))
    });
    group.finish();
}

fn bench_revenue(c: &mut Criterion) {
    let mut group = c.benchmark_group("revenue");
    for n in [8usize, 128] {
        let logs: Vec<f64> = (0..n).map(|i| -(i as f64)).collect();
        group.bench_function(format!("distribute/{n}"), |b| {
            b.iter(|| revenue::distribute(100.0, std::hint::black_box(&logs)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_screening,
    bench_rwm,
    bench_table_updates,
    bench_revenue
);
criterion_main!(benches);

//! Per-governor measurement of everything the paper's analysis talks
//! about: losses (realized and expected), screening counts, validation
//! cost, argue outcomes, and the per-(provider, collector) loss tallies
//! behind the regret computation of Theorem 1/4.

use std::collections::HashMap;

/// Counters and accumulators for one governor.
#[derive(Clone, Debug, Default)]
pub struct GovernorMetrics {
    /// Transactions screened (timer fired, decision taken).
    pub screened: u64,
    /// Transactions the governor validated itself.
    pub checked: u64,
    /// Transactions recorded unchecked.
    pub unchecked: u64,
    /// `validate(tx)` calls (screening + argue verification).
    pub validations: u64,
    /// Uploads rejected for bad signatures / forgery (case 1 updates).
    pub forged_detected: u64,
    /// Provider-signature checks answered from the verification memo.
    pub sig_memo_hits: u64,
    /// Provider-signature checks that ran the real verifier (and seeded
    /// the memo).
    pub sig_memo_misses: u64,
    /// Realized loss: 2 per unchecked transaction whose recorded label
    /// turned out wrong (counted at reveal).
    pub realized_loss: f64,
    /// Expected loss: `Σ L_tx` over revealed unchecked transactions.
    pub expected_loss: f64,
    /// Argues accepted (validated and queued for re-recording).
    pub argue_accepted: u64,
    /// Argues rejected for exceeding the `U` latency bound.
    pub argue_rejected: u64,
    /// Valid transactions permanently lost to the `U` bound.
    pub lost_valid: u64,
    /// Unchecked transactions whose truth was revealed.
    pub revealed: u64,
    /// Blocks this governor appended to its chain.
    pub blocks_appended: u64,
    /// Blocks that failed to append (agreement violations; 0 in any
    /// correct run).
    pub append_failures: u64,
    /// Profit paid out per collector (leader rounds only).
    pub revenue_paid: Vec<f64>,
    /// Rounds this governor led.
    pub rounds_led: u64,
    /// Sync requests this governor answered (crash recovery of peers).
    pub sync_served: u64,
    /// Blocks this governor recovered via sync after its own crash.
    pub sync_applied: u64,
    /// Recoveries started (a chain gap or round gap was observed).
    pub sync_requested: u64,
    /// Recoveries completed (caught up to a peer's head).
    pub sync_recovered: u64,
    /// Recoveries abandoned after exhausting peer rotations.
    pub sync_abandoned: u64,
    /// Ticks each completed recovery took, gap detection → caught up.
    pub recovery_ticks: Vec<u64>,
    /// Retransmitted or slow duplicate blocks discarded on arrival.
    pub duplicate_blocks: u64,
    /// Head blocks rolled back during fork resolution (a provisional
    /// self-proposal lost to a rival with a smaller election key, or was
    /// unwound before refetching the settled chain).
    pub head_rollbacks: u64,
    /// Led rounds skipped because the previous provisional self-proposal
    /// was still unconfirmed (extending it could deepen a fork).
    pub proposals_withheld: u64,
    /// Equivocating proposals this governor deliberately double-signed
    /// (byzantine profiles only).
    pub equivocations_sent: u64,
    /// The first round in which this governor equivocated, if it ever did.
    pub first_equivocation_round: Option<u64>,
    /// Invalid (forged-entry) proposals this governor deliberately sent.
    pub invalid_proposals_sent: u64,
    /// Transactions this governor dropped from its own proposals while
    /// censoring.
    pub censored_txs: u64,
    /// Led or claim-eligible rounds this governor sat out while silent.
    pub silent_rounds: u64,
    /// Equivocation evidence records this governor assembled and broadcast.
    pub evidence_broadcast: u64,
    /// Evidence records received from peers that verified.
    pub evidence_received: u64,
    /// Governors this node expelled from its committee view.
    pub expulsions: u64,
    /// Round each expulsion took effect locally, keyed by culprit.
    pub expulsion_round: HashMap<u32, u64>,
    /// Proposed blocks rejected on arrival for failing authentication.
    pub invalid_blocks_rejected: u64,
    /// Checkpoint shares this governor signed and broadcast.
    pub checkpoint_shares_sent: u64,
    /// Checkpoint certificates this governor assembled from a quorum of
    /// shares.
    pub checkpoint_certs_formed: u64,
    /// Checkpoint shares discarded because their state digest did not
    /// match this governor's own snapshot at that serial (transient
    /// reveal-timing divergence, or a byzantine signer).
    pub checkpoint_digest_mismatches: u64,
    /// Checkpoint certificates offered by sync peers that this governor
    /// verified and adopted, re-anchoring its chain.
    pub checkpoints_adopted: u64,
    /// Serial of the most recently adopted checkpoint (0 = never).
    pub adopted_serial: u64,
    /// Sync pages applied after the most recent checkpoint adoption —
    /// the O(delta) bound: at most `delta / sync_page + 1` where
    /// `delta = head − adopted_serial`.
    pub pages_after_adopt: u64,
    /// Checkpoint certificates offered by peers but rejected (stale
    /// serial, forged or under-quorum signatures). A rejected offer
    /// never rolls the chain back.
    pub checkpoints_rejected: u64,
    /// Sync-page blocks rejected by chain validation, keyed by
    /// [`prb_ledger::chain::ChainError::kind`] label and carrying the
    /// typed import/append diagnostics (satellite of the durable-store
    /// tentpole: corrupted or byzantine sync payloads are visible, not
    /// silent).
    pub sync_rejected: HashMap<&'static str, u64>,
    /// Membership certificates this governor assembled from a quorum of
    /// shares (E17).
    pub member_certs_formed: u64,
    /// Certified membership transitions applied at their effective
    /// round.
    pub member_applied: u64,
    /// Eviction proposals this governor originated (silent or
    /// below-floor collectors).
    pub evictions_proposed: u64,
    /// Silence-decay steps applied to collectors' screening weights.
    pub decay_events: u64,
    /// Reveals per provider (denominator for per-collector quality
    /// estimates under churn).
    pub revealed_by_provider: HashMap<u32, u64>,
    /// Realized loss per provider.
    pub realized_loss_by_provider: HashMap<u32, f64>,
    /// Expected loss per provider.
    pub expected_loss_by_provider: HashMap<u32, f64>,
    /// Cumulative loss per (provider, collector): 2 per wrong label, 1 per
    /// miss, over revealed unchecked transactions — the expert losses of
    /// Theorem 1.
    pub collector_loss: HashMap<(u32, u32), f64>,
}

impl GovernorMetrics {
    /// Fresh metrics for a governor paying `collectors` collectors.
    pub fn new(collectors: usize) -> Self {
        GovernorMetrics {
            revenue_paid: vec![0.0; collectors],
            ..Default::default()
        }
    }

    /// Records the reveal of an unchecked transaction.
    pub fn record_reveal(
        &mut self,
        provider: u32,
        l_tx: f64,
        recorded_label_was_wrong: bool,
        involvements: impl IntoIterator<Item = (u32, f64)>,
    ) {
        self.revealed += 1;
        *self.revealed_by_provider.entry(provider).or_default() += 1;
        self.expected_loss += l_tx;
        *self.expected_loss_by_provider.entry(provider).or_default() += l_tx;
        if recorded_label_was_wrong {
            self.realized_loss += 2.0;
            *self.realized_loss_by_provider.entry(provider).or_default() += 2.0;
        }
        for (collector, loss) in involvements {
            *self
                .collector_loss
                .entry((provider, collector))
                .or_default() += loss;
        }
    }

    /// The best collector's cumulative loss for `provider` — `S^min_T`
    /// over the collectors that oversee it.
    pub fn best_collector_loss(&self, provider: u32, collectors: &[u32]) -> f64 {
        collectors
            .iter()
            .map(|c| {
                self.collector_loss
                    .get(&(provider, *c))
                    .copied()
                    .unwrap_or(0.0)
            })
            .fold(f64::INFINITY, f64::min)
    }

    /// The governor's regret on `provider`:
    /// expected loss − best collector loss (Theorem 1's `L_T − S^min_T`).
    pub fn regret(&self, provider: u32, collectors: &[u32]) -> f64 {
        let loss = self
            .expected_loss_by_provider
            .get(&provider)
            .copied()
            .unwrap_or(0.0);
        let best = self.best_collector_loss(provider, collectors);
        if best.is_finite() {
            loss - best
        } else {
            loss
        }
    }

    /// Fraction of screened transactions that went unchecked.
    pub fn unchecked_fraction(&self) -> f64 {
        if self.screened == 0 {
            0.0
        } else {
            self.unchecked as f64 / self.screened as f64
        }
    }

    /// Modeled validation time: `validations × cost_per_validation` ticks
    /// (the throughput denominator of experiment E5).
    pub fn validation_ticks(&self, cost_per_validation: u64) -> u64 {
        self.validations * cost_per_validation
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reveal_accumulates_all_accounts() {
        let mut m = GovernorMetrics::new(3);
        m.record_reveal(0, 1.0, true, vec![(0, 2.0), (1, 0.0), (2, 1.0)]);
        m.record_reveal(0, 0.5, false, vec![(0, 2.0), (1, 0.0), (2, 1.0)]);
        assert_eq!(m.revealed, 2);
        assert_eq!(m.realized_loss, 2.0);
        assert_eq!(m.expected_loss, 1.5);
        assert_eq!(m.realized_loss_by_provider[&0], 2.0);
        assert_eq!(m.collector_loss[&(0, 0)], 4.0);
        assert_eq!(m.collector_loss[&(0, 2)], 2.0);
    }

    #[test]
    fn best_collector_and_regret() {
        let mut m = GovernorMetrics::new(3);
        m.record_reveal(0, 1.0, true, vec![(0, 2.0), (1, 0.0), (2, 1.0)]);
        m.record_reveal(0, 1.0, true, vec![(0, 2.0), (1, 0.0), (2, 1.0)]);
        assert_eq!(m.best_collector_loss(0, &[0, 1, 2]), 0.0);
        assert_eq!(m.regret(0, &[0, 1, 2]), 2.0);
        // Collector 1 excluded: the best remaining is collector 2.
        assert_eq!(m.best_collector_loss(0, &[0, 2]), 2.0);
        assert_eq!(m.regret(0, &[0, 2]), 0.0);
    }

    #[test]
    fn regret_with_no_collectors_is_plain_loss() {
        let mut m = GovernorMetrics::new(0);
        m.record_reveal(3, 0.7, false, vec![]);
        assert_eq!(m.regret(3, &[]), 0.7);
        assert_eq!(m.regret(9, &[]), 0.0);
    }

    #[test]
    fn unchecked_fraction() {
        let mut m = GovernorMetrics::new(0);
        assert_eq!(m.unchecked_fraction(), 0.0);
        m.screened = 10;
        m.unchecked = 3;
        assert!((m.unchecked_fraction() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn validation_ticks() {
        let mut m = GovernorMetrics::new(0);
        m.validations = 7;
        assert_eq!(m.validation_ticks(50), 350);
    }
}

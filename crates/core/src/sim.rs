//! The simulation driver: builds the three-tier deployment and runs
//! protocol rounds end to end.
//!
//! The driver owns the workload, injects round-start commands, relays
//! committed-block notifications to providers (their `retrieve(s)`), and
//! schedules the reveal events assumed by Theorem 1. Everything else —
//! transactions, labels, screening, blocks, argues — travels through the
//! simulated network between the node actors.

use std::cell::RefCell;
use std::collections::HashSet;
use std::fmt;
use std::rc::Rc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use prb_consensus::membership::{MemberRole, MembershipAction, MembershipRequest};
use prb_consensus::stake::StakeTransfer;
use prb_crypto::identity::{IdentityManager, NodeId};
use prb_crypto::signer::{KeyPair, PublicKey};
use prb_ledger::block::Verdict;
use prb_ledger::oracle::ValidityOracle;
use prb_ledger::transaction::TxId;
use prb_net::fault::FaultPlan;
use prb_net::message::NodeIdx;
use prb_net::retry::RetryConfig;
use prb_net::sim::{NetConfig, Network};
use prb_net::stats::MessageStats;
use prb_net::time::{SimDuration, SimTime};
use prb_net::topology::Topology;
use prb_obs::{Obs, ObsHandle, Role};

use crate::behavior::{CollectorProfile, ProviderProfile};
use crate::collector::CollectorNode;
use crate::config::{ProtocolConfig, RevealPolicy, TopologyKind};
use crate::governor::GovernorNode;
use crate::metrics::GovernorMetrics;
use crate::msg::ProtocolMsg;
use crate::node::NodeActor;
use crate::provider::ProviderNode;
use crate::workload::{UniformWorkload, Workload};

/// Checked tier-offset arithmetic for kernel node indices: sums are
/// computed in `u64` and narrowed with `try_from`, so a configuration
/// whose node count overflows the platform `usize` (or a `u32`
/// intermediate sum at 10⁶-provider scale) fails loudly instead of
/// silently truncating into a wrong — but valid-looking — node index.
pub(crate) fn net_index(idx: u64) -> NodeIdx {
    NodeIdx::try_from(idx).expect("node index fits the platform usize")
}

/// What happened in one round (driver's view, read from governor 0).
#[derive(Clone, Debug, PartialEq)]
pub struct RoundOutcome {
    /// The round number.
    pub round: u64,
    /// The leader governor 0 elected, if any.
    pub leader: Option<u32>,
    /// Serial of the block committed this round, if one was.
    pub block_serial: Option<u64>,
    /// Transactions in that block.
    pub txs_in_block: usize,
}

/// Builder for a [`Simulation`].
pub struct SimulationBuilder {
    cfg: ProtocolConfig,
    workload: Option<Box<dyn Workload>>,
    collector_profiles: Vec<CollectorProfile>,
    provider_profiles: Vec<ProviderProfile>,
}

impl fmt::Debug for SimulationBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimulationBuilder")
            .field("cfg", &self.cfg)
            .finish_non_exhaustive()
    }
}

impl SimulationBuilder {
    /// Overrides the workload (default: [`UniformWorkload`] driven by the
    /// provider profiles' invalid rates).
    pub fn workload(mut self, workload: Box<dyn Workload>) -> Self {
        self.workload = Some(workload);
        self
    }

    /// Sets all collector profiles at once.
    ///
    /// # Panics
    ///
    /// Panics if the length differs from the configured collector count.
    pub fn collector_profiles(mut self, profiles: Vec<CollectorProfile>) -> Self {
        assert_eq!(
            profiles.len(),
            self.cfg.collectors as usize,
            "need one profile per collector"
        );
        self.collector_profiles = profiles;
        self
    }

    /// Sets the profile of one collector.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn collector_profile(mut self, index: u32, profile: CollectorProfile) -> Self {
        self.collector_profiles[index as usize] = profile;
        self
    }

    /// Sets all provider profiles at once.
    ///
    /// # Panics
    ///
    /// Panics if the length differs from the configured provider count.
    pub fn provider_profiles(mut self, profiles: Vec<ProviderProfile>) -> Self {
        assert_eq!(
            profiles.len(),
            self.cfg.providers as usize,
            "need one profile per provider"
        );
        self.provider_profiles = profiles;
        self
    }

    /// Sets the profile of one provider.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn provider_profile(mut self, index: u32, profile: ProviderProfile) -> Self {
        self.provider_profiles[index as usize] = profile;
        self
    }

    /// Builds the simulation.
    ///
    /// # Errors
    ///
    /// Returns a description of any invalid configuration.
    pub fn build(self) -> Result<Simulation, String> {
        Simulation::from_builder(self)
    }
}

/// Driver-side record of a certified collector transition awaiting its
/// effective round (mirrored from governor 0's certificate log so the
/// collector/provider actors change behaviour in lockstep with the
/// committee's view).
#[derive(Clone, Copy, Debug)]
struct PendingChurn {
    effective_round: u64,
    collector: u32,
    activate: bool,
}

/// A fully wired protocol deployment.
pub struct Simulation {
    cfg: ProtocolConfig,
    net: Network<NodeActor>,
    topology: Rc<Topology>,
    oracle: Rc<RefCell<ValidityOracle>>,
    workload: Box<dyn Workload>,
    governor_keys: Vec<KeyPair>,
    collector_keys: Vec<KeyPair>,
    stake_nonces: Vec<u64>,
    driver_rng: StdRng,
    obs: ObsHandle,
    /// Crypto counter values when the obs hub was installed, so the
    /// summary reports per-run deltas of the process-wide counters.
    crypto_stats_base: prb_crypto::stats::CryptoStats,
    round: u64,
    next_start: u64,
    observed_height: u64,
    /// Transactions already scheduled for reveal (argue may race; the
    /// governor dedupes, this only avoids duplicate events).
    reveal_scheduled: HashSet<TxId>,
    /// Driver's view of which collectors are live (E17 churn): departed
    /// collectors generate no uploads and providers skip them.
    collector_live: Vec<bool>,
    /// Certified collector transitions not yet at their effective round.
    pending_churn: Vec<PendingChurn>,
    /// Cursor into governor 0's membership-certificate log (how many
    /// certs the driver has already mirrored).
    observed_member_certs: usize,
    /// Collectors with a membership request in flight (drawn or
    /// submitted, not yet applied) — suppresses duplicate draws.
    churn_inflight: HashSet<u32>,
}

impl fmt::Debug for Simulation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Simulation")
            .field("round", &self.round)
            .field("height", &self.observed_height)
            .finish_non_exhaustive()
    }
}

impl Simulation {
    /// Starts building a simulation for `cfg`.
    pub fn builder(cfg: ProtocolConfig) -> SimulationBuilder {
        let collectors = cfg.collectors as usize;
        let providers = cfg.providers as usize;
        SimulationBuilder {
            cfg,
            workload: None,
            collector_profiles: vec![CollectorProfile::honest(); collectors],
            provider_profiles: vec![ProviderProfile::default(); providers],
        }
    }

    /// A simulation with all-honest nodes and the default workload.
    ///
    /// # Errors
    ///
    /// Returns a description of any invalid configuration.
    pub fn new(cfg: ProtocolConfig) -> Result<Self, String> {
        Self::builder(cfg).build()
    }

    fn from_builder(builder: SimulationBuilder) -> Result<Self, String> {
        let cfg = builder.cfg;
        cfg.validate()?;
        let mut seed_rng = StdRng::seed_from_u64(cfg.seed);
        let topo_params = cfg.topology_params();
        let topology = Rc::new(match cfg.topology {
            TopologyKind::Cyclic => Topology::cyclic(topo_params)?,
            TopologyKind::Random => Topology::random(topo_params, &mut seed_rng)?,
        });
        let mut im = IdentityManager::new(cfg.crypto.clone(), &cfg.seed.to_be_bytes());
        let oracle = Rc::new(RefCell::new(ValidityOracle::new()));

        let l = cfg.providers;
        let n = cfg.collectors;
        let m = cfg.governors;
        let collector_net = |c: u32| net_index(l as u64 + c as u64);
        let governor_base = net_index(l as u64 + n as u64);
        let governor_nets: Vec<NodeIdx> = (0..m).map(|g| governor_base + g as NodeIdx).collect();

        // Enroll everyone and gather public keys.
        let mut provider_creds = Vec::new();
        let mut collector_creds = Vec::new();
        let mut governor_creds = Vec::new();
        for p in 0..l {
            provider_creds.push(im.enroll(NodeId::provider(p)).map_err(|e| e.to_string())?);
        }
        for c in 0..n {
            collector_creds.push(im.enroll(NodeId::collector(c)).map_err(|e| e.to_string())?);
        }
        for g in 0..m {
            governor_creds.push(im.enroll(NodeId::governor(g)).map_err(|e| e.to_string())?);
        }
        let provider_pks: Vec<PublicKey> = provider_creds
            .iter()
            .map(|c| c.certificate.public_key.clone())
            .collect();
        let collector_pks: Vec<PublicKey> = collector_creds
            .iter()
            .map(|c| c.certificate.public_key.clone())
            .collect();
        let governor_pks: Vec<PublicKey> = governor_creds
            .iter()
            .map(|c| c.certificate.public_key.clone())
            .collect();

        let mut net = Network::new(
            NetConfig::uniform(cfg.min_delay, cfg.max_delay),
            cfg.seed.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        );

        for p in 0..l {
            let collector_nets = topology
                .collectors_of(p)
                .iter()
                .map(|&c| collector_net(c))
                .collect();
            net.add_node(NodeActor::Provider(ProviderNode::new(
                p,
                provider_creds[p as usize].keypair.clone(),
                builder.provider_profiles[p as usize],
                collector_nets,
                governor_nets.clone(),
                Rc::clone(&oracle),
            )));
        }
        for c in 0..n {
            let linked_pks = topology
                .providers_of(c)
                .iter()
                .map(|&p| (p, provider_pks[p as usize].clone()))
                .collect();
            net.add_node(NodeActor::Collector(CollectorNode::new(
                c,
                collector_creds[c as usize].keypair.clone(),
                cfg.crypto.clone(),
                builder.collector_profiles[c as usize],
                linked_pks,
                governor_nets.clone(),
                Rc::clone(&oracle),
            )));
        }
        for g in 0..m {
            let mut gov = GovernorNode::new(
                g,
                governor_creds[g as usize].keypair.clone(),
                cfg.clone(),
                Rc::clone(&topology),
                Rc::clone(&oracle),
                governor_base,
                collector_pks.clone(),
                provider_pks.clone(),
                governor_pks.clone(),
            );
            // Durable persistence: each governor mirrors its chain into
            // `<store_dir>/g<idx>`, recovering whatever durable prefix
            // (and checkpoint certificate) a previous run left there.
            if let Some(dir) = &cfg.store_dir {
                let opts = prb_store::StoreOptions {
                    chain_tag: b"prb-chain".to_vec(),
                    b_limit: cfg.b_limit,
                    segment_bytes: cfg.store_segment_bytes,
                    fsync: prb_store::FsyncPolicy::Always,
                };
                let (store, recovered) =
                    prb_store::BlockStore::open(&dir.join(format!("g{g}")), opts)
                        .map_err(|e| format!("governor {g} store: {e}"))?;
                gov.set_store(store, recovered);
            }
            net.add_node(NodeActor::governor(gov));
        }

        if cfg.reliable_delivery {
            // One retry policy for every critical hop, derived from Δ;
            // the pending queue is bounded by `retry_capacity` (oldest
            // tokens are abandoned first under sustained overload).
            let retry_cfg = RetryConfig::for_delta(SimDuration(cfg.max_delay))
                .with_max_pending(cfg.retry_capacity);
            for idx in 0..net.node_count() {
                match net.node_mut(idx) {
                    NodeActor::Provider(p) => p.set_reliable(retry_cfg),
                    NodeActor::Collector(c) => c.set_reliable(retry_cfg),
                    NodeActor::Governor(g) => g.set_reliable(retry_cfg),
                }
            }
        }

        let governor_keys: Vec<KeyPair> =
            governor_creds.iter().map(|c| c.keypair.clone()).collect();
        let collector_keys: Vec<KeyPair> =
            collector_creds.iter().map(|c| c.keypair.clone()).collect();
        let workload = builder.workload.unwrap_or_else(|| {
            Box::new(UniformWorkload {
                invalid_rates: builder
                    .provider_profiles
                    .iter()
                    .map(|p| p.invalid_rate)
                    .collect(),
                payload_len: 32,
            })
        });
        let driver_rng = StdRng::seed_from_u64(
            cfg.driver_seed
                .unwrap_or(cfg.seed)
                .wrapping_add(0x5151_5151),
        );
        // A restart over a durable store resumes with governor 0 already
        // holding its recovered prefix; the driver's block-notification
        // cursor starts past it (old blocks belong to the previous run's
        // workload — replaying their notifications against fresh
        // providers and a fresh oracle would be meaningless).
        let observed_height = if cfg.store_dir.is_some() {
            net.node(governor_base)
                .as_governor()
                .map_or(0, |g| g.chain().height())
        } else {
            0
        };
        Ok(Simulation {
            cfg,
            net,
            topology,
            oracle,
            workload,
            stake_nonces: vec![0; governor_keys.len()],
            governor_keys,
            collector_live: vec![true; collector_keys.len()],
            collector_keys,
            driver_rng,
            obs: Obs::off(),
            crypto_stats_base: prb_crypto::stats::snapshot(),
            round: 0,
            next_start: 0,
            observed_height,
            reveal_scheduled: HashSet::new(),
            pending_churn: Vec::new(),
            observed_member_certs: 0,
            churn_inflight: HashSet::new(),
        })
    }

    /// The configuration this simulation runs.
    pub fn config(&self) -> &ProtocolConfig {
        &self.cfg
    }

    /// The wired topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Number of completed rounds.
    pub fn rounds_run(&self) -> u64 {
        self.round
    }

    /// Network traffic statistics.
    pub fn net_stats(&self) -> &MessageStats {
        self.net.stats()
    }

    /// The validity oracle (for experiment scoring).
    pub fn oracle(&self) -> &Rc<RefCell<ValidityOracle>> {
        &self.oracle
    }

    /// Installs an observability hub on the network kernel and every
    /// node, and declares node roles on it. Until this runs the
    /// deployment carries the default disabled hub and pays nothing.
    pub fn set_obs(&mut self, obs: ObsHandle) {
        let l = self.cfg.providers as usize;
        let n = self.cfg.collectors as usize;
        let m = self.cfg.governors as usize;
        let mut roles = Vec::with_capacity(l + n + m);
        roles.extend(std::iter::repeat_n(Role::Provider, l));
        roles.extend(std::iter::repeat_n(Role::Collector, n));
        roles.extend(std::iter::repeat_n(Role::Governor, m));
        obs.set_roles(roles);
        self.net.set_obs(Rc::clone(&obs));
        for idx in 0..self.net.node_count() {
            match self.net.node_mut(idx) {
                NodeActor::Provider(p) => p.set_obs(Rc::clone(&obs)),
                NodeActor::Collector(c) => c.set_obs(Rc::clone(&obs), idx as u64),
                NodeActor::Governor(g) => g.set_obs(Rc::clone(&obs)),
            }
        }
        self.obs = obs;
        self.crypto_stats_base = prb_crypto::stats::snapshot();
    }

    /// The observability hub (disabled unless [`Simulation::set_obs`]
    /// installed one).
    pub fn obs(&self) -> &ObsHandle {
        &self.obs
    }

    /// Flushes the trace sink and renders the end-of-run summary:
    /// event counts per kind, then phase-latency percentiles in sim
    /// ticks. Empty when tracing is off.
    pub fn obs_summary(&self) -> String {
        if self.obs.is_enabled() {
            // Export the run's modexp hot-path activity (see
            // `prb_crypto::stats`): deltas of the process-wide counters
            // since the hub was installed.
            let d = prb_crypto::stats::snapshot().delta_since(&self.crypto_stats_base);
            let m = self.obs.metrics();
            m.add("crypto.modexp_calls", d.modexp_calls);
            m.add("crypto.multi_pow_calls", d.multi_pow_calls);
            m.add("crypto.table_builds", d.table_builds);
            m.add("crypto.table_pows", d.table_pows);
            m.add("crypto.batch.calls", d.batch_calls);
            m.add("crypto.batch.items", d.batch_items);
            m.add("crypto.batch.bisect_steps", d.batch_bisect_steps);
            m.add("crypto.batch.fallback_items", d.batch_fallback_items);
        }
        self.obs.flush();
        let mut out = self.obs.summary();
        if self.obs.is_enabled() {
            // Wall-clock phase attribution: how much of each round's real
            // time the crypto (verify-pool batches + VRF) accounted for.
            let m = self.obs.metrics();
            let round_ns = m.counter("wall.round_ns");
            let rounds = m.counter("wall.rounds");
            if round_ns > 0 && rounds > 0 {
                let crypto_ns = m.counter("wall.crypto_ns").min(round_ns);
                let other_ns = round_ns - crypto_ns;
                let pct = 100.0 * crypto_ns as f64 / round_ns as f64;
                out.push_str("\n## wall-clock phase profile\n");
                out.push_str(&format!(
                    "rounds {rounds}  avg round {:.2} ms  crypto {:.2} ms ({pct:.1}%)  non-crypto {:.2} ms\n",
                    round_ns as f64 / rounds as f64 / 1e6,
                    crypto_ns as f64 / rounds as f64 / 1e6,
                    other_ns as f64 / rounds as f64 / 1e6,
                ));
                // Pipelined engine: background-validation overlap. The
                // deferred batches did `defer_work` of crypto off the
                // main thread; the main thread only stalled `defer_wait`
                // joining them — `overlap` is the wall-clock the pipeline
                // bought back versus verifying inline.
                let defer_work = m.counter("wall.defer_work_ns");
                if defer_work > 0 {
                    let defer_wait = m.counter("wall.defer_wait_ns");
                    let overlap = m.counter("wall.overlap_ns");
                    out.push_str(&format!(
                        "deferred validation: work {:.2} ms  join-wait {:.2} ms  overlap {:.2} ms\n",
                        defer_work as f64 / 1e6,
                        defer_wait as f64 / 1e6,
                        overlap as f64 / 1e6,
                    ));
                }
            }
        }
        out
    }

    fn governor_node(&self, g: u32) -> &GovernorNode {
        self.net
            .node(self.governor_net_index(g))
            .as_governor()
            .expect("index is a governor")
    }

    /// Governor `g`'s state (chain, reputation, metrics).
    ///
    /// # Panics
    ///
    /// Panics if `g` is out of range.
    pub fn governor(&self, g: u32) -> &GovernorNode {
        assert!(g < self.cfg.governors, "governor {g} out of range");
        self.governor_node(g)
    }

    /// Governor `g`'s metrics (shorthand).
    ///
    /// # Panics
    ///
    /// Panics if `g` is out of range.
    pub fn metrics(&self, g: u32) -> &GovernorMetrics {
        self.governor(g).metrics()
    }

    /// Provider `p`'s node.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn provider(&self, p: u32) -> &crate::provider::ProviderNode {
        assert!(p < self.cfg.providers);
        self.net
            .node(p as NodeIdx)
            .as_provider()
            .expect("index is a provider")
    }

    /// Collector `c`'s node.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range.
    pub fn collector(&self, c: u32) -> &crate::collector::CollectorNode {
        assert!(c < self.cfg.collectors);
        self.net
            .node(self.collector_net_index(c))
            .as_collector()
            .expect("index is a collector")
    }

    /// Whether all governors hold identical chains (the Agreement
    /// property).
    pub fn chains_agree(&self) -> bool {
        self.chains_agree_among(&(0..self.cfg.governors).collect::<Vec<_>>())
    }

    /// Agreement restricted to a subset of governors (used when some have
    /// been crash-faulted: the property only covers live replicas).
    ///
    /// # Panics
    ///
    /// Panics if `governors` is empty or contains an out-of-range index.
    pub fn chains_agree_among(&self, governors: &[u32]) -> bool {
        let reference = self.governor_node(governors[0]).chain();
        governors[1..].iter().all(|&g| {
            let other = self.governor_node(g).chain();
            // `head_hash` is total (the anchor hash for a freshly
            // checkpoint-anchored chain), so agreement also covers
            // governors that re-anchored via state-sync.
            other.height() == reference.height() && other.head_hash() == reference.head_hash()
        })
    }

    /// Prefix agreement: every listed governor's chain is byte-identical
    /// to the others' up to the shortest height (the safety invariant
    /// under faults — a lagging replica may be short, never divergent).
    ///
    /// # Panics
    ///
    /// Panics if `governors` is empty or contains an out-of-range index.
    pub fn chains_prefix_agree(&self, governors: &[u32]) -> bool {
        let reference = self.governor_node(governors[0]).chain();
        let min_height = governors
            .iter()
            .map(|&g| self.governor_node(g).chain().height())
            .min()
            .expect("at least one governor");
        // A checkpoint-anchored chain holds no blocks below its base:
        // the comparable window starts at the highest base among the
        // listed governors (the certified prefix below it is vouched for
        // by the checkpoint quorum, not by block-by-block comparison).
        let lo = governors
            .iter()
            .map(|&g| self.governor_node(g).chain().base().max(1))
            .max()
            .expect("at least one governor");
        governors[1..].iter().all(|&g| {
            let other = self.governor_node(g).chain();
            (lo..=min_height).all(|serial| {
                match (reference.retrieve(serial), other.retrieve(serial)) {
                    (Some(a), Some(b)) => a.hash() == b.hash(),
                    _ => false,
                }
            })
        })
    }

    /// Installs a fault plan on the underlying network. Node indices in
    /// the plan are network indices: providers take `0..l`, collectors
    /// `l..l+n`, governors `l+n..l+n+m` (see [`Simulation::governor_net_index`]).
    pub fn set_faults(&mut self, faults: FaultPlan) {
        self.net.set_faults(faults);
    }

    /// The network index of governor `g` (for fault plans).
    pub fn governor_net_index(&self, g: u32) -> NodeIdx {
        net_index(self.cfg.providers as u64 + self.cfg.collectors as u64 + g as u64)
    }

    /// The network index of collector `c` (for fault plans).
    pub fn collector_net_index(&self, c: u32) -> NodeIdx {
        net_index(self.cfg.providers as u64 + c as u64)
    }

    /// The network index of provider `p` (for fault plans).
    pub fn provider_net_index(&self, p: u32) -> NodeIdx {
        p as NodeIdx
    }

    /// Submits a stake transfer on behalf of governor `from`, broadcast to
    /// every governor at the end of the current round (§3.4.3: stake
    /// movements are settled in the round's stake-transform block; the
    /// next round's election uses the new weights).
    ///
    /// # Errors
    ///
    /// Returns an error for unknown governor indices; balance/nonce
    /// violations surface as the transfer simply not applying (each
    /// governor validates independently, exactly like a live deployment).
    pub fn submit_stake_transfer(&mut self, from: u32, to: u32, amount: u64) -> Result<(), String> {
        let key = self
            .governor_keys
            .get(from as usize)
            .ok_or_else(|| format!("unknown governor g{from}"))?;
        if to >= self.cfg.governors {
            return Err(format!("unknown governor g{to}"));
        }
        let nonce = self.stake_nonces[from as usize];
        self.stake_nonces[from as usize] += 1;
        let transfer = StakeTransfer::create(from, to, amount, nonce, key);
        let l = self.cfg.providers;
        let n = self.cfg.collectors;
        let at = SimTime(self.next_start);
        for g in 0..self.cfg.governors {
            self.net.send_external(
                net_index(l as u64 + n as u64 + g as u64),
                "stake-transfer",
                ProtocolMsg::StakeTransfer(transfer.clone()),
                at,
            );
        }
        Ok(())
    }

    /// Submits a subject-signed membership request (join, voluntary
    /// leave, or an externally scripted eviction) to every governor,
    /// delivered at the start of the next round. The transition takes
    /// effect two rounds later, once a governor quorum certifies it
    /// (E17 dynamic membership).
    ///
    /// # Errors
    ///
    /// Returns an error for out-of-range members, or when churn is
    /// disabled in the config (governors drop membership traffic then).
    pub fn submit_membership(
        &mut self,
        role: MemberRole,
        member: u32,
        action: MembershipAction,
    ) -> Result<(), String> {
        if !self.cfg.churn_enabled() {
            return Err(
                "membership churn is disabled (set a join/leave rate or decay half-life)".into(),
            );
        }
        let in_range = match role {
            MemberRole::Collector => member < self.cfg.collectors,
            MemberRole::Governor => member < self.cfg.governors,
        };
        if !in_range {
            return Err(format!("unknown {role:?} member {member}"));
        }
        let effective = self.round + 2;
        let req = if action == MembershipAction::Evict {
            MembershipRequest::evict(role, member, effective)
        } else {
            let bond = if action == MembershipAction::Join {
                1
            } else {
                0
            };
            let key = match role {
                MemberRole::Collector => &self.collector_keys[member as usize],
                MemberRole::Governor => &self.governor_keys[member as usize],
            };
            MembershipRequest::create(role, member, action, bond, effective, key)
        };
        if role == MemberRole::Collector {
            self.churn_inflight.insert(member);
        }
        let at = SimTime(self.next_start);
        self.broadcast_membership(&req, at);
        Ok(())
    }

    /// Driver's view of whether collector `c` is currently live.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range.
    pub fn collector_is_live(&self, c: u32) -> bool {
        self.collector_live[c as usize]
    }

    /// Live collectors in ascending order (driver's view).
    pub fn live_collectors(&self) -> Vec<u32> {
        (0..self.cfg.collectors)
            .filter(|&c| self.collector_live[c as usize])
            .collect()
    }

    fn broadcast_membership(&mut self, req: &MembershipRequest, at: SimTime) {
        let l = self.cfg.providers;
        let n = self.cfg.collectors;
        for g in 0..self.cfg.governors {
            self.net.send_external(
                net_index(l as u64 + n as u64 + g as u64),
                "membership",
                ProtocolMsg::Membership(Box::new(req.clone())),
                at,
            );
        }
    }

    /// Pulls membership certificates governor 0 formed since the last
    /// mirror into the driver's pending queue. The certificate log — not
    /// the driver's own submissions — is the source of truth, so
    /// governor-originated evictions flip the actors too.
    fn mirror_member_certs(&mut self) {
        let new: Vec<(MemberRole, u32, MembershipAction, u64)> = {
            let certs = self.governor_node(0).membership_certs();
            certs[self.observed_member_certs..]
                .iter()
                .map(|c| {
                    (
                        c.request.role,
                        c.request.member,
                        c.request.action,
                        c.request.effective_round,
                    )
                })
                .collect()
        };
        self.observed_member_certs += new.len();
        for (role, member, action, effective_round) in new {
            if role != MemberRole::Collector {
                // Governor transitions live entirely inside the governor
                // actors (quorums, election, gossip); no driver-side
                // behaviour change.
                continue;
            }
            self.pending_churn.push(PendingChurn {
                effective_round,
                collector: member,
                activate: action == MembershipAction::Join,
            });
        }
    }

    /// Applies certified collector transitions due at `round`: flips the
    /// collector actor (mempool cleared, retries purged) and tells every
    /// linked provider to skip (or resume) the fan-out — the same round
    /// boundary at which governors apply the certificate.
    fn apply_due_churn(&mut self, round: u64) {
        if self.pending_churn.is_empty() {
            return;
        }
        let mut due: Vec<PendingChurn> = Vec::new();
        self.pending_churn.retain(|p| {
            if p.effective_round <= round {
                due.push(*p);
                false
            } else {
                true
            }
        });
        due.sort_by_key(|p| (p.effective_round, p.collector, p.activate));
        let topology = Rc::clone(&self.topology);
        for p in due {
            let c = p.collector;
            self.collector_live[c as usize] = p.activate;
            self.churn_inflight.remove(&c);
            let c_net = self.collector_net_index(c);
            if let NodeActor::Collector(node) = self.net.node_mut(c_net) {
                node.set_active(p.activate);
            }
            for &prov in topology.providers_of(c) {
                if let NodeActor::Provider(node) = self.net.node_mut(prov as NodeIdx) {
                    node.set_collector_active(c_net, p.activate);
                }
            }
        }
    }

    /// Draws this round's rate-driven join/leave requests from the
    /// driver RNG: each live collector leaves with probability
    /// `leave_rate`, each departed one rejoins with probability
    /// `join_rate`. A live-count floor keeps strictly more than half the
    /// collectors active so screening always has a quorum of experts.
    fn draw_churn(&mut self, round: u64, at: SimTime) {
        if self.cfg.join_rate <= 0.0 && self.cfg.leave_rate <= 0.0 {
            return;
        }
        let n = self.cfg.collectors;
        let floor = n as usize / 2 + 1;
        let mut committed_live = (0..n)
            .filter(|&c| self.collector_live[c as usize] && !self.churn_inflight.contains(&c))
            .count();
        for c in 0..n {
            if self.churn_inflight.contains(&c) {
                continue;
            }
            if self.collector_live[c as usize] {
                if self.cfg.leave_rate > 0.0
                    && committed_live > floor
                    && self.driver_rng.gen::<f64>() < self.cfg.leave_rate
                {
                    committed_live -= 1;
                    self.churn_inflight.insert(c);
                    let req = MembershipRequest::create(
                        MemberRole::Collector,
                        c,
                        MembershipAction::Leave,
                        0,
                        round + 2,
                        &self.collector_keys[c as usize],
                    );
                    self.broadcast_membership(&req, at);
                }
            } else if self.cfg.join_rate > 0.0 && self.driver_rng.gen::<f64>() < self.cfg.join_rate
            {
                self.churn_inflight.insert(c);
                let req = MembershipRequest::create(
                    MemberRole::Collector,
                    c,
                    MembershipAction::Join,
                    1,
                    round + 2,
                    &self.collector_keys[c as usize],
                );
                self.broadcast_membership(&req, at);
            }
        }
    }

    /// Runs one full protocol round; returns what was committed.
    pub fn run_round(&mut self) -> RoundOutcome {
        // Wall-clock profile: `wall.round_ns` is the whole round;
        // `wall.crypto_ns` (fed at the verify-pool and VRF call sites)
        // splits out the crypto share, so non-crypto = round − crypto.
        let wall = self.obs.is_enabled().then(std::time::Instant::now);
        self.round += 1;
        let round = self.round;
        self.obs.set_round(round);
        let t0 = self.next_start;
        let round_ticks = self.cfg.round_ticks();
        self.next_start = t0 + round_ticks;

        let l = self.cfg.providers;
        let n = self.cfg.collectors;
        let m = self.cfg.governors;

        // E17 dynamic membership: mirror transitions the committee
        // certified in earlier rounds, flip actors for the ones due now
        // (the same boundary at which governors apply them), then draw
        // this round's rate-driven join/leave requests.
        if self.cfg.churn_enabled() {
            self.mirror_member_certs();
            self.apply_due_churn(round);
            self.draw_churn(round, SimTime(t0));
        }

        // Round start: governors run the election, collectors learn the
        // round number (for sleeper profiles).
        for g in 0..m {
            self.net.send_external(
                net_index(l as u64 + n as u64 + g as u64),
                "start-round",
                ProtocolMsg::StartRound { round },
                SimTime(t0),
            );
        }
        for c in 0..n {
            self.net.send_external(
                net_index(l as u64 + c as u64),
                "start-round",
                ProtocolMsg::StartRound { round },
                SimTime(t0),
            );
        }
        // Collecting phase: hand each provider its generated transactions.
        for p in 0..l {
            let txs = (0..self.cfg.tx_per_provider)
                .map(|_| self.workload.next_tx(p, round, &mut self.driver_rng))
                .collect();
            self.net.send_external(
                p as NodeIdx,
                "start-collect",
                ProtocolMsg::StartCollect { round, txs },
                SimTime(t0),
            );
        }
        // Processing phase close: the leader packs the block.
        let propose_at = t0
            + self.cfg.tx_per_provider as u64 * 2
            + 4 * self.cfg.max_delay
            + self.cfg.aggregation_window()
            + 10;
        for g in 0..m {
            self.net.send_external(
                net_index(l as u64 + n as u64 + g as u64),
                "propose-block",
                ProtocolMsg::ProposeBlock { round },
                SimTime(propose_at),
            );
        }
        self.net.run_until(SimTime(t0 + round_ticks));

        // Post-round bookkeeping from governor 0's chain.
        let (leader, new_blocks) = {
            let gov0 = self.governor_node(0);
            let chain = gov0.chain();
            let mut blocks = Vec::new();
            for serial in (self.observed_height + 1)..=chain.height() {
                let block = chain.retrieve(serial).expect("no skipping");
                blocks.push((
                    serial,
                    block
                        .entries
                        .iter()
                        .map(|e| (e.tx.id(), e.verdict))
                        .collect::<Vec<(TxId, Verdict)>>(),
                ));
            }
            (gov0.current_leader(), blocks)
        };

        let mut outcome = RoundOutcome {
            round,
            leader,
            block_serial: None,
            txs_in_block: 0,
        };
        for (serial, verdicts) in &new_blocks {
            outcome.block_serial = Some(*serial);
            outcome.txs_in_block = verdicts.len();
            self.observed_height = *serial;
            // Providers retrieve the block (BlockNotify) at the start of
            // the next round.
            let notify_at = SimTime(self.next_start);
            for p in 0..l {
                self.net.send_external(
                    p as NodeIdx,
                    "block-notify",
                    ProtocolMsg::BlockNotify {
                        serial: *serial,
                        verdicts: verdicts.clone(),
                    },
                    notify_at,
                );
            }
            // Schedule reveals per policy.
            self.schedule_reveals(verdicts);
        }
        if let Some(wall) = wall {
            self.obs
                .add_counter("wall.round_ns", wall.elapsed().as_nanos() as u64);
            self.obs.add_counter("wall.rounds", 1);
        }
        outcome
    }

    fn schedule_reveals(&mut self, verdicts: &[(TxId, Verdict)]) {
        let (reveal, lag_rounds) = match self.cfg.reveal {
            RevealPolicy::ArgueOnly => return,
            RevealPolicy::AfterRounds(k) => (1.0, k),
            RevealPolicy::Probabilistic { prob, rounds } => (prob, rounds),
        };
        let l = self.cfg.providers;
        let n = self.cfg.collectors;
        let m = self.cfg.governors;
        let at = SimTime(self.next_start + lag_rounds as u64 * self.cfg.round_ticks());
        for (tx, verdict) in verdicts {
            if !matches!(verdict, Verdict::UncheckedInvalid | Verdict::UncheckedValid) {
                continue;
            }
            if !self.reveal_scheduled.insert(*tx) {
                continue;
            }
            if reveal < 1.0 && self.driver_rng.gen::<f64>() >= reveal {
                continue;
            }
            let valid = self.oracle.borrow().peek(*tx).unwrap_or(false);
            for g in 0..m {
                self.net.send_external(
                    net_index(l as u64 + n as u64 + g as u64),
                    "reveal",
                    ProtocolMsg::Reveal { tx: *tx, valid },
                    at,
                );
            }
        }
    }

    /// Runs `rounds` rounds plus enough drain rounds for scheduled reveals
    /// and argues to land (no new transactions in the drain rounds — the
    /// `tx_per_provider` generator is bypassed by sending empty batches).
    pub fn run(&mut self, rounds: u32) -> Vec<RoundOutcome> {
        let mut outcomes = Vec::with_capacity(rounds as usize);
        for _ in 0..rounds {
            outcomes.push(self.run_round());
        }
        outcomes
    }

    /// Runs rounds that carry no new transactions, letting in-flight
    /// argues and reveals settle (blocks may still commit argued
    /// re-records).
    pub fn run_drain_rounds(&mut self, rounds: u32) {
        for _ in 0..rounds {
            self.round += 1;
            let round = self.round;
            self.obs.set_round(round);
            let t0 = self.next_start;
            let round_ticks = self.cfg.round_ticks();
            self.next_start = t0 + round_ticks;
            let l = self.cfg.providers;
            let n = self.cfg.collectors;
            let m = self.cfg.governors;
            // Drain rounds apply due membership transitions but draw no
            // new churn (the workload is closed; the committee settles).
            if self.cfg.churn_enabled() {
                self.mirror_member_certs();
                self.apply_due_churn(round);
            }
            for g in 0..m {
                self.net.send_external(
                    net_index(l as u64 + n as u64 + g as u64),
                    "start-round",
                    ProtocolMsg::StartRound { round },
                    SimTime(t0),
                );
            }
            let propose_at = t0 + self.cfg.aggregation_window() + 4 * self.cfg.max_delay + 10;
            for g in 0..m {
                self.net.send_external(
                    net_index(l as u64 + n as u64 + g as u64),
                    "propose-block",
                    ProtocolMsg::ProposeBlock { round },
                    SimTime(propose_at),
                );
            }
            self.net.run_until(SimTime(t0 + round_ticks));
            // Even drain rounds can commit blocks (argued re-records);
            // keep providers in the loop.
            let new_blocks: Vec<(u64, Vec<(TxId, Verdict)>)> = {
                let chain = self.governor_node(0).chain();
                ((self.observed_height + 1)..=chain.height())
                    .map(|serial| {
                        let block = chain.retrieve(serial).expect("no skipping");
                        (
                            serial,
                            block
                                .entries
                                .iter()
                                .map(|e| (e.tx.id(), e.verdict))
                                .collect(),
                        )
                    })
                    .collect()
            };
            for (serial, verdicts) in &new_blocks {
                self.observed_height = *serial;
                let notify_at = SimTime(self.next_start);
                for p in 0..l {
                    self.net.send_external(
                        p as NodeIdx,
                        "block-notify",
                        ProtocolMsg::BlockNotify {
                            serial: *serial,
                            verdicts: verdicts.clone(),
                        },
                        notify_at,
                    );
                }
                self.schedule_reveals(verdicts);
            }
        }
    }

    /// Advances the network `ticks` past the end of the last round
    /// without starting new rounds, so in-flight retransmissions, acks
    /// and sync pages can land. The final round's block is otherwise
    /// still mid-dissemination at cutoff — a slow peer would read one
    /// short of the head through no fault of the recovery machinery.
    pub fn settle(&mut self, ticks: u64) {
        self.net.run_until(SimTime(self.next_start + ticks));
        self.next_start += ticks;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn net_index_survives_u32_overflowing_tier_sums() {
        // Regression for the `(l + c) as NodeIdx` truncation class (the
        // PR 3 `b_limit` bug's sibling): tier offsets are summed in u64,
        // so sums past u32::MAX stay exact instead of wrapping into a
        // small — and therefore valid-looking — node index.
        let l = u32::MAX;
        let c = 7u32;
        assert_eq!(net_index(l as u64 + c as u64), u32::MAX as usize + 7);
        // Identity on the small values every real deployment uses.
        assert_eq!(net_index(0), 0);
        assert_eq!(net_index(1_000_000 + 64 + 4), 1_000_068);
    }

    #[test]
    fn tier_index_accessors_agree_with_layout() {
        // Providers occupy 0..l, collectors l..l+n, governors l+n..l+n+m.
        let cfg = ProtocolConfig::default();
        let sim = Simulation::new(cfg.clone()).unwrap();
        let l = cfg.providers as usize;
        let n = cfg.collectors as usize;
        assert_eq!(sim.provider_net_index(0), 0);
        assert_eq!(sim.collector_net_index(0), l);
        assert_eq!(sim.governor_net_index(0), l + n);
        assert_eq!(
            sim.governor_net_index(cfg.governors - 1),
            l + n + cfg.governors as usize - 1
        );
    }
}

//! The collector role (§3.3 — Uploading phase, Algorithm 1).
//!
//! An honest collector verifies each incoming transaction's provider
//! signature, validates it, attaches a ±1 label with its own signature,
//! and atomically broadcasts the labeled transaction to every governor.
//! Adversarial profiles flip labels, discard transactions, or fabricate
//! forged ones (§4.2's three misbehaviour classes).

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use prb_crypto::identity::NodeId;
use prb_crypto::signer::{CryptoScheme, KeyPair, PublicKey, Sig};
use prb_ledger::oracle::ValidityOracle;
use prb_ledger::transaction::{Label, LabeledTx, SignedTx, TxPayload};
use prb_net::message::{Envelope, NodeIdx, TimerId};
use prb_net::order::{ChannelId, OrderedInbox};
use prb_net::retry::{ReliableSender, RetryConfig};
use prb_net::sim::Context;
use prb_obs::{EventKind as ObsEvent, Obs, ObsHandle};

use crate::behavior::CollectorProfile;
use crate::msg::ProtocolMsg;

/// Collector actor state.
#[derive(Debug)]
pub struct CollectorNode {
    index: u32,
    key: KeyPair,
    scheme: CryptoScheme,
    profile: CollectorProfile,
    round: u64,
    /// Providers this collector is linked with, and their public keys.
    provider_pks: HashMap<u32, PublicKey>,
    governor_nets: Vec<NodeIdx>,
    oracle: Rc<RefCell<ValidityOracle>>,
    inbox: OrderedInbox<SignedTx>,
    upload_seq: u64,
    forge_nonce: u64,
    uploaded: u64,
    discarded: u64,
    flipped: u64,
    forged: u64,
    obs: ObsHandle,
    /// This collector's kernel node index (set with the obs handle).
    net_idx: u64,
    /// Ack-based retransmission for tx uploads (None = fire-and-forget).
    retry: Option<ReliableSender<ProtocolMsg>>,
}

impl CollectorNode {
    /// Creates collector `index` with its wiring and credentials.
    pub fn new(
        index: u32,
        key: KeyPair,
        scheme: CryptoScheme,
        profile: CollectorProfile,
        provider_pks: HashMap<u32, PublicKey>,
        governor_nets: Vec<NodeIdx>,
        oracle: Rc<RefCell<ValidityOracle>>,
    ) -> Self {
        CollectorNode {
            index,
            key,
            scheme,
            profile,
            round: 0,
            provider_pks,
            governor_nets,
            oracle,
            inbox: OrderedInbox::new(),
            upload_seq: 0,
            forge_nonce: 0,
            uploaded: 0,
            discarded: 0,
            flipped: 0,
            forged: 0,
            obs: Obs::off(),
            net_idx: 0,
            retry: None,
        }
    }

    /// Installs an observability hub and this node's kernel index
    /// (defaults to [`Obs::off`]); adversarial actions then emit
    /// `col.adversary` events.
    pub fn set_obs(&mut self, obs: ObsHandle, net_idx: u64) {
        self.obs = obs.clone();
        self.net_idx = net_idx;
        if let Some(r) = &mut self.retry {
            r.set_obs(obs);
        }
    }

    /// Enables reliable delivery for tx-upload sends.
    pub fn set_reliable(&mut self, cfg: RetryConfig) {
        self.retry = Some(ReliableSender::new(cfg));
    }

    /// Routes an ack for a tracked send.
    pub fn on_ack(&mut self, token: u64) {
        if let Some(r) = &mut self.retry {
            r.on_ack(token);
        }
    }

    /// Handles a timer fire (only retransmission timers reach collectors).
    pub fn on_timer(&mut self, timer: TimerId, ctx: &mut Context<'_, ProtocolMsg>) {
        if let Some(r) = &mut self.retry {
            r.on_timer(timer, ctx);
        }
    }

    /// The collector's index.
    pub fn index(&self) -> u32 {
        self.index
    }

    /// Counters: `(uploaded, discarded, flipped, forged)`.
    pub fn counters(&self) -> (u64, u64, u64, u64) {
        (self.uploaded, self.discarded, self.flipped, self.forged)
    }

    /// The behaviour profile (exposed for experiment scoring).
    pub fn profile(&self) -> &CollectorProfile {
        &self.profile
    }

    /// Handles a delivered message.
    pub fn on_message(&mut self, env: Envelope<ProtocolMsg>, ctx: &mut Context<'_, ProtocolMsg>) {
        match env.payload {
            ProtocolMsg::StartRound { round } => {
                self.round = round;
            }
            ProtocolMsg::TxBroadcast { seq, tx } => {
                let provider_index = tx.payload.provider.index;
                let released = self.inbox.push(ChannelId(provider_index as u64), seq, tx);
                for tx in released {
                    self.process_tx(tx, ctx);
                }
            }
            _ => {}
        }
    }

    fn process_tx(&mut self, tx: SignedTx, ctx: &mut Context<'_, ProtocolMsg>) {
        let provider_index = tx.payload.provider.index;
        // verify(p_k, tx): signature by a provider this collector is linked
        // with (Algorithm 1 line 3).
        let Some(pk) = self.provider_pks.get(&provider_index) else {
            return; // not linked: ignore entirely
        };
        if !tx.verify(pk) {
            return; // bad provider signature: discard
        }
        // Adversarial forging happens alongside normal processing.
        if self.profile.decide_forge(self.round, ctx.rng()) {
            self.upload_forged(provider_index, ctx);
        }
        let Some(flip) = self.profile.decide_label(self.round, ctx.rng()) else {
            self.discarded += 1;
            self.obs.emit(
                ctx.now().ticks(),
                self.net_idx,
                ObsEvent::CollectorAction { action: "drop" },
            );
            // Lifecycle: this copy dies here. Terminal only if every
            // replica of the tx is concealed; a commit elsewhere wins.
            self.obs.emit(
                ctx.now().ticks(),
                self.net_idx,
                ObsEvent::TxDropped {
                    trace: tx.id().trace(),
                    reason: "concealed",
                },
            );
            return;
        };
        // l ← validate(tx): the collector does the validation work itself;
        // ground truth comes from the oracle without charging the
        // governor-side validation counter.
        let truth = self.oracle.borrow().peek(tx.id()).unwrap_or(false);
        let honest_label = Label::from_validity(truth);
        let label = if flip {
            self.flipped += 1;
            self.obs.emit(
                ctx.now().ticks(),
                self.net_idx,
                ObsEvent::CollectorAction { action: "flip" },
            );
            honest_label.flipped()
        } else {
            honest_label
        };
        let ltx = LabeledTx::create(tx, label, NodeId::collector(self.index), &self.key);
        self.upload(ltx, ctx);
    }

    fn upload(&mut self, ltx: LabeledTx, ctx: &mut Context<'_, ProtocolMsg>) {
        let seq = self.upload_seq;
        self.upload_seq += 1;
        self.uploaded += 1;
        let size = ltx.wire_size();
        let CollectorNode {
            retry,
            governor_nets,
            ..
        } = self;
        for &g in governor_nets.iter() {
            let msg = ProtocolMsg::TxUpload {
                seq,
                ltx: ltx.clone(),
            };
            match retry {
                Some(r) => {
                    r.send_with(ctx, g, "tx-upload", size + 8, |token| {
                        ProtocolMsg::Reliable {
                            token,
                            inner: Box::new(msg),
                        }
                    });
                }
                None => ctx.send_sized(g, "tx-upload", size, msg),
            }
        }
    }

    /// Fabricates a transaction "from" a linked provider with a forged
    /// signature. Detection probability is overwhelming (§4.2): the
    /// governor's `verify` will fail.
    fn upload_forged(&mut self, provider_index: u32, ctx: &mut Context<'_, ProtocolMsg>) {
        self.forged += 1;
        self.obs.emit(
            ctx.now().ticks(),
            self.net_idx,
            ObsEvent::CollectorAction { action: "forge" },
        );
        let payload = TxPayload {
            provider: NodeId::provider(provider_index),
            // High nonces keep forged ids from colliding with real ones.
            nonce: u64::MAX - self.forge_nonce,
            data: b"forged".to_vec(),
        };
        self.forge_nonce += 1;
        let fake_tx = SignedTx::from_parts(
            payload,
            ctx.now().ticks(),
            Sig::forged(&self.scheme, ctx.rng()),
        );
        let ltx = LabeledTx::create(
            fake_tx,
            Label::Valid,
            NodeId::collector(self.index),
            &self.key,
        );
        self.upload(ltx, ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prb_net::sim::{Actor, NetConfig, Network};
    use prb_net::time::SimTime;

    #[allow(clippy::large_enum_variant)]
    enum Harness {
        Collector(CollectorNode),
        Sink(Vec<(usize, ProtocolMsg)>),
    }

    impl Actor for Harness {
        type Msg = ProtocolMsg;
        fn on_message(&mut self, env: Envelope<ProtocolMsg>, ctx: &mut Context<'_, ProtocolMsg>) {
            match self {
                Harness::Collector(c) => c.on_message(env, ctx),
                Harness::Sink(seen) => seen.push((env.from, env.payload)),
            }
        }
    }

    fn provider_key(i: u32) -> KeyPair {
        CryptoScheme::sim().keypair_from_seed(format!("prov-{i}").as_bytes())
    }

    fn build(profile: CollectorProfile) -> (Network<Harness>, Rc<RefCell<ValidityOracle>>) {
        let oracle = Rc::new(RefCell::new(ValidityOracle::new()));
        let mut net = Network::new(NetConfig::uniform(1, 3), 9);
        // Node 0 = collector; node 1 = governor sink.
        let mut provider_pks = HashMap::new();
        provider_pks.insert(0, provider_key(0).public_key());
        let collector = CollectorNode::new(
            0,
            CryptoScheme::sim().keypair_from_seed(b"c0"),
            CryptoScheme::sim(),
            profile,
            provider_pks,
            vec![1],
            Rc::clone(&oracle),
        );
        net.add_node(Harness::Collector(collector));
        net.add_node(Harness::Sink(Vec::new()));
        (net, oracle)
    }

    fn make_tx(
        provider: u32,
        nonce: u64,
        oracle: &Rc<RefCell<ValidityOracle>>,
        valid: bool,
    ) -> SignedTx {
        let tx = SignedTx::create(
            TxPayload {
                provider: NodeId::provider(provider),
                nonce,
                data: vec![1],
            },
            5,
            &provider_key(provider),
        );
        oracle.borrow_mut().register(tx.id(), valid);
        tx
    }

    fn uploads(net: &Network<Harness>) -> Vec<LabeledTx> {
        let Harness::Sink(seen) = net.node(1) else {
            panic!()
        };
        seen.iter()
            .filter_map(|(_, m)| match m {
                ProtocolMsg::TxUpload { ltx, .. } => Some(ltx.clone()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn honest_collector_labels_truthfully_and_signs() {
        let (mut net, oracle) = build(CollectorProfile::honest());
        let valid_tx = make_tx(0, 0, &oracle, true);
        let invalid_tx = make_tx(0, 1, &oracle, false);
        net.send_external(
            0,
            "tx",
            ProtocolMsg::TxBroadcast {
                seq: 0,
                tx: valid_tx.clone(),
            },
            SimTime(0),
        );
        net.send_external(
            0,
            "tx",
            ProtocolMsg::TxBroadcast {
                seq: 1,
                tx: invalid_tx.clone(),
            },
            SimTime(1),
        );
        net.run_until_idle(100);
        let got = uploads(&net);
        assert_eq!(got.len(), 2);
        let collector_pk = CryptoScheme::sim().keypair_from_seed(b"c0").public_key();
        for ltx in &got {
            assert!(ltx.verify_collector(&collector_pk));
        }
        let by_id: HashMap<_, _> = got.iter().map(|l| (l.tx.id(), l.label)).collect();
        assert_eq!(by_id[&valid_tx.id()], Label::Valid);
        assert_eq!(by_id[&invalid_tx.id()], Label::Invalid);
    }

    #[test]
    fn unlinked_provider_is_ignored() {
        let (mut net, oracle) = build(CollectorProfile::honest());
        let tx = {
            let tx = SignedTx::create(
                TxPayload {
                    provider: NodeId::provider(7), // not linked
                    nonce: 0,
                    data: vec![1],
                },
                5,
                &provider_key(7),
            );
            oracle.borrow_mut().register(tx.id(), true);
            tx
        };
        net.send_external(0, "tx", ProtocolMsg::TxBroadcast { seq: 0, tx }, SimTime(0));
        net.run_until_idle(100);
        assert!(uploads(&net).is_empty());
    }

    #[test]
    fn bad_provider_signature_discarded() {
        let (mut net, oracle) = build(CollectorProfile::honest());
        let mut tx = make_tx(0, 0, &oracle, true);
        tx.payload.data = vec![9, 9]; // breaks the signature
        net.send_external(0, "tx", ProtocolMsg::TxBroadcast { seq: 0, tx }, SimTime(0));
        net.run_until_idle(100);
        assert!(uploads(&net).is_empty());
    }

    #[test]
    fn always_flipping_collector_inverts_labels() {
        let (mut net, oracle) = build(CollectorProfile::misreporter(1.0));
        let tx = make_tx(0, 0, &oracle, true);
        net.send_external(
            0,
            "tx",
            ProtocolMsg::TxBroadcast {
                seq: 0,
                tx: tx.clone(),
            },
            SimTime(0),
        );
        net.run_until_idle(100);
        let got = uploads(&net);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].label, Label::Invalid);
        let Harness::Collector(c) = net.node(0) else {
            panic!()
        };
        assert_eq!(c.counters().2, 1); // flipped
    }

    #[test]
    fn concealer_uploads_nothing() {
        let (mut net, oracle) = build(CollectorProfile::concealer(1.0));
        let tx = make_tx(0, 0, &oracle, true);
        net.send_external(0, "tx", ProtocolMsg::TxBroadcast { seq: 0, tx }, SimTime(0));
        net.run_until_idle(100);
        assert!(uploads(&net).is_empty());
        let Harness::Collector(c) = net.node(0) else {
            panic!()
        };
        assert_eq!(c.counters().1, 1); // discarded
    }

    #[test]
    fn forger_uploads_extra_fabricated_tx_with_bad_provider_sig() {
        let (mut net, oracle) = build(CollectorProfile::forger(1.0));
        let tx = make_tx(0, 0, &oracle, true);
        net.send_external(0, "tx", ProtocolMsg::TxBroadcast { seq: 0, tx }, SimTime(0));
        net.run_until_idle(100);
        let got = uploads(&net);
        assert_eq!(got.len(), 2); // real + forged
        let provider_pk = provider_key(0).public_key();
        let collector_pk = CryptoScheme::sim().keypair_from_seed(b"c0").public_key();
        let forged: Vec<_> = got.iter().filter(|l| !l.tx.verify(&provider_pk)).collect();
        assert_eq!(forged.len(), 1);
        // The forged one carries a legitimate collector signature (the
        // collector cannot hide who uploaded it).
        assert!(forged[0].verify_collector(&collector_pk));
    }

    #[test]
    fn out_of_order_delivery_is_reordered() {
        let (mut net, oracle) = build(CollectorProfile::honest());
        let tx0 = make_tx(0, 0, &oracle, true);
        let tx1 = make_tx(0, 1, &oracle, true);
        // Deliver seq 1 first.
        net.send_external(
            0,
            "tx",
            ProtocolMsg::TxBroadcast {
                seq: 1,
                tx: tx1.clone(),
            },
            SimTime(0),
        );
        net.run_until_idle(10);
        assert!(uploads(&net).is_empty(), "gap must hold delivery");
        net.send_external(
            0,
            "tx",
            ProtocolMsg::TxBroadcast {
                seq: 0,
                tx: tx0.clone(),
            },
            SimTime(10),
        );
        net.run_until_idle(100);
        let got = uploads(&net);
        assert_eq!(got.len(), 2);
        // Upload order follows provider sequence order.
        assert_eq!(got[0].tx.id(), tx0.id());
        assert_eq!(got[1].tx.id(), tx1.id());
    }

    #[test]
    fn sleeper_behaves_honestly_before_activation_round() {
        let (mut net, oracle) = build(CollectorProfile::misreporter(1.0).sleeper(5));
        let tx = make_tx(0, 0, &oracle, true);
        net.send_external(0, "round", ProtocolMsg::StartRound { round: 1 }, SimTime(0));
        net.send_external(
            0,
            "tx",
            ProtocolMsg::TxBroadcast {
                seq: 0,
                tx: tx.clone(),
            },
            SimTime(1),
        );
        net.run_until_idle(100);
        assert_eq!(uploads(&net)[0].label, Label::Valid);
        // After activation the same profile flips.
        let tx2 = make_tx(0, 1, &oracle, true);
        net.send_external(
            0,
            "round",
            ProtocolMsg::StartRound { round: 5 },
            SimTime(200),
        );
        net.send_external(
            0,
            "tx",
            ProtocolMsg::TxBroadcast { seq: 1, tx: tx2 },
            SimTime(201),
        );
        net.run_until_idle(100);
        assert_eq!(uploads(&net)[1].label, Label::Invalid);
    }
}

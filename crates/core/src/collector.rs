//! The collector role (§3.3 — Uploading phase, Algorithm 1).
//!
//! An honest collector verifies each incoming transaction's provider
//! signature, validates it, attaches a ±1 label with its own signature,
//! and atomically broadcasts the labeled transaction to every governor.
//! Adversarial profiles flip labels, discard transactions, or fabricate
//! forged ones (§4.2's three misbehaviour classes).

use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::rc::Rc;

use prb_crypto::identity::NodeId;
use prb_crypto::signer::{CryptoScheme, KeyPair, PublicKey, Sig};
use prb_ledger::oracle::ValidityOracle;
use prb_ledger::transaction::{Label, LabeledTx, SignedTx, TxPayload};
use prb_net::message::{Envelope, NodeIdx, TimerId};
use prb_net::order::{ChannelId, OrderedInbox};
use prb_net::retry::{ReliableSender, RetryConfig};
use prb_net::sim::Context;
use prb_obs::{EventKind as ObsEvent, Obs, ObsHandle};

use crate::behavior::CollectorProfile;
use crate::msg::ProtocolMsg;

/// Collector actor state.
#[derive(Debug)]
pub struct CollectorNode {
    index: u32,
    key: KeyPair,
    scheme: CryptoScheme,
    profile: CollectorProfile,
    round: u64,
    /// Providers this collector is linked with, and their public keys.
    provider_pks: HashMap<u32, PublicKey>,
    /// Interned signing identities for the E15 scale workload: simulated
    /// provider `p` signs with `pk_pool[p % len]`. Consulted only when
    /// `p` is absent from `provider_pks`, so enrolled providers are
    /// unaffected. Empty outside scale runs.
    pk_pool: Vec<PublicKey>,
    governor_nets: Vec<NodeIdx>,
    oracle: Rc<RefCell<ValidityOracle>>,
    inbox: OrderedInbox<SignedTx>,
    /// Open-loop admission queue: arrivals wait here until the next
    /// round start drains them through Algorithm 1. Bounded by
    /// `mempool_capacity`; `None` capacity = closed loop (process on
    /// arrival, the pre-E15 behaviour).
    mempool: VecDeque<SignedTx>,
    mempool_capacity: Option<usize>,
    mempool_high_water: usize,
    shed: u64,
    upload_seq: u64,
    forge_nonce: u64,
    uploaded: u64,
    discarded: u64,
    flipped: u64,
    forged: u64,
    obs: ObsHandle,
    /// This collector's kernel node index (set with the obs handle).
    net_idx: u64,
    /// Ack-based retransmission for tx uploads (None = fire-and-forget).
    retry: Option<ReliableSender<ProtocolMsg>>,
    /// Committee standing under dynamic membership (E17): an inactive
    /// collector ignores provider traffic and uploads nothing until a
    /// certified rejoin reactivates it.
    active: bool,
}

impl CollectorNode {
    /// Creates collector `index` with its wiring and credentials.
    pub fn new(
        index: u32,
        key: KeyPair,
        scheme: CryptoScheme,
        profile: CollectorProfile,
        provider_pks: HashMap<u32, PublicKey>,
        governor_nets: Vec<NodeIdx>,
        oracle: Rc<RefCell<ValidityOracle>>,
    ) -> Self {
        CollectorNode {
            index,
            key,
            scheme,
            profile,
            round: 0,
            provider_pks,
            pk_pool: Vec::new(),
            governor_nets,
            oracle,
            inbox: OrderedInbox::new(),
            mempool: VecDeque::new(),
            mempool_capacity: None,
            mempool_high_water: 0,
            shed: 0,
            upload_seq: 0,
            forge_nonce: 0,
            uploaded: 0,
            discarded: 0,
            flipped: 0,
            forged: 0,
            obs: Obs::off(),
            net_idx: 0,
            retry: None,
            active: true,
        }
    }

    /// Whether the collector is an active committee member.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Sets the collector's committee standing (applied by the driver
    /// when a certified membership transition takes effect). Departing
    /// clears the mempool and purges the retransmission queue — no
    /// retry timer keeps chasing acks for a member that left. Returns
    /// the number of purged in-flight sends.
    pub fn set_active(&mut self, active: bool) -> usize {
        self.active = active;
        if active {
            return 0;
        }
        self.mempool.clear();
        let CollectorNode {
            retry,
            governor_nets,
            ..
        } = self;
        match retry {
            Some(r) => governor_nets.iter().map(|&g| r.purge_peer(g)).sum(),
            None => 0,
        }
    }

    /// Installs an observability hub and this node's kernel index
    /// (defaults to [`Obs::off`]); adversarial actions then emit
    /// `col.adversary` events.
    pub fn set_obs(&mut self, obs: ObsHandle, net_idx: u64) {
        self.obs = obs.clone();
        self.net_idx = net_idx;
        if let Some(r) = &mut self.retry {
            r.set_obs(obs);
        }
    }

    /// Enables reliable delivery for tx-upload sends.
    pub fn set_reliable(&mut self, cfg: RetryConfig) {
        self.retry = Some(ReliableSender::new(cfg));
    }

    /// Installs the interned signing-identity pool for scale workloads:
    /// provider `p` verifies against `pool[p % pool.len()]` when not
    /// individually enrolled.
    pub fn set_pk_pool(&mut self, pool: Vec<PublicKey>) {
        self.pk_pool = pool;
    }

    /// Switches the collector to open-loop ingestion with a bounded
    /// mempool of `capacity` transactions, drained at each round start.
    pub fn set_open_loop(&mut self, capacity: usize) {
        self.mempool_capacity = Some(capacity.max(1));
    }

    /// Open-loop mempool accounting: `(queued, high_water, shed)`.
    pub fn mempool_stats(&self) -> (usize, usize, u64) {
        (self.mempool.len(), self.mempool_high_water, self.shed)
    }

    /// Retransmission-queue accounting: `(in_flight, high_water, dropped)`.
    /// All zeros with reliable delivery off.
    pub fn retry_queue_stats(&self) -> (usize, usize, u64) {
        match &self.retry {
            Some(r) => (r.in_flight(), r.high_water(), r.stats().dropped),
            None => (0, 0, 0),
        }
    }

    /// Routes an ack for a tracked send.
    pub fn on_ack(&mut self, token: u64) {
        if let Some(r) = &mut self.retry {
            r.on_ack(token);
        }
    }

    /// Handles a timer fire (only retransmission timers reach collectors).
    pub fn on_timer(&mut self, timer: TimerId, ctx: &mut Context<'_, ProtocolMsg>) {
        if let Some(r) = &mut self.retry {
            r.on_timer(timer, ctx);
        }
    }

    /// The collector's index.
    pub fn index(&self) -> u32 {
        self.index
    }

    /// Counters: `(uploaded, discarded, flipped, forged)`.
    pub fn counters(&self) -> (u64, u64, u64, u64) {
        (self.uploaded, self.discarded, self.flipped, self.forged)
    }

    /// The behaviour profile (exposed for experiment scoring).
    pub fn profile(&self) -> &CollectorProfile {
        &self.profile
    }

    /// Handles a delivered message.
    pub fn on_message(&mut self, env: Envelope<ProtocolMsg>, ctx: &mut Context<'_, ProtocolMsg>) {
        match env.payload {
            ProtocolMsg::StartRound { round } => {
                self.round = round;
                self.drain_mempool(ctx);
            }
            ProtocolMsg::TxBroadcast { seq, tx } => {
                if !self.active {
                    return; // departed: out of the committee entirely
                }
                let provider_index = tx.payload.provider.index;
                let released = self
                    .inbox
                    .push(ChannelId(u64::from(provider_index)), seq, tx);
                for tx in released {
                    if self.mempool_capacity.is_some() {
                        self.admit(tx, ctx);
                    } else {
                        self.process_tx(tx, ctx);
                    }
                }
            }
            _ => {}
        }
    }

    /// Open-loop admission: queue the arrival, shedding the *oldest*
    /// queued transaction when the bounded mempool is full. Oldest-first
    /// is deterministic (the queue is FIFO in arrival order) and favours
    /// fresh traffic — a stale transaction the chain has not ordered for
    /// a full congestion window is the right one to sacrifice.
    fn admit(&mut self, tx: SignedTx, ctx: &mut Context<'_, ProtocolMsg>) {
        let cap = self.mempool_capacity.expect("admit only in open loop");
        self.mempool.push_back(tx);
        while self.mempool.len() > cap {
            let victim = self.mempool.pop_front().expect("len > cap >= 1");
            self.shed += 1;
            if self.obs.is_enabled() {
                self.obs.metrics().inc("mempool.shed");
            }
            self.obs.emit(
                ctx.now().ticks(),
                self.net_idx,
                ObsEvent::TxDropped {
                    trace: victim.id().trace(),
                    reason: "shed",
                },
            );
        }
        self.mempool_high_water = self.mempool_high_water.max(self.mempool.len());
    }

    /// Drains every admitted transaction through Algorithm 1 (label,
    /// sign, upload). Called at round start in open-loop mode.
    fn drain_mempool(&mut self, ctx: &mut Context<'_, ProtocolMsg>) {
        while let Some(tx) = self.mempool.pop_front() {
            self.process_tx(tx, ctx);
        }
    }

    fn process_tx(&mut self, tx: SignedTx, ctx: &mut Context<'_, ProtocolMsg>) {
        let provider_index = tx.payload.provider.index;
        // verify(p_k, tx): signature by a provider this collector is linked
        // with (Algorithm 1 line 3). Scale runs resolve interned provider
        // ids through the shared identity pool instead of per-provider
        // enrollment.
        let pk = match self.provider_pks.get(&provider_index) {
            Some(pk) => pk,
            None if !self.pk_pool.is_empty() => {
                &self.pk_pool[provider_index as usize % self.pk_pool.len()]
            }
            None => return, // not linked: ignore entirely
        };
        if !tx.verify(pk) {
            return; // bad provider signature: discard
        }
        // Adversarial forging happens alongside normal processing.
        if self.profile.decide_forge(self.round, ctx.rng()) {
            self.upload_forged(provider_index, ctx);
        }
        let Some(flip) = self.profile.decide_label(self.round, ctx.rng()) else {
            self.discarded += 1;
            self.obs.emit(
                ctx.now().ticks(),
                self.net_idx,
                ObsEvent::CollectorAction { action: "drop" },
            );
            // Lifecycle: this copy dies here. Terminal only if every
            // replica of the tx is concealed; a commit elsewhere wins.
            self.obs.emit(
                ctx.now().ticks(),
                self.net_idx,
                ObsEvent::TxDropped {
                    trace: tx.id().trace(),
                    reason: "concealed",
                },
            );
            return;
        };
        // l ← validate(tx): the collector does the validation work itself;
        // ground truth comes from the oracle without charging the
        // governor-side validation counter.
        let truth = self.oracle.borrow().peek(tx.id()).unwrap_or(false);
        let honest_label = Label::from_validity(truth);
        let label = if flip {
            self.flipped += 1;
            self.obs.emit(
                ctx.now().ticks(),
                self.net_idx,
                ObsEvent::CollectorAction { action: "flip" },
            );
            honest_label.flipped()
        } else {
            honest_label
        };
        let ltx = LabeledTx::create(tx, label, NodeId::collector(self.index), &self.key);
        self.upload(ltx, ctx);
    }

    fn upload(&mut self, ltx: LabeledTx, ctx: &mut Context<'_, ProtocolMsg>) {
        let seq = self.upload_seq;
        self.upload_seq += 1;
        self.uploaded += 1;
        let size = ltx.wire_size();
        let CollectorNode {
            retry,
            governor_nets,
            ..
        } = self;
        // Fan-out without a wasted clone: the last governor takes the
        // original by move. With one governor (or r = 1 routing) the
        // upload path is allocation-free past the LabeledTx itself.
        let mut ltx = Some(ltx);
        let last = governor_nets.len().saturating_sub(1);
        for (i, &g) in governor_nets.iter().enumerate() {
            let payload = if i == last {
                ltx.take().expect("one payload per fan-out slot")
            } else {
                ltx.as_ref().expect("moved only on the last slot").clone()
            };
            let msg = ProtocolMsg::TxUpload { seq, ltx: payload };
            match retry {
                Some(r) => {
                    r.send_with(ctx, g, "tx-upload", size + 8, |token| {
                        ProtocolMsg::Reliable {
                            token,
                            inner: Box::new(msg),
                        }
                    });
                }
                None => ctx.send_sized(g, "tx-upload", size, msg),
            }
        }
    }

    /// Fabricates a transaction "from" a linked provider with a forged
    /// signature. Detection probability is overwhelming (§4.2): the
    /// governor's `verify` will fail.
    fn upload_forged(&mut self, provider_index: u32, ctx: &mut Context<'_, ProtocolMsg>) {
        self.forged += 1;
        self.obs.emit(
            ctx.now().ticks(),
            self.net_idx,
            ObsEvent::CollectorAction { action: "forge" },
        );
        let payload = TxPayload {
            provider: NodeId::provider(provider_index),
            // High nonces keep forged ids from colliding with real ones.
            nonce: u64::MAX - self.forge_nonce,
            data: b"forged".to_vec(),
        };
        self.forge_nonce += 1;
        let fake_tx = SignedTx::from_parts(
            payload,
            ctx.now().ticks(),
            Sig::forged(&self.scheme, ctx.rng()),
        );
        let ltx = LabeledTx::create(
            fake_tx,
            Label::Valid,
            NodeId::collector(self.index),
            &self.key,
        );
        self.upload(ltx, ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prb_net::sim::{Actor, NetConfig, Network};
    use prb_net::time::SimTime;

    #[allow(clippy::large_enum_variant)]
    enum Harness {
        Collector(CollectorNode),
        Sink(Vec<(usize, ProtocolMsg)>),
    }

    impl Actor for Harness {
        type Msg = ProtocolMsg;
        fn on_message(&mut self, env: Envelope<ProtocolMsg>, ctx: &mut Context<'_, ProtocolMsg>) {
            match self {
                Harness::Collector(c) => c.on_message(env, ctx),
                Harness::Sink(seen) => seen.push((env.from, env.payload)),
            }
        }
    }

    fn provider_key(i: u32) -> KeyPair {
        CryptoScheme::sim().keypair_from_seed(format!("prov-{i}").as_bytes())
    }

    fn build(profile: CollectorProfile) -> (Network<Harness>, Rc<RefCell<ValidityOracle>>) {
        let oracle = Rc::new(RefCell::new(ValidityOracle::new()));
        let mut net = Network::new(NetConfig::uniform(1, 3), 9);
        // Node 0 = collector; node 1 = governor sink.
        let mut provider_pks = HashMap::new();
        provider_pks.insert(0, provider_key(0).public_key());
        let collector = CollectorNode::new(
            0,
            CryptoScheme::sim().keypair_from_seed(b"c0"),
            CryptoScheme::sim(),
            profile,
            provider_pks,
            vec![1],
            Rc::clone(&oracle),
        );
        net.add_node(Harness::Collector(collector));
        net.add_node(Harness::Sink(Vec::new()));
        (net, oracle)
    }

    fn make_tx(
        provider: u32,
        nonce: u64,
        oracle: &Rc<RefCell<ValidityOracle>>,
        valid: bool,
    ) -> SignedTx {
        let tx = SignedTx::create(
            TxPayload {
                provider: NodeId::provider(provider),
                nonce,
                data: vec![1],
            },
            5,
            &provider_key(provider),
        );
        oracle.borrow_mut().register(tx.id(), valid);
        tx
    }

    fn uploads(net: &Network<Harness>) -> Vec<LabeledTx> {
        let Harness::Sink(seen) = net.node(1) else {
            panic!()
        };
        seen.iter()
            .filter_map(|(_, m)| match m {
                ProtocolMsg::TxUpload { ltx, .. } => Some(ltx.clone()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn honest_collector_labels_truthfully_and_signs() {
        let (mut net, oracle) = build(CollectorProfile::honest());
        let valid_tx = make_tx(0, 0, &oracle, true);
        let invalid_tx = make_tx(0, 1, &oracle, false);
        net.send_external(
            0,
            "tx",
            ProtocolMsg::TxBroadcast {
                seq: 0,
                tx: valid_tx.clone(),
            },
            SimTime(0),
        );
        net.send_external(
            0,
            "tx",
            ProtocolMsg::TxBroadcast {
                seq: 1,
                tx: invalid_tx.clone(),
            },
            SimTime(1),
        );
        net.run_until_idle(100);
        let got = uploads(&net);
        assert_eq!(got.len(), 2);
        let collector_pk = CryptoScheme::sim().keypair_from_seed(b"c0").public_key();
        for ltx in &got {
            assert!(ltx.verify_collector(&collector_pk));
        }
        let by_id: HashMap<_, _> = got.iter().map(|l| (l.tx.id(), l.label)).collect();
        assert_eq!(by_id[&valid_tx.id()], Label::Valid);
        assert_eq!(by_id[&invalid_tx.id()], Label::Invalid);
    }

    #[test]
    fn unlinked_provider_is_ignored() {
        let (mut net, oracle) = build(CollectorProfile::honest());
        let tx = {
            let tx = SignedTx::create(
                TxPayload {
                    provider: NodeId::provider(7), // not linked
                    nonce: 0,
                    data: vec![1],
                },
                5,
                &provider_key(7),
            );
            oracle.borrow_mut().register(tx.id(), true);
            tx
        };
        net.send_external(0, "tx", ProtocolMsg::TxBroadcast { seq: 0, tx }, SimTime(0));
        net.run_until_idle(100);
        assert!(uploads(&net).is_empty());
    }

    #[test]
    fn bad_provider_signature_discarded() {
        let (mut net, oracle) = build(CollectorProfile::honest());
        let mut tx = make_tx(0, 0, &oracle, true);
        tx.payload.data = vec![9, 9]; // breaks the signature
        net.send_external(0, "tx", ProtocolMsg::TxBroadcast { seq: 0, tx }, SimTime(0));
        net.run_until_idle(100);
        assert!(uploads(&net).is_empty());
    }

    #[test]
    fn always_flipping_collector_inverts_labels() {
        let (mut net, oracle) = build(CollectorProfile::misreporter(1.0));
        let tx = make_tx(0, 0, &oracle, true);
        net.send_external(
            0,
            "tx",
            ProtocolMsg::TxBroadcast {
                seq: 0,
                tx: tx.clone(),
            },
            SimTime(0),
        );
        net.run_until_idle(100);
        let got = uploads(&net);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].label, Label::Invalid);
        let Harness::Collector(c) = net.node(0) else {
            panic!()
        };
        assert_eq!(c.counters().2, 1); // flipped
    }

    #[test]
    fn concealer_uploads_nothing() {
        let (mut net, oracle) = build(CollectorProfile::concealer(1.0));
        let tx = make_tx(0, 0, &oracle, true);
        net.send_external(0, "tx", ProtocolMsg::TxBroadcast { seq: 0, tx }, SimTime(0));
        net.run_until_idle(100);
        assert!(uploads(&net).is_empty());
        let Harness::Collector(c) = net.node(0) else {
            panic!()
        };
        assert_eq!(c.counters().1, 1); // discarded
    }

    #[test]
    fn forger_uploads_extra_fabricated_tx_with_bad_provider_sig() {
        let (mut net, oracle) = build(CollectorProfile::forger(1.0));
        let tx = make_tx(0, 0, &oracle, true);
        net.send_external(0, "tx", ProtocolMsg::TxBroadcast { seq: 0, tx }, SimTime(0));
        net.run_until_idle(100);
        let got = uploads(&net);
        assert_eq!(got.len(), 2); // real + forged
        let provider_pk = provider_key(0).public_key();
        let collector_pk = CryptoScheme::sim().keypair_from_seed(b"c0").public_key();
        let forged: Vec<_> = got.iter().filter(|l| !l.tx.verify(&provider_pk)).collect();
        assert_eq!(forged.len(), 1);
        // The forged one carries a legitimate collector signature (the
        // collector cannot hide who uploaded it).
        assert!(forged[0].verify_collector(&collector_pk));
    }

    #[test]
    fn out_of_order_delivery_is_reordered() {
        let (mut net, oracle) = build(CollectorProfile::honest());
        let tx0 = make_tx(0, 0, &oracle, true);
        let tx1 = make_tx(0, 1, &oracle, true);
        // Deliver seq 1 first.
        net.send_external(
            0,
            "tx",
            ProtocolMsg::TxBroadcast {
                seq: 1,
                tx: tx1.clone(),
            },
            SimTime(0),
        );
        net.run_until_idle(10);
        assert!(uploads(&net).is_empty(), "gap must hold delivery");
        net.send_external(
            0,
            "tx",
            ProtocolMsg::TxBroadcast {
                seq: 0,
                tx: tx0.clone(),
            },
            SimTime(10),
        );
        net.run_until_idle(100);
        let got = uploads(&net);
        assert_eq!(got.len(), 2);
        // Upload order follows provider sequence order.
        assert_eq!(got[0].tx.id(), tx0.id());
        assert_eq!(got[1].tx.id(), tx1.id());
    }

    #[test]
    fn open_loop_mempool_queues_until_round_start() {
        let (mut net, oracle) = build(CollectorProfile::honest());
        let Harness::Collector(c) = net.node_mut(0) else {
            panic!()
        };
        c.set_open_loop(8);
        let tx = make_tx(0, 0, &oracle, true);
        net.send_external(0, "tx", ProtocolMsg::TxBroadcast { seq: 0, tx }, SimTime(0));
        net.run_until_idle(100);
        assert!(uploads(&net).is_empty(), "queued, not processed");
        let Harness::Collector(c) = net.node(0) else {
            panic!()
        };
        assert_eq!(c.mempool_stats(), (1, 1, 0));
        net.send_external(
            0,
            "round",
            ProtocolMsg::StartRound { round: 1 },
            SimTime(200),
        );
        net.run_until_idle(100);
        assert_eq!(uploads(&net).len(), 1, "drained at round start");
        let Harness::Collector(c) = net.node(0) else {
            panic!()
        };
        assert_eq!(c.mempool_stats().0, 0);
    }

    #[test]
    fn full_mempool_sheds_oldest_first_and_caps_high_water() {
        let (mut net, oracle) = build(CollectorProfile::honest());
        let Harness::Collector(c) = net.node_mut(0) else {
            panic!()
        };
        c.set_open_loop(3);
        let txs: Vec<_> = (0..5).map(|i| make_tx(0, i, &oracle, true)).collect();
        for (i, tx) in txs.iter().cloned().enumerate() {
            net.send_external(
                0,
                "tx",
                ProtocolMsg::TxBroadcast { seq: i as u64, tx },
                SimTime(i as u64),
            );
        }
        net.run_until_idle(100);
        let Harness::Collector(c) = net.node(0) else {
            panic!()
        };
        // 5 arrivals into capacity 3: the 2 oldest shed; high water never
        // exceeds the configured bound.
        assert_eq!(c.mempool_stats(), (3, 3, 2));
        net.send_external(
            0,
            "round",
            ProtocolMsg::StartRound { round: 1 },
            SimTime(200),
        );
        net.run_until_idle(100);
        let got = uploads(&net);
        assert_eq!(got.len(), 3);
        // The survivors are exactly the newest three arrivals. (Compared
        // as sets: uploads leave in drain order but the harness network
        // jitters per-message delivery, so sink order is not drain order.)
        let mut ids: Vec<_> = got.iter().map(|l| l.tx.id()).collect();
        let mut want: Vec<_> = txs[2..].iter().map(|t| t.id()).collect();
        ids.sort_unstable();
        want.sort_unstable();
        assert_eq!(ids, want, "oldest-first shedding keeps the tail");
    }

    #[test]
    fn shed_then_resubmit_is_admitted_and_uploaded() {
        let (mut net, oracle) = build(CollectorProfile::honest());
        let Harness::Collector(c) = net.node_mut(0) else {
            panic!()
        };
        c.set_open_loop(1);
        let first = make_tx(0, 0, &oracle, true);
        let second = make_tx(0, 1, &oracle, true);
        net.send_external(
            0,
            "tx",
            ProtocolMsg::TxBroadcast {
                seq: 0,
                tx: first.clone(),
            },
            SimTime(0),
        );
        net.send_external(
            0,
            "tx",
            ProtocolMsg::TxBroadcast { seq: 1, tx: second },
            SimTime(1),
        );
        net.run_until_idle(50);
        let Harness::Collector(c) = net.node(0) else {
            panic!()
        };
        assert_eq!(c.mempool_stats().2, 1, "first arrival shed");
        // The provider resubmits the shed transaction on a fresh seq; it
        // must be admitted and (after the drain) uploaded like any other.
        net.send_external(
            0,
            "tx",
            ProtocolMsg::TxBroadcast {
                seq: 2,
                tx: first.clone(),
            },
            SimTime(60),
        );
        net.send_external(
            0,
            "round",
            ProtocolMsg::StartRound { round: 1 },
            SimTime(200),
        );
        net.run_until_idle(100);
        let got = uploads(&net);
        assert!(
            got.iter().any(|l| l.tx.id() == first.id()),
            "resubmitted tx reached upload"
        );
    }

    #[test]
    fn pk_pool_resolves_interned_providers() {
        let (mut net, oracle) = build(CollectorProfile::honest());
        let Harness::Collector(c) = net.node_mut(0) else {
            panic!()
        };
        // Pool of 2 identities; provider 7 is not enrolled in
        // provider_pks, so it resolves to pool slot 7 % 2 = 1.
        c.set_pk_pool(vec![
            provider_key(100).public_key(),
            provider_key(101).public_key(),
        ]);
        let tx = SignedTx::create(
            TxPayload {
                provider: NodeId::provider(7),
                nonce: 0,
                data: vec![1],
            },
            5,
            &provider_key(101),
        );
        oracle.borrow_mut().register(tx.id(), true);
        net.send_external(0, "tx", ProtocolMsg::TxBroadcast { seq: 0, tx }, SimTime(0));
        // A second unenrolled provider signing with the *wrong* pool
        // identity must still be rejected.
        let bad = SignedTx::create(
            TxPayload {
                provider: NodeId::provider(8), // slot 0
                nonce: 0,
                data: vec![1],
            },
            5,
            &provider_key(101), // but signed by slot 1's key
        );
        oracle.borrow_mut().register(bad.id(), true);
        net.send_external(
            0,
            "tx",
            ProtocolMsg::TxBroadcast { seq: 0, tx: bad },
            SimTime(1),
        );
        net.run_until_idle(100);
        assert_eq!(uploads(&net).len(), 1, "pool-verified tx only");
    }

    #[test]
    fn sleeper_behaves_honestly_before_activation_round() {
        let (mut net, oracle) = build(CollectorProfile::misreporter(1.0).sleeper(5));
        let tx = make_tx(0, 0, &oracle, true);
        net.send_external(0, "round", ProtocolMsg::StartRound { round: 1 }, SimTime(0));
        net.send_external(
            0,
            "tx",
            ProtocolMsg::TxBroadcast {
                seq: 0,
                tx: tx.clone(),
            },
            SimTime(1),
        );
        net.run_until_idle(100);
        assert_eq!(uploads(&net)[0].label, Label::Valid);
        // After activation the same profile flips.
        let tx2 = make_tx(0, 1, &oracle, true);
        net.send_external(
            0,
            "round",
            ProtocolMsg::StartRound { round: 5 },
            SimTime(200),
        );
        net.send_external(
            0,
            "tx",
            ProtocolMsg::TxBroadcast { seq: 1, tx: tx2 },
            SimTime(201),
        );
        net.run_until_idle(100);
        assert_eq!(uploads(&net)[1].label, Label::Invalid);
    }
}

//! Deterministic fast hashing for per-transaction hot paths.
//!
//! Thin facade over [`prb_crypto::fxhash`]: the protocol crates key their
//! hot maps (signature memo, pending pools, chain index) by values that
//! are either internal indices or SHA-256 digests, so SipHash's keyed DoS
//! resistance buys nothing while its per-byte cost and random seeding
//! hurt both throughput and reproducibility. Everything here hashes with
//! the seeded Fx mix instead.
//!
//! The seed is plumbed from [`ProtocolConfig::hash_seed`]
//! (crate::config::ProtocolConfig::hash_seed) into every consensus-side
//! map so the `hash_seed_never_changes_the_ledger` regression test can
//! flip it and prove byte-identical ledgers — i.e. that no map's
//! iteration order leaks into consensus.

pub use prb_crypto::fxhash::{
    fx_map, fx_map_seeded, fx_set, fx_set_seeded, FxHasher, FxMap, FxSeed, FxSet, DEFAULT_SEED,
};

/// A `FastMap` is the hot-path replacement for `std::collections::HashMap`.
pub type FastMap<K, V> = FxMap<K, V>;

/// A `FastSet` is the hot-path replacement for `std::collections::HashSet`.
pub type FastSet<K> = FxSet<K>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facade_round_trip() {
        let mut m: FastMap<u32, &str> = fx_map_seeded(7);
        m.insert(1, "one");
        assert_eq!(m.get(&1), Some(&"one"));
        let mut s: FastSet<u32> = fx_set();
        assert!(s.insert(9));
        assert_eq!(fx_map::<u32, u32>().len(), 0);
        assert_eq!(fx_set_seeded::<u32>(3).len(), 0);
        assert_ne!(DEFAULT_SEED, 0);
    }
}

//! # prb-core
//!
//! The primary contribution of *"An Efficient Permissioned Blockchain with
//! Provable Reputation Mechanism"* (ICDCS 2021): the three-tier
//! permissioned blockchain protocol, implemented end to end over the
//! simulated synchronous network.
//!
//! - [`config`] — every protocol tunable (`l, n, m, r, s, f, β, μ, ν,
//!   b_limit, U, Δ`) plus the check-all / check-none baselines,
//! - [`behavior`] — collector adversary profiles (misreport / conceal /
//!   forge / sleeper), provider activity profiles, and Byzantine governor
//!   profiles (equivocate / invalid-proposal / censor / silent),
//! - [`provider`] / [`collector`] / [`governor`] — the three roles;
//!   Algorithm 1 lives in the collector, Algorithms 2 and 3 plus argue
//!   handling, elections, blocks and revenue live in the governor,
//! - [`sim`] — the driver that wires a deployment and runs rounds,
//! - [`metrics`] — per-governor loss/regret/cost accounting,
//! - [`workload`] — the transaction-source abstraction.
//!
//! # Quickstart
//!
//! ```
//! use prb_core::config::ProtocolConfig;
//! use prb_core::sim::Simulation;
//!
//! let mut sim = Simulation::new(ProtocolConfig::default())?;
//! let outcomes = sim.run(3);
//! assert_eq!(outcomes.len(), 3);
//! assert!(sim.chains_agree());
//! # Ok::<(), String>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod behavior;
pub mod collector;
pub mod config;
pub mod fasthash;
pub mod governor;
pub mod metrics;
pub mod msg;
pub mod node;
pub mod provider;
pub mod scale;
pub mod sim;
pub mod workload;

pub use prb_obs as obs;

pub use behavior::{ByzantineMode, CollectorProfile, GovernorProfile, ProviderProfile};
pub use config::{GovernorMode, ProtocolConfig, RevealPolicy};
pub use sim::{RoundOutcome, Simulation};

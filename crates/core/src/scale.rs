//! The E15 open-loop scale deployment: collectors and governors only,
//! driven by externally injected transactions.
//!
//! The closed-loop [`crate::sim::Simulation`] instantiates one actor (and
//! one enrolled keypair) per provider, which caps it far below the
//! paper's *l* = 10⁵–10⁶ deployment sizes. This driver drops the provider
//! tier entirely: simulated providers are **interned ids** — a `u32` and
//! a nonce slot in the workload's arena, nothing else — and their
//! transactions are signed by a small pool of real keypairs
//! (`pool[p % pool_len]`), which every collector and governor resolves
//! through the same mapping ([`CollectorNode::set_pk_pool`],
//! [`GovernorNode::set_pk_pool`]). Signature semantics on the hot path
//! are unchanged; only the keyspace is folded.
//!
//! Arrivals are open-loop: the driver schedules `TxBroadcast`s at
//! arbitrary ticks inside a round window, the collectors queue them in
//! their bounded mempools and drain them through Algorithm 1 at the next
//! round start. Overload sheds the oldest queued transaction with an
//! accountable `tx.dropped{shed}` event, so the E15 invariant
//! `submitted == committed + dropped` is checkable from the lifecycle
//! tracker alone.
//!
//! Reveal scheduling is skipped (the policy must be
//! [`RevealPolicy::ArgueOnly`]): there are no provider actors to argue,
//! and E15 measures ordering throughput, not reputation convergence.

use std::cell::RefCell;
use std::rc::Rc;

use prb_crypto::identity::{IdentityManager, NodeId};
use prb_crypto::signer::{KeyPair, PublicKey};
use prb_ledger::oracle::ValidityOracle;
use prb_ledger::transaction::SignedTx;
use prb_net::message::NodeIdx;
use prb_net::retry::RetryConfig;
use prb_net::sim::{NetConfig, Network};
use prb_net::stats::MessageStats;
use prb_net::time::{SimDuration, SimTime};
use prb_net::topology::Topology;
use prb_obs::{EventKind as ObsEvent, Obs, ObsHandle, Role, EXTERNAL_NODE};

use crate::behavior::CollectorProfile;
use crate::collector::CollectorNode;
use crate::config::{ProtocolConfig, RevealPolicy, TopologyKind};
use crate::governor::GovernorNode;
use crate::msg::ProtocolMsg;
use crate::node::NodeActor;
use crate::sim::net_index;

/// One externally injected transaction: the driver's unit of work.
#[derive(Debug)]
pub struct Arrival {
    /// Absolute sim tick the transaction reaches the network edge. Must
    /// fall inside the round window it is injected into.
    pub at: u64,
    /// Interned provider id in `0..cfg.providers`.
    pub provider: u32,
    /// Per-provider submission sequence number (0-based, contiguous —
    /// the collectors' ordered inboxes release in this order).
    pub seq: u64,
    /// The signed transaction (signed by `pool[provider % pool_len]`).
    pub tx: SignedTx,
    /// Ground-truth validity to register with the oracle.
    pub valid: bool,
}

/// What one open-loop round committed (driver's view, from governor 0).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScaleRound {
    /// The round number.
    pub round: u64,
    /// Transactions injected into this round's window.
    pub injected: u64,
    /// Transactions committed in blocks observed this round.
    pub committed: u64,
}

/// Aggregated bounded-pool accounting across one tier.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Entries currently queued (summed over nodes).
    pub queued: usize,
    /// Highest per-node occupancy ever observed.
    pub high_water: usize,
    /// Transactions shed by the bound (summed over nodes).
    pub shed: u64,
}

/// The scale deployment: `n` collectors at kernel indices `0..n`,
/// `m` governors at `n..n+m`, no provider actors.
pub struct ScaleSim {
    cfg: ProtocolConfig,
    net: Network<NodeActor>,
    topology: Rc<Topology>,
    oracle: Rc<RefCell<ValidityOracle>>,
    signer_pool: Vec<KeyPair>,
    obs: ObsHandle,
    round: u64,
    next_start: u64,
    observed_height: u64,
    injected: u64,
    committed: u64,
}

impl std::fmt::Debug for ScaleSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScaleSim")
            .field("round", &self.round)
            .field("injected", &self.injected)
            .field("committed", &self.committed)
            .finish_non_exhaustive()
    }
}

impl ScaleSim {
    /// Builds the deployment with `pool_size` real signing identities
    /// shared by all `cfg.providers` interned provider ids.
    ///
    /// # Errors
    ///
    /// Returns a description of any invalid configuration; requires
    /// `cfg.open_loop` and [`RevealPolicy::ArgueOnly`].
    pub fn new(cfg: ProtocolConfig, pool_size: u32) -> Result<Self, String> {
        cfg.validate()?;
        if !cfg.open_loop {
            return Err("ScaleSim requires cfg.open_loop".into());
        }
        if cfg.reveal != RevealPolicy::ArgueOnly {
            return Err(
                "ScaleSim supports only RevealPolicy::ArgueOnly (no providers to argue)".into(),
            );
        }
        if pool_size == 0 {
            return Err("signer pool must be non-empty".into());
        }
        let mut seed_rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(cfg.seed);
        let topo_params = cfg.topology_params();
        let topology = Rc::new(match cfg.topology {
            TopologyKind::Cyclic => Topology::cyclic(topo_params)?,
            TopologyKind::Random => Topology::random(topo_params, &mut seed_rng)?,
        });
        let mut im = IdentityManager::new(cfg.crypto.clone(), &cfg.seed.to_be_bytes());
        let oracle = Rc::new(RefCell::new(ValidityOracle::new()));

        let n = cfg.collectors;
        let m = cfg.governors;
        // Interned-identity pool: pool keypair k stands in for every
        // provider id p with p % pool_size == k. Enrollment is O(pool),
        // not O(l) — the whole point of the scale harness.
        let mut signer_pool = Vec::with_capacity(pool_size as usize);
        let mut pk_pool = Vec::with_capacity(pool_size as usize);
        for k in 0..pool_size {
            let cred = im.enroll(NodeId::provider(k)).map_err(|e| e.to_string())?;
            pk_pool.push(cred.certificate.public_key.clone());
            signer_pool.push(cred.keypair);
        }
        let mut collector_creds = Vec::new();
        for c in 0..n {
            collector_creds.push(im.enroll(NodeId::collector(c)).map_err(|e| e.to_string())?);
        }
        let mut governor_creds = Vec::new();
        for g in 0..m {
            governor_creds.push(im.enroll(NodeId::governor(g)).map_err(|e| e.to_string())?);
        }
        let collector_pks: Vec<PublicKey> = collector_creds
            .iter()
            .map(|c| c.certificate.public_key.clone())
            .collect();
        let governor_pks: Vec<PublicKey> = governor_creds
            .iter()
            .map(|c| c.certificate.public_key.clone())
            .collect();

        let mut net = Network::new(
            NetConfig::uniform(cfg.min_delay, cfg.max_delay),
            cfg.seed.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        );
        let governor_base = net_index(n as u64);
        let governor_nets: Vec<NodeIdx> = (0..m as usize).map(|g| governor_base + g).collect();

        for c in 0..n {
            let mut node = CollectorNode::new(
                c,
                collector_creds[c as usize].keypair.clone(),
                cfg.crypto.clone(),
                CollectorProfile::honest(),
                std::collections::HashMap::new(),
                governor_nets.clone(),
                Rc::clone(&oracle),
            );
            node.set_pk_pool(pk_pool.clone());
            node.set_open_loop(cfg.mempool_capacity);
            net.add_node(NodeActor::Collector(node));
        }
        for g in 0..m {
            let mut node = GovernorNode::new(
                g,
                governor_creds[g as usize].keypair.clone(),
                cfg.clone(),
                Rc::clone(&topology),
                Rc::clone(&oracle),
                governor_base,
                collector_pks.clone(),
                Vec::new(), // no per-provider enrollment: pool only
                governor_pks.clone(),
            );
            node.set_pk_pool(pk_pool.clone());
            net.add_node(NodeActor::governor(node));
        }

        if cfg.reliable_delivery {
            let retry_cfg = RetryConfig::for_delta(SimDuration(cfg.max_delay))
                .with_max_pending(cfg.retry_capacity);
            for idx in 0..net.node_count() {
                match net.node_mut(idx) {
                    NodeActor::Provider(p) => p.set_reliable(retry_cfg),
                    NodeActor::Collector(c) => c.set_reliable(retry_cfg),
                    NodeActor::Governor(g) => g.set_reliable(retry_cfg),
                }
            }
        }

        Ok(ScaleSim {
            cfg,
            net,
            topology,
            oracle,
            signer_pool,
            obs: Obs::off(),
            round: 0,
            next_start: 0,
            observed_height: 0,
            injected: 0,
            committed: 0,
        })
    }

    /// The configuration this deployment runs.
    pub fn config(&self) -> &ProtocolConfig {
        &self.cfg
    }

    /// The signing keypair pool (`pool[p % len]` signs for provider `p`).
    pub fn signer_pool(&self) -> &[KeyPair] {
        &self.signer_pool
    }

    /// The wired topology (for routing arrivals to linked collectors).
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Network traffic statistics.
    pub fn net_stats(&self) -> &MessageStats {
        self.net.stats()
    }

    /// Installs an observability hub on the kernel and every node.
    pub fn set_obs(&mut self, obs: ObsHandle) {
        let n = self.cfg.collectors as usize;
        let m = self.cfg.governors as usize;
        let mut roles = Vec::with_capacity(n + m);
        roles.extend(std::iter::repeat_n(Role::Collector, n));
        roles.extend(std::iter::repeat_n(Role::Governor, m));
        obs.set_roles(roles);
        self.net.set_obs(Rc::clone(&obs));
        for idx in 0..self.net.node_count() {
            match self.net.node_mut(idx) {
                NodeActor::Provider(p) => p.set_obs(Rc::clone(&obs)),
                NodeActor::Collector(c) => c.set_obs(Rc::clone(&obs), idx as u64),
                NodeActor::Governor(g) => g.set_obs(Rc::clone(&obs)),
            }
        }
        self.obs = obs;
    }

    /// The observability hub.
    pub fn obs(&self) -> &ObsHandle {
        &self.obs
    }

    /// Number of completed rounds.
    pub fn rounds_run(&self) -> u64 {
        self.round
    }

    /// The tick the next round will start at.
    pub fn next_round_start(&self) -> u64 {
        self.next_start
    }

    /// Ticks one open-loop round spans.
    pub fn round_ticks(&self) -> u64 {
        self.cfg.round_ticks()
    }

    /// Total transactions injected so far.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Total transactions committed so far (governor 0's chain).
    pub fn committed(&self) -> u64 {
        self.committed
    }

    /// Governor `g`'s node (chain, metrics, pool stats).
    ///
    /// # Panics
    ///
    /// Panics if `g` is out of range.
    pub fn governor(&self, g: u32) -> &GovernorNode {
        assert!(g < self.cfg.governors, "governor {g} out of range");
        self.net
            .node(net_index(self.cfg.collectors as u64 + g as u64))
            .as_governor()
            .expect("index is a governor")
    }

    /// Collector `c`'s node (mempool stats).
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range.
    pub fn collector(&self, c: u32) -> &CollectorNode {
        assert!(c < self.cfg.collectors);
        self.net
            .node(net_index(c as u64))
            .as_collector()
            .expect("index is a collector")
    }

    /// Mempool accounting aggregated over all collectors.
    pub fn mempool_stats(&self) -> PoolStats {
        let mut out = PoolStats::default();
        for c in 0..self.cfg.collectors {
            let (q, hw, s) = self.collector(c).mempool_stats();
            out.queued += q;
            out.high_water = out.high_water.max(hw);
            out.shed += s;
        }
        out
    }

    /// Pending-pool accounting aggregated over all governors.
    pub fn pending_stats(&self) -> PoolStats {
        let mut out = PoolStats::default();
        for g in 0..self.cfg.governors {
            let (q, hw, s) = self.governor(g).pending_stats();
            out.queued += q;
            out.high_water = out.high_water.max(hw);
            out.shed += s;
        }
        out
    }

    /// Retry-queue accounting aggregated over every node.
    pub fn retry_stats(&self) -> PoolStats {
        let mut out = PoolStats::default();
        for c in 0..self.cfg.collectors {
            let (q, hw, d) = self.collector(c).retry_queue_stats();
            out.queued += q;
            out.high_water = out.high_water.max(hw);
            out.shed += d;
        }
        for g in 0..self.cfg.governors {
            let (q, hw, d) = self.governor(g).retry_queue_stats();
            out.queued += q;
            out.high_water = out.high_water.max(hw);
            out.shed += d;
        }
        out
    }

    /// Whether every queue in the system has fully drained: collector
    /// mempools, governor Δ-window pools, and the screened-but-unpacked
    /// ready buffers.
    pub fn drained(&self) -> bool {
        (0..self.cfg.collectors).all(|c| self.collector(c).mempool_stats().0 == 0)
            && (0..self.cfg.governors).all(|g| {
                let gov = self.governor(g);
                gov.pending_count() == 0 && gov.ready_len() == 0
            })
    }

    /// Whether all governors agree on the chain head.
    pub fn chains_agree(&self) -> bool {
        let reference = self.governor(0).chain();
        (1..self.cfg.governors).all(|g| {
            let other = self.governor(g).chain();
            other.height() == reference.height()
                && other.latest().hash() == reference.latest().hash()
        })
    }

    /// Runs one open-loop round, injecting `arrivals` into its window.
    ///
    /// Arrivals must be sorted by nothing in particular, but each must
    /// fall inside `[start, start + round_ticks)` and carry contiguous
    /// per-provider `seq`s across the whole run.
    ///
    /// # Panics
    ///
    /// Panics if an arrival's tick precedes the round window or its
    /// provider id is out of range.
    pub fn run_round(&mut self, arrivals: Vec<Arrival>) -> ScaleRound {
        self.round += 1;
        let round = self.round;
        self.obs.set_round(round);
        let t0 = self.next_start;
        let round_ticks = self.cfg.round_ticks();
        self.next_start = t0 + round_ticks;
        let n = self.cfg.collectors;
        let m = self.cfg.governors;

        let injected = arrivals.len() as u64;
        self.injected += injected;
        for arrival in arrivals {
            self.inject(arrival, t0);
        }

        for g in 0..m {
            self.net.send_external(
                net_index(n as u64 + g as u64),
                "start-round",
                ProtocolMsg::StartRound { round },
                SimTime(t0),
            );
        }
        for c in 0..n {
            self.net.send_external(
                net_index(c as u64),
                "start-round",
                ProtocolMsg::StartRound { round },
                SimTime(t0),
            );
        }
        // Open-loop proposal timing matches the drain rounds of the
        // closed-loop driver: uploads begin at the round start (the
        // mempool drain), not after a collection phase.
        let propose_at = t0 + self.cfg.aggregation_window() + 4 * self.cfg.max_delay + 10;
        for g in 0..m {
            self.net.send_external(
                net_index(n as u64 + g as u64),
                "propose-block",
                ProtocolMsg::ProposeBlock { round },
                SimTime(propose_at),
            );
        }
        self.net.run_until(SimTime(t0 + round_ticks));

        let mut committed = 0u64;
        {
            let chain = self.governor(0).chain();
            for serial in (self.observed_height + 1)..=chain.height() {
                let block = chain.retrieve(serial).expect("no skipping");
                committed += block.entries.len() as u64;
            }
            self.observed_height = chain.height();
        }
        self.committed += committed;
        ScaleRound {
            round,
            injected,
            committed,
        }
    }

    /// One arrival: oracle registration, the `tx.submitted` lifecycle
    /// event, and a `TxBroadcast` to each of the provider's `r` linked
    /// collectors (the last one takes the payload by move).
    fn inject(&mut self, arrival: Arrival, window_start: u64) {
        let Arrival {
            at,
            provider,
            seq,
            tx,
            valid,
        } = arrival;
        assert!(
            at >= window_start,
            "arrival at {at} precedes round window {window_start}"
        );
        assert!(
            provider < self.cfg.providers,
            "provider {provider} out of range"
        );
        self.oracle.borrow_mut().register(tx.id(), valid);
        if self.obs.is_enabled() {
            self.obs.emit(
                at,
                EXTERNAL_NODE,
                ObsEvent::TxSubmitted {
                    trace: tx.id().trace(),
                    provider: u64::from(provider),
                },
            );
        }
        let collectors = self.topology.collectors_of(provider);
        let mut tx = Some(tx);
        let last = collectors.len().saturating_sub(1);
        for (i, &c) in collectors.iter().enumerate() {
            let payload = if i == last {
                tx.take().expect("one payload per fan-out slot")
            } else {
                tx.as_ref().expect("moved only on the last slot").clone()
            };
            self.net.send_external(
                net_index(c as u64),
                "tx-broadcast",
                ProtocolMsg::TxBroadcast { seq, tx: payload },
                SimTime(at),
            );
        }
    }

    /// Runs arrival-free rounds until every queue drains (or `max_rounds`
    /// passes); returns how many rounds it took. The chain keeps
    /// committing screened backlog during the drain.
    pub fn drain(&mut self, max_rounds: u32) -> u32 {
        for i in 0..max_rounds {
            if self.drained() {
                return i;
            }
            self.run_round(Vec::new());
        }
        max_rounds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prb_ledger::transaction::TxPayload;

    fn scale_cfg(providers: u32) -> ProtocolConfig {
        ProtocolConfig {
            providers,
            collectors: 4,
            governors: 3,
            replication: 2,
            tx_per_provider: 0,
            open_loop: true,
            reveal: RevealPolicy::ArgueOnly,
            seed: 11,
            ..Default::default()
        }
    }

    fn make_arrival(sim: &ScaleSim, at: u64, provider: u32, seq: u64) -> Arrival {
        let pool = sim.signer_pool();
        let key = &pool[provider as usize % pool.len()];
        let tx = SignedTx::create(
            TxPayload {
                provider: NodeId::provider(provider),
                nonce: seq,
                data: vec![0xa5; 16],
            },
            at,
            key,
        );
        Arrival {
            at,
            provider,
            seq,
            tx,
            valid: true,
        }
    }

    #[test]
    fn rejects_closed_loop_and_reveal_configs() {
        let cfg = ProtocolConfig {
            open_loop: false,
            ..scale_cfg(64)
        };
        assert!(ScaleSim::new(cfg, 8).is_err());
        let cfg = ProtocolConfig {
            reveal: RevealPolicy::AfterRounds(1),
            ..scale_cfg(64)
        };
        assert!(ScaleSim::new(cfg, 8).is_err());
        assert!(ScaleSim::new(scale_cfg(64), 0).is_err());
    }

    #[test]
    fn injected_transactions_commit_and_chains_agree() {
        let mut sim = ScaleSim::new(scale_cfg(64), 8).unwrap();
        sim.set_obs(Obs::counting());
        let t0 = sim.next_round_start();
        let arrivals = (0..32u32)
            .map(|i| make_arrival(&sim, t0 + u64::from(i), i % 64, 0))
            .collect();
        let r1 = sim.run_round(arrivals);
        // Arrivals land in round 1's window; the mempool drains at the
        // next round start (an arrival on the start tick itself may ride
        // round 1's own drain), so everything commits within two rounds.
        let r2 = sim.run_round(Vec::new());
        assert_eq!(r1.committed + r2.committed, 32, "all 32 arrivals commit");
        assert!(sim.drained());
        assert!(sim.chains_agree());
        let counts = sim.obs().lifecycle_counts();
        assert_eq!(counts.submitted, 32);
        assert_eq!(counts.committed, 32);
        assert_eq!(counts.open, 0);
    }

    #[test]
    fn pool_signed_providers_verify_beyond_pool_size() {
        // Provider 13 signs with pool key 13 % 4 = 1; every collector and
        // governor resolves the same key, so the tx is not discarded.
        let mut sim = ScaleSim::new(scale_cfg(64), 4).unwrap();
        sim.set_obs(Obs::counting());
        let t0 = sim.next_round_start();
        let arrivals = vec![make_arrival(&sim, t0, 13, 0)];
        sim.run_round(arrivals);
        sim.run_round(Vec::new());
        assert_eq!(sim.committed(), 1);
    }
}

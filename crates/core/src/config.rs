//! Protocol configuration: every tunable named in the paper plus the
//! simulation-level knobs.

use prb_crypto::signer::CryptoScheme;
use prb_net::topology::TopologyParams;
use prb_reputation::ReputationParams;

use crate::behavior::GovernorProfile;

use std::fmt;

/// How the provider↔collector bipartite graph is wired.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TopologyKind {
    /// Deterministic cyclic wiring.
    Cyclic,
    /// Seeded random r-regular wiring.
    Random,
}

/// Governor screening policy — the paper's mechanism and two baselines.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GovernorMode {
    /// Algorithm 2: reputation-guided screening with parameter `f`.
    Reputation,
    /// Baseline: validate every transaction (`f → 0` limit; the behaviour
    /// of classical permissioned chains the paper improves on).
    CheckAll,
    /// Baseline: never validate; trust the weighted majority label
    /// blindly (`f → 1` limit without the `+1`-label safeguard).
    CheckNone,
}

impl fmt::Display for GovernorMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            GovernorMode::Reputation => "reputation",
            GovernorMode::CheckAll => "check-all",
            GovernorMode::CheckNone => "check-none",
        })
    }
}

/// How the real status of *unchecked* transactions becomes known
/// (Theorem 1 assumes it is *"revealed sometime after"*).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RevealPolicy {
    /// Only provider `argue` calls reveal statuses (valid transactions
    /// wrongly recorded invalid). Invalid unchecked transactions are never
    /// revealed — reputations only learn from argues.
    ArgueOnly,
    /// Every unchecked transaction's truth surfaces `rounds` rounds after
    /// it was recorded (settlement/audit evidence), in addition to argues.
    AfterRounds(u32),
    /// Each unchecked transaction's truth surfaces independently with the
    /// given probability, after the given number of rounds.
    Probabilistic {
        /// Chance the truth ever surfaces.
        prob: f64,
        /// Delay in rounds when it does.
        rounds: u32,
    },
}

/// Full configuration of a protocol simulation.
#[derive(Clone, Debug)]
pub struct ProtocolConfig {
    /// Number of providers `l`.
    pub providers: u32,
    /// Number of collectors `n`.
    pub collectors: u32,
    /// Number of governors `m`.
    pub governors: u32,
    /// Collectors per provider `r`.
    pub replication: u32,
    /// Reputation mechanism parameters (`β`, `f`, `μ`, `ν`).
    pub reputation: ReputationParams,
    /// Universal bound on transactions per block.
    pub b_limit: usize,
    /// Argue latency bound `U` (in unchecked transactions per provider).
    pub argue_limit_u: u64,
    /// Governor screening policy.
    pub governor_mode: GovernorMode,
    /// Reveal policy for unchecked transactions.
    pub reveal: RevealPolicy,
    /// Signature scheme.
    pub crypto: CryptoScheme,
    /// Topology wiring.
    pub topology: TopologyKind,
    /// Transactions each provider creates per round.
    pub tx_per_provider: u32,
    /// Initial stake per governor (units; each unit is one VRF lottery
    /// ticket per round).
    pub stake_per_governor: u64,
    /// Minimum network latency (ticks).
    pub min_delay: u64,
    /// Maximum network latency Δ (ticks).
    pub max_delay: u64,
    /// Profit credited per valid transaction executed in a block, split
    /// among collectors by reputation (§3.4.3).
    pub profit_per_tx: f64,
    /// Modeled cost of one `validate(tx)` call, in ticks (used by the
    /// throughput metric, not by event scheduling).
    pub validation_cost: u64,
    /// Paranoid block adoption: re-verify every entry's provider and
    /// collector signatures before appending a received block. The paper
    /// assumes governors do not fabricate (§3.4.3), so this is off by
    /// default; turning it on defends against a Byzantine leader at the
    /// cost of `b` signature verifications per block.
    pub verify_blocks: bool,
    /// Worker threads for the governors' batched signature/VRF
    /// verification pool (`0` = host parallelism). Any value yields
    /// bit-identical ledgers — pooling changes wall-clock only — so the
    /// default of 1 keeps small simulations free of thread overhead.
    pub verify_threads: usize,
    /// Minimum batch size before the verification pool fans out to worker
    /// threads; smaller batches verify inline on the caller's thread.
    /// Verdict-neutral (wall-clock only). The E14 micro-sweep confirms the
    /// default of 8 (`prb_consensus::verify_pool::PAR_MIN_ITEMS`).
    pub verify_inline_min: usize,
    /// Depth of the pipelined round engine: how many *ordered but not yet
    /// finalized* serials may be in flight per governor. `0` (default)
    /// is the strictly serial engine, preserved bit-for-bit. With depth
    /// `d ≥ 1`, signature validation is deferred — screening batches are
    /// submitted to a background worker as uploads arrive and collected
    /// at the Δ-window expiry, and (with [`ProtocolConfig::verify_blocks`])
    /// a received block is *ordered* immediately against its
    /// deferred-validation root and only *finalized* once the root is
    /// checked one serial behind, aborting-and-repooling on failure.
    /// Committed ledgers are bit-identical to `pipeline_depth = 0` for
    /// every depth, seed and thread width (E14).
    pub pipeline_depth: usize,
    /// Wrap the critical hops (provider→collector submission,
    /// collector→governor upload, block dissemination) in the ack-based
    /// retry envelope from `prb_net::retry`. Off by default: a loss-free
    /// network needs no retransmission and the envelope adds ack
    /// traffic. Turn on for fault-injection runs.
    pub reliable_delivery: bool,
    /// Maximum blocks per `SyncResponse` page during anti-entropy chain
    /// sync; a recovering node pages until it reaches the peer's head.
    pub sync_page: usize,
    /// Byzantine behaviour per governor (E12 fault injection). Empty
    /// means every governor is honest; otherwise one
    /// [`GovernorProfile`] per governor, index-aligned.
    pub governor_profiles: Vec<GovernorProfile>,
    /// Open-loop ingestion (the E15 scale harness): transactions arrive
    /// at the collectors at a driver-controlled rate instead of being
    /// generated per provider per round. Collectors queue arrivals in a
    /// bounded mempool and drain it at each round start; when on,
    /// `tx_per_provider` may be 0 and the closed-loop per-round volume
    /// check against `b_limit` is skipped (admission control bounds the
    /// volume instead).
    pub open_loop: bool,
    /// Capacity of each collector's open-loop mempool. When a new
    /// arrival would exceed it, the *oldest* queued transaction is shed
    /// deterministically (`tx.dropped{shed}` + `mempool.shed`).
    pub mempool_capacity: usize,
    /// Capacity of each governor's pending aggregation pool. The pool
    /// holds transactions between first upload and the Δ-window
    /// screening timer; under sustained overload it would otherwise grow
    /// without bound. Exceeding it sheds the oldest pending transaction.
    pub pending_capacity: usize,
    /// Capacity of each node's [`prb_net::retry::ReliableSender`]
    /// in-flight queue. Exceeding it drops the oldest tracked send
    /// (`net.retry.dropped`) — the retransmission guarantee degrades
    /// before memory does.
    pub retry_capacity: usize,
    /// Form a quorum-signed checkpoint certificate every this many
    /// blocks (E16 durability/state-sync harness). `0` (default)
    /// disables checkpointing entirely — no shares are signed or sent —
    /// keeping every existing experiment byte-identical. With interval
    /// `k`, each governor signs a [`prb_consensus::checkpoint`] share
    /// when it commits block `i·k` and assembles a certificate once a
    /// quorum of shares over the same state digest arrives; the latest
    /// certificate is offered during anti-entropy sync so a far-behind
    /// peer can re-anchor and fetch only the suffix (O(delta) sync).
    pub checkpoint_interval: u64,
    /// Root directory for the governors' durable block stores
    /// (`prb-store`). `None` (default) keeps the ledger purely in
    /// memory. When set, governor `g` persists its chain under
    /// `<store_dir>/g<g>` and a restart recovers the durable prefix
    /// from disk instead of resyncing from genesis.
    pub store_dir: Option<std::path::PathBuf>,
    /// Segment-file size threshold for the durable store (bytes). A
    /// segment rolls when the next record would cross this size.
    pub store_segment_bytes: u64,
    /// Per-round probability that each *departed* collector rejoins
    /// under driver-injected churn (E17). `0.0` (default) disables join
    /// churn entirely — no membership messages, no extra RNG draws,
    /// existing runs stay byte-identical.
    pub join_rate: f64,
    /// Per-round probability that each *live* collector leaves under
    /// driver-injected churn (E17), subject to the driver's live-count
    /// floor (strictly more than half stay). `0.0` (default) disables
    /// leave churn.
    pub leave_rate: f64,
    /// Bootstrap reputation prior for newly admitted (or readmitted)
    /// collectors: every per-provider screening weight starts at this
    /// value instead of the incumbent 1.0. Must be in `(0, 1]`.
    pub bootstrap_rep: f64,
    /// Half-life, in silent rounds, of a non-uploading collector's
    /// screening weights: each silent round multiplies them by
    /// `0.5^(1/halflife)` (floored at the reputation `weight_floor`).
    /// `0` (default) disables silence decay.
    pub decay_halflife: u64,
    /// Seed for the deterministic fast hasher behind every hot-path map
    /// ([`crate::fasthash`]). Any value yields byte-identical ledgers —
    /// the `hash_seed_never_changes_the_ledger` regression proves map
    /// iteration order never reaches consensus. `0` means the library
    /// default seed.
    pub hash_seed: u64,
    /// Master seed; every run with the same config is bit-identical.
    pub seed: u64,
    /// Workload/driver seed override. `None` (the default) derives the
    /// driver RNG from [`seed`](Self::seed), preserving the historical
    /// bit-identical runs. A restart over a durable
    /// [`store_dir`](Self::store_dir) should set this to a fresh value:
    /// identities (which derive from `seed`) stay the same so persisted
    /// checkpoint certificates still verify, while the resumed workload
    /// is decorrelated from the crashed run's — otherwise the driver
    /// would regenerate the exact transactions already committed in the
    /// recovered chain and every new block would dedup to empty.
    pub driver_seed: Option<u64>,
}

impl Default for ProtocolConfig {
    fn default() -> Self {
        ProtocolConfig {
            providers: 8,
            collectors: 8,
            governors: 4,
            replication: 4,
            reputation: ReputationParams::default(),
            b_limit: 4096,
            argue_limit_u: 64,
            governor_mode: GovernorMode::Reputation,
            reveal: RevealPolicy::AfterRounds(1),
            crypto: CryptoScheme::sim(),
            topology: TopologyKind::Cyclic,
            tx_per_provider: 4,
            stake_per_governor: 4,
            min_delay: 1,
            max_delay: 10,
            profit_per_tx: 1.0,
            validation_cost: 50,
            verify_blocks: false,
            verify_threads: 1,
            verify_inline_min: 8,
            pipeline_depth: 0,
            reliable_delivery: false,
            sync_page: 16,
            governor_profiles: Vec::new(),
            open_loop: false,
            mempool_capacity: 8192,
            pending_capacity: 65536,
            retry_capacity: 65536,
            checkpoint_interval: 0,
            join_rate: 0.0,
            leave_rate: 0.0,
            bootstrap_rep: 1.0,
            decay_halflife: 0,
            store_dir: None,
            store_segment_bytes: 1 << 20,
            hash_seed: 0,
            seed: 42,
            driver_seed: None,
        }
    }
}

impl ProtocolConfig {
    /// Providers per collector, `s = r·l / n`.
    pub fn s(&self) -> u32 {
        self.replication * self.providers / self.collectors
    }

    /// The topology parameters implied by this config.
    pub fn topology_params(&self) -> TopologyParams {
        TopologyParams {
            providers: self.providers,
            collectors: self.collectors,
            governors: self.governors,
            replication: self.replication,
        }
    }

    /// Ticks reserved per round: enough for collection, upload, the Δ
    /// aggregation window, screening and block dissemination.
    pub fn round_ticks(&self) -> u64 {
        let tx_spread = self.tx_per_provider as u64 * 2;
        // provider→collector + collector→governor + aggregation + proposal.
        tx_spread + 4 * self.max_delay + self.aggregation_window() + 4 * self.max_delay + 20
    }

    /// The governor-side Δ timer for collecting all copies of one
    /// transaction (§3.4.1's `starttime(tx, Δ)`).
    pub fn aggregation_window(&self) -> u64 {
        2 * self.max_delay + 2
    }

    /// Validates the whole configuration.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        self.topology_params().validate()?;
        self.reputation.validate().map_err(|e| e.to_string())?;
        if self.b_limit == 0 {
            return Err("b_limit must be positive".into());
        }
        if self.tx_per_provider == 0 && !self.open_loop {
            return Err("tx_per_provider must be positive in closed-loop mode".into());
        }
        if self.min_delay > self.max_delay {
            return Err("min_delay exceeds max_delay".into());
        }
        if self.stake_per_governor == 0 {
            return Err("governors need stake to be electable".into());
        }
        if self.sync_page == 0 {
            return Err("sync_page must be positive".into());
        }
        if self.verify_inline_min == 0 {
            return Err("verify_inline_min must be positive".into());
        }
        if self.pipeline_depth > 8 {
            return Err(format!(
                "pipeline_depth {} exceeds the supported maximum of 8",
                self.pipeline_depth
            ));
        }
        if let RevealPolicy::Probabilistic { prob, .. } = self.reveal {
            if !(0.0..=1.0).contains(&prob) {
                return Err(format!("reveal probability {prob} out of [0,1]"));
            }
        }
        if !self.open_loop {
            let per_round = self.providers as u64 * self.tx_per_provider as u64;
            if per_round > self.b_limit as u64 {
                return Err(format!(
                    "{per_round} transactions per round exceed b_limit {}",
                    self.b_limit
                ));
            }
        }
        if self.mempool_capacity == 0 {
            return Err("mempool_capacity must be positive".into());
        }
        if self.pending_capacity == 0 {
            return Err("pending_capacity must be positive".into());
        }
        if self.retry_capacity == 0 {
            return Err("retry_capacity must be positive".into());
        }
        if !(self.join_rate.is_finite() && self.join_rate >= 0.0) {
            return Err(format!(
                "join_rate must be finite and >= 0, got {}",
                self.join_rate
            ));
        }
        if !(self.leave_rate.is_finite() && self.leave_rate >= 0.0) {
            return Err(format!(
                "leave_rate must be finite and >= 0, got {}",
                self.leave_rate
            ));
        }
        if !(self.bootstrap_rep.is_finite()
            && self.bootstrap_rep > 0.0
            && self.bootstrap_rep <= 1.0)
        {
            return Err(format!(
                "bootstrap_rep must be in (0,1], got {}",
                self.bootstrap_rep
            ));
        }
        if self.store_segment_bytes < 4096 {
            return Err("store_segment_bytes must be at least 4096".into());
        }
        if !self.governor_profiles.is_empty()
            && self.governor_profiles.len() != self.governors as usize
        {
            return Err(format!(
                "governor_profiles has {} entries for {} governors",
                self.governor_profiles.len(),
                self.governors
            ));
        }
        for profile in &self.governor_profiles {
            profile.validate();
        }
        Ok(())
    }

    /// The effective fast-hash seed: `hash_seed`, or the library default
    /// when left at 0.
    pub fn resolved_hash_seed(&self) -> u64 {
        if self.hash_seed == 0 {
            prb_crypto::fxhash::DEFAULT_SEED
        } else {
            self.hash_seed
        }
    }

    /// Whether any churn machinery is active: rate-driven joins/leaves
    /// or silence decay. When `false` the membership subsystem sends no
    /// messages and draws no randomness — existing runs are preserved
    /// byte-for-byte.
    pub fn churn_enabled(&self) -> bool {
        self.join_rate > 0.0 || self.leave_rate > 0.0 || self.decay_halflife > 0
    }

    /// The per-silent-round decay factor implied by
    /// [`decay_halflife`](Self::decay_halflife): `0.5^(1/halflife)`, or
    /// `None` when decay is disabled.
    pub fn decay_factor(&self) -> Option<f64> {
        if self.decay_halflife == 0 {
            None
        } else {
            Some(0.5f64.powf(1.0 / self.decay_halflife as f64))
        }
    }

    /// The behaviour profile of governor `g` (honest when none configured).
    pub fn governor_profile(&self, g: u32) -> GovernorProfile {
        self.governor_profiles
            .get(g as usize)
            .copied()
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        ProtocolConfig::default().validate().unwrap();
    }

    #[test]
    fn s_is_computed() {
        let cfg = ProtocolConfig::default();
        assert_eq!(cfg.s(), 4); // 4·8/8
    }

    #[test]
    fn invalid_topology_rejected() {
        let cfg = ProtocolConfig {
            replication: 3,
            collectors: 7,
            providers: 5,
            ..Default::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn invalid_reputation_rejected() {
        let mut cfg = ProtocolConfig::default();
        cfg.reputation.f = 0.0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn block_limit_must_cover_round_volume() {
        let cfg = ProtocolConfig {
            b_limit: 10,
            tx_per_provider: 4,
            ..Default::default() // 8 providers × 4 = 32 > 10
        };
        assert!(cfg.validate().unwrap_err().contains("b_limit"));
    }

    #[test]
    fn delay_ordering_checked() {
        let cfg = ProtocolConfig {
            min_delay: 20,
            max_delay: 10,
            ..Default::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn reveal_probability_checked() {
        let cfg = ProtocolConfig {
            reveal: RevealPolicy::Probabilistic {
                prob: 1.5,
                rounds: 1,
            },
            ..Default::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn zero_inline_threshold_rejected() {
        let cfg = ProtocolConfig {
            verify_inline_min: 0,
            ..Default::default()
        };
        assert!(cfg.validate().unwrap_err().contains("verify_inline_min"));
    }

    #[test]
    fn pipeline_depth_bounds_checked() {
        for depth in [0, 1, 2, 8] {
            let cfg = ProtocolConfig {
                pipeline_depth: depth,
                ..Default::default()
            };
            cfg.validate().unwrap();
        }
        let cfg = ProtocolConfig {
            pipeline_depth: 9,
            ..Default::default()
        };
        assert!(cfg.validate().unwrap_err().contains("pipeline_depth"));
    }

    #[test]
    fn zero_sync_page_rejected() {
        let cfg = ProtocolConfig {
            sync_page: 0,
            ..Default::default()
        };
        assert!(cfg.validate().unwrap_err().contains("sync_page"));
    }

    #[test]
    fn round_ticks_cover_aggregation() {
        let cfg = ProtocolConfig::default();
        assert!(cfg.round_ticks() > cfg.aggregation_window() + 2 * cfg.max_delay);
    }

    #[test]
    fn governor_profiles_must_align_with_committee() {
        let cfg = ProtocolConfig {
            governor_profiles: vec![GovernorProfile::equivocator(); 3],
            ..Default::default() // 4 governors
        };
        assert!(cfg
            .validate()
            .unwrap_err()
            .contains("governor_profiles has 3 entries for 4 governors"));
        let cfg = ProtocolConfig {
            governor_profiles: vec![GovernorProfile::honest(); 4],
            ..Default::default()
        };
        cfg.validate().unwrap();
        assert!(cfg.governor_profile(2).is_honest());
        // No profiles configured: everyone defaults to honest.
        assert!(ProtocolConfig::default().governor_profile(0).is_honest());
    }

    #[test]
    fn zero_capacities_rejected() {
        for patch in [
            |c: &mut ProtocolConfig| c.mempool_capacity = 0,
            |c: &mut ProtocolConfig| c.pending_capacity = 0,
            |c: &mut ProtocolConfig| c.retry_capacity = 0,
        ] {
            let mut cfg = ProtocolConfig::default();
            patch(&mut cfg);
            assert!(cfg.validate().unwrap_err().contains("capacity"));
        }
    }

    #[test]
    fn open_loop_relaxes_closed_loop_volume_checks() {
        // Closed loop: zero tx_per_provider and over-b_limit volume both
        // rejected.
        let cfg = ProtocolConfig {
            tx_per_provider: 0,
            ..Default::default()
        };
        assert!(cfg.validate().is_err());
        // Open loop: both allowed — admission control bounds the volume.
        let cfg = ProtocolConfig {
            open_loop: true,
            tx_per_provider: 0,
            providers: 100_000,
            collectors: 10,
            replication: 2,
            ..Default::default()
        };
        cfg.validate().unwrap();
    }

    #[test]
    fn hash_seed_zero_resolves_to_library_default() {
        let cfg = ProtocolConfig::default();
        assert_eq!(cfg.resolved_hash_seed(), prb_crypto::fxhash::DEFAULT_SEED);
        let cfg = ProtocolConfig {
            hash_seed: 7,
            ..Default::default()
        };
        assert_eq!(cfg.resolved_hash_seed(), 7);
    }

    #[test]
    fn churn_fields_validated_and_gate_correctly() {
        let cfg = ProtocolConfig::default();
        assert!(!cfg.churn_enabled(), "defaults must disable churn");
        assert_eq!(cfg.decay_factor(), None);
        for patch in [
            |c: &mut ProtocolConfig| c.join_rate = -0.1,
            |c: &mut ProtocolConfig| c.join_rate = f64::NAN,
            |c: &mut ProtocolConfig| c.leave_rate = -1.0,
            |c: &mut ProtocolConfig| c.bootstrap_rep = 0.0,
            |c: &mut ProtocolConfig| c.bootstrap_rep = 1.5,
            |c: &mut ProtocolConfig| c.bootstrap_rep = f64::NAN,
        ] {
            let mut cfg = ProtocolConfig::default();
            patch(&mut cfg);
            assert!(cfg.validate().is_err());
        }
        let cfg = ProtocolConfig {
            join_rate: 0.5,
            leave_rate: 0.25,
            bootstrap_rep: 0.5,
            decay_halflife: 4,
            ..Default::default()
        };
        cfg.validate().unwrap();
        assert!(cfg.churn_enabled());
        let f = cfg.decay_factor().unwrap();
        assert!((f.powi(4) - 0.5).abs() < 1e-12, "4 rounds halve the weight");
        // Decay alone also counts as churn (it changes reputations).
        let cfg = ProtocolConfig {
            decay_halflife: 8,
            ..Default::default()
        };
        assert!(cfg.churn_enabled());
    }

    #[test]
    fn governor_mode_display() {
        assert_eq!(GovernorMode::Reputation.to_string(), "reputation");
        assert_eq!(GovernorMode::CheckAll.to_string(), "check-all");
        assert_eq!(GovernorMode::CheckNone.to_string(), "check-none");
    }
}

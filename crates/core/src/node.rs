//! The unified actor type: one enum wrapping the three roles.

use prb_net::message::{Envelope, TimerId};
use prb_net::sim::{Actor, Context};

use crate::collector::CollectorNode;
use crate::governor::GovernorNode;
use crate::msg::ProtocolMsg;
use crate::provider::ProviderNode;

/// A node of any role, as stored in the simulated network.
#[derive(Debug)]
pub enum NodeActor {
    /// A provider.
    Provider(ProviderNode),
    /// A collector.
    Collector(CollectorNode),
    /// A governor (boxed: its state dwarfs the other roles').
    Governor(Box<GovernorNode>),
}

impl NodeActor {
    /// The provider inside, if this is one.
    pub fn as_provider(&self) -> Option<&ProviderNode> {
        match self {
            NodeActor::Provider(p) => Some(p),
            _ => None,
        }
    }

    /// The collector inside, if this is one.
    pub fn as_collector(&self) -> Option<&CollectorNode> {
        match self {
            NodeActor::Collector(c) => Some(c),
            _ => None,
        }
    }

    /// The governor inside, if this is one.
    pub fn as_governor(&self) -> Option<&GovernorNode> {
        match self {
            NodeActor::Governor(g) => Some(g),
            _ => None,
        }
    }

    /// Wraps a governor (boxing it).
    pub fn governor(node: GovernorNode) -> Self {
        NodeActor::Governor(Box::new(node))
    }
}

impl Actor for NodeActor {
    type Msg = ProtocolMsg;

    fn on_message(&mut self, env: Envelope<ProtocolMsg>, ctx: &mut Context<'_, ProtocolMsg>) {
        // Unwrap the reliable-delivery envelope here, once for every
        // role: ack first (so a retransmitted copy re-acks even when its
        // payload is a downstream duplicate), then dispatch the inner
        // message as if it had arrived bare.
        let env = match env.payload {
            ProtocolMsg::Reliable { token, inner } => {
                ctx.send_sized(env.from, "ack", 8, ProtocolMsg::Ack { token });
                Envelope {
                    payload: *inner,
                    ..env
                }
            }
            ProtocolMsg::Ack { token } => {
                match self {
                    NodeActor::Provider(p) => p.on_ack(token),
                    NodeActor::Collector(c) => c.on_ack(token),
                    NodeActor::Governor(g) => g.on_ack(token),
                }
                return;
            }
            _ => env,
        };
        match self {
            NodeActor::Provider(p) => p.on_message(env, ctx),
            NodeActor::Collector(c) => c.on_message(env, ctx),
            NodeActor::Governor(g) => g.on_message(env, ctx),
        }
    }

    fn on_timer(&mut self, timer: TimerId, ctx: &mut Context<'_, ProtocolMsg>) {
        match self {
            NodeActor::Provider(p) => p.on_timer(timer, ctx),
            NodeActor::Collector(c) => c.on_timer(timer, ctx),
            NodeActor::Governor(g) => g.on_timer(timer, ctx),
        }
    }
}

//! The provider role (§3.2 — Collecting phase, plus `argue`).
//!
//! Providers sign transactions together with a timestamp (so collectors
//! cannot fabricate or replay them), broadcast each to their `r` linked
//! collectors via the sequenced atomic-broadcast channel, and — if
//! *active* — watch committed blocks and `argue(tx, s)` whenever one of
//! their genuinely valid transactions was recorded invalid-unchecked.

use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::rc::Rc;

use prb_crypto::identity::NodeId;
use prb_crypto::signer::KeyPair;
use prb_ledger::block::Verdict;
use prb_ledger::oracle::ValidityOracle;
use prb_ledger::transaction::{SignedTx, TxId, TxPayload};
use prb_net::message::{Envelope, NodeIdx, TimerId};
use prb_net::retry::{ReliableSender, RetryConfig};
use prb_net::sim::Context;
use prb_obs::{EventKind, Obs, ObsHandle};

use crate::behavior::ProviderProfile;
use crate::msg::ProtocolMsg;

/// Provider actor state.
#[derive(Debug)]
pub struct ProviderNode {
    index: u32,
    key: KeyPair,
    profile: ProviderProfile,
    /// Network indices of the provider's `r` collectors.
    collector_nets: Vec<NodeIdx>,
    /// Network indices of all governors (for argues).
    governor_nets: Vec<NodeIdx>,
    oracle: Rc<RefCell<ValidityOracle>>,
    nonce: u64,
    /// Per-link broadcast sequence numbers, aligned with
    /// `collector_nets`. Each provider→collector channel is sender-
    /// sequenced independently so a collector that departs and later
    /// rejoins resumes at exactly the sequence number its ordered inbox
    /// expects — a shared counter would leave a permanent gap and stall
    /// the channel.
    seqs: Vec<u64>,
    /// Ground truth of own transactions, by id.
    my_txs: HashMap<TxId, bool>,
    argued: HashSet<TxId>,
    created: u64,
    argues_sent: u64,
    /// Ack-based retransmission for tx submissions (None = fire-and-forget).
    retry: Option<ReliableSender<ProtocolMsg>>,
    /// Net indices of linked collectors currently departed (dynamic
    /// membership, E17): fan-out skips them and no retries chase them.
    dead_collectors: HashSet<NodeIdx>,
    obs: ObsHandle,
}

impl ProviderNode {
    /// Creates provider `index` with its wiring and credentials.
    pub fn new(
        index: u32,
        key: KeyPair,
        profile: ProviderProfile,
        collector_nets: Vec<NodeIdx>,
        governor_nets: Vec<NodeIdx>,
        oracle: Rc<RefCell<ValidityOracle>>,
    ) -> Self {
        let seqs = vec![0; collector_nets.len()];
        ProviderNode {
            index,
            key,
            profile,
            collector_nets,
            governor_nets,
            oracle,
            nonce: 0,
            seqs,
            my_txs: HashMap::new(),
            argued: HashSet::new(),
            created: 0,
            argues_sent: 0,
            retry: None,
            dead_collectors: HashSet::new(),
            obs: Obs::off(),
        }
    }

    /// Marks the collector at net index `peer` departed (`false`) or
    /// readmitted (`true`). Departing purges in-flight retransmissions
    /// to it; returns the number of sends purged.
    pub fn set_collector_active(&mut self, peer: NodeIdx, active: bool) -> usize {
        if active {
            self.dead_collectors.remove(&peer);
            0
        } else {
            self.dead_collectors.insert(peer);
            match &mut self.retry {
                Some(r) => r.purge_peer(peer),
                None => 0,
            }
        }
    }

    /// Enables reliable delivery for tx-broadcast sends.
    pub fn set_reliable(&mut self, cfg: RetryConfig) {
        self.retry = Some(ReliableSender::new(cfg));
    }

    /// Installs an observability hub (threaded into the retry sender;
    /// also the source of `tx.submitted` lifecycle events).
    pub fn set_obs(&mut self, obs: ObsHandle) {
        if let Some(r) = &mut self.retry {
            r.set_obs(Rc::clone(&obs));
        }
        self.obs = obs;
    }

    /// Routes an ack for a tracked send.
    pub fn on_ack(&mut self, token: u64) {
        if let Some(r) = &mut self.retry {
            r.on_ack(token);
        }
    }

    /// Handles a timer fire (only retransmission timers reach providers).
    pub fn on_timer(&mut self, timer: TimerId, ctx: &mut Context<'_, ProtocolMsg>) {
        if let Some(r) = &mut self.retry {
            r.on_timer(timer, ctx);
        }
    }

    /// The provider's index.
    pub fn index(&self) -> u32 {
        self.index
    }

    /// Transactions created so far.
    pub fn created(&self) -> u64 {
        self.created
    }

    /// Argue calls issued so far.
    pub fn argues_sent(&self) -> u64 {
        self.argues_sent
    }

    /// Ground-truth validity of one of this provider's transactions.
    pub fn truth_of(&self, tx: TxId) -> Option<bool> {
        self.my_txs.get(&tx).copied()
    }

    /// Handles a delivered message.
    pub fn on_message(&mut self, env: Envelope<ProtocolMsg>, ctx: &mut Context<'_, ProtocolMsg>) {
        match env.payload {
            ProtocolMsg::StartCollect { txs, .. } => {
                for gen in txs {
                    let payload = TxPayload {
                        provider: NodeId::provider(self.index),
                        nonce: self.nonce,
                        data: gen.data,
                    };
                    self.nonce += 1;
                    let tx = SignedTx::create(payload, ctx.now().ticks(), &self.key);
                    let id = tx.id();
                    self.oracle.borrow_mut().register(id, gen.valid);
                    self.my_txs.insert(id, gen.valid);
                    self.created += 1;
                    self.obs.emit(
                        ctx.now().ticks(),
                        ctx.self_idx() as u64,
                        EventKind::TxSubmitted {
                            trace: id.trace(),
                            provider: self.index as u64,
                        },
                    );
                    let size = tx.wire_size();
                    let ProviderNode {
                        retry,
                        collector_nets,
                        dead_collectors,
                        seqs,
                        ..
                    } = self;
                    // Fan-out without the wasted clone: the last live
                    // collector takes the original transaction by move (r
                    // clones become r−1 on the per-tx broadcast fast
                    // path). Departed collectors are skipped entirely.
                    let Some(last) = collector_nets
                        .iter()
                        .rposition(|c| !dead_collectors.contains(c))
                    else {
                        continue; // every linked collector departed
                    };
                    let mut tx = Some(tx);
                    for (i, &c) in collector_nets.iter().enumerate() {
                        if dead_collectors.contains(&c) {
                            continue;
                        }
                        let seq = seqs[i];
                        seqs[i] += 1;
                        let payload = if i == last {
                            tx.take().expect("one payload per fan-out slot")
                        } else {
                            tx.as_ref().expect("moved only on the last slot").clone()
                        };
                        let msg = ProtocolMsg::TxBroadcast { seq, tx: payload };
                        match retry {
                            Some(r) => {
                                r.send_with(ctx, c, "tx-broadcast", size + 8, |token| {
                                    ProtocolMsg::Reliable {
                                        token,
                                        inner: Box::new(msg),
                                    }
                                });
                            }
                            None => ctx.send_sized(c, "tx-broadcast", size, msg),
                        }
                    }
                }
            }
            ProtocolMsg::BlockNotify { serial, verdicts } => {
                if !self.profile.active {
                    return;
                }
                for (tx, verdict) in verdicts {
                    if verdict != Verdict::UncheckedInvalid {
                        continue;
                    }
                    let Some(&truth) = self.my_txs.get(&tx) else {
                        continue; // someone else's transaction
                    };
                    if truth && self.argued.insert(tx) {
                        self.argues_sent += 1;
                        for &g in &self.governor_nets {
                            ctx.send_sized(g, "argue", 40, ProtocolMsg::Argue { tx, serial });
                        }
                    }
                }
            }
            _ => {} // providers ignore all other traffic
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::GeneratedTx;
    use prb_crypto::signer::CryptoScheme;
    use prb_net::message::EXTERNAL;
    use prb_net::sim::{Actor, NetConfig, Network};
    use prb_net::time::SimTime;

    /// Wrap the provider as a standalone actor plus sinks for its traffic.
    #[allow(clippy::large_enum_variant)]
    enum Harness {
        Provider(ProviderNode),
        Sink(Vec<ProtocolMsg>),
    }

    impl Actor for Harness {
        type Msg = ProtocolMsg;
        fn on_message(&mut self, env: Envelope<ProtocolMsg>, ctx: &mut Context<'_, ProtocolMsg>) {
            match self {
                Harness::Provider(p) => p.on_message(env, ctx),
                Harness::Sink(seen) => seen.push(env.payload),
            }
        }
    }

    fn build(profile: ProviderProfile) -> (Network<Harness>, Rc<RefCell<ValidityOracle>>) {
        let oracle = Rc::new(RefCell::new(ValidityOracle::new()));
        let mut net = Network::new(NetConfig::uniform(1, 3), 5);
        // Layout: node 0 = provider, 1-2 = collector sinks, 3 = governor sink.
        let key = CryptoScheme::sim().keypair_from_seed(b"p0");
        let provider = ProviderNode::new(0, key, profile, vec![1, 2], vec![3], Rc::clone(&oracle));
        net.add_node(Harness::Provider(provider));
        net.add_node(Harness::Sink(Vec::new()));
        net.add_node(Harness::Sink(Vec::new()));
        net.add_node(Harness::Sink(Vec::new()));
        (net, oracle)
    }

    fn gen(valid: bool) -> GeneratedTx {
        GeneratedTx {
            data: vec![7, 7, 7],
            valid,
        }
    }

    #[test]
    fn start_collect_broadcasts_signed_txs_to_all_collectors() {
        let (mut net, oracle) = build(ProviderProfile::honest_active());
        net.send_external(
            0,
            "start",
            ProtocolMsg::StartCollect {
                round: 0,
                txs: vec![gen(true), gen(false)],
            },
            SimTime(0),
        );
        net.run_until_idle(100);
        for sink in [1, 2] {
            let Harness::Sink(seen) = net.node(sink) else {
                panic!()
            };
            assert_eq!(seen.len(), 2, "collector {sink}");
            for msg in seen {
                let ProtocolMsg::TxBroadcast { tx, .. } = msg else {
                    panic!("unexpected {msg:?}")
                };
                // Signature verifies and truth was registered.
                let pk = CryptoScheme::sim().keypair_from_seed(b"p0").public_key();
                assert!(tx.verify(&pk));
                assert!(oracle.borrow().peek(tx.id()).is_some());
            }
        }
        let Harness::Provider(p) = net.node(0) else {
            panic!()
        };
        assert_eq!(p.created(), 2);
    }

    #[test]
    fn seqs_are_consecutive_per_provider_channel() {
        let (mut net, _) = build(ProviderProfile::honest_active());
        net.send_external(
            0,
            "start",
            ProtocolMsg::StartCollect {
                round: 0,
                txs: vec![gen(true), gen(true), gen(true)],
            },
            SimTime(0),
        );
        net.run_until_idle(100);
        let Harness::Sink(seen) = net.node(1) else {
            panic!()
        };
        let mut seqs: Vec<u64> = seen
            .iter()
            .map(|m| match m {
                ProtocolMsg::TxBroadcast { seq, .. } => *seq,
                _ => panic!(),
            })
            .collect();
        seqs.sort_unstable();
        assert_eq!(seqs, vec![0, 1, 2]);
    }

    #[test]
    fn active_provider_argues_wrongly_buried_valid_tx() {
        let (mut net, _) = build(ProviderProfile::honest_active());
        net.send_external(
            0,
            "start",
            ProtocolMsg::StartCollect {
                round: 0,
                txs: vec![gen(true)],
            },
            SimTime(0),
        );
        net.run_until_idle(100);
        let id = {
            let Harness::Provider(p) = net.node(0) else {
                panic!()
            };
            *p.my_txs.keys().next().unwrap()
        };
        net.send_external(
            0,
            "notify",
            ProtocolMsg::BlockNotify {
                serial: 1,
                verdicts: vec![(id, Verdict::UncheckedInvalid)],
            },
            SimTime(200),
        );
        net.run_until_idle(100);
        let Harness::Sink(gov) = net.node(3) else {
            panic!()
        };
        assert_eq!(gov.len(), 1);
        assert!(matches!(gov[0], ProtocolMsg::Argue { tx, serial: 1 } if tx == id));
        // A second notify does not re-argue.
        net.send_external(
            0,
            "notify",
            ProtocolMsg::BlockNotify {
                serial: 2,
                verdicts: vec![(id, Verdict::UncheckedInvalid)],
            },
            SimTime(400),
        );
        net.run_until_idle(100);
        let Harness::Sink(gov) = net.node(3) else {
            panic!()
        };
        assert_eq!(gov.len(), 1);
        let Harness::Provider(p) = net.node(0) else {
            panic!()
        };
        assert_eq!(p.argues_sent(), 1);
    }

    #[test]
    fn passive_provider_never_argues() {
        let (mut net, _) = build(ProviderProfile::passive(0.0));
        net.send_external(
            0,
            "start",
            ProtocolMsg::StartCollect {
                round: 0,
                txs: vec![gen(true)],
            },
            SimTime(0),
        );
        net.run_until_idle(100);
        let id = {
            let Harness::Provider(p) = net.node(0) else {
                panic!()
            };
            *p.my_txs.keys().next().unwrap()
        };
        net.send_external(
            0,
            "notify",
            ProtocolMsg::BlockNotify {
                serial: 1,
                verdicts: vec![(id, Verdict::UncheckedInvalid)],
            },
            SimTime(200),
        );
        net.run_until_idle(100);
        let Harness::Sink(gov) = net.node(3) else {
            panic!()
        };
        assert!(gov.is_empty());
    }

    #[test]
    fn provider_does_not_argue_its_genuinely_invalid_tx() {
        let (mut net, _) = build(ProviderProfile::honest_active());
        net.send_external(
            0,
            "start",
            ProtocolMsg::StartCollect {
                round: 0,
                txs: vec![gen(false)],
            },
            SimTime(0),
        );
        net.run_until_idle(100);
        let id = {
            let Harness::Provider(p) = net.node(0) else {
                panic!()
            };
            *p.my_txs.keys().next().unwrap()
        };
        net.send_external(
            0,
            "notify",
            ProtocolMsg::BlockNotify {
                serial: 1,
                verdicts: vec![(id, Verdict::UncheckedInvalid)],
            },
            SimTime(200),
        );
        net.run_until_idle(100);
        let Harness::Sink(gov) = net.node(3) else {
            panic!()
        };
        assert!(gov.is_empty(), "invalid tx must not be argued");
    }

    #[test]
    fn foreign_and_checked_verdicts_ignored() {
        let (mut net, _) = build(ProviderProfile::honest_active());
        let foreign = TxId(prb_crypto::sha256::sha256(b"not-mine"));
        net.send_external(
            0,
            "notify",
            ProtocolMsg::BlockNotify {
                serial: 1,
                verdicts: vec![
                    (foreign, Verdict::UncheckedInvalid),
                    (foreign, Verdict::CheckedValid),
                ],
            },
            SimTime(0),
        );
        net.run_until_idle(100);
        let Harness::Sink(gov) = net.node(3) else {
            panic!()
        };
        assert!(gov.is_empty());
        // Envelope helper coverage.
        assert_ne!(EXTERNAL, 0);
    }
}

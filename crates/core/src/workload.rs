//! The workload abstraction: where transaction payloads come from.
//!
//! The protocol is payload-agnostic; scenario crates (car-sharing,
//! insurance — see `prb-workload`) implement [`Workload`] to drive the
//! simulation with domain-shaped data and ground-truth validity.

use rand::rngs::StdRng;

/// A generated transaction before signing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GeneratedTx {
    /// Opaque application payload.
    pub data: Vec<u8>,
    /// Ground-truth validity (registered with the validity oracle).
    pub valid: bool,
}

/// A source of transactions for the simulation driver.
pub trait Workload {
    /// Produces the next transaction for `provider` in `round`.
    fn next_tx(&mut self, provider: u32, round: u64, rng: &mut StdRng) -> GeneratedTx;

    /// A short name for reports.
    fn name(&self) -> &str {
        "workload"
    }
}

/// The default workload: random bytes, invalid with a per-provider rate
/// taken from the provider profiles.
#[derive(Clone, Debug)]
pub struct UniformWorkload {
    /// Probability that a transaction is genuinely invalid, per provider.
    pub invalid_rates: Vec<f64>,
    /// Payload size in bytes.
    pub payload_len: usize,
}

impl UniformWorkload {
    /// Same invalid rate for every one of `providers` providers.
    pub fn new(providers: u32, invalid_rate: f64) -> Self {
        UniformWorkload {
            invalid_rates: vec![invalid_rate; providers as usize],
            payload_len: 32,
        }
    }
}

impl Workload for UniformWorkload {
    fn next_tx(&mut self, provider: u32, _round: u64, rng: &mut StdRng) -> GeneratedTx {
        use rand::Rng;
        let rate = self
            .invalid_rates
            .get(provider as usize)
            .copied()
            .unwrap_or(0.0);
        let mut data = vec![0u8; self.payload_len];
        rng.fill(&mut data[..]);
        GeneratedTx {
            data,
            valid: rng.gen::<f64>() >= rate,
        }
    }

    fn name(&self) -> &str {
        "uniform"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn uniform_workload_respects_rate() {
        let mut w = UniformWorkload::new(2, 0.4);
        let mut rng = StdRng::seed_from_u64(1);
        let invalid = (0..10_000)
            .filter(|i| !w.next_tx(i % 2, 0, &mut rng).valid)
            .count();
        assert!((3_400..4_600).contains(&invalid), "{invalid}");
        assert_eq!(w.name(), "uniform");
    }

    #[test]
    fn unknown_provider_defaults_to_valid() {
        let mut w = UniformWorkload::new(1, 1.0);
        let mut rng = StdRng::seed_from_u64(2);
        assert!(w.next_tx(9, 0, &mut rng).valid);
    }

    #[test]
    fn payloads_are_random() {
        let mut w = UniformWorkload::new(1, 0.0);
        let mut rng = StdRng::seed_from_u64(3);
        let a = w.next_tx(0, 0, &mut rng);
        let b = w.next_tx(0, 0, &mut rng);
        assert_ne!(a.data, b.data);
        assert_eq!(a.data.len(), 32);
    }
}

//! The protocol's wire messages.
//!
//! Driver-injected commands (round starts, block notifications, reveals)
//! share the enum with node-to-node traffic; they arrive with
//! `from == EXTERNAL` and are never counted toward the complexity
//! experiments' protocol-message kinds.

use prb_consensus::checkpoint::{CheckpointCert, CheckpointShare};
use prb_consensus::election::ElectionClaim;
use prb_consensus::evidence::{EquivocationEvidence, SignedHeader};
use prb_consensus::membership::{MembershipRequest, MembershipShare};
use prb_consensus::stake::StakeTransfer;
use prb_ledger::block::{Block, Verdict};
use prb_ledger::transaction::{LabeledTx, SignedTx, TxId};

use crate::workload::GeneratedTx;

/// All messages exchanged in the simulation.
#[derive(Clone, Debug)]
pub enum ProtocolMsg {
    /// Driver → provider: create and broadcast these transactions.
    StartCollect {
        /// Current round.
        round: u64,
        /// Pre-generated payloads (the driver owns the workload).
        txs: Vec<GeneratedTx>,
    },
    /// Driver → collector/governor: a new round begins.
    StartRound {
        /// Current round.
        round: u64,
    },
    /// Provider → collector: `broadcast_provider(tx)`, sequenced for
    /// atomic-broadcast delivery.
    TxBroadcast {
        /// Sequence number on the provider's channel.
        seq: u64,
        /// The signed transaction.
        tx: SignedTx,
    },
    /// Collector → governor: `broadcast_collector(Tx)`, sequenced.
    TxUpload {
        /// Sequence number on the collector's channel.
        seq: u64,
        /// The labeled, collector-signed transaction.
        ltx: LabeledTx,
    },
    /// Governor → governor: a VRF election claim for the round.
    Election {
        /// The round being contested.
        round: u64,
        /// The claimant's best VRF evaluation.
        claim: ElectionClaim,
    },
    /// Driver → governor: close the round; the leader assembles the block.
    ProposeBlock {
        /// The round being closed.
        round: u64,
    },
    /// Leader → governor: the proposed block, carrying the leader's
    /// winning election claim so receivers can resolve same-serial head
    /// forks deterministically (smallest verified `(vrf_output, index)`
    /// key wins, exactly the election's ordering).
    BlockProposal {
        /// The proposed block.
        block: Block,
        /// The proposer's VRF claim for the round that elected it.
        /// `None` only for driver-injected test traffic; claimless
        /// proposals cannot displace a contested head.
        claim: Option<ElectionClaim>,
        /// The proposer's signed commitment to exactly this block at
        /// this serial. Two conflicting headers convict an equivocator;
        /// `None` only for driver-injected test traffic (unsigned
        /// proposals cannot be held accountable).
        header: Option<SignedHeader>,
        /// Deferred-validation root (pipelined engine): the proposer's
        /// commitment over the entries' transaction ids and provider
        /// signature bytes ([`Block::validation_root`]). Receivers
        /// recompute it hash-only at ordering time — a mismatch convicts
        /// the proposer same-round — and verify the signatures themselves
        /// one serial behind. `None` when the serial engine is running
        /// (`pipeline_depth == 0`); receivers then validate inline as
        /// before.
        deferred_root: Option<prb_crypto::sha256::Digest>,
    },
    /// Governor → governor: re-gossip of a proposal header, sent once per
    /// distinct `(proposer, serial, block hash)` observed, so that an
    /// equivocator splitting the committee between two blocks is exposed
    /// to every honest governor within one delivery delay.
    HeaderEcho {
        /// The observed signed header, forwarded verbatim.
        header: SignedHeader,
    },
    /// Governor → governor: self-verifying proof that `culprit()` signed
    /// two conflicting blocks at one serial. Receivers verify both
    /// signatures before expelling — the accuser is not trusted.
    Evidence {
        /// The two conflicting signed headers.
        evidence: EquivocationEvidence,
    },
    /// Driver → provider: a block was committed; these are the verdicts
    /// (the provider's view of `retrieve(s)`).
    BlockNotify {
        /// Block serial.
        serial: u64,
        /// `(transaction, verdict)` pairs recorded in the block.
        verdicts: Vec<(TxId, Verdict)>,
    },
    /// Provider → governor: `argue(tx, s)`.
    Argue {
        /// The disputed transaction.
        tx: TxId,
        /// The block that recorded it.
        serial: u64,
    },
    /// Governor → governor (or driver-injected): a signed stake transfer
    /// to apply at the end of the round (§3.4.3).
    StakeTransfer(StakeTransfer),
    /// Governor → governor: "my chain head is `have`; send me what I am
    /// missing" (crash recovery).
    SyncRequest {
        /// The requester's current chain height.
        have: u64,
    },
    /// Governor → governor: one page of the blocks requested by a
    /// [`ProtocolMsg::SyncRequest`]. Responses are paginated; the
    /// requester keeps asking while its height trails `head`.
    SyncResponse {
        /// Consecutive blocks starting at the requester's `have + 1`,
        /// capped at the responder's `sync_page` limit.
        blocks: Vec<Block>,
        /// The responder's chain height at reply time, so the requester
        /// knows whether more pages remain.
        head: u64,
        /// The responder's latest quorum-signed checkpoint certificate,
        /// attached only when its serial is beyond the requester's
        /// `have`. A far-behind requester verifies the quorum, adopts
        /// the certified state and re-anchors, so it fetches only the
        /// suffix past the checkpoint instead of the whole chain
        /// (O(delta) state-sync). `None` when checkpointing is off or
        /// the requester is already past the latest checkpoint.
        cert: Option<Box<CheckpointCert>>,
    },
    /// Governor → governor: a signed share of the checkpoint state at a
    /// checkpoint-interval boundary. A governor that collects a quorum
    /// of shares over one state digest assembles a
    /// [`CheckpointCert`].
    CheckpointShare(CheckpointShare),
    /// Governor → governor (or driver-injected): a membership
    /// transition offered to the committee. Subject-signed for
    /// join/leave, unsigned for an eviction proposal (the share quorum
    /// authorizes it). Governors that accept sign and broadcast a
    /// [`MembershipShare`].
    Membership(Box<MembershipRequest>),
    /// Governor → governor: a signed endorsement of a membership
    /// request. A quorum of shares over one request digest forms a
    /// [`prb_consensus::membership::MembershipCert`], applied by every
    /// governor at the request's effective round.
    MemberShare(MembershipShare),
    /// Governor → governor: advisory EigenTrust-style reputation gossip
    /// (E17). `scores[c]` is the reporter's first-hand opinion of
    /// collector `c` in `[0,1]`, carried as `f64` bits for a hashable,
    /// byte-exact wire form. Blended into the receiver's
    /// [`prb_reputation::TransitiveView`] weighted by the reporter's
    /// earned trust; never touches consensus state.
    RepGossip {
        /// The reporting governor's committee index.
        reporter: u32,
        /// Per-collector opinions as `f64::to_bits` values.
        scores: Vec<u64>,
    },
    /// Reliable-delivery envelope: `inner` carried under an ack token.
    /// The receiver acks `token` back to the sender on every copy (so
    /// retransmissions re-ack) and dispatches `inner` exactly as if it
    /// had arrived bare; duplicate suppression happens downstream
    /// (sequenced inboxes, block serials).
    Reliable {
        /// Token identifying the tracked send at the sender.
        token: u64,
        /// The wrapped protocol message.
        inner: Box<ProtocolMsg>,
    },
    /// Acknowledgement of a [`ProtocolMsg::Reliable`] delivery.
    Ack {
        /// The token being acknowledged.
        token: u64,
    },
    /// Driver → governor: external evidence reveals an unchecked
    /// transaction's real status (the reveal policy of Theorem 1).
    Reveal {
        /// The revealed transaction.
        tx: TxId,
        /// Its ground-truth validity.
        valid: bool,
    },
}

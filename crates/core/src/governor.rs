//! The governor role (§3.4 — Processing phase).
//!
//! Implements, per governor:
//!
//! - **Transaction screening** (Algorithm 2): per-transaction Δ aggregation
//!   timers, the weighted source draw, the `1 − f·Pr` validation coin,
//!   recording of checked-valid / unchecked transactions;
//! - **Reputation updating** (Algorithm 3): forgery (case 1), checked
//!   (case 2) and revealed-unchecked (case 3) updates on its local
//!   [`ReputationTable`];
//! - **Argue handling** with the `U` latency bound (§3.1/§4.2);
//! - **PoS-VRF leader election** message exchange and **block
//!   proposal/adoption** with chain-integrity checks;
//! - **Revenue distribution** to collectors when leading (§3.4.3);
//! - Loss accounting for the regret experiments (Theorems 1 and 4).

use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::rc::Rc;

use prb_consensus::election::{elect_with_pool, ElectionClaim};
use prb_consensus::stake::{StakeTable, StakeTransfer};
use prb_consensus::verify_pool::VerifyPool;
use prb_crypto::identity::NodeId;
use prb_crypto::signer::{KeyPair, PublicKey, Sig};
use prb_ledger::block::{Block, BlockEntry, Verdict};
use prb_ledger::chain::Chain;
use prb_ledger::oracle::ValidityOracle;
use prb_ledger::transaction::{Label, LabeledTx, SignedTx, TxId};
use prb_net::message::{Envelope, NodeIdx, TimerId};
use prb_net::order::{ChannelId, OrderedInbox};
use prb_net::sim::Context;
use prb_net::time::SimDuration;
use prb_net::topology::Topology;
use prb_obs::{phases, EventKind as ObsEvent, Obs, ObsHandle, Span};
use prb_reputation::screening::{screen, Report};
use prb_reputation::update::{RevealedBehaviour, RevealedReport};
use prb_reputation::{revenue, ReputationTable};

use crate::config::{GovernorMode, ProtocolConfig};
use crate::metrics::GovernorMetrics;
use crate::msg::ProtocolMsg;

/// How a screened transaction was resolved locally.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Outcome {
    /// Validated by this governor; ground truth attached.
    Checked {
        /// The validation result.
        valid: bool,
    },
    /// Skipped validation; recorded under the drawn label.
    Unchecked {
        /// The label the block records.
        recorded: Label,
        /// Index in this provider's unchecked sequence (for the U bound).
        index: u64,
    },
}

/// Everything the governor remembers about one transaction.
#[derive(Clone, Debug)]
struct TxRecord {
    ltx: LabeledTx,
    provider: u32,
    reports: Vec<(u32, Label)>,
    outcome: Outcome,
}

/// A transaction still inside its Δ aggregation window.
/// Entry cap for the provider-signature memo; the map is cleared when it
/// fills. 8192 entries (~100 bytes each) keep the governor's footprint
/// bounded however long the run.
const SIG_MEMO_MAX: usize = 8192;

#[derive(Clone, Debug)]
struct PendingTx {
    ltx: LabeledTx,
    provider: u32,
    reports: Vec<(u32, Label)>,
    /// The provider signature each reporter's copy carried. Copies share
    /// the tx id (it binds the signed payload) but a malicious relay can
    /// attach a different signature, so verdicts are per copy.
    sigs: Vec<(u32, Sig)>,
}

/// Governor actor state.
pub struct GovernorNode {
    index: u32,
    key: KeyPair,
    cfg: ProtocolConfig,
    topology: Rc<Topology>,
    oracle: Rc<RefCell<ValidityOracle>>,
    /// Network index of governor 0 (governors are contiguous).
    governor_base: NodeIdx,
    collector_pks: Vec<PublicKey>,
    provider_pks: Vec<PublicKey>,
    governor_pks: Vec<PublicKey>,
    stake_table: StakeTable,
    reputation: ReputationTable,
    chain: Chain,
    inbox: OrderedInbox<LabeledTx>,
    pending: HashMap<TxId, PendingTx>,
    timers: HashMap<TimerId, TxId>,
    history: HashMap<TxId, TxRecord>,
    revealed: HashSet<TxId>,
    unchecked_counter: HashMap<u32, u64>,
    /// Screened entries awaiting inclusion in a block.
    ready_entries: Vec<BlockEntry>,
    /// Accepted argues awaiting re-recording.
    argued_entries: Vec<BlockEntry>,
    /// Blocks that arrived ahead of a gap, parked until sync completes.
    future_blocks: Vec<Block>,
    round: u64,
    claims: Vec<ElectionClaim>,
    leader: Option<u32>,
    metrics: GovernorMetrics,
    obs: ObsHandle,
    /// Memoized provider-signature verdicts, keyed by
    /// `(provider, tx id, signature)`.
    sig_memo: HashMap<(u32, TxId, Sig), bool>,
    /// Provider signatures awaiting the next batched drain: copies whose
    /// verdict the memo does not know yet, as `(provider, tx id,
    /// signature, signed bytes)`.
    verify_queue: Vec<(u32, TxId, Sig, Vec<u8>)>,
    /// Dedupe set over the queue's `(provider, tx id, signature)` keys.
    queued: HashSet<(u32, TxId, Sig)>,
    /// Drains accumulated verifications as RLC batches, optionally across
    /// worker threads (`ProtocolConfig::verify_threads`).
    verify_pool: VerifyPool,
    /// Open per-transaction Δ-window screening spans.
    screen_spans: HashMap<TxId, Span>,
    /// Screening tick of still-unchecked transactions (reveal/argue spans).
    screened_at: HashMap<TxId, u64>,
    election_span: Option<Span>,
    proposal_span: Option<Span>,
    commit_span: Option<Span>,
}

impl std::fmt::Debug for GovernorNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GovernorNode")
            .field("index", &self.index)
            .field("round", &self.round)
            .field("height", &self.chain.height())
            .finish_non_exhaustive()
    }
}

impl GovernorNode {
    /// Creates governor `index`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        index: u32,
        key: KeyPair,
        cfg: ProtocolConfig,
        topology: Rc<Topology>,
        oracle: Rc<RefCell<ValidityOracle>>,
        governor_base: NodeIdx,
        collector_pks: Vec<PublicKey>,
        provider_pks: Vec<PublicKey>,
        governor_pks: Vec<PublicKey>,
    ) -> Self {
        let n = cfg.collectors as usize;
        let s = cfg.s() as usize;
        let stake_table = StakeTable::uniform(cfg.governors as usize, cfg.stake_per_governor);
        let verify_pool = VerifyPool::new(cfg.verify_threads);
        GovernorNode {
            index,
            key,
            reputation: ReputationTable::new(n, s, cfg.reputation),
            chain: Chain::new(b"prb-chain", cfg.b_limit),
            metrics: GovernorMetrics::new(n),
            cfg,
            topology,
            oracle,
            governor_base,
            collector_pks,
            provider_pks,
            governor_pks,
            stake_table,
            inbox: OrderedInbox::new(),
            pending: HashMap::new(),
            timers: HashMap::new(),
            history: HashMap::new(),
            revealed: HashSet::new(),
            unchecked_counter: HashMap::new(),
            ready_entries: Vec::new(),
            argued_entries: Vec::new(),
            future_blocks: Vec::new(),
            round: 0,
            claims: Vec::new(),
            leader: None,
            obs: Obs::off(),
            sig_memo: HashMap::new(),
            verify_queue: Vec::new(),
            queued: HashSet::new(),
            verify_pool,
            screen_spans: HashMap::new(),
            screened_at: HashMap::new(),
            election_span: None,
            proposal_span: None,
            commit_span: None,
        }
    }

    /// Installs an observability hub (defaults to [`Obs::off`]); the
    /// governor then emits `gov.*` events and election / proposal /
    /// screening / commit / reveal / argue phase spans.
    pub fn set_obs(&mut self, obs: ObsHandle) {
        self.obs = obs;
    }

    fn net_idx(&self) -> u64 {
        (self.governor_base + self.index as usize) as u64
    }

    /// The governor's index.
    pub fn index(&self) -> u32 {
        self.index
    }

    /// The governor's local copy of the ledger.
    pub fn chain(&self) -> &Chain {
        &self.chain
    }

    /// The governor's reputation table.
    pub fn reputation(&self) -> &ReputationTable {
        &self.reputation
    }

    /// Accumulated metrics.
    pub fn metrics(&self) -> &GovernorMetrics {
        &self.metrics
    }

    /// The leader this governor elected for the current round.
    pub fn current_leader(&self) -> Option<u32> {
        self.leader
    }

    /// The governor's view of the stake distribution.
    pub fn stake_table(&self) -> &StakeTable {
        &self.stake_table
    }

    /// Transaction ids currently buffered for inclusion (diagnostics).
    pub fn ready_tx_ids(&self) -> Vec<TxId> {
        self.ready_entries.iter().map(|e| e.tx.id()).collect()
    }

    /// Number of transactions still inside their Δ window (diagnostics).
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    fn broadcast_governors(
        &self,
        ctx: &mut Context<'_, ProtocolMsg>,
        kind: &'static str,
        size: usize,
        msg: &ProtocolMsg,
    ) {
        for g in 0..self.cfg.governors as usize {
            let peer = self.governor_base + g;
            if peer != ctx.self_idx() {
                ctx.send_sized(peer, kind, size, msg.clone());
            }
        }
    }

    /// Handles a delivered message.
    pub fn on_message(&mut self, env: Envelope<ProtocolMsg>, ctx: &mut Context<'_, ProtocolMsg>) {
        match env.payload {
            ProtocolMsg::StartRound { round } => self.on_start_round(round, ctx),
            ProtocolMsg::Election { round, claim } if round == self.round => {
                self.claims.push(claim);
                if self.claims.len() == self.cfg.governors as usize {
                    self.run_election(ctx.now().ticks());
                }
            }
            ProtocolMsg::TxUpload { seq, ltx } => {
                let channel = ChannelId(ltx.collector.index as u64);
                for ltx in self.inbox.push(channel, seq, ltx) {
                    self.on_upload(ltx, ctx);
                }
            }
            ProtocolMsg::ProposeBlock { round } => self.on_propose(round, ctx),
            ProtocolMsg::BlockProposal(block) => self.on_block(block, ctx),
            ProtocolMsg::SyncRequest { have } => self.on_sync_request(have, env.from, ctx),
            ProtocolMsg::SyncResponse { blocks } => {
                self.on_sync_response(blocks, ctx.now().ticks());
            }
            ProtocolMsg::Argue { tx, .. } => self.on_argue(tx, ctx),
            ProtocolMsg::StakeTransfer(transfer) => self.on_stake_transfer(transfer, ctx),
            ProtocolMsg::Reveal { tx, valid } => self.on_reveal(tx, valid, ctx.now().ticks()),
            _ => {}
        }
    }

    /// Handles a Δ aggregation timer.
    pub fn on_timer(&mut self, timer: TimerId, ctx: &mut Context<'_, ProtocolMsg>) {
        if let Some(tx) = self.timers.remove(&timer) {
            self.screen_tx(tx, ctx);
        }
    }

    fn on_start_round(&mut self, round: u64, ctx: &mut Context<'_, ProtocolMsg>) {
        self.round = round;
        self.claims.clear();
        self.leader = None;
        let now = ctx.now().ticks();
        self.election_span = Some(Span::begin(phases::ELECTION, now));
        self.proposal_span = Some(Span::begin(phases::PROPOSAL, now));
        self.commit_span = Some(Span::begin(phases::COMMIT, now));
        let claim = ElectionClaim::compute(
            b"prb-chain",
            round,
            self.index,
            self.stake_table.stake(self.index).unwrap_or(0),
            &self.key,
        );
        if let Some(claim) = claim {
            self.claims.push(claim.clone());
            self.broadcast_governors(
                ctx,
                "election-claim",
                96,
                &ProtocolMsg::Election { round, claim },
            );
        }
    }

    fn run_election(&mut self, now: u64) {
        let (result, _rejected) = elect_with_pool(
            b"prb-chain",
            self.round,
            &self.claims,
            self.stake_table.stakes(),
            &self.governor_pks,
            &self.verify_pool,
        );
        self.leader = result.map(|r| r.leader);
        if let Some(leader) = self.leader {
            self.obs.emit(
                now,
                self.net_idx(),
                ObsEvent::ElectionDecided {
                    leader: leader as u64,
                    claims: self.claims.len() as u64,
                },
            );
        }
        if let Some(span) = self.election_span.take() {
            self.obs.end_span(span, now, self.net_idx());
        }
    }

    fn on_upload(&mut self, ltx: LabeledTx, ctx: &mut Context<'_, ProtocolMsg>) {
        let collector = ltx.collector.index;
        // Unknown collector identity: drop silently (cannot attribute).
        let Some(collector_pk) = self.collector_pks.get(collector as usize) else {
            return;
        };
        if !ltx.verify_collector(collector_pk) {
            return; // not actually from that collector
        }
        // The paper's verify(c, Tx): the provider must be linked with the
        // collector, and the inner provider signature must be genuine. The
        // structural half is checked here; the signature check is deferred
        // to the Δ-window drain so a round's copies verify as one batch —
        // unless the memo already knows this copy's verdict.
        let provider = ltx.tx.payload.provider.index;
        let structural_ok = ltx.tx.payload.provider.role == prb_crypto::identity::Role::Provider
            && (provider as usize) < self.provider_pks.len()
            && self.topology.linked(provider, collector);
        if !structural_ok {
            // Case 1: a mis-attributed transaction.
            self.record_forgery(collector, ctx.now().ticks());
            return;
        }
        let id = ltx.tx.id();
        let memo_key = (provider, id, ltx.tx.provider_sig.clone());
        let verdict = self.sig_memo.get(&memo_key).copied();
        if verdict.is_some() {
            self.metrics.sig_memo_hits += 1;
            if self.obs.is_enabled() {
                self.obs.metrics().inc("gov.sig_memo_hit");
            }
        }
        if verdict == Some(false) {
            // Case 1: a known-forged provider signature.
            self.record_forgery(collector, ctx.now().ticks());
            return;
        }
        if let Some(pending) = self.pending.get_mut(&id) {
            if pending.reports.iter().any(|(c, _)| *c == collector) {
                // Duplicate copy from a reporter already in the window: no
                // report rides on it, so nothing joins the batch — but a
                // forged-signature probe is still case 1, checked eagerly.
                if verdict.is_none() && !self.verify_provider_sig(provider, &ltx.tx) {
                    self.record_forgery(collector, ctx.now().ticks());
                }
                return;
            }
            if verdict.is_none() {
                Self::enqueue_verify(&mut self.verify_queue, &mut self.queued, memo_key, &ltx.tx);
            }
            pending.reports.push((collector, ltx.label));
            pending.sigs.push((collector, ltx.tx.provider_sig));
            return;
        }
        if let Some(record) = self.history.get_mut(&id) {
            // Late report (after screening): no batch is pending for it, so
            // resolve the signature now (the memo almost always answers —
            // screening verified this id already).
            if record.reports.iter().any(|(c, _)| *c == collector) {
                return;
            }
            if verdict.is_none() && !self.verify_provider_sig(provider, &ltx.tx) {
                self.record_forgery(collector, ctx.now().ticks());
                return;
            }
            let record = self.history.get_mut(&id).expect("checked above");
            record.reports.push((collector, ltx.label));
            match record.outcome {
                Outcome::Checked { valid } => {
                    let correct = ltx.label.is_valid() == valid;
                    self.reputation
                        .record_checked(&[(collector as usize, correct)]);
                }
                Outcome::Unchecked { .. } => {} // counted at reveal
            }
            return;
        }
        // First copy: open the Δ window (starttime(tx, Δ)).
        if verdict.is_none() {
            Self::enqueue_verify(&mut self.verify_queue, &mut self.queued, memo_key, &ltx.tx);
        }
        let timer = ctx.set_timer(SimDuration(self.cfg.aggregation_window()));
        self.timers.insert(timer, id);
        self.screen_spans
            .insert(id, Span::begin(phases::SCREENING, ctx.now().ticks()));
        self.pending.insert(
            id,
            PendingTx {
                provider,
                reports: vec![(collector, ltx.label)],
                sigs: vec![(collector, ltx.tx.provider_sig.clone())],
                ltx,
            },
        );
    }

    /// Records a case-1 forgery against `collector`.
    fn record_forgery(&mut self, collector: u32, now: u64) {
        self.reputation.record_forgery(collector as usize);
        self.metrics.forged_detected += 1;
        self.obs.emit(
            now,
            self.net_idx(),
            ObsEvent::ForgeryDetected {
                collector: collector as u64,
            },
        );
    }

    /// Queues a provider signature for the next batched drain (deduped).
    fn enqueue_verify(
        queue: &mut Vec<(u32, TxId, Sig, Vec<u8>)>,
        queued: &mut HashSet<(u32, TxId, Sig)>,
        key: (u32, TxId, Sig),
        tx: &SignedTx,
    ) {
        if queued.insert(key.clone()) {
            queue.push((key.0, key.1, key.2, tx.signing_bytes()));
        }
    }

    /// Drains the verification queue through the pool as one batch and
    /// folds the verdicts into the signature memo.
    fn drain_verify_queue(&mut self) {
        if self.verify_queue.is_empty() {
            return;
        }
        let queue = std::mem::take(&mut self.verify_queue);
        self.queued.clear();
        if self.obs.is_enabled() {
            self.obs
                .metrics()
                .observe("crypto.batch.size", queue.len() as u64);
        }
        let items: Vec<(&[u8], &Sig, &PublicKey)> = queue
            .iter()
            .map(|(p, _, sig, msg)| (&msg[..], sig, &self.provider_pks[*p as usize]))
            .collect();
        let verdicts = self.verify_pool.verify_sigs(&items);
        self.metrics.sig_memo_misses += queue.len() as u64;
        if self.obs.is_enabled() {
            self.obs
                .metrics()
                .add("gov.sig_memo_miss", queue.len() as u64);
        }
        for ((p, id, sig, _), ok) in queue.into_iter().zip(verdicts) {
            if self.sig_memo.len() >= SIG_MEMO_MAX {
                self.sig_memo.clear();
            }
            self.sig_memo.insert((p, id, sig), ok);
        }
    }

    fn screen_tx(&mut self, id: TxId, ctx: &mut Context<'_, ProtocolMsg>) {
        let Some(mut pending) = self.pending.remove(&id) else {
            return;
        };
        // Settle every provider signature queued during the Δ window in
        // one pooled batch, then attribute forgeries per reporting copy.
        self.drain_verify_queue();
        let provider = pending.provider;
        let signed_bytes = pending.ltx.tx.signing_bytes();
        let mut ok_reports = Vec::with_capacity(pending.reports.len());
        let mut good_sig: Option<Sig> = None;
        for (collector, label) in pending.reports.drain(..) {
            let sig = pending
                .sigs
                .iter()
                .find(|(c, _)| *c == collector)
                .map(|(_, s)| s.clone())
                .expect("every reporter recorded a signature");
            let key = (provider, id, sig.clone());
            let ok = match self.sig_memo.get(&key) {
                Some(&ok) => ok,
                None => {
                    // The memo filled and was cleared between the drain and
                    // this lookup; verify the straggler inline.
                    let ok = self.provider_pks[provider as usize].verify(&signed_bytes, &sig);
                    self.sig_memo.insert(key, ok);
                    ok
                }
            };
            if ok {
                if good_sig.is_none() {
                    good_sig = Some(sig);
                }
                ok_reports.push((collector, label));
            } else {
                // Case 1, attributed at screen time: this reporter's copy
                // carried a forged provider signature.
                self.record_forgery(collector, ctx.now().ticks());
            }
        }
        if ok_reports.is_empty() {
            // Every copy was forged: nothing to screen (and no screening
            // randomness is consumed, matching the eager-verification
            // behaviour where such a window never opened).
            self.screen_spans.remove(&id);
            return;
        }
        // If the first-arrived copy carried a forged signature, re-home the
        // buffered transaction onto a verified one so block entries never
        // embed a bad signature.
        if let Some(good) = good_sig {
            if pending.ltx.tx.provider_sig != good {
                pending.ltx.tx.provider_sig = good;
            }
        }
        let mut reports = ok_reports;
        reports.sort_by_key(|(c, _)| *c);
        let screen_reports: Vec<Report> = reports
            .iter()
            .map(|(c, label)| {
                let slot = self
                    .topology
                    .provider_slot(*c, provider)
                    .expect("reporter is linked");
                Report {
                    collector: *c,
                    labeled_valid: label.is_valid(),
                    weight: self.reputation.weight(*c as usize, slot),
                }
            })
            .collect();
        let outcome = screen(&screen_reports, self.cfg.reputation.f, ctx.rng())
            .expect("at least one report exists");
        let check = match self.cfg.governor_mode {
            GovernorMode::Reputation => outcome.check,
            GovernorMode::CheckAll => true,
            GovernorMode::CheckNone => false,
        };
        let drawn_label = if screen_reports[outcome.drawn].labeled_valid {
            Label::Valid
        } else {
            Label::Invalid
        };
        self.metrics.screened += 1;
        let now = ctx.now().ticks();
        self.obs.emit(
            now,
            self.net_idx(),
            ObsEvent::TxScreened {
                drawn: screen_reports[outcome.drawn].collector as u64,
                checked: check,
                label_valid: drawn_label.is_valid(),
            },
        );
        if let Some(span) = self.screen_spans.remove(&id) {
            self.obs.end_span(span, now, self.net_idx());
        }

        if check {
            let valid = self.oracle.borrow().validate(id);
            self.metrics.validations += 1;
            self.metrics.checked += 1;
            // Case 2: every reporter's misreport counter moves.
            let case2: Vec<(usize, bool)> = reports
                .iter()
                .map(|(c, label)| (*c as usize, label.is_valid() == valid))
                .collect();
            self.reputation.record_checked(&case2);
            if valid {
                self.ready_entries.push(BlockEntry {
                    tx: pending.ltx.tx.clone(),
                    verdict: Verdict::CheckedValid,
                    reported_labels: label_pairs(&reports),
                });
            }
            self.history.insert(
                id,
                TxRecord {
                    ltx: pending.ltx,
                    provider,
                    reports,
                    outcome: Outcome::Checked { valid },
                },
            );
        } else {
            let counter = self.unchecked_counter.entry(provider).or_insert(0);
            let index = *counter;
            *counter += 1;
            self.metrics.unchecked += 1;
            self.screened_at.insert(id, now);
            let verdict = if drawn_label.is_valid() {
                Verdict::UncheckedValid
            } else {
                Verdict::UncheckedInvalid
            };
            self.ready_entries.push(BlockEntry {
                tx: pending.ltx.tx.clone(),
                verdict,
                reported_labels: label_pairs(&reports),
            });
            self.history.insert(
                id,
                TxRecord {
                    ltx: pending.ltx,
                    provider,
                    reports,
                    outcome: Outcome::Unchecked {
                        recorded: drawn_label,
                        index,
                    },
                },
            );
        }
    }

    fn on_propose(&mut self, round: u64, ctx: &mut Context<'_, ProtocolMsg>) {
        if self.leader.is_none() {
            // Missing claims (crashed governors): elect from what arrived.
            self.run_election(ctx.now().ticks());
        }
        if self.leader != Some(self.index) {
            return;
        }
        let _ = round;
        // Argued re-records first, then fresh screenings, capped by b_limit.
        let mut entries: Vec<BlockEntry> = Vec::new();
        let mut argued_rest = Vec::new();
        for e in self.argued_entries.drain(..) {
            if entries.len() < self.cfg.b_limit {
                entries.push(e);
            } else {
                argued_rest.push(e);
            }
        }
        self.argued_entries = argued_rest;
        let mut ready_rest = Vec::new();
        let mut ready: Vec<BlockEntry> = self.ready_entries.drain(..).collect();
        ready.sort_by_key(|e| e.tx.id());
        for e in ready {
            // Never re-record something already in the ledger (argue
            // re-records enter via argued_entries only).
            if self.chain.find_tx(e.tx.id()).is_some() {
                continue;
            }
            if entries.len() < self.cfg.b_limit {
                entries.push(e);
            } else {
                ready_rest.push(e);
            }
        }
        self.ready_entries = ready_rest;

        let block = Block::build(
            self.chain.height() + 1,
            entries,
            self.chain.latest().hash(),
            NodeId::governor(self.index),
            ctx.now().ticks(),
        );
        let size = 64 + 96 * block.tx_count();
        let now = ctx.now().ticks();
        self.obs.emit(
            now,
            self.net_idx(),
            ObsEvent::BlockProposed {
                serial: block.serial,
                entries: block.entries.len() as u64,
            },
        );
        if let Some(span) = self.proposal_span.take() {
            self.obs.end_span(span, now, self.net_idx());
        }
        self.pay_collectors(&block);
        match self.chain.append(block.clone()) {
            Ok(()) => {
                self.metrics.blocks_appended += 1;
                self.obs.emit(
                    now,
                    self.net_idx(),
                    ObsEvent::BlockCommitted {
                        serial: block.serial,
                        entries: block.entries.len() as u64,
                    },
                );
                if let Some(span) = self.commit_span.take() {
                    self.obs.end_span(span, now, self.net_idx());
                }
            }
            Err(_) => self.metrics.append_failures += 1,
        }
        self.metrics.rounds_led += 1;
        self.broadcast_governors(
            ctx,
            "block-proposal",
            size,
            &ProtocolMsg::BlockProposal(block),
        );
    }

    fn pay_collectors(&mut self, block: &Block) {
        let valid = block
            .entries
            .iter()
            .filter(|e| e.verdict.counts_as_valid())
            .count();
        if valid == 0 {
            return;
        }
        let profit = valid as f64 * self.cfg.profit_per_tx;
        let logs = self.reputation.log_revenue_weights();
        for (c, share) in revenue::distribute(profit, &logs).into_iter().enumerate() {
            self.metrics.revenue_paid[c] += share;
        }
    }

    fn on_block(&mut self, block: Block, ctx: &mut Context<'_, ProtocolMsg>) {
        if block.leader == NodeId::governor(self.index) {
            return; // own proposal echoed back (should not happen)
        }
        // Gap: we missed blocks (e.g. while crashed). Park the block and
        // ask its proposer to backfill.
        if block.serial > self.chain.height() + 1 {
            let proposer = block.leader.index;
            if !self.future_blocks.iter().any(|b| b.serial == block.serial) {
                self.future_blocks.push(block);
            }
            let have = self.chain.height();
            ctx.send_sized(
                self.governor_base + proposer as usize,
                "sync-request",
                16,
                ProtocolMsg::SyncRequest { have },
            );
            return;
        }
        if self.cfg.verify_blocks && !self.entries_authentic(&block) {
            self.metrics.append_failures += 1;
            return;
        }
        self.append_and_clean(block, ctx.now().ticks());
    }

    /// Paranoid mode: every entry must carry a genuine provider signature
    /// from a provider linked with at least one reporting collector whose
    /// own signature is also genuine... the provider signature alone
    /// suffices for Almost No Creation, so that is what is checked (the
    /// reported labels are the leader's claim and feed only revenue).
    ///
    /// Signatures the memo does not already know are verified as one
    /// pooled batch instead of entry by entry.
    fn entries_authentic(&mut self, block: &Block) -> bool {
        for e in &block.entries {
            let p = e.tx.payload.provider.index;
            if e.tx.payload.provider.role != prb_crypto::identity::Role::Provider
                || (p as usize) >= self.provider_pks.len()
            {
                return false;
            }
        }
        // Batch every signature the memo cannot answer.
        let mut fresh: Vec<(u32, TxId, Sig, Vec<u8>)> = Vec::new();
        let mut seen: HashSet<(u32, TxId, Sig)> = HashSet::new();
        for e in &block.entries {
            let p = e.tx.payload.provider.index;
            let key = (p, e.tx.id(), e.tx.provider_sig.clone());
            if !self.sig_memo.contains_key(&key) && seen.insert(key.clone()) {
                fresh.push((key.0, key.1, key.2, e.tx.signing_bytes()));
            }
        }
        if !fresh.is_empty() {
            if self.obs.is_enabled() {
                self.obs
                    .metrics()
                    .observe("crypto.batch.size", fresh.len() as u64);
                self.obs
                    .metrics()
                    .add("gov.sig_memo_miss", fresh.len() as u64);
            }
            self.metrics.sig_memo_misses += fresh.len() as u64;
            let items: Vec<(&[u8], &Sig, &PublicKey)> = fresh
                .iter()
                .map(|(p, _, sig, msg)| (&msg[..], sig, &self.provider_pks[*p as usize]))
                .collect();
            let verdicts = self.verify_pool.verify_sigs(&items);
            for ((p, id, sig, _), ok) in fresh.into_iter().zip(verdicts) {
                if self.sig_memo.len() >= SIG_MEMO_MAX {
                    self.sig_memo.clear();
                }
                self.sig_memo.insert((p, id, sig), ok);
            }
        }
        block.entries.iter().all(|e| {
            let p = e.tx.payload.provider.index;
            self.verify_provider_sig(p, &e.tx)
        })
    }

    /// Memoized provider-signature verification.
    ///
    /// The same signed transaction is verified at upload and then again,
    /// in paranoid mode, for every governor that re-checks the committed
    /// block carrying it. The verdict is a pure function of the provider's
    /// key and `(tx id, signature)` — the id hashes every signed field
    /// (provider, nonce, timestamp, data) — so it is memoized, turning the
    /// re-checks into map lookups. A forged signature is memoized as
    /// `false` and stays `false`: probes cannot flip a cached verdict.
    fn verify_provider_sig(&mut self, provider: u32, tx: &SignedTx) -> bool {
        let key = (provider, tx.id(), tx.provider_sig.clone());
        if let Some(&ok) = self.sig_memo.get(&key) {
            self.metrics.sig_memo_hits += 1;
            if self.obs.is_enabled() {
                self.obs.metrics().inc("gov.sig_memo_hit");
            }
            return ok;
        }
        let ok = tx.verify(&self.provider_pks[provider as usize]);
        self.metrics.sig_memo_misses += 1;
        if self.obs.is_enabled() {
            self.obs.metrics().inc("gov.sig_memo_miss");
        }
        if self.sig_memo.len() >= SIG_MEMO_MAX {
            self.sig_memo.clear();
        }
        self.sig_memo.insert(key, ok);
        ok
    }

    fn append_and_clean(&mut self, block: Block, now: u64) {
        let included: HashSet<TxId> = block.entries.iter().map(|e| e.tx.id()).collect();
        let (serial, entries) = (block.serial, block.entries.len() as u64);
        match self.chain.append(block) {
            Ok(()) => {
                self.metrics.blocks_appended += 1;
                self.obs.emit(
                    now,
                    self.net_idx(),
                    ObsEvent::BlockCommitted { serial, entries },
                );
                if let Some(span) = self.commit_span.take() {
                    self.obs.end_span(span, now, self.net_idx());
                }
            }
            Err(_) => {
                self.metrics.append_failures += 1;
                return;
            }
        }
        // Drop local buffers covered by the leader's block.
        self.ready_entries
            .retain(|e| !included.contains(&e.tx.id()));
        self.argued_entries
            .retain(|e| !included.contains(&e.tx.id()));
    }

    fn on_sync_request(
        &mut self,
        have: u64,
        requester: NodeIdx,
        ctx: &mut Context<'_, ProtocolMsg>,
    ) {
        if have >= self.chain.height() {
            return; // nothing to offer
        }
        let blocks: Vec<Block> = ((have + 1)..=self.chain.height())
            .filter_map(|s| self.chain.retrieve(s).cloned())
            .collect();
        let size = 64 + 96 * blocks.iter().map(Block::tx_count).sum::<usize>();
        ctx.send_sized(
            requester,
            "sync-response",
            size,
            ProtocolMsg::SyncResponse { blocks },
        );
        self.metrics.sync_served += 1;
    }

    fn on_sync_response(&mut self, blocks: Vec<Block>, now: u64) {
        for block in blocks {
            if block.serial == self.chain.height() + 1 {
                self.append_and_clean(block, now);
                self.metrics.sync_applied += 1;
            }
        }
        // Drain any parked blocks that now fit.
        self.future_blocks.sort_by_key(|b| b.serial);
        let parked = std::mem::take(&mut self.future_blocks);
        for block in parked {
            if block.serial == self.chain.height() + 1 {
                self.append_and_clean(block, now);
            } else if block.serial > self.chain.height() + 1 {
                self.future_blocks.push(block);
            }
        }
    }

    /// Applies a signed stake transfer broadcast during the round.
    ///
    /// Every governor receives the same transfer set (atomic broadcast)
    /// and applies the same validation deterministically, so the stake
    /// tables stay in agreement; the 3-step signed stake-block protocol
    /// that certifies the resulting state is exercised separately in
    /// `prb-consensus` (this path keeps the election weights live).
    fn on_stake_transfer(&mut self, transfer: StakeTransfer, _ctx: &mut Context<'_, ProtocolMsg>) {
        let Some(sender_pk) = self.governor_pks.get(transfer.from as usize) else {
            return;
        };
        if !transfer.verify(sender_pk) {
            return;
        }
        let _ = self.stake_table.apply(&transfer);
    }

    /// Stamps an `ArgueRejected` event (provider resolved from history
    /// where possible).
    fn emit_argue_rejected(&self, now: u64, id: TxId, reason: &'static str) {
        let provider = self
            .history
            .get(&id)
            .map_or(u64::MAX, |r| r.provider as u64);
        self.obs.emit(
            now,
            self.net_idx(),
            ObsEvent::ArgueRejected { provider, reason },
        );
    }

    fn on_argue(&mut self, id: TxId, ctx: &mut Context<'_, ProtocolMsg>) {
        let now = ctx.now().ticks();
        if self.revealed.contains(&id) {
            self.emit_argue_rejected(now, id, "duplicate");
            return;
        }
        let Some(record) = self.history.get(&id) else {
            self.emit_argue_rejected(now, id, "unknown-tx");
            return; // never screened here
        };
        let Outcome::Unchecked {
            recorded: Label::Invalid,
            index,
        } = record.outcome
        else {
            self.emit_argue_rejected(now, id, "not-unchecked");
            return; // only invalid-unchecked records can be argued
        };
        let provider = record.provider;
        let current = self.unchecked_counter.get(&provider).copied().unwrap_or(0);
        if current.saturating_sub(index) > self.cfg.argue_limit_u {
            // Buried under more than U unchecked transactions: permanently
            // invalid (§3.1).
            self.metrics.argue_rejected += 1;
            self.emit_argue_rejected(now, id, "bound");
            if self.oracle.borrow().peek(id) == Some(true) {
                self.metrics.lost_valid += 1;
            }
            return;
        }
        // "Governors will immediately verify this transaction."
        let valid = self.oracle.borrow().validate(id);
        self.metrics.validations += 1;
        self.metrics.argue_accepted += 1;
        self.obs.emit(
            now,
            self.net_idx(),
            ObsEvent::ArgueAccepted {
                provider: provider as u64,
            },
        );
        if let Some(&t0) = self.screened_at.get(&id) {
            self.obs
                .end_span(Span::begin(phases::ARGUE, t0), now, self.net_idx());
        }
        if valid {
            let record = &self.history[&id];
            self.argued_entries.push(BlockEntry {
                tx: record.ltx.tx.clone(),
                verdict: Verdict::ArguedValid,
                reported_labels: label_pairs(&record.reports),
            });
        }
        self.reveal_internal(id, valid, now);
    }

    fn on_reveal(&mut self, id: TxId, valid: bool, now: u64) {
        if self.revealed.contains(&id) {
            return;
        }
        let Some(record) = self.history.get(&id) else {
            return;
        };
        if !matches!(record.outcome, Outcome::Unchecked { .. }) {
            return; // checked transactions are already settled
        }
        self.reveal_internal(id, valid, now);
    }

    /// Case 3 plus loss accounting for a now-revealed unchecked tx.
    fn reveal_internal(&mut self, id: TxId, valid: bool, now: u64) {
        self.revealed.insert(id);
        let record = self.history[&id].clone();
        let provider = record.provider;
        let mut revealed_reports = Vec::new();
        let mut involvements = Vec::new();
        let mut reporters = HashSet::new();
        for (c, label) in &record.reports {
            reporters.insert(*c);
            let slot = self
                .topology
                .provider_slot(*c, provider)
                .expect("reporter is linked");
            let behaviour = if label.is_valid() == valid {
                RevealedBehaviour::Correct
            } else {
                RevealedBehaviour::Wrong
            };
            involvements.push((
                *c,
                if behaviour == RevealedBehaviour::Wrong {
                    2.0
                } else {
                    0.0
                },
            ));
            revealed_reports.push(RevealedReport {
                collector: *c as usize,
                provider_slot: slot,
                behaviour,
            });
        }
        for &c in self.topology.collectors_of(provider) {
            if !reporters.contains(&c) {
                let slot = self
                    .topology
                    .provider_slot(c, provider)
                    .expect("linked by construction");
                involvements.push((c, 1.0));
                revealed_reports.push(RevealedReport {
                    collector: c as usize,
                    provider_slot: slot,
                    behaviour: RevealedBehaviour::Missed,
                });
            }
        }
        let out = self.reputation.record_revealed(&revealed_reports);
        let recorded_wrong = match record.outcome {
            Outcome::Unchecked { recorded, .. } => recorded.is_valid() != valid,
            Outcome::Checked { .. } => false,
        };
        self.obs.emit(
            now,
            self.net_idx(),
            ObsEvent::Revealed {
                valid,
                verdict_correct: !recorded_wrong,
            },
        );
        if let Some(t0) = self.screened_at.remove(&id) {
            self.obs
                .end_span(Span::begin(phases::REVEAL, t0), now, self.net_idx());
        }
        self.metrics
            .record_reveal(provider, out.l_tx, recorded_wrong, involvements);
    }
}

fn label_pairs(reports: &[(u32, Label)]) -> Vec<(NodeId, Label)> {
    reports
        .iter()
        .map(|(c, l)| (NodeId::collector(*c), *l))
        .collect()
}

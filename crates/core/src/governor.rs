//! The governor role (§3.4 — Processing phase).
//!
//! Implements, per governor:
//!
//! - **Transaction screening** (Algorithm 2): per-transaction Δ aggregation
//!   timers, the weighted source draw, the `1 − f·Pr` validation coin,
//!   recording of checked-valid / unchecked transactions;
//! - **Reputation updating** (Algorithm 3): forgery (case 1), checked
//!   (case 2) and revealed-unchecked (case 3) updates on its local
//!   [`ReputationTable`];
//! - **Argue handling** with the `U` latency bound (§3.1/§4.2);
//! - **PoS-VRF leader election** message exchange and **block
//!   proposal/adoption** with chain-integrity checks;
//! - **Revenue distribution** to collectors when leading (§3.4.3);
//! - Loss accounting for the regret experiments (Theorems 1 and 4).

use std::cell::RefCell;
use std::collections::{HashMap, HashSet, VecDeque};
use std::rc::Rc;

use prb_consensus::checkpoint::{
    quorum, CheckpointCert, CheckpointError, CheckpointShare, CheckpointState, CollectorSnapshot,
};
use prb_consensus::election::{elect_excluding, ElectionClaim};
use prb_consensus::evidence::{EquivocationEvidence, SignedHeader};
use prb_consensus::membership::{
    EpochLog, MemberRole, MembershipAction, MembershipCert, MembershipRequest, MembershipShare,
};
use prb_consensus::pipeline::{DeferItem, DeferStats, DeferredValidator, Ticket};
use prb_consensus::stake::{StakeTable, StakeTransfer};
use prb_consensus::verify_pool::VerifyPool;
use prb_crypto::identity::NodeId;
use prb_crypto::sha256::Digest;
use prb_crypto::signer::{KeyPair, PublicKey, Sig};
use prb_ledger::block::{Block, BlockEntry, Verdict};
use prb_ledger::chain::{Chain, ChainError};
use prb_ledger::oracle::ValidityOracle;
use prb_ledger::transaction::{Label, LabeledTx, SignedTx, TxId, TxPayload};
use prb_net::health::PeerHealth;
use prb_net::message::{Envelope, NodeIdx, TimerId};
use prb_net::order::{ChannelId, OrderedInbox};
use prb_net::retry::{ReliableSender, RetryConfig};
use prb_net::sim::Context;
use prb_net::time::{SimDuration, SimTime};
use prb_net::topology::Topology;
use prb_obs::{phases, EventKind as ObsEvent, Obs, ObsHandle, Span};
use prb_reputation::screening::{screen, Report};
use prb_reputation::update::{RevealedBehaviour, RevealedReport};
use prb_reputation::{revenue, ReputationTable, ReputationVector, TransitiveView};
use prb_store::{BlockStore, Recovered};

use crate::behavior::{ByzantineMode, GovernorProfile};
use crate::config::{GovernorMode, ProtocolConfig};
use crate::fasthash::{fx_map_seeded, fx_set_seeded, FastMap, FastSet};
use crate::metrics::GovernorMetrics;
use crate::msg::ProtocolMsg;

/// How a screened transaction was resolved locally.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Outcome {
    /// Validated by this governor; ground truth attached.
    Checked {
        /// The validation result.
        valid: bool,
    },
    /// Skipped validation; recorded under the drawn label.
    Unchecked {
        /// The label the block records.
        recorded: Label,
        /// Index in this provider's unchecked sequence (for the U bound).
        index: u64,
    },
}

/// Everything the governor remembers about one transaction.
#[derive(Clone, Debug)]
struct TxRecord {
    ltx: LabeledTx,
    provider: u32,
    reports: Vec<(u32, Label)>,
    /// Linked collectors that were not active members when the tx was
    /// screened. They owed no report, so a later reveal must not charge
    /// them a Missed loss — even if they have since (re)joined.
    absent: Vec<u32>,
    outcome: Outcome,
}

/// A transaction still inside its Δ aggregation window.
/// Entry cap for the provider-signature memo; the map is cleared when it
/// fills. 8192 entries (~100 bytes each) keep the governor's footprint
/// bounded however long the run.
const SIG_MEMO_MAX: usize = 8192;

/// Peer rotations before an anti-entropy sync round is abandoned (the
/// next observed gap re-triggers it).
const MAX_SYNC_ATTEMPTS: u32 = 8;

/// Distinct membership requests whose shares may buffer concurrently;
/// past this the governor ignores new digests (request-spam bound).
const MEMBER_SHARE_BUFFERS: usize = 64;

/// Mean-weight level at which a silence-decayed collector is proposed
/// for eviction (the configured `weight_floor` when it is higher).
const EVICTION_FLOOR: f64 = 1e-3;

/// Anti-entropy recovery status: crashed → recovering → synced.
///
/// A node cannot observe its own crash window; what it observes is the
/// *evidence* of one — a round-number gap or a block past the next
/// serial. Either moves it to `Recovering`, where it pages missing
/// blocks from a peer (rotating peers that do not answer) until it
/// reaches a peer's head, then returns to `Synced`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum SyncState {
    /// No known gap; the chain is believed current.
    Synced,
    /// Actively requesting missing block ranges.
    Recovering {
        /// Peer-rotation counter (resets on page progress).
        attempt: u32,
        /// Governor index currently being asked.
        peer: u32,
        /// Tick the gap was detected, for the recovery-time metric.
        since: u64,
    },
}

#[derive(Clone, Debug)]
struct PendingTx {
    ltx: LabeledTx,
    provider: u32,
    reports: Vec<(u32, Label)>,
    /// The provider signature each reporter's copy carried. Copies share
    /// the tx id (it binds the signed payload) but a malicious relay can
    /// attach a different signature, so verdicts are per copy.
    sigs: Vec<(u32, Sig)>,
}

/// A block this governor has *ordered* (appended to its chain) whose
/// entry signatures are still being verified in the background. The
/// block is *finalized* — uncontestable by deferred validation — only
/// once [`GovernorNode::settle_deferred_blocks`] checks the verdicts,
/// one serial behind; a failure aborts-and-repools (the block is popped,
/// its forged entries excised, the proposer convicted).
#[derive(Debug)]
struct DeferredBlock {
    serial: u64,
    proposer: u32,
    /// Hash at ordering time; a mismatch with the chain at settle time
    /// means the block was already displaced (fork contest, expulsion)
    /// and only the memo fold remains to do.
    block_hash: Digest,
    /// The proposer's signed header, kept for settle-time conviction.
    header: Option<SignedHeader>,
    /// Background batch over the memo-unknown entry signatures
    /// (`None` when the memo already knew every entry).
    ticket: Option<Ticket>,
    /// Memo keys of the submitted batch, in submission order.
    batch_keys: Vec<(u32, TxId, Sig)>,
    /// Every entry's `(provider, id, signature, signing bytes)` for the
    /// finality check (bytes kept so memo-evicted stragglers can be
    /// re-verified inline).
    entries: Vec<(u32, TxId, Sig, Vec<u8>)>,
}

/// An eagerly submitted screening batch: the validator ticket plus the
/// signature-memo keys its verdicts will settle into.
type ScreenBatch = (Ticket, Vec<(u32, TxId, Sig)>);

/// Pipelined-engine state (`ProtocolConfig::pipeline_depth > 0`).
#[derive(Debug)]
struct PipelineState {
    /// Asynchronous signature verifier shared by the screening and block
    /// deferral paths.
    validator: DeferredValidator,
    /// Outstanding screening batches as `(ticket, memo keys)`; submitted
    /// eagerly as uploads arrive, collected at the Δ-window drain.
    screen_batches: Vec<ScreenBatch>,
    /// Ordered-but-unfinalized blocks, oldest serial first.
    unfinalized: VecDeque<DeferredBlock>,
    /// Watermark of validator stats already exported to obs counters.
    exported: DeferStats,
}

/// Governor actor state.
pub struct GovernorNode {
    index: u32,
    key: KeyPair,
    cfg: ProtocolConfig,
    topology: Rc<Topology>,
    oracle: Rc<RefCell<ValidityOracle>>,
    /// Network index of governor 0 (governors are contiguous).
    governor_base: NodeIdx,
    collector_pks: Vec<PublicKey>,
    provider_pks: Vec<PublicKey>,
    /// Scale-mode signer pool: when `provider_pks` does not cover a
    /// provider index (interned providers carry no per-provider keypair),
    /// provider `p` resolves to `pk_pool[p % pool.len()]`. Empty outside
    /// the open-loop scale harness.
    pk_pool: Vec<PublicKey>,
    governor_pks: Vec<PublicKey>,
    stake_table: StakeTable,
    reputation: ReputationTable,
    chain: Chain,
    inbox: OrderedInbox<LabeledTx>,
    pending: FastMap<TxId, PendingTx>,
    /// Δ-window insertion order of `pending` ids, for deterministic
    /// oldest-first shedding when the pool hits
    /// [`ProtocolConfig::pending_capacity`]. May hold stale ids (screened
    /// transactions are not removed eagerly); compacted lazily.
    pending_order: VecDeque<TxId>,
    /// Largest `pending` population ever reached (bounded-memory assert).
    pending_high_water: usize,
    /// Transactions shed from the pending pool, oldest first.
    shed: u64,
    timers: FastMap<TimerId, TxId>,
    history: FastMap<TxId, TxRecord>,
    revealed: FastSet<TxId>,
    unchecked_counter: FastMap<u32, u64>,
    /// Screened entries awaiting inclusion in a block.
    ready_entries: Vec<BlockEntry>,
    /// Accepted argues awaiting re-recording.
    argued_entries: Vec<BlockEntry>,
    /// Blocks that arrived ahead of a gap, parked until sync completes.
    future_blocks: Vec<Block>,
    round: u64,
    claims: Vec<ElectionClaim>,
    leader: Option<u32>,
    /// This governor's own VRF claim for the current round, attached to
    /// its block proposal so peers can rank it during head-fork
    /// resolution.
    my_claim: Option<ElectionClaim>,
    /// Priority of the proposal that produced the chain head, as
    /// `(vrf_output, governor, round)` — the election's ordering key
    /// plus the round it was won in. `None` for settled heads (genesis,
    /// sync-applied blocks, or heads with a committed successor), which
    /// can never be displaced.
    head_priority: Option<(Digest, u32, u64)>,
    /// Serial of the lowest contiguous head block that is this
    /// governor's own self-proposal elected *without* the full claim
    /// set. Such blocks are provisional — the true winner's claim may
    /// have been lost in transit — and are rolled back when a rival
    /// proposal with a smaller election key arrives, when a successor
    /// built on a different head proves the network chose otherwise, or
    /// when recovery refetches the settled chain.
    provisional_base: Option<u64>,
    metrics: GovernorMetrics,
    obs: ObsHandle,
    /// Memoized provider-signature verdicts, keyed by
    /// `(provider, tx id, signature)`.
    sig_memo: FastMap<(u32, TxId, Sig), bool>,
    /// Provider signatures awaiting the next batched drain: copies whose
    /// verdict the memo does not know yet, as `(provider, tx id,
    /// signature, signed bytes)`.
    verify_queue: Vec<(u32, TxId, Sig, Vec<u8>)>,
    /// Dedupe set over the queue's `(provider, tx id, signature)` keys.
    queued: FastSet<(u32, TxId, Sig)>,
    /// Drains accumulated verifications as RLC batches, optionally across
    /// worker threads (`ProtocolConfig::verify_threads`).
    verify_pool: VerifyPool,
    /// Open per-transaction Δ-window screening spans.
    screen_spans: FastMap<TxId, Span>,
    /// Screening tick of still-unchecked transactions (reveal/argue spans).
    screened_at: FastMap<TxId, u64>,
    election_span: Option<Span>,
    proposal_span: Option<Span>,
    commit_span: Option<Span>,
    /// Ack-based retransmission for block dissemination (None = off).
    retry: Option<ReliableSender<ProtocolMsg>>,
    /// Anti-entropy recovery state machine.
    sync: SyncState,
    /// Timers driving sync peer rotation, as `(attempt, height when
    /// armed)` — a fire with stale values means progress happened and is
    /// ignored.
    sync_timers: HashMap<TimerId, (u32, u64)>,
    /// Open recovery span (crash-recovery latency in the trace).
    recovery_span: Option<Span>,
    /// This governor's (mis)behaviour profile — honest by default,
    /// byzantine modes are injected via `ProtocolConfig::governor_profiles`.
    profile: GovernorProfile,
    /// First signed proposal header seen per `(proposer, serial)`, with
    /// the tick it arrived — the baseline for detection-latency spans.
    seen_headers: HashMap<(u32, u64), (SignedHeader, u64)>,
    /// `(proposer, serial, block hash)` triples already echoed, so each
    /// distinct header is re-gossiped exactly once.
    echoed: HashSet<(u32, u64, Digest)>,
    /// Governors this node has expelled from its committee view, each
    /// backed by verified equivocation evidence (sorted).
    expelled: Vec<u32>,
    /// Pipelined round engine (`None` when `pipeline_depth == 0`; the
    /// serial engine then behaves bit-for-bit as before).
    pipeline: Option<PipelineState>,
    /// Durable block store mirroring every chain mutation (`None` keeps
    /// the ledger purely in memory, the pre-E16 behaviour).
    store: Option<BlockStore>,
    /// Latest quorum-signed checkpoint certificate this node holds —
    /// assembled from peer shares, adopted from a sync peer, or
    /// recovered from the durable store.
    latest_cert: Option<CheckpointCert>,
    /// Own checkpoint state snapshots awaiting quorum, by serial.
    /// Captured at the moment block `serial` commits, so the digest
    /// reflects exactly this node's stake/reputation state then.
    ckpt_pending: HashMap<u64, CheckpointState>,
    /// Signature-verified peer shares (plus this node's own) buffered
    /// per checkpoint serial until a quorum over one digest forms.
    ckpt_shares: HashMap<u64, Vec<CheckpointShare>>,
    /// Checkpoint serials committed during the current message dispatch,
    /// announced (share signed + broadcast) once the dispatch finishes.
    ckpt_to_announce: Vec<u64>,
    /// Per-collector committee standing under dynamic membership:
    /// `false` once a certified leave/evict applied. Uploads from
    /// inactive collectors are dropped, they owe no reports at reveal,
    /// and they leave the screening draw entirely.
    collector_active: Vec<bool>,
    /// Governors departed via certified membership transitions, sorted.
    /// Distinct from `expelled` (equivocation convictions): departures
    /// are voluntary or administrative and are epoch-logged so old
    /// certificates still verify against the committee of their day.
    gov_departed: Vec<u32>,
    /// Committee epoch log: serial-stamped departures and readmissions.
    /// Checkpoint-cert quorums are sized by `active_at(serial)` — the
    /// membership epoch at the cert's serial — not today's headcount.
    gov_epochs: EpochLog,
    /// Membership shares buffered per request digest until quorum, with
    /// the request itself once it has been seen.
    member_shares: HashMap<Digest, (Option<MembershipRequest>, Vec<MembershipShare>)>,
    /// Quorum-certified membership transitions, oldest first — the
    /// auditable epoch record, persisted through the durable store.
    member_certs: Vec<MembershipCert>,
    /// Certified transitions awaiting their effective round.
    member_to_apply: Vec<MembershipCert>,
    /// Advisory EigenTrust-style gossip blend of peer opinions about
    /// collector quality (never feeds consensus state).
    transitive: TransitiveView,
    /// Last-seen tracker over active collectors, driving silence decay
    /// and eviction proposals (keyed by collector index).
    health: PeerHealth,
    /// Collectors this governor already proposed to evict (dedupe).
    eviction_proposed: HashSet<u32>,
    /// Tick of the most recent verified collector upload, any channel.
    /// A round in which *nobody* spoke (drain, settle) is not evidence
    /// of individual silence, so decay skips it.
    last_upload_at: u64,
}

impl std::fmt::Debug for GovernorNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GovernorNode")
            .field("index", &self.index)
            .field("round", &self.round)
            .field("height", &self.chain.height())
            .finish_non_exhaustive()
    }
}

impl GovernorNode {
    /// Creates governor `index`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        index: u32,
        key: KeyPair,
        cfg: ProtocolConfig,
        topology: Rc<Topology>,
        oracle: Rc<RefCell<ValidityOracle>>,
        governor_base: NodeIdx,
        collector_pks: Vec<PublicKey>,
        provider_pks: Vec<PublicKey>,
        governor_pks: Vec<PublicKey>,
    ) -> Self {
        let n = cfg.collectors as usize;
        let s = cfg.s() as usize;
        let stake_table = StakeTable::uniform(cfg.governors as usize, cfg.stake_per_governor);
        let verify_pool = VerifyPool::with_inline_min(cfg.verify_threads, cfg.verify_inline_min);
        let pipeline = (cfg.pipeline_depth > 0).then(|| PipelineState {
            validator: DeferredValidator::new(verify_pool),
            screen_batches: Vec::new(),
            unfinalized: VecDeque::new(),
            exported: DeferStats::default(),
        });
        let profile = cfg.governor_profile(index);
        let mut health = PeerHealth::new();
        for c in 0..n {
            health.watch(c, SimTime(0));
        }
        // Per-governor hash seed: the configured run seed, decorrelated
        // per node so no two governors share bucket layouts. Iteration
        // order of these maps must never reach consensus state — the
        // `hash_seed_never_changes_the_ledger` regression test holds the
        // line.
        let hs = cfg
            .resolved_hash_seed()
            .wrapping_add((index as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        GovernorNode {
            index,
            key,
            reputation: ReputationTable::new(n, s, cfg.reputation),
            chain: Chain::new(b"prb-chain", cfg.b_limit),
            metrics: GovernorMetrics::new(n),
            gov_epochs: EpochLog::new(cfg.governors as usize),
            // Advisory-only view: neutral 0.5 prior, moderate blend rate.
            transitive: TransitiveView::new(n, 0.5, 0.3),
            cfg,
            topology,
            oracle,
            governor_base,
            collector_pks,
            provider_pks,
            pk_pool: Vec::new(),
            governor_pks,
            stake_table,
            inbox: OrderedInbox::new(),
            pending: fx_map_seeded(hs),
            pending_order: VecDeque::new(),
            pending_high_water: 0,
            shed: 0,
            timers: fx_map_seeded(hs),
            history: fx_map_seeded(hs),
            revealed: fx_set_seeded(hs),
            unchecked_counter: fx_map_seeded(hs),
            ready_entries: Vec::new(),
            argued_entries: Vec::new(),
            future_blocks: Vec::new(),
            round: 0,
            claims: Vec::new(),
            leader: None,
            my_claim: None,
            head_priority: None,
            provisional_base: None,
            obs: Obs::off(),
            sig_memo: fx_map_seeded(hs),
            verify_queue: Vec::new(),
            queued: fx_set_seeded(hs),
            verify_pool,
            screen_spans: fx_map_seeded(hs),
            screened_at: fx_map_seeded(hs),
            election_span: None,
            proposal_span: None,
            commit_span: None,
            retry: None,
            sync: SyncState::Synced,
            sync_timers: HashMap::new(),
            recovery_span: None,
            profile,
            seen_headers: HashMap::new(),
            echoed: HashSet::new(),
            expelled: Vec::new(),
            pipeline,
            store: None,
            latest_cert: None,
            ckpt_pending: HashMap::new(),
            ckpt_shares: HashMap::new(),
            ckpt_to_announce: Vec::new(),
            collector_active: vec![true; n],
            gov_departed: Vec::new(),
            member_shares: HashMap::new(),
            member_certs: Vec::new(),
            member_to_apply: Vec::new(),
            health,
            eviction_proposed: HashSet::new(),
            last_upload_at: 0,
        }
    }

    /// Installs an observability hub (defaults to [`Obs::off`]); the
    /// governor then emits `gov.*` events and election / proposal /
    /// screening / commit / reveal / argue / recovery phase spans.
    pub fn set_obs(&mut self, obs: ObsHandle) {
        if let Some(r) = &mut self.retry {
            r.set_obs(obs.clone());
        }
        self.obs = obs;
    }

    /// Enables reliable delivery for block dissemination.
    pub fn set_reliable(&mut self, cfg: RetryConfig) {
        self.retry = Some(ReliableSender::new(cfg));
    }

    /// Installs the scale-mode signer pool: provider indices beyond
    /// `provider_pks` resolve to `pool[p % pool.len()]`, so 10⁵–10⁶
    /// interned providers share a handful of real verification keys
    /// instead of carrying one each.
    pub fn set_pk_pool(&mut self, pool: Vec<PublicKey>) {
        self.pk_pool = pool;
    }

    /// Installs a durable block store and adopts whatever it recovered:
    /// the replayed chain replaces the fresh genesis chain, and a valid
    /// persisted checkpoint certificate restores the certified stake and
    /// reputation state (a restart then resumes from the durable prefix
    /// instead of genesis — anti-entropy sync fetches only the suffix).
    pub fn set_store(&mut self, store: BlockStore, recovered: Recovered) {
        if recovered.chain.height() > 0 || recovered.chain.is_anchored() {
            self.chain = recovered.chain;
        }
        // Replay the persisted membership log first: the committee
        // epochs must be restored before the checkpoint certificate is
        // quorum-sized against them. The certified reputation state
        // adopted below supersedes any bootstrap the replay performs.
        let members = store.load_members();
        if !members.is_empty() {
            for cert in &members {
                self.apply_member_cert(cert, 0);
            }
            self.member_certs = members;
        }
        if let Some(cert) = recovered.cert {
            let departed = self.gov_epochs.departed_at(cert.state.serial);
            if cert.verify(&self.governor_pks, &departed).is_ok() {
                self.adopt_cert_state(&cert);
                self.latest_cert = Some(cert);
            }
        }
        self.store = Some(store);
    }

    /// The latest checkpoint certificate this governor holds, if any.
    pub fn latest_cert(&self) -> Option<&CheckpointCert> {
        self.latest_cert.as_ref()
    }

    /// Restores the certified stake/reputation vectors from `cert`
    /// (already quorum-verified by the caller).
    fn adopt_cert_state(&mut self, cert: &CheckpointCert) {
        self.stake_table =
            StakeTable::from_parts(cert.state.stakes.clone(), cert.state.stake_nonces.clone());
        if !cert.state.reputation.is_empty() {
            let vectors = cert
                .state
                .reputation
                .iter()
                .map(|c| ReputationVector::from_parts(c.weights.clone(), c.misreport, c.forge))
                .collect();
            self.reputation = ReputationTable::from_vectors(vectors, self.cfg.reputation);
        }
    }

    /// Mirrors a freshly appended chain head into the durable store.
    /// Store I/O failure is fatal: a silently diverged store would defeat
    /// the crash-safety guarantee it exists to provide.
    fn store_append_head(&mut self) {
        if let Some(store) = &mut self.store {
            store
                .append(self.chain.latest())
                .expect("durable store append must mirror the chain");
        }
    }

    /// Block `serial` (a checkpoint-interval boundary) just committed:
    /// snapshot the full certified state — head hash, stake vector and
    /// nonces, reputation vectors — and queue the share announcement.
    /// Peer shares that arrived early and disagree with this digest are
    /// discarded (and counted) now that the local truth is known.
    fn capture_checkpoint(&mut self, serial: u64) {
        let Some(block_hash) = self.chain.retrieve(serial).map(Block::hash) else {
            return;
        };
        let reputation = (0..self.reputation.collector_count())
            .map(|i| {
                let v = self.reputation.collector(i);
                CollectorSnapshot {
                    weights: v.weights().to_vec(),
                    misreport: v.misreport(),
                    forge: v.forge(),
                }
            })
            .collect();
        let state = CheckpointState {
            serial,
            block_hash,
            stakes: self.stake_table.stakes().to_vec(),
            stake_nonces: self.stake_table.nonces().to_vec(),
            reputation,
        };
        let digest = state.digest();
        if let Some(buf) = self.ckpt_shares.get_mut(&serial) {
            let before = buf.len();
            buf.retain(|s| s.state_digest == digest);
            let dropped = (before - buf.len()) as u64;
            if dropped > 0 {
                self.metrics.checkpoint_digest_mismatches += dropped;
                if self.obs.is_enabled() {
                    self.obs
                        .metrics()
                        .add("checkpoint.digest_mismatch", dropped);
                }
            }
        }
        self.ckpt_pending.insert(serial, state);
        self.ckpt_to_announce.push(serial);
    }

    /// Signs and broadcasts the shares queued by [`Self::capture_checkpoint`]
    /// during this dispatch, counting the own share toward quorum.
    fn flush_checkpoint_shares(&mut self, ctx: &mut Context<'_, ProtocolMsg>) {
        if self.ckpt_to_announce.is_empty() {
            return;
        }
        let serials = std::mem::take(&mut self.ckpt_to_announce);
        for serial in serials {
            let Some(digest) = self.ckpt_pending.get(&serial).map(CheckpointState::digest) else {
                continue;
            };
            let share = CheckpointShare::create(serial, digest, self.index, &self.key);
            self.metrics.checkpoint_shares_sent += 1;
            if self.obs.is_enabled() {
                self.obs.metrics().inc("checkpoint.shares_sent");
            }
            self.broadcast_governors(
                ctx,
                "checkpoint-share",
                112,
                ProtocolMsg::CheckpointShare(share.clone()),
            );
            self.buffer_share(share);
            self.try_assemble_cert(serial);
        }
    }

    /// Buffers a signature-verified share, one per governor per serial.
    fn buffer_share(&mut self, share: CheckpointShare) {
        let buf = self.ckpt_shares.entry(share.serial).or_default();
        if !buf.iter().any(|s| s.governor == share.governor) {
            buf.push(share);
        }
    }

    /// A peer's checkpoint share arrived: verify its signature, discard
    /// it when it disagrees with this node's own snapshot digest at that
    /// serial (transient reveal-timing divergence or a byzantine signer),
    /// otherwise buffer and attempt certificate assembly.
    fn on_checkpoint_share(&mut self, share: CheckpointShare) {
        if self.cfg.checkpoint_interval == 0
            || self.expelled.contains(&share.governor)
            || self
                .gov_epochs
                .departed_at(share.serial)
                .contains(&share.governor)
        {
            return;
        }
        if self
            .latest_cert
            .as_ref()
            .is_some_and(|c| c.state.serial >= share.serial)
        {
            return; // already certified at or past this serial
        }
        if !share.verify(&self.governor_pks) {
            return;
        }
        if let Some(state) = self.ckpt_pending.get(&share.serial) {
            if state.digest() != share.state_digest {
                self.metrics.checkpoint_digest_mismatches += 1;
                if self.obs.is_enabled() {
                    self.obs.metrics().inc("checkpoint.digest_mismatch");
                }
                return;
            }
        } else if self.ckpt_shares.len() >= 32 && !self.ckpt_shares.contains_key(&share.serial) {
            return; // bound the early-share buffer against spam
        }
        let serial = share.serial;
        self.buffer_share(share);
        self.try_assemble_cert(serial);
    }

    /// Assembles a certificate for `serial` once a quorum of shares over
    /// this node's own state digest has gathered.
    fn try_assemble_cert(&mut self, serial: u64) {
        if self
            .latest_cert
            .as_ref()
            .is_some_and(|c| c.state.serial >= serial)
        {
            return;
        }
        let Some(state) = self.ckpt_pending.get(&serial) else {
            return;
        };
        let digest = state.digest();
        let Some(buf) = self.ckpt_shares.get(&serial) else {
            return;
        };
        let departed = self.gov_epochs.departed_at(serial);
        let mut sigs: Vec<(u32, Sig)> = buf
            .iter()
            .filter(|s| {
                s.state_digest == digest
                    && !self.expelled.contains(&s.governor)
                    && !departed.contains(&s.governor)
            })
            .map(|s| (s.governor, s.sig.clone()))
            .collect();
        // Quorum is sized by the membership epoch at this cert's serial
        // — the committee as it stood when the shares were signed — less
        // any equivocation expulsions the epoch log does not cover.
        let extra_expelled = self
            .expelled
            .iter()
            .filter(|g| !departed.contains(g))
            .count();
        let need = quorum(
            self.gov_epochs
                .active_at(serial)
                .saturating_sub(extra_expelled),
        );
        if sigs.len() < need {
            return;
        }
        sigs.sort_by_key(|(g, _)| *g);
        let cert = CheckpointCert {
            state: state.clone(),
            sigs,
        };
        self.metrics.checkpoint_certs_formed += 1;
        if self.obs.is_enabled() {
            self.obs.metrics().inc("checkpoint.cert_formed");
        }
        if let Some(store) = &mut self.store {
            store
                .save_cert(&cert)
                .expect("durable store must persist the checkpoint cert");
        }
        self.latest_cert = Some(cert);
        self.prune_checkpoint_buffers(serial);
    }

    /// Drops pending snapshots and share buffers at or below `serial`.
    fn prune_checkpoint_buffers(&mut self, serial: u64) {
        self.ckpt_pending.retain(|&s, _| s > serial);
        self.ckpt_shares.retain(|&s, _| s > serial);
    }

    /// A sync peer offered a checkpoint certificate. Adopt it only when
    /// it verifies against the full committee (minus this node's expelled
    /// view) *and* is strictly ahead of the local chain head — a stale,
    /// forged or under-quorum offer is rejected and can never roll an
    /// honest node back. Adoption re-anchors the chain at the certified
    /// head, restores the certified stake/reputation state, and resets
    /// the durable store, so the remaining sync fetches only the
    /// `delta = head − serial` suffix.
    fn maybe_adopt_checkpoint(&mut self, cert: CheckpointCert, now: u64) {
        if cert.state.serial <= self.chain.height() {
            self.metrics.checkpoints_rejected += 1;
            if self.obs.is_enabled() {
                self.obs.metrics().inc("checkpoint.rejected.stale");
            }
            return;
        }
        // Size the quorum by the membership epoch at the cert's serial:
        // a cert formed before a departure (or expulsion this node
        // witnessed later) still verifies, because its shares were
        // signed by the committee of that day.
        let departed = self.gov_epochs.departed_at(cert.state.serial);
        if let Err(e) = cert.verify(&self.governor_pks, &departed) {
            self.metrics.checkpoints_rejected += 1;
            if self.obs.is_enabled() {
                let key = match e {
                    CheckpointError::UnderQuorum { .. } => "checkpoint.rejected.under_quorum",
                    CheckpointError::BadSignature { .. } => "checkpoint.rejected.bad_signature",
                    CheckpointError::MalformedState => "checkpoint.rejected.malformed_state",
                };
                self.obs.metrics().inc(key);
            }
            return;
        }
        let serial = cert.state.serial;
        self.chain = Chain::from_checkpoint(serial, cert.state.block_hash, self.cfg.b_limit);
        self.adopt_cert_state(&cert);
        self.head_priority = None;
        self.provisional_base = None;
        self.future_blocks.retain(|b| b.serial > serial);
        if let Some(store) = &mut self.store {
            store
                .reset_to_checkpoint(&cert)
                .expect("durable store must follow a checkpoint adoption");
        }
        self.metrics.checkpoints_adopted += 1;
        self.metrics.adopted_serial = serial;
        self.metrics.pages_after_adopt = 0;
        if self.obs.is_enabled() {
            self.obs.metrics().inc("checkpoint.adopted");
            self.obs
                .metrics()
                .observe("checkpoint.adopted_serial", serial);
        }
        let _ = now;
        self.latest_cert = Some(cert);
        self.prune_checkpoint_buffers(serial);
    }

    // ── Dynamic membership (E17) ─────────────────────────────────────

    /// Governors out of the live committee: the union of equivocation
    /// expulsions and certified departures, sorted.
    fn excluded_governors(&self) -> Vec<u32> {
        let mut out = self.expelled.clone();
        for &g in &self.gov_departed {
            if !out.contains(&g) {
                out.push(g);
            }
        }
        out.sort_unstable();
        out
    }

    /// The subject verification key for a membership request, when the
    /// subject index is in range for its tier.
    fn member_pk(&self, role: MemberRole, member: u32) -> Option<&PublicKey> {
        match role {
            MemberRole::Collector => self.collector_pks.get(member as usize),
            MemberRole::Governor => self.governor_pks.get(member as usize),
        }
    }

    /// Whether this governor will endorse `req` with a share: in-range
    /// subject, properly authorized, stake-backed when joining, in the
    /// future, and consistent with the subject's current standing. An
    /// expelled governor is never readmittable — its stake was slashed
    /// on conviction.
    fn membership_acceptable(&self, req: &MembershipRequest) -> bool {
        let Some(pk) = self.member_pk(req.role, req.member) else {
            return false;
        };
        if !req.authorized(pk) || req.effective_round <= self.round {
            return false;
        }
        if req.role == MemberRole::Governor && self.expelled.contains(&req.member) {
            return false;
        }
        let active = match req.role {
            MemberRole::Collector => self
                .collector_active
                .get(req.member as usize)
                .copied()
                .unwrap_or(false),
            MemberRole::Governor => !self.gov_departed.contains(&req.member),
        };
        match req.action {
            MembershipAction::Join => req.bond >= 1 && !active,
            MembershipAction::Leave | MembershipAction::Evict => req.bond == 0 && active,
        }
    }

    /// A membership request arrived (peer relay or driver-injected):
    /// validate it, endorse it with this governor's share, and broadcast
    /// the share so the committee can assemble a certificate.
    fn on_membership(&mut self, req: MembershipRequest, ctx: &mut Context<'_, ProtocolMsg>) {
        if !self.cfg.churn_enabled() || !self.membership_acceptable(&req) {
            return;
        }
        let digest = req.digest();
        if self
            .member_certs
            .iter()
            .any(|c| c.request.digest() == digest)
        {
            return; // already certified
        }
        if self.member_shares.len() >= MEMBER_SHARE_BUFFERS
            && !self.member_shares.contains_key(&digest)
        {
            return; // bound the buffer against request spam
        }
        let entry = self.member_shares.entry(digest).or_default();
        if entry.0.is_none() {
            entry.0 = Some(req);
        }
        if !entry.1.iter().any(|s| s.governor == self.index) {
            let share = MembershipShare::create(digest, self.index, &self.key);
            entry.1.push(share.clone());
            if self.obs.is_enabled() {
                self.obs.metrics().inc("member.share_signed");
            }
            self.broadcast_governors(ctx, "member-share", 112, ProtocolMsg::MemberShare(share));
        }
        self.try_assemble_member_cert(digest);
    }

    /// A peer's endorsement share arrived: verify, buffer (one per
    /// governor per digest), and attempt certificate assembly.
    fn on_member_share(&mut self, share: MembershipShare) {
        if !self.cfg.churn_enabled()
            || self.expelled.contains(&share.governor)
            || self.gov_departed.contains(&share.governor)
            || !share.verify(&self.governor_pks)
        {
            return;
        }
        let digest = share.request_digest;
        if self
            .member_certs
            .iter()
            .any(|c| c.request.digest() == digest)
        {
            return;
        }
        if self.member_shares.len() >= MEMBER_SHARE_BUFFERS
            && !self.member_shares.contains_key(&digest)
        {
            return;
        }
        let entry = self.member_shares.entry(digest).or_default();
        if !entry.1.iter().any(|s| s.governor == share.governor) {
            entry.1.push(share);
        }
        self.try_assemble_member_cert(digest);
    }

    /// Assembles a [`MembershipCert`] once a quorum of the currently
    /// active committee has endorsed the request, persists the updated
    /// log, and queues the transition for its effective round.
    fn try_assemble_member_cert(&mut self, digest: Digest) {
        let excluded = self.excluded_governors();
        let need = quorum(self.cfg.governors as usize - excluded.len());
        let (req, sigs) = {
            let Some((Some(req), shares)) = self.member_shares.get(&digest) else {
                return;
            };
            let mut sigs: Vec<(u32, Sig)> = shares
                .iter()
                .filter(|s| !excluded.contains(&s.governor))
                .map(|s| (s.governor, s.sig.clone()))
                .collect();
            if sigs.len() < need {
                return;
            }
            sigs.sort_by_key(|(g, _)| *g);
            (req.clone(), sigs)
        };
        self.member_shares.remove(&digest);
        let cert = MembershipCert { request: req, sigs };
        self.member_certs.push(cert.clone());
        self.member_to_apply.push(cert);
        self.metrics.member_certs_formed += 1;
        if self.obs.is_enabled() {
            self.obs.metrics().inc("member.cert_formed");
        }
        if let Some(store) = &mut self.store {
            store
                .save_members(&self.member_certs)
                .expect("durable store must persist the membership log");
        }
    }

    /// Applies every certified transition whose effective round has
    /// arrived, in an order every governor derives identically.
    fn apply_due_members(&mut self, round: u64, now: u64) {
        if self.member_to_apply.is_empty() {
            return;
        }
        let mut due = Vec::new();
        let mut later = Vec::new();
        for cert in std::mem::take(&mut self.member_to_apply) {
            if cert.request.effective_round <= round {
                due.push(cert);
            } else {
                later.push(cert);
            }
        }
        self.member_to_apply = later;
        due.sort_by_key(|c| {
            let r = &c.request;
            (r.effective_round, r.role, r.member, r.action)
        });
        for cert in due {
            self.apply_member_cert(&cert, now);
        }
    }

    /// Applies one certified transition to the local committee view.
    /// Also replays the persisted membership log on restart (`now = 0`).
    fn apply_member_cert(&mut self, cert: &MembershipCert, now: u64) {
        let req = &cert.request;
        let member = req.member;
        match (req.role, req.action) {
            (MemberRole::Collector, MembershipAction::Join) => {
                let c = member as usize;
                if c < self.collector_active.len() && !self.collector_active[c] {
                    self.collector_active[c] = true;
                    // Newcomers start from the configured prior, not any
                    // stale pre-departure score.
                    self.reputation
                        .bootstrap_collector(c, self.cfg.bootstrap_rep);
                    self.health.watch(c, SimTime(now));
                    self.eviction_proposed.remove(&member);
                }
            }
            (MemberRole::Collector, MembershipAction::Leave | MembershipAction::Evict) => {
                let c = member as usize;
                if c < self.collector_active.len() && self.collector_active[c] {
                    self.collector_active[c] = false;
                    self.health.unwatch(c);
                    let peer = self.topology.params().providers as usize + c;
                    if let Some(r) = &mut self.retry {
                        r.purge_peer(peer);
                    }
                }
            }
            (MemberRole::Governor, MembershipAction::Leave | MembershipAction::Evict) => {
                if !self.gov_departed.contains(&member) {
                    self.gov_departed.push(member);
                    self.gov_departed.sort_unstable();
                    self.gov_epochs
                        .record_departure(member, req.effective_round);
                    self.claims.retain(|c| c.governor != member);
                    self.transitive.purge_reporter(member);
                    let peer = self.governor_base + member as usize;
                    if let Some(r) = &mut self.retry {
                        r.purge_peer(peer);
                    }
                }
            }
            (MemberRole::Governor, MembershipAction::Join) => {
                if let Some(pos) = self.gov_departed.iter().position(|&g| g == member) {
                    self.gov_departed.remove(pos);
                    self.gov_epochs
                        .record_readmission(member, req.effective_round);
                }
            }
        }
        self.metrics.member_applied += 1;
        if self.obs.is_enabled() {
            self.obs.metrics().inc("member.applied");
        }
    }

    /// First-hand opinion of each collector: the mean of its screening
    /// weights, clamped to `[0, 1]`.
    fn first_hand_opinions(&self) -> Vec<f64> {
        (0..self.reputation.collector_count())
            .map(|c| {
                let w = self.reputation.collector(c).weights();
                let mean = w.iter().sum::<f64>() / w.len().max(1) as f64;
                mean.clamp(0.0, 1.0)
            })
            .collect()
    }

    /// Folds a peer's advisory reputation gossip into the transitive
    /// view, weighted by that reporter's earned trust (EigenTrust-style;
    /// never touches consensus state).
    fn on_rep_gossip(&mut self, reporter: u32, scores: Vec<u64>) {
        if !self.cfg.churn_enabled()
            || reporter == self.index
            || reporter as usize >= self.cfg.governors as usize
            || self.expelled.contains(&reporter)
            || self.gov_departed.contains(&reporter)
        {
            return;
        }
        let claim: Vec<f64> = scores.iter().map(|b| f64::from_bits(*b)).collect();
        let local = self.first_hand_opinions();
        let merged = self.transitive.merge_claim(reporter, &claim, &local);
        if self.obs.is_enabled() {
            self.obs.metrics().inc(if merged {
                "member.gossip_merged"
            } else {
                "member.gossip_rejected"
            });
        }
    }

    /// Round-boundary churn maintenance, the local half: decays the
    /// screening weights of collectors silent for at least a full round
    /// and returns those sunk to the eviction floor. Runs on every
    /// profile (silent byzantine governors included) so the honest
    /// committee's reputation tables stay in lockstep.
    fn churn_decay(&mut self, now: u64) -> Vec<u32> {
        let Some(factor) = self.cfg.decay_factor() else {
            return Vec::new();
        };
        let threshold = SimDuration(self.cfg.round_ticks());
        // A peer watched since genesis has had no chance to speak before
        // the first round boundary — the first meaningful silence check
        // is at the start of round 2, after one full round of uploads.
        if threshold.0 == 0 || now < 2 * threshold.0 {
            return Vec::new();
        }
        if now.saturating_sub(self.last_upload_at) >= threshold.0 {
            // The whole committee went quiet for the window (drain or
            // settle rounds): no discriminating silence signal.
            return Vec::new();
        }
        let mut candidates = Vec::new();
        for c in self.health.suspects(SimTime(now), threshold) {
            if !self.collector_active.get(c).copied().unwrap_or(false) {
                continue;
            }
            self.reputation.decay_collector(c, factor);
            self.metrics.decay_events += 1;
            if self.obs.is_enabled() {
                self.obs.metrics().inc("member.decay");
            }
            let w = self.reputation.collector(c).weights();
            let mean = w.iter().sum::<f64>() / w.len().max(1) as f64;
            let floor = self.cfg.reputation.weight_floor.max(EVICTION_FLOOR);
            if mean <= floor && !self.eviction_proposed.contains(&(c as u32)) {
                candidates.push(c as u32);
            }
        }
        candidates
    }

    /// The speaking half of churn maintenance: gossip this governor's
    /// first-hand view and propose evicting collectors that decayed to
    /// the floor. Silent and departed governors never reach this.
    fn churn_speak(
        &mut self,
        candidates: Vec<u32>,
        round: u64,
        ctx: &mut Context<'_, ProtocolMsg>,
    ) {
        if !self.cfg.churn_enabled() {
            return;
        }
        let scores: Vec<u64> = self
            .first_hand_opinions()
            .iter()
            .map(|w| w.to_bits())
            .collect();
        let size = 16 + 8 * scores.len();
        self.broadcast_governors(
            ctx,
            "rep-gossip",
            size,
            ProtocolMsg::RepGossip {
                reporter: self.index,
                scores,
            },
        );
        for member in candidates {
            self.eviction_proposed.insert(member);
            let req = MembershipRequest::evict(MemberRole::Collector, member, round + 2);
            self.metrics.evictions_proposed += 1;
            if self.obs.is_enabled() {
                self.obs.metrics().inc("member.evict_proposed");
            }
            self.broadcast_governors(
                ctx,
                "membership",
                64,
                ProtocolMsg::Membership(Box::new(req.clone())),
            );
            self.on_membership(req, ctx);
        }
    }

    /// Whether collector `c` is currently an active committee member.
    pub fn collector_is_active(&self, c: u32) -> bool {
        self.collector_active
            .get(c as usize)
            .copied()
            .unwrap_or(false)
    }

    /// Indices of the currently active collectors, ascending.
    pub fn active_collectors(&self) -> Vec<u32> {
        self.collector_active
            .iter()
            .enumerate()
            .filter(|(_, a)| **a)
            .map(|(c, _)| c as u32)
            .collect()
    }

    /// Governors departed via certified membership transitions, sorted.
    pub fn departed_governors(&self) -> &[u32] {
        &self.gov_departed
    }

    /// The quorum-certified membership transition log, oldest first.
    pub fn membership_certs(&self) -> &[MembershipCert] {
        &self.member_certs
    }

    /// The committee epoch log (serial-stamped departures/readmissions).
    pub fn epoch_log(&self) -> &EpochLog {
        &self.gov_epochs
    }

    /// The advisory transitive-reputation view.
    pub fn transitive_view(&self) -> &TransitiveView {
        &self.transitive
    }

    /// Resolves the verification key for provider `p`: the per-provider
    /// key when one exists, else the scale-mode pool slot `p % len` (for
    /// in-range interned providers), else `None` (out of range — the
    /// structural forgery case).
    fn provider_pk(&self, p: u32) -> Option<&PublicKey> {
        if let Some(pk) = self.provider_pks.get(p as usize) {
            return Some(pk);
        }
        if !self.pk_pool.is_empty() && p < self.topology.params().providers {
            return Some(&self.pk_pool[p as usize % self.pk_pool.len()]);
        }
        None
    }

    /// `(pending now, pending high-water, shed count)` for the pending
    /// pool — the E15 bounded-memory and reconciliation asserts.
    pub fn pending_stats(&self) -> (usize, usize, u64) {
        (self.pending.len(), self.pending_high_water, self.shed)
    }

    /// `(in-flight now, high-water, dropped)` for the block-dissemination
    /// retry queue (zeros when reliable delivery is off).
    pub fn retry_queue_stats(&self) -> (usize, usize, u64) {
        match &self.retry {
            Some(r) => (r.in_flight(), r.high_water(), r.stats().dropped),
            None => (0, 0, 0),
        }
    }

    /// Routes an ack for a tracked send.
    pub fn on_ack(&mut self, token: u64) {
        if let Some(r) = &mut self.retry {
            r.on_ack(token);
        }
    }

    /// Whether the governor is mid-recovery (diagnostics).
    pub fn is_recovering(&self) -> bool {
        matches!(self.sync, SyncState::Recovering { .. })
    }

    fn net_idx(&self) -> u64 {
        (self.governor_base + self.index as usize) as u64
    }

    /// The governor's index.
    pub fn index(&self) -> u32 {
        self.index
    }

    /// The governor's local copy of the ledger.
    pub fn chain(&self) -> &Chain {
        &self.chain
    }

    /// The governor's reputation table.
    pub fn reputation(&self) -> &ReputationTable {
        &self.reputation
    }

    /// Accumulated metrics.
    pub fn metrics(&self) -> &GovernorMetrics {
        &self.metrics
    }

    /// The leader this governor elected for the current round.
    pub fn current_leader(&self) -> Option<u32> {
        self.leader
    }

    /// The governor's view of the stake distribution.
    pub fn stake_table(&self) -> &StakeTable {
        &self.stake_table
    }

    /// Governors this node has expelled, sorted by index.
    pub fn expelled(&self) -> &[u32] {
        &self.expelled
    }

    /// Transaction ids currently buffered for inclusion (diagnostics).
    pub fn ready_tx_ids(&self) -> Vec<TxId> {
        self.ready_entries.iter().map(|e| e.tx.id()).collect()
    }

    /// Number of screened transactions buffered for inclusion.
    pub fn ready_len(&self) -> usize {
        self.ready_entries.len()
    }

    /// Number of transactions still inside their Δ window (diagnostics).
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// Broadcasts `msg` to every peer governor — through the retry
    /// envelope when reliable delivery is on. Election claims and block
    /// proposals are both critical hops: a lost claim makes the round's
    /// election run under-informed (risking a head fork), and a lost
    /// proposal forks the peer until it syncs.
    fn broadcast_governors(
        &mut self,
        ctx: &mut Context<'_, ProtocolMsg>,
        kind: &'static str,
        size: usize,
        msg: ProtocolMsg,
    ) {
        // Move the original into the last real send instead of cloning
        // for every peer and dropping the original — one clone saved per
        // broadcast, which at scale is one per election claim / proposal.
        let m = self.cfg.governors as usize;
        let last = (0..m)
            .rev()
            .find(|g| self.governor_base + g != ctx.self_idx());
        let mut msg = Some(msg);
        for g in 0..m {
            if self.governor_base + g == ctx.self_idx() {
                continue;
            }
            let payload = if Some(g) == last {
                msg.take().expect("taken only on the last peer")
            } else {
                msg.as_ref().expect("present until the last peer").clone()
            };
            self.send_governor(ctx, g, kind, size, payload);
        }
    }

    /// Sends `msg` to governor `g` alone (no-op for this node itself) —
    /// through the retry envelope when reliable delivery is on. The
    /// equivocating byzantine path needs per-peer sends: it feeds each
    /// committee half a different block.
    fn send_governor(
        &mut self,
        ctx: &mut Context<'_, ProtocolMsg>,
        g: usize,
        kind: &'static str,
        size: usize,
        msg: ProtocolMsg,
    ) {
        let peer = self.governor_base + g;
        if peer == ctx.self_idx() {
            return;
        }
        match &mut self.retry {
            Some(r) => {
                r.send_with(ctx, peer, kind, size + 8, |token| ProtocolMsg::Reliable {
                    token,
                    inner: Box::new(msg),
                });
            }
            None => ctx.send_sized(peer, kind, size, msg),
        }
    }

    /// Handles a delivered message.
    pub fn on_message(&mut self, env: Envelope<ProtocolMsg>, ctx: &mut Context<'_, ProtocolMsg>) {
        match env.payload {
            ProtocolMsg::StartRound { round } => self.on_start_round(round, ctx),
            ProtocolMsg::Election { round, claim }
                if round == self.round
                // Claims travel through the retry envelope, so a slow ack
                // can deliver the same claim twice — dedupe by claimant
                // before counting toward the full-set threshold. Expelled
                // governors are out of the committee entirely.
                && !self.expelled.contains(&claim.governor)
                && !self.gov_departed.contains(&claim.governor)
                && !self.claims.iter().any(|c| c.governor == claim.governor) =>
            {
                self.claims.push(claim);
                let live = self.cfg.governors as usize - self.excluded_governors().len();
                if self.claims.len() == live {
                    self.run_election(ctx.now().ticks());
                }
            }
            ProtocolMsg::TxUpload { seq, ltx } => {
                let channel = ChannelId(ltx.collector.index as u64);
                for ltx in self.inbox.push(channel, seq, ltx) {
                    self.on_upload(ltx, ctx);
                }
                // Pipelined engine: hand the freshly queued provider
                // signatures to the background validator right away —
                // they verify while the main loop keeps processing
                // events, and `screen_tx` collects the verdicts before
                // any screening decision reads them.
                self.submit_screen_batch();
            }
            ProtocolMsg::ProposeBlock { round } => self.on_propose(round, ctx),
            ProtocolMsg::BlockProposal {
                block,
                claim,
                header,
                deferred_root,
            } => {
                if let Some(header) = &header {
                    self.note_header(header.clone(), ctx);
                }
                self.on_block(block, claim, header, deferred_root, ctx);
            }
            ProtocolMsg::HeaderEcho { header } => self.note_header(header, ctx),
            ProtocolMsg::Evidence { evidence } => self.on_evidence(evidence, ctx),
            ProtocolMsg::SyncRequest { have } => self.on_sync_request(have, env.from, ctx),
            ProtocolMsg::SyncResponse { blocks, head, cert } => {
                self.on_sync_response(blocks, head, cert, env.from, ctx);
            }
            ProtocolMsg::CheckpointShare(share) => self.on_checkpoint_share(share),
            ProtocolMsg::Membership(req) => self.on_membership(*req, ctx),
            ProtocolMsg::MemberShare(share) => self.on_member_share(share),
            ProtocolMsg::RepGossip { reporter, scores } => self.on_rep_gossip(reporter, scores),
            ProtocolMsg::Argue { tx, .. } => self.on_argue(tx, ctx),
            ProtocolMsg::StakeTransfer(transfer) => self.on_stake_transfer(transfer, ctx),
            ProtocolMsg::Reveal { tx, valid } => self.on_reveal(tx, valid, ctx.now().ticks()),
            _ => {}
        }
        // Any dispatch may have committed a checkpoint-interval boundary
        // (own proposal, adopted proposal, or a sync page crossing one);
        // announce the queued shares exactly once, after the handler.
        self.flush_checkpoint_shares(ctx);
    }

    /// Handles a timer: retransmission, sync rotation, or Δ aggregation.
    pub fn on_timer(&mut self, timer: TimerId, ctx: &mut Context<'_, ProtocolMsg>) {
        if let Some(r) = &mut self.retry {
            if r.on_timer(timer, ctx) {
                return;
            }
        }
        if let Some((attempt, height)) = self.sync_timers.remove(&timer) {
            self.on_sync_timer(attempt, height, ctx);
            return;
        }
        if let Some(tx) = self.timers.remove(&timer) {
            self.screen_tx(tx, ctx);
        }
    }

    fn on_start_round(&mut self, round: u64, ctx: &mut Context<'_, ProtocolMsg>) {
        // Pipelined engine: publish stage-occupancy gauges while the
        // previous round's block is still in flight, then settle it —
        // finalize (verdicts all good) or abort-and-repool. This runs
        // before `self.round` advances so a conviction triggered by the
        // deferred check books to the round the crime was committed in.
        self.publish_pipeline_obs();
        self.settle_deferred_blocks(None, ctx.now().ticks());
        // A round-number gap is crash evidence: StartRound commands
        // arrive every round, so skipping one means this node was deaf
        // for at least a full round and may have missed blocks.
        if round > self.round + 1 {
            self.start_recovery(None, ctx);
        }
        self.round = round;
        self.claims.clear();
        self.leader = None;
        let now = ctx.now().ticks();
        self.apply_due_members(round, now);
        if self.gov_departed.contains(&self.index) {
            // This governor's own certified departure took effect: stay
            // dark — no claim, no gossip — while still following
            // committed blocks so a readmission resumes from a warm
            // chain.
            return;
        }
        let evict_candidates = self.churn_decay(now);
        if self.obs.is_enabled() {
            self.obs
                .observe("depth.gov_pending", self.pending.len() as u64);
            self.obs
                .observe("depth.gov_ready", self.ready_entries.len() as u64);
            self.obs
                .observe("depth.gov_argued", self.argued_entries.len() as u64);
            self.obs
                .set_gauge("depth.gov_pending", self.pending.len() as f64);
            self.obs
                .set_gauge("depth.gov_ready", self.ready_entries.len() as f64);
            self.obs
                .set_gauge("depth.gov_argued", self.argued_entries.len() as f64);
        }
        self.election_span = Some(Span::begin(phases::ELECTION, now));
        self.proposal_span = Some(Span::begin(phases::PROPOSAL, now));
        self.commit_span = Some(Span::begin(phases::COMMIT, now));
        if self.profile.mode_in(round) == ByzantineMode::Silent {
            // A silent governor makes no claim and will never propose; to
            // its peers the round looks exactly like a crash.
            self.metrics.silent_rounds += 1;
            return;
        }
        self.churn_speak(evict_candidates, round, ctx);
        let t0 = self.obs.is_enabled().then(std::time::Instant::now);
        let claim = ElectionClaim::compute(
            b"prb-chain",
            round,
            self.index,
            self.stake_table.stake(self.index).unwrap_or(0),
            &self.key,
        );
        if let Some(t0) = t0 {
            self.obs
                .add_counter("wall.crypto_ns", t0.elapsed().as_nanos() as u64);
        }
        self.my_claim = claim.clone();
        if let Some(claim) = claim {
            self.claims.push(claim.clone());
            self.broadcast_governors(
                ctx,
                "election-claim",
                96,
                ProtocolMsg::Election { round, claim },
            );
        }
    }

    fn run_election(&mut self, now: u64) {
        let t0 = self.obs.is_enabled().then(std::time::Instant::now);
        let excluded = self.excluded_governors();
        let (result, _rejected) = elect_excluding(
            b"prb-chain",
            self.round,
            &self.claims,
            self.stake_table.stakes(),
            &self.governor_pks,
            &excluded,
            &self.verify_pool,
        );
        if let Some(t0) = t0 {
            self.obs
                .add_counter("wall.crypto_ns", t0.elapsed().as_nanos() as u64);
        }
        self.leader = result.map(|r| r.leader);
        if let Some(leader) = self.leader {
            self.obs.emit(
                now,
                self.net_idx(),
                ObsEvent::ElectionDecided {
                    leader: leader as u64,
                    claims: self.claims.len() as u64,
                },
            );
        }
        if let Some(span) = self.election_span.take() {
            self.obs.end_span(span, now, self.net_idx());
        }
    }

    fn on_upload(&mut self, ltx: LabeledTx, ctx: &mut Context<'_, ProtocolMsg>) {
        let collector = ltx.collector.index;
        // Unknown collector identity: drop silently (cannot attribute).
        let Some(collector_pk) = self.collector_pks.get(collector as usize) else {
            return;
        };
        if !ltx.verify_collector(collector_pk) {
            return; // not actually from that collector
        }
        if !self
            .collector_active
            .get(collector as usize)
            .copied()
            .unwrap_or(true)
        {
            return; // certified departure: out of the screening set
        }
        self.health.record_seen(collector as usize, ctx.now());
        self.last_upload_at = ctx.now().ticks();
        // The paper's verify(c, Tx): the provider must be linked with the
        // collector, and the inner provider signature must be genuine. The
        // structural half is checked here; the signature check is deferred
        // to the Δ-window drain so a round's copies verify as one batch —
        // unless the memo already knows this copy's verdict.
        let provider = ltx.tx.payload.provider.index;
        let structural_ok = ltx.tx.payload.provider.role == prb_crypto::identity::Role::Provider
            && self.provider_pk(provider).is_some()
            && self.topology.linked(provider, collector);
        if !structural_ok {
            // Case 1: a mis-attributed transaction.
            self.record_forgery(collector, ctx.now().ticks());
            return;
        }
        let id = ltx.tx.id();
        let memo_key = (provider, id, ltx.tx.provider_sig.clone());
        let verdict = self.sig_memo.get(&memo_key).copied();
        if verdict.is_some() {
            self.metrics.sig_memo_hits += 1;
            if self.obs.is_enabled() {
                self.obs.metrics().inc("gov.sig_memo_hit");
            }
        }
        if verdict == Some(false) {
            // Case 1: a known-forged provider signature.
            self.record_forgery(collector, ctx.now().ticks());
            return;
        }
        if let Some(pending) = self.pending.get_mut(&id) {
            if pending.reports.iter().any(|(c, _)| *c == collector) {
                // Duplicate copy from a reporter already in the window: no
                // report rides on it, so nothing joins the batch — but a
                // forged-signature probe is still case 1, checked eagerly.
                if verdict.is_none() && !self.verify_provider_sig(provider, &ltx.tx) {
                    self.record_forgery(collector, ctx.now().ticks());
                }
                return;
            }
            if verdict.is_none() {
                Self::enqueue_verify(&mut self.verify_queue, &mut self.queued, memo_key, &ltx.tx);
            }
            pending.reports.push((collector, ltx.label));
            pending.sigs.push((collector, ltx.tx.provider_sig));
            return;
        }
        if let Some(record) = self.history.get_mut(&id) {
            // Late report (after screening): no batch is pending for it, so
            // resolve the signature now (the memo almost always answers —
            // screening verified this id already).
            if record.reports.iter().any(|(c, _)| *c == collector) {
                return;
            }
            if verdict.is_none() && !self.verify_provider_sig(provider, &ltx.tx) {
                self.record_forgery(collector, ctx.now().ticks());
                return;
            }
            let record = self.history.get_mut(&id).expect("checked above");
            record.reports.push((collector, ltx.label));
            match record.outcome {
                Outcome::Checked { valid } => {
                    let correct = ltx.label.is_valid() == valid;
                    self.reputation
                        .record_checked(&[(collector as usize, correct)]);
                }
                Outcome::Unchecked { .. } => {} // counted at reveal
            }
            return;
        }
        // First copy: open the Δ window (starttime(tx, Δ)).
        if verdict.is_none() {
            Self::enqueue_verify(&mut self.verify_queue, &mut self.queued, memo_key, &ltx.tx);
        }
        self.obs.emit(
            ctx.now().ticks(),
            self.net_idx(),
            ObsEvent::TxAdmitted { trace: id.trace() },
        );
        let timer = ctx.set_timer(SimDuration(self.cfg.aggregation_window()));
        self.timers.insert(timer, id);
        self.screen_spans
            .insert(id, Span::begin(phases::SCREENING, ctx.now().ticks()));
        self.pending.insert(
            id,
            PendingTx {
                provider,
                reports: vec![(collector, ltx.label)],
                sigs: vec![(collector, ltx.tx.provider_sig.clone())],
                ltx,
            },
        );
        self.pending_order.push_back(id);
        // Bounded pool: past capacity, shed the oldest still-pending
        // window deterministically. Its Δ timer later fires as a no-op
        // (`screen_tx` tolerates a missing entry).
        let now = ctx.now().ticks();
        while self.pending.len() > self.cfg.pending_capacity {
            let Some(oldest) = self.pending_order.pop_front() else {
                break;
            };
            if self.pending.remove(&oldest).is_none() {
                continue; // stale id, already screened
            }
            self.screen_spans.remove(&oldest);
            self.shed += 1;
            if self.obs.is_enabled() {
                self.obs.metrics().inc("gov.pending.shed");
            }
            self.obs.emit(
                now,
                self.net_idx(),
                ObsEvent::TxDropped {
                    trace: oldest.trace(),
                    reason: "shed",
                },
            );
        }
        self.pending_high_water = self.pending_high_water.max(self.pending.len());
        // Lazy compaction keeps the order deque proportional to the live
        // pool: screened ids are not removed eagerly (that would be O(n)
        // per screen), so sweep them out once they dominate.
        if self.pending_order.len() > (self.pending.len() * 2).max(64) {
            self.pending_order
                .retain(|id| self.pending.contains_key(id));
        }
    }

    /// Records a case-1 forgery against `collector`.
    fn record_forgery(&mut self, collector: u32, now: u64) {
        self.reputation.record_forgery(collector as usize);
        self.metrics.forged_detected += 1;
        self.obs.emit(
            now,
            self.net_idx(),
            ObsEvent::ForgeryDetected {
                collector: collector as u64,
            },
        );
    }

    /// Queues a provider signature for the next batched drain (deduped).
    fn enqueue_verify(
        queue: &mut Vec<(u32, TxId, Sig, Vec<u8>)>,
        queued: &mut FastSet<(u32, TxId, Sig)>,
        key: (u32, TxId, Sig),
        tx: &SignedTx,
    ) {
        if queued.insert(key.clone()) {
            queue.push((key.0, key.1, key.2, tx.signing_bytes()));
        }
    }

    /// Drains the verification queue through the pool as one batch and
    /// folds the verdicts into the signature memo.
    fn drain_verify_queue(&mut self) {
        if self.verify_queue.is_empty() {
            return;
        }
        let queue = std::mem::take(&mut self.verify_queue);
        self.queued.clear();
        if self.obs.is_enabled() {
            self.obs
                .metrics()
                .observe("crypto.batch.size", queue.len() as u64);
        }
        let items: Vec<(&[u8], &Sig, &PublicKey)> = queue
            .iter()
            .map(|(p, _, sig, msg)| {
                let pk = self.provider_pk(*p).expect("queued after structural check");
                (&msg[..], sig, pk)
            })
            .collect();
        let t0 = self.obs.is_enabled().then(std::time::Instant::now);
        let verdicts = self.verify_pool.verify_sigs(&items);
        if let Some(t0) = t0 {
            self.obs
                .add_counter("wall.crypto_ns", t0.elapsed().as_nanos() as u64);
        }
        self.metrics.sig_memo_misses += queue.len() as u64;
        if self.obs.is_enabled() {
            self.obs
                .metrics()
                .add("gov.sig_memo_miss", queue.len() as u64);
        }
        for ((p, id, sig, _), ok) in queue.into_iter().zip(verdicts) {
            if self.sig_memo.len() >= SIG_MEMO_MAX {
                self.sig_memo.clear();
            }
            self.sig_memo.insert((p, id, sig), ok);
        }
    }

    /// Folds a verdict into the signature memo (bounded, clear-when-full).
    fn memoize(&mut self, key: (u32, TxId, Sig), ok: bool) {
        if self.sig_memo.len() >= SIG_MEMO_MAX {
            self.sig_memo.clear();
        }
        self.sig_memo.insert(key, ok);
    }

    /// Pipelined engine: hands the accumulated verification queue to the
    /// background validator as soon as it forms instead of waiting for
    /// the Δ-window drain. The batch verifies on a worker thread while
    /// the event loop keeps running; `settle_verify_batches` collects
    /// the verdicts before any screening decision reads them, so the
    /// verdict a copy receives is identical to the synchronous drain's.
    /// No-op under the serial engine.
    fn submit_screen_batch(&mut self) {
        if self.pipeline.is_none() {
            return;
        }
        // Coalesce: a batch only ships once it reaches the pool's inline
        // threshold — submitting every delivery as its own batch costs a
        // worker wake-up per handful of signatures. Whatever is still
        // queued when screening decisions fall due is drained
        // synchronously by `settle_verify_batches` (verdict-identical).
        if self.verify_queue.len() < self.cfg.verify_inline_min.max(1) {
            return;
        }
        let queue = std::mem::take(&mut self.verify_queue);
        // `queued` is deliberately NOT cleared here: the verdicts only
        // reach the memo at the next `settle_verify_batches`, so the keys
        // stay marked to stop replicated copies of the same transaction
        // from re-queuing (and re-verifying) the identical signature.
        self.metrics.sig_memo_misses += queue.len() as u64;
        if self.obs.is_enabled() {
            self.obs
                .metrics()
                .observe("crypto.batch.size", queue.len() as u64);
            self.obs
                .metrics()
                .add("gov.sig_memo_miss", queue.len() as u64);
        }
        let mut keys = Vec::with_capacity(queue.len());
        let mut items: Vec<DeferItem> = Vec::with_capacity(queue.len());
        for (p, id, sig, msg) in queue {
            let pk = self
                .provider_pk(p)
                .expect("queued after structural check")
                .clone();
            items.push((msg, sig.clone(), pk));
            keys.push((p, id, sig));
        }
        let pipe = self.pipeline.as_mut().expect("checked above");
        let ticket = pipe.validator.submit(items);
        pipe.screen_batches.push((ticket, keys));
    }

    /// Settles every outstanding provider-signature verification: joins
    /// the background screening batches (pipelined engine), then drains
    /// whatever is still queued synchronously. All verdicts land in the
    /// memo, exactly as a serial drain would have produced them.
    fn settle_verify_batches(&mut self) {
        let mut folds: Vec<((u32, TxId, Sig), bool)> = Vec::new();
        if let Some(pipe) = &mut self.pipeline {
            for (ticket, keys) in std::mem::take(&mut pipe.screen_batches) {
                let verdicts = pipe.validator.collect(ticket);
                folds.extend(keys.into_iter().zip(verdicts));
            }
        }
        for (key, ok) in folds {
            self.memoize(key, ok);
        }
        // Submitted keys are memoized now; unmark them so a future
        // re-verification (after a memo clear) is possible again.
        self.queued.clear();
        self.drain_verify_queue();
        self.export_defer_stats();
    }

    /// Pipelined engine: registers a just-ordered `block` for deferred
    /// entry-signature verification. Memo-unknown signatures go to the
    /// background validator; the block counts as *finalized* only once
    /// [`Self::settle_deferred_blocks`] confirms every verdict, one
    /// serial behind. Registering never touches protocol state beyond
    /// the memo, so honest runs stay bit-identical to the serial engine.
    fn defer_block_validation(&mut self, block: &Block, header: Option<SignedHeader>, now: u64) {
        let mut entries = Vec::with_capacity(block.entries.len());
        let mut batch_keys: Vec<(u32, TxId, Sig)> = Vec::new();
        let mut items: Vec<DeferItem> = Vec::new();
        let mut seen: HashSet<(u32, TxId, Sig)> = HashSet::new();
        for e in &block.entries {
            let p = e.tx.payload.provider.index;
            let key = (p, e.tx.id(), e.tx.provider_sig.clone());
            if !self.sig_memo.contains_key(&key) && seen.insert(key.clone()) {
                // An unresolvable provider key is left out of the batch;
                // the settle-time inline re-verify then scores it false.
                if let Some(pk) = self.provider_pk(p) {
                    items.push((e.tx.signing_bytes(), e.tx.provider_sig.clone(), pk.clone()));
                    batch_keys.push(key.clone());
                }
            }
            entries.push((key.0, key.1, key.2, e.tx.signing_bytes()));
        }
        if self.obs.is_enabled() && !items.is_empty() {
            self.obs
                .metrics()
                .observe("crypto.batch.size", items.len() as u64);
        }
        let pipe = self.pipeline.as_mut().expect("caller checked pipelined");
        let ticket = (!items.is_empty()).then(|| pipe.validator.submit(items));
        pipe.unfinalized.push_back(DeferredBlock {
            serial: block.serial,
            proposer: block.leader.index,
            block_hash: block.hash(),
            header,
            ticket,
            batch_keys,
            entries,
        });
        // Backpressure: never let more than `pipeline_depth` blocks ride
        // unfinalized — settle the oldest ones now.
        while self
            .pipeline
            .as_ref()
            .is_some_and(|p| p.unfinalized.len() > self.cfg.pipeline_depth)
        {
            self.settle_next(now);
        }
    }

    /// Settles deferred blocks in serial order: all records with
    /// `serial < before` (or every record when `before` is `None`).
    fn settle_deferred_blocks(&mut self, before: Option<u64>, now: u64) {
        loop {
            let due = match &self.pipeline {
                Some(pipe) => match (pipe.unfinalized.front(), before) {
                    (Some(d), Some(s)) => d.serial < s,
                    (Some(_), None) => true,
                    (None, _) => false,
                },
                None => false,
            };
            if !due {
                return;
            }
            self.settle_next(now);
        }
    }

    /// Settles the oldest deferred block: joins its verification batch,
    /// folds the verdicts into the memo, and either finalizes the block
    /// or aborts-and-repools — the head is popped down through the bad
    /// serial, forged entries are excised from the repooled set (their
    /// traces closed, satellite bookkeeping cleared), and the proposer
    /// is convicted through its signed header.
    fn settle_next(&mut self, now: u64) {
        let (d, verdicts) = {
            let Some(pipe) = self.pipeline.as_mut() else {
                return;
            };
            let Some(d) = pipe.unfinalized.pop_front() else {
                return;
            };
            let verdicts = match d.ticket {
                Some(t) => pipe.validator.collect(t),
                None => Vec::new(),
            };
            (d, verdicts)
        };
        for (key, ok) in d.batch_keys.iter().cloned().zip(verdicts) {
            self.memoize(key, ok);
        }
        // Which entries fail authentication? (Memo-evicted stragglers are
        // re-verified inline from the retained signing bytes.)
        let mut bad: Vec<TxId> = Vec::new();
        for (p, id, sig, bytes) in &d.entries {
            let key = (*p, *id, sig.clone());
            let ok = match self.sig_memo.get(&key) {
                Some(&ok) => ok,
                None => {
                    let ok = self.provider_pk(*p).is_some_and(|pk| pk.verify(bytes, sig));
                    self.memoize(key, ok);
                    ok
                }
            };
            if !ok && !bad.contains(id) {
                bad.push(*id);
            }
        }
        // The block may already be gone — displaced by a same-serial
        // rival or an expulsion pop. Its entries were repooled wholesale
        // by `pop_head_repool`, so forged ones still need excising, but
        // there is nothing to finalize or abort.
        let live = self
            .chain
            .retrieve(d.serial)
            .is_some_and(|b| b.hash() == d.block_hash);
        self.export_defer_stats();
        if !live {
            if self.obs.is_enabled() {
                self.obs.metrics().inc("pipeline.stale");
            }
            self.excise_entries(&bad, now);
            return;
        }
        if bad.is_empty() {
            if self.obs.is_enabled() {
                self.obs.metrics().inc("pipeline.finalized");
            }
            return;
        }
        // Abort-and-repool: deferred validation caught forged entry
        // signatures in an already-ordered block. Pop the head down
        // through the bad serial (repooling honest entries), excise the
        // forged ones, and convict the proposer.
        if self.obs.is_enabled() {
            self.obs.metrics().inc("pipeline.aborts");
        }
        self.metrics.invalid_blocks_rejected += 1;
        if self.obs.is_enabled() {
            self.obs.metrics().inc("byzantine.invalid_blocks_rejected");
        }
        while self.chain.height() >= d.serial {
            self.pop_head_repool();
        }
        self.excise_entries(&bad, now);
        if let Some(h) = &d.header {
            if h.proposer == d.proposer
                && h.serial == d.serial
                && h.block_hash == d.block_hash
                && h.verify(&self.governor_pks)
            {
                self.expel(h.proposer, now);
            }
        }
    }

    /// Removes forged transactions from the ready/argued pools and closes
    /// their lifecycle bookkeeping (trace, screening span, reveal clock) —
    /// they must never be re-proposed.
    fn excise_entries(&mut self, bad: &[TxId], now: u64) {
        for id in bad {
            self.ready_entries.retain(|e| e.tx.id() != *id);
            self.argued_entries.retain(|e| e.tx.id() != *id);
            self.screen_spans.remove(id);
            self.screened_at.remove(id);
            if self.obs.is_enabled() {
                self.obs.metrics().inc("pipeline.excised_txs");
            }
            self.obs.emit(
                now,
                self.net_idx(),
                ObsEvent::TxDropped {
                    trace: id.trace(),
                    reason: "forged",
                },
            );
        }
    }

    /// Publishes pipeline stage-occupancy gauges and the deferred
    /// validator's overlap accounting (`wall.defer_work_ns`,
    /// `wall.defer_wait_ns`, `wall.overlap_ns`) to the obs hub.
    fn publish_pipeline_obs(&mut self) {
        if !self.obs.is_enabled() {
            return;
        }
        let Some(pipe) = &self.pipeline else {
            return;
        };
        let unfinalized = pipe.unfinalized.len() as f64;
        let inflight = pipe.validator.in_flight() as f64;
        let items = pipe.validator.items_in_flight() as f64;
        self.obs.set_gauge("pipeline.unfinalized", unfinalized);
        self.obs.set_gauge("pipeline.inflight_batches", inflight);
        self.obs.set_gauge("pipeline.inflight_items", items);
        self.obs.observe("pipeline.unfinalized", unfinalized as u64);
        self.obs
            .observe("pipeline.inflight_batches", inflight as u64);
        self.export_defer_stats();
    }

    /// Exports the deferred validator's overlap accounting deltas
    /// (`wall.defer_work_ns`, `wall.defer_wait_ns`, `wall.overlap_ns`)
    /// to the obs counters. Called at round boundaries and after every
    /// settle so the final batches are never left unaccounted.
    fn export_defer_stats(&mut self) {
        if !self.obs.is_enabled() {
            return;
        }
        let Some(pipe) = &mut self.pipeline else {
            return;
        };
        let stats = pipe.validator.stats();
        let delta_work = stats.work_ns - pipe.exported.work_ns;
        let delta_wait = stats.wait_ns - pipe.exported.wait_ns;
        let delta_overlap = stats.overlap_ns - pipe.exported.overlap_ns;
        pipe.exported = stats;
        self.obs.add_counter("wall.defer_work_ns", delta_work);
        self.obs.add_counter("wall.defer_wait_ns", delta_wait);
        self.obs.add_counter("wall.overlap_ns", delta_overlap);
    }

    fn screen_tx(&mut self, id: TxId, ctx: &mut Context<'_, ProtocolMsg>) {
        let Some(mut pending) = self.pending.remove(&id) else {
            return;
        };
        // Settle every provider signature queued during the Δ window —
        // the background batches first (pipelined engine), then whatever
        // is still queued — then attribute forgeries per reporting copy.
        self.settle_verify_batches();
        let provider = pending.provider;
        let signed_bytes = pending.ltx.tx.signing_bytes();
        let mut ok_reports = Vec::with_capacity(pending.reports.len());
        let mut good_sig: Option<Sig> = None;
        for (collector, label) in pending.reports.drain(..) {
            let sig = pending
                .sigs
                .iter()
                .find(|(c, _)| *c == collector)
                .map(|(_, s)| s.clone())
                .expect("every reporter recorded a signature");
            let key = (provider, id, sig.clone());
            let ok = match self.sig_memo.get(&key) {
                Some(&ok) => ok,
                None => {
                    // The memo filled and was cleared between the drain and
                    // this lookup; verify the straggler inline.
                    let ok = self
                        .provider_pk(provider)
                        .is_some_and(|pk| pk.verify(&signed_bytes, &sig));
                    self.sig_memo.insert(key, ok);
                    ok
                }
            };
            if ok {
                if good_sig.is_none() {
                    good_sig = Some(sig);
                }
                ok_reports.push((collector, label));
            } else {
                // Case 1, attributed at screen time: this reporter's copy
                // carried a forged provider signature.
                self.record_forgery(collector, ctx.now().ticks());
            }
        }
        if ok_reports.is_empty() {
            // Every copy was forged: nothing to screen (and no screening
            // randomness is consumed, matching the eager-verification
            // behaviour where such a window never opened).
            self.obs.emit(
                ctx.now().ticks(),
                self.net_idx(),
                ObsEvent::TxDropped {
                    trace: id.trace(),
                    reason: "forged",
                },
            );
            self.screen_spans.remove(&id);
            return;
        }
        // If the first-arrived copy carried a forged signature, re-home the
        // buffered transaction onto a verified one so block entries never
        // embed a bad signature.
        if let Some(good) = good_sig {
            if pending.ltx.tx.provider_sig != good {
                pending.ltx.tx.provider_sig = good;
            }
        }
        let mut reports = ok_reports;
        reports.sort_by_key(|(c, _)| *c);
        let screen_reports: Vec<Report> = reports
            .iter()
            .map(|(c, label)| {
                let slot = self
                    .topology
                    .provider_slot(*c, provider)
                    .expect("reporter is linked");
                Report {
                    collector: *c,
                    labeled_valid: label.is_valid(),
                    weight: self.reputation.weight(*c as usize, slot),
                }
            })
            .collect();
        let outcome = screen(&screen_reports, self.cfg.reputation.f, ctx.rng())
            .expect("at least one report exists");
        let check = match self.cfg.governor_mode {
            GovernorMode::Reputation => outcome.check,
            GovernorMode::CheckAll => true,
            GovernorMode::CheckNone => false,
        };
        let drawn_label = if screen_reports[outcome.drawn].labeled_valid {
            Label::Valid
        } else {
            Label::Invalid
        };
        self.metrics.screened += 1;
        let now = ctx.now().ticks();
        self.obs.emit(
            now,
            self.net_idx(),
            ObsEvent::TxScreened {
                trace: id.trace(),
                drawn: screen_reports[outcome.drawn].collector as u64,
                checked: check,
                label_valid: drawn_label.is_valid(),
            },
        );
        if let Some(span) = self.screen_spans.remove(&id) {
            self.obs.end_span(span, now, self.net_idx());
        }
        let absent: Vec<u32> = self
            .topology
            .collectors_of(provider)
            .iter()
            .copied()
            .filter(|&c| {
                !self
                    .collector_active
                    .get(c as usize)
                    .copied()
                    .unwrap_or(true)
            })
            .collect();

        if check {
            let valid = self.oracle.borrow().validate(id);
            self.metrics.validations += 1;
            self.metrics.checked += 1;
            self.obs.emit(
                now,
                self.net_idx(),
                ObsEvent::TxValidated {
                    trace: id.trace(),
                    valid,
                },
            );
            if !valid {
                self.obs.emit(
                    now,
                    self.net_idx(),
                    ObsEvent::TxDropped {
                        trace: id.trace(),
                        reason: "invalid",
                    },
                );
            }
            // Case 2: every reporter's misreport counter moves.
            let case2: Vec<(usize, bool)> = reports
                .iter()
                .map(|(c, label)| (*c as usize, label.is_valid() == valid))
                .collect();
            self.reputation.record_checked(&case2);
            if valid {
                self.ready_entries.push(BlockEntry {
                    tx: pending.ltx.tx.clone(),
                    verdict: Verdict::CheckedValid,
                    reported_labels: label_pairs(&reports),
                });
            }
            self.history.insert(
                id,
                TxRecord {
                    ltx: pending.ltx,
                    provider,
                    reports,
                    absent: absent.clone(),
                    outcome: Outcome::Checked { valid },
                },
            );
        } else {
            let counter = self.unchecked_counter.entry(provider).or_insert(0);
            let index = *counter;
            *counter += 1;
            self.metrics.unchecked += 1;
            self.screened_at.insert(id, now);
            let verdict = if drawn_label.is_valid() {
                Verdict::UncheckedValid
            } else {
                Verdict::UncheckedInvalid
            };
            self.ready_entries.push(BlockEntry {
                tx: pending.ltx.tx.clone(),
                verdict,
                reported_labels: label_pairs(&reports),
            });
            self.history.insert(
                id,
                TxRecord {
                    ltx: pending.ltx,
                    provider,
                    reports,
                    absent,
                    outcome: Outcome::Unchecked {
                        recorded: drawn_label,
                        index,
                    },
                },
            );
        }
    }

    fn on_propose(&mut self, round: u64, ctx: &mut Context<'_, ProtocolMsg>) {
        // Pipelined engine: settle every outstanding deferred check
        // before extending the head — a leader must never build on a
        // block that deferred validation is about to abort.
        self.settle_deferred_blocks(None, ctx.now().ticks());
        // A leader already chosen means the election ran over the full
        // claim set; electing from a partial set below may miss the true
        // winner, so a block proposed that way stays provisional.
        let informed = self.leader.is_some();
        if self.leader.is_none() {
            // Missing claims (crashed governors): elect from what arrived.
            self.run_election(ctx.now().ticks());
        }
        if self.leader != Some(self.index) {
            return;
        }
        if self.provisional_base.is_some() {
            // The previous provisional self-proposal is still
            // unconfirmed; building on it would deepen a potential fork
            // past what same-serial contests can undo. Skip the round —
            // the streak resolves via a rival's key, a foreign
            // successor, or recovery.
            self.metrics.proposals_withheld += 1;
            return;
        }
        let mode = self.profile.mode_in(round);
        // Argued re-records first, then fresh screenings, capped by b_limit.
        let mut entries: Vec<BlockEntry> = Vec::new();
        let mut argued_rest = Vec::new();
        for e in self.argued_entries.drain(..) {
            if entries.len() < self.cfg.b_limit {
                entries.push(e);
            } else {
                argued_rest.push(e);
            }
        }
        self.argued_entries = argued_rest;
        let mut ready_rest = Vec::new();
        let mut ready: Vec<BlockEntry> = self.ready_entries.drain(..).collect();
        ready.sort_by_key(|e| e.tx.id());
        for e in ready {
            // Never re-record something already in the ledger (argue
            // re-records enter via argued_entries only).
            if self.chain.find_tx(e.tx.id()).is_some() {
                continue;
            }
            if entries.len() < self.cfg.b_limit {
                entries.push(e);
            } else {
                ready_rest.push(e);
            }
        }
        self.ready_entries = ready_rest;

        if mode == ByzantineMode::Censor {
            // Drop every second entry of the deterministic assembly order:
            // selective censorship with plausible deniability — the block
            // stays well-formed, so this is tolerated, not detected.
            let before = entries.len();
            let mut nth = 0usize;
            let mut censored: Vec<u64> = Vec::new();
            let trace_drops = self.obs.is_enabled();
            entries.retain(|e| {
                nth += 1;
                let keep = nth % 2 == 1;
                if !keep && trace_drops {
                    censored.push(e.tx.id().trace());
                }
                keep
            });
            self.metrics.censored_txs += (before - entries.len()) as u64;
            if self.obs.is_enabled() {
                self.obs
                    .metrics()
                    .add("byzantine.censored_txs", (before - entries.len()) as u64);
            }
            let t = ctx.now().ticks();
            for trace in censored {
                self.obs.emit(
                    t,
                    self.net_idx(),
                    ObsEvent::TxDropped {
                        trace,
                        reason: "censored",
                    },
                );
            }
        }
        if mode == ByzantineMode::InvalidProposal {
            // A structurally plausible block entry whose "provider"
            // signature was actually made with the governor's own key,
            // mislabeled CheckedValid. Paranoid receivers reject the whole
            // block and attribute it to the proposer.
            let forged = SignedTx::create(
                TxPayload {
                    provider: NodeId::provider(0),
                    nonce: u64::MAX - round,
                    data: vec![0xBD],
                },
                ctx.now().ticks(),
                &self.key,
            );
            entries.push(BlockEntry {
                tx: forged,
                verdict: Verdict::CheckedValid,
                reported_labels: Vec::new(),
            });
            self.metrics.invalid_proposals_sent += 1;
            if self.obs.is_enabled() {
                self.obs.metrics().inc("byzantine.invalid_proposals_sent");
            }
        }

        let block = Block::build(
            self.chain.next_serial(),
            entries,
            self.chain.head_hash(),
            NodeId::governor(self.index),
            ctx.now().ticks(),
        );
        let size = 64 + 96 * block.tx_count();
        let now = ctx.now().ticks();
        self.obs.emit(
            now,
            self.net_idx(),
            ObsEvent::BlockProposed {
                serial: block.serial,
                entries: block.entries.len() as u64,
            },
        );
        if self.obs.is_enabled() {
            for e in &block.entries {
                self.obs.emit(
                    now,
                    self.net_idx(),
                    ObsEvent::TxProposed {
                        trace: e.tx.id().trace(),
                        serial: block.serial,
                    },
                );
            }
        }
        if let Some(span) = self.proposal_span.take() {
            self.obs.end_span(span, now, self.net_idx());
        }
        self.pay_collectors(&block);
        match self.chain.append(block.clone()) {
            Ok(()) => {
                self.metrics.blocks_appended += 1;
                self.obs.emit(
                    now,
                    self.net_idx(),
                    ObsEvent::BlockCommitted {
                        serial: block.serial,
                        entries: block.entries.len() as u64,
                    },
                );
                if self.obs.is_enabled() {
                    for e in &block.entries {
                        self.obs.emit(
                            now,
                            self.net_idx(),
                            ObsEvent::TxCommitted {
                                trace: e.tx.id().trace(),
                                serial: block.serial,
                            },
                        );
                    }
                }
                if let Some(span) = self.commit_span.take() {
                    self.obs.end_span(span, now, self.net_idx());
                }
                self.store_append_head();
                if self.cfg.checkpoint_interval > 0
                    && block.serial.is_multiple_of(self.cfg.checkpoint_interval)
                {
                    self.capture_checkpoint(block.serial);
                }
                // Rank the new head so same-serial rivals can contest it
                // by election key, and mark it provisional when the
                // election that produced it was under-informed.
                self.head_priority = self
                    .my_claim
                    .clone()
                    .and_then(|c| self.claim_key(&c, self.round));
                if !informed && self.provisional_base.is_none() {
                    self.provisional_base = Some(block.serial);
                }
            }
            Err(_) => self.metrics.append_failures += 1,
        }
        self.metrics.rounds_led += 1;
        let claim = self.my_claim.clone();
        // Pipelined engine: attach the deferred-validation root. The
        // commitment is computed honestly even by the byzantine profiles
        // (their forged *entries* are what deferred validation catches);
        // a mismatching root is a distinct crime, convicted same-round
        // hash-only by every receiver.
        let deferred_root = self.pipeline.is_some().then(|| block.validation_root());
        let size = size
            + claim.as_ref().map_or(0, |_| 96)
            + 72
            + if deferred_root.is_some() { 32 } else { 0 };
        let header = SignedHeader::create(self.index, round, block.serial, block.hash(), &self.key);
        if mode == ByzantineMode::Equivocate {
            // Double-sign a twin block differing only by timestamp and
            // split the committee: even-indexed peers get the original,
            // odd-indexed the twin. Neither half sees both blocks
            // directly — only the header echoes expose the conflict.
            let twin = Block::build(
                block.serial,
                block.entries.clone(),
                block.prev_hash,
                block.leader,
                block.timestamp + 1,
            );
            let twin_header =
                SignedHeader::create(self.index, round, twin.serial, twin.hash(), &self.key);
            self.metrics.equivocations_sent += 1;
            if self.metrics.first_equivocation_round.is_none() {
                self.metrics.first_equivocation_round = Some(round);
            }
            if self.obs.is_enabled() {
                self.obs.metrics().inc("byzantine.equivocations_sent");
            }
            for g in 0..self.cfg.governors {
                if g == self.index {
                    continue;
                }
                let msg = if g % 2 == 0 {
                    ProtocolMsg::BlockProposal {
                        block: block.clone(),
                        claim: claim.clone(),
                        header: Some(header.clone()),
                        deferred_root,
                    }
                } else {
                    ProtocolMsg::BlockProposal {
                        block: twin.clone(),
                        claim: claim.clone(),
                        header: Some(twin_header.clone()),
                        // The twin shares serial and entries, so its
                        // validation root is the same commitment.
                        deferred_root: self.pipeline.is_some().then(|| twin.validation_root()),
                    }
                };
                self.send_governor(ctx, g as usize, "block-proposal", size, msg);
            }
        } else {
            self.broadcast_governors(
                ctx,
                "block-proposal",
                size,
                ProtocolMsg::BlockProposal {
                    block,
                    claim,
                    header: Some(header),
                    deferred_root,
                },
            );
        }
    }

    fn pay_collectors(&mut self, block: &Block) {
        let valid = block
            .entries
            .iter()
            .filter(|e| e.verdict.counts_as_valid())
            .count();
        if valid == 0 {
            return;
        }
        let profit = valid as f64 * self.cfg.profit_per_tx;
        let logs = self.reputation.log_revenue_weights();
        for (c, share) in revenue::distribute(profit, &logs).into_iter().enumerate() {
            self.metrics.revenue_paid[c] += share;
        }
    }

    fn on_block(
        &mut self,
        block: Block,
        claim: Option<ElectionClaim>,
        header: Option<SignedHeader>,
        deferred_root: Option<Digest>,
        ctx: &mut Context<'_, ProtocolMsg>,
    ) {
        if block.leader == NodeId::governor(self.index) {
            return; // own proposal echoed back (should not happen)
        }
        if self.expelled.contains(&block.leader.index) {
            // Blocks from a convicted governor are ignored outright; any
            // settled prefix it contributed before conviction stands.
            if self.obs.is_enabled() {
                self.obs.metrics().inc("byzantine.blocks_ignored");
            }
            return;
        }
        let now = ctx.now().ticks();
        // Pipelined engine: settle everything strictly older than the
        // incoming serial first — validation of serial N completes while
        // (at the latest, when) consensus reaches N+1, and the serial /
        // height comparisons below must run against the post-settlement
        // chain (an abort may have popped the head this proposal claims
        // to extend). Same-serial records stay: a head still contestable
        // by a rival's election key is settled by the fork machinery,
        // not here.
        self.settle_deferred_blocks(Some(block.serial), now);
        // Strictly below the head: a retransmitted or slow duplicate,
        // not an agreement violation.
        if block.serial < self.chain.height() {
            self.metrics.duplicate_blocks += 1;
            return;
        }
        // Same serial as the head: a duplicate, or a head fork — two
        // governors self-elected under message loss and both proposed.
        // Forks resolve by the election's own ordering: the proposal
        // whose verified claim has the smaller (vrf_output, governor)
        // key wins, so every governor converges on the minimum over the
        // claims it saw, exactly as a fully-informed election would.
        if block.serial == self.chain.height() {
            if self.chain.head_hash() == block.hash() {
                self.metrics.duplicate_blocks += 1;
                return;
            }
            let parent_match = self
                .chain
                .retrieve(block.serial.saturating_sub(1))
                .is_some_and(|p| p.hash() == block.prev_hash);
            if !parent_match {
                // The rival disagrees deeper than the head — no local
                // key comparison can rank the chains. Shed whatever of
                // our head suffix is still unconfirmed; if that opens a
                // gap, the block parks and recovery refetches the chain
                // the network agreed on.
                self.rollback_unconfirmed();
                if block.serial > self.chain.height() + 1 {
                    let proposer = block.leader.index;
                    if !self.future_blocks.iter().any(|b| b.serial == block.serial) {
                        self.future_blocks.push(block);
                    }
                    self.start_recovery(Some(proposer), ctx);
                } else {
                    self.metrics.duplicate_blocks += 1;
                }
                return;
            }
            if let Some(key) = self.rival_priority(&block, claim.as_ref()) {
                if self.cfg.verify_blocks && !self.entries_authentic(&block) {
                    self.reject_invalid_block(&block, header.as_ref(), now);
                    return;
                }
                self.pop_head_repool();
                if self.append_and_clean(block, now).is_ok() {
                    // Same parent as the popped head, so the prefix
                    // agrees with the winner: nothing provisional left.
                    self.head_priority = Some(key);
                    self.provisional_base = None;
                }
            } else {
                self.metrics.duplicate_blocks += 1;
            }
            return;
        }
        // A successor built on a different head than ours: the network
        // committed to a rival chain while our head was still
        // unconfirmed. Roll back to the settled prefix; the block then
        // lands past a gap and the ordinary recovery path refetches the
        // winner's blocks. (If the head is settled, nothing pops and the
        // append below fails harmlessly into `append_failures`.)
        if block.serial == self.chain.height() + 1 && block.prev_hash != self.chain.head_hash() {
            self.rollback_unconfirmed();
        }
        // Gap: we missed blocks (e.g. while crashed). Park the block and
        // enter recovery, starting from its proposer.
        if block.serial > self.chain.height() + 1 {
            let proposer = block.leader.index;
            if !self.future_blocks.iter().any(|b| b.serial == block.serial) {
                self.future_blocks.push(block);
            }
            self.start_recovery(Some(proposer), ctx);
            return;
        }
        // Pipelined engine (proposal carries a deferred-validation root):
        // order the block NOW and verify its entry signatures one serial
        // behind. Three checks still run at ordering time, all cheap:
        // the root must match the entries the proposer actually shipped
        // (a mismatch is a forged commitment — convicted same-round,
        // hash-only), the entries must be structurally well-formed, and
        // anything the memo already knows as forged rejects immediately.
        // Everything else — the expensive signature batch — runs in the
        // background and settles at the next round boundary.
        let deferred = if !self.cfg.verify_blocks {
            false
        } else if self.pipeline.is_some() && deferred_root.is_some() {
            if deferred_root != Some(block.validation_root()) {
                if self.obs.is_enabled() {
                    self.obs.metrics().inc("pipeline.forged_roots");
                }
                self.reject_invalid_block(&block, header.as_ref(), now);
                return;
            }
            if !self.entries_well_formed(&block) {
                self.reject_invalid_block(&block, header.as_ref(), now);
                return;
            }
            true
        } else {
            if !self.entries_authentic(&block) {
                self.reject_invalid_block(&block, header.as_ref(), now);
                return;
            }
            false
        };
        if self.append_and_clean(block.clone(), now).is_ok() {
            // A committed successor settles every block beneath it, and
            // the new head is ranked for future same-serial contests.
            self.provisional_base = None;
            self.head_priority = claim
                .filter(|c| c.governor == block.leader.index)
                .and_then(|c| self.claim_key(&c, self.round));
            if deferred {
                self.defer_block_validation(&block, header, now);
            }
        }
    }

    /// Books a proposed block that failed paranoid entry verification,
    /// and convicts the proposer when the forgery is attributable: a
    /// direct proposal carries the proposer's signed header over this
    /// exact block hash, so signing garbage is self-incriminating to
    /// every governor it was broadcast to. Sync-served blocks carry no
    /// header (any peer could have fabricated the leader field), so they
    /// are rejected without conviction.
    fn reject_invalid_block(&mut self, block: &Block, header: Option<&SignedHeader>, now: u64) {
        self.metrics.append_failures += 1;
        self.metrics.invalid_blocks_rejected += 1;
        if self.obs.is_enabled() {
            self.obs.metrics().inc("byzantine.invalid_blocks_rejected");
        }
        if let Some(h) = header {
            if h.proposer == block.leader.index
                && h.serial == block.serial
                && h.block_hash == block.hash()
                && h.verify(&self.governor_pks)
            {
                self.expel(h.proposer, now);
            }
        }
    }

    /// Records a signed proposal header, echoes first sightings, and
    /// convicts on conflict. The header's own signature is the sole
    /// authority — echoes relayed by untrusted peers carry the proposer's
    /// signature verbatim, so relaying cannot frame anyone.
    fn note_header(&mut self, header: SignedHeader, ctx: &mut Context<'_, ProtocolMsg>) {
        if header.proposer == self.index
            || self.expelled.contains(&header.proposer)
            || !header.verify(&self.governor_pks)
        {
            return;
        }
        let now = ctx.now().ticks();
        // Re-gossip each distinct (proposer, serial, hash) exactly once,
        // so a split-sent conflicting pair reaches every honest governor
        // within one further delivery delay.
        if self
            .echoed
            .insert((header.proposer, header.serial, header.block_hash))
        {
            self.broadcast_governors(
                ctx,
                "header-echo",
                72,
                ProtocolMsg::HeaderEcho {
                    header: header.clone(),
                },
            );
        }
        let key = (header.proposer, header.serial);
        match self.seen_headers.get(&key).cloned() {
            None => {
                self.seen_headers.insert(key, (header, now));
            }
            Some((first, _)) if first.block_hash == header.block_hash => {}
            Some((first, seen_at)) => {
                // Two conflicting signed commitments at one serial:
                // assemble the self-verifying proof, tell everyone, and
                // expel locally.
                let evidence = EquivocationEvidence::new(first, header);
                let Ok(culprit) = evidence.verify(&self.governor_pks) else {
                    return; // defensive; both halves verified above
                };
                self.metrics.evidence_broadcast += 1;
                if self.obs.is_enabled() {
                    self.obs.metrics().inc("byzantine.equivocations_detected");
                    self.obs.metrics().inc("byzantine.evidence_broadcast");
                }
                self.broadcast_governors(ctx, "evidence", 160, ProtocolMsg::Evidence { evidence });
                self.obs.emit(
                    now,
                    self.net_idx(),
                    ObsEvent::EquivocationDetected {
                        culprit: culprit as u64,
                        serial: key.1,
                    },
                );
                self.obs
                    .end_span(Span::begin(phases::DETECTION, seen_at), now, self.net_idx());
                self.expel(culprit, now);
            }
        }
    }

    /// A peer forwarded equivocation evidence: verify both signatures
    /// (the accuser is not trusted) and expel the convicted governor.
    fn on_evidence(&mut self, evidence: EquivocationEvidence, ctx: &mut Context<'_, ProtocolMsg>) {
        let Ok(culprit) = evidence.verify(&self.governor_pks) else {
            return;
        };
        self.metrics.evidence_received += 1;
        if self.obs.is_enabled() {
            self.obs.metrics().inc("byzantine.evidence_received");
        }
        self.expel(culprit, ctx.now().ticks());
    }

    /// Expels `culprit` from this node's committee view: slashes its
    /// stake (so it can never mint another election claim), discards its
    /// live claim, and shrinks the full-claim-set threshold. Idempotent —
    /// concurrent detectors all broadcast evidence, and a culprit
    /// receiving proof against itself expels itself the same way,
    /// keeping every stake table in agreement.
    fn expel(&mut self, culprit: u32, now: u64) {
        if self.expelled.contains(&culprit) {
            return;
        }
        self.expelled.push(culprit);
        self.expelled.sort_unstable();
        self.stake_table.slash(culprit);
        self.claims.retain(|c| c.governor != culprit);
        self.metrics.expulsions += 1;
        self.metrics.expulsion_round.insert(culprit, self.round);
        self.obs.emit(
            now,
            self.net_idx(),
            ObsEvent::GovernorExpelled {
                culprit: culprit as u64,
                round: self.round,
            },
        );
        if self.obs.is_enabled() {
            self.obs.metrics().inc("byzantine.expulsions");
        }
        // Drop the culprit's blocks still sitting at the contestable head:
        // with the proposer convicted of double-signing, neither twin can
        // be trusted, and an equivocation in the final round would
        // otherwise leave the committee split with no successor to force
        // the usual prev-mismatch rollback. Every honest node applies the
        // same rule on the same evidence, so the shed serial is re-proposed
        // by an honest leader and the prefixes reconverge. Settled blocks
        // (those with a successor) are never popped.
        let culprit_id = NodeId::governor(culprit);
        while self
            .chain
            .latest_opt()
            .is_some_and(|b| b.serial > 0 && b.leader == culprit_id)
        {
            self.pop_head_repool();
        }
    }

    /// The election ordering key of `claim`, verified against `round`:
    /// `(vrf_output, governor, round)`. `None` when the claim does not
    /// verify, claims a stake unit the governor does not own, or names
    /// an unknown governor — the VRF binds governor and round, so a
    /// stolen or replayed claim fails here.
    fn claim_key(&self, claim: &ElectionClaim, round: u64) -> Option<(Digest, u32, u64)> {
        if claim.unit >= self.stake_table.stake(claim.governor).unwrap_or(0) {
            return None;
        }
        let pk = self.governor_pks.get(claim.governor as usize)?;
        let out = claim.verify(b"prb-chain", round, pk)?;
        Some((out, claim.governor, round))
    }

    /// Ranks a same-serial rival proposal against the current head,
    /// returning the rival's election key when it genuinely wins: the
    /// head must still be contestable (no committed successor yet), both
    /// proposals must share a parent, and the rival's claim must verify
    /// against the round the head was won in with a strictly smaller
    /// election key.
    fn rival_priority(
        &self,
        block: &Block,
        claim: Option<&ElectionClaim>,
    ) -> Option<(Digest, u32, u64)> {
        let (head_out, head_gov, head_round) = self.head_priority?;
        let claim = claim?;
        if claim.governor != block.leader.index {
            return None;
        }
        let parent = self.chain.retrieve(block.serial.checked_sub(1)?)?;
        if parent.hash() != block.prev_hash {
            return None;
        }
        let (out, gov, round) = self.claim_key(claim, head_round)?;
        ((out, gov) < (head_out, head_gov)).then_some((out, gov, round))
    }

    /// Pops the head block, returning its displaced entries to the ready
    /// pool so a later led round re-records whatever the winning chain
    /// does not already cover (`on_propose` dedups against the ledger).
    fn pop_head_repool(&mut self) {
        let Some(block) = self.chain.pop() else {
            return;
        };
        if let Some(store) = &mut self.store {
            store
                .pop()
                .expect("durable store pop must mirror the chain");
        }
        self.metrics.head_rollbacks += 1;
        if self.obs.is_enabled() {
            self.obs.metrics().inc("sync.rollback");
        }
        if self
            .provisional_base
            .is_some_and(|b| b > self.chain.height())
        {
            self.provisional_base = None;
        }
        self.head_priority = None;
        for e in block.entries {
            if self.chain.find_tx(e.tx.id()).is_none()
                && !self.ready_entries.iter().any(|r| r.tx.id() == e.tx.id())
            {
                self.ready_entries.push(e);
            }
        }
    }

    /// Rolls back every provisional head block — this governor's own
    /// self-proposals made without the full claim set — down to the
    /// settled prefix.
    fn rollback_provisional(&mut self) {
        let Some(base) = self.provisional_base else {
            return;
        };
        while self.chain.height() >= base {
            self.pop_head_repool();
        }
        self.provisional_base = None;
    }

    /// Rolls back the whole unconfirmed head suffix in the face of fork
    /// evidence a key comparison cannot rank: provisional blocks, then
    /// this governor's own-led streak at the head (own blocks with no
    /// foreign successor are exactly the ones the network may have
    /// bypassed), and finally — if nothing else popped — a foreign head
    /// that is still contestable. Settled blocks are never popped, and a
    /// wrongly shed block is simply refetched by the recovery that
    /// follows.
    fn rollback_unconfirmed(&mut self) {
        let me = NodeId::governor(self.index);
        let before = self.metrics.head_rollbacks;
        self.rollback_provisional();
        while self
            .chain
            .latest_opt()
            .is_some_and(|b| b.serial > 0 && b.leader == me)
        {
            self.pop_head_repool();
        }
        if self.metrics.head_rollbacks == before && self.head_priority.is_some() {
            self.pop_head_repool();
        }
    }

    /// Paranoid mode: every entry must carry a genuine provider signature
    /// from a provider linked with at least one reporting collector whose
    /// own signature is also genuine... the provider signature alone
    /// suffices for Almost No Creation, so that is what is checked (the
    /// reported labels are the leader's claim and feed only revenue).
    ///
    /// Signatures the memo does not already know are verified as one
    /// pooled batch instead of entry by entry.
    /// Structural half of entry verification: every entry must name a
    /// real provider identity. Hash- and signature-free, so the pipelined
    /// engine runs it at ordering time even though the signature batch is
    /// deferred.
    fn entries_well_formed(&self, block: &Block) -> bool {
        block.entries.iter().all(|e| {
            e.tx.payload.provider.role == prb_crypto::identity::Role::Provider
                && self.provider_pk(e.tx.payload.provider.index).is_some()
        })
    }

    fn entries_authentic(&mut self, block: &Block) -> bool {
        if !self.entries_well_formed(block) {
            return false;
        }
        // Batch every signature the memo cannot answer.
        let mut fresh: Vec<(u32, TxId, Sig, Vec<u8>)> = Vec::new();
        let mut seen: HashSet<(u32, TxId, Sig)> = HashSet::new();
        for e in &block.entries {
            let p = e.tx.payload.provider.index;
            let key = (p, e.tx.id(), e.tx.provider_sig.clone());
            if !self.sig_memo.contains_key(&key) && seen.insert(key.clone()) {
                fresh.push((key.0, key.1, key.2, e.tx.signing_bytes()));
            }
        }
        if !fresh.is_empty() {
            if self.obs.is_enabled() {
                self.obs
                    .metrics()
                    .observe("crypto.batch.size", fresh.len() as u64);
                self.obs
                    .metrics()
                    .add("gov.sig_memo_miss", fresh.len() as u64);
            }
            self.metrics.sig_memo_misses += fresh.len() as u64;
            let items: Vec<(&[u8], &Sig, &PublicKey)> = fresh
                .iter()
                .map(|(p, _, sig, msg)| {
                    let pk = self.provider_pk(*p).expect("well-formedness checked");
                    (&msg[..], sig, pk)
                })
                .collect();
            let t0 = self.obs.is_enabled().then(std::time::Instant::now);
            let verdicts = self.verify_pool.verify_sigs(&items);
            if let Some(t0) = t0 {
                self.obs
                    .add_counter("wall.crypto_ns", t0.elapsed().as_nanos() as u64);
            }
            for ((p, id, sig, _), ok) in fresh.into_iter().zip(verdicts) {
                if self.sig_memo.len() >= SIG_MEMO_MAX {
                    self.sig_memo.clear();
                }
                self.sig_memo.insert((p, id, sig), ok);
            }
        }
        block.entries.iter().all(|e| {
            let p = e.tx.payload.provider.index;
            self.verify_provider_sig(p, &e.tx)
        })
    }

    /// Memoized provider-signature verification.
    ///
    /// The same signed transaction is verified at upload and then again,
    /// in paranoid mode, for every governor that re-checks the committed
    /// block carrying it. The verdict is a pure function of the provider's
    /// key and `(tx id, signature)` — the id hashes every signed field
    /// (provider, nonce, timestamp, data) — so it is memoized, turning the
    /// re-checks into map lookups. A forged signature is memoized as
    /// `false` and stays `false`: probes cannot flip a cached verdict.
    fn verify_provider_sig(&mut self, provider: u32, tx: &SignedTx) -> bool {
        let key = (provider, tx.id(), tx.provider_sig.clone());
        if let Some(&ok) = self.sig_memo.get(&key) {
            self.metrics.sig_memo_hits += 1;
            if self.obs.is_enabled() {
                self.obs.metrics().inc("gov.sig_memo_hit");
            }
            return ok;
        }
        let ok = self.provider_pk(provider).is_some_and(|pk| tx.verify(pk));
        self.metrics.sig_memo_misses += 1;
        if self.obs.is_enabled() {
            self.obs.metrics().inc("gov.sig_memo_miss");
        }
        if self.sig_memo.len() >= SIG_MEMO_MAX {
            self.sig_memo.clear();
        }
        self.sig_memo.insert(key, ok);
        ok
    }

    /// Appends `block` and drops local buffers it covers. On failure the
    /// typed [`ChainError`] names exactly which integrity check rejected
    /// the block (callers on the sync path surface its
    /// [`ChainError::kind`] in the rejection metrics).
    fn append_and_clean(&mut self, block: Block, now: u64) -> Result<(), ChainError> {
        let included: HashSet<TxId> = block.entries.iter().map(|e| e.tx.id()).collect();
        let (serial, entries) = (block.serial, block.entries.len() as u64);
        let traces: Vec<u64> = if self.obs.is_enabled() {
            block.entries.iter().map(|e| e.tx.id().trace()).collect()
        } else {
            Vec::new()
        };
        match self.chain.append(block) {
            Ok(()) => {
                self.metrics.blocks_appended += 1;
                self.obs.emit(
                    now,
                    self.net_idx(),
                    ObsEvent::BlockCommitted { serial, entries },
                );
                for trace in traces {
                    self.obs
                        .emit(now, self.net_idx(), ObsEvent::TxCommitted { trace, serial });
                }
                if let Some(span) = self.commit_span.take() {
                    self.obs.end_span(span, now, self.net_idx());
                }
                self.store_append_head();
                if self.cfg.checkpoint_interval > 0 && serial % self.cfg.checkpoint_interval == 0 {
                    self.capture_checkpoint(serial);
                }
            }
            Err(e) => {
                self.metrics.append_failures += 1;
                return Err(e);
            }
        }
        // Drop local buffers covered by the leader's block.
        self.ready_entries
            .retain(|e| !included.contains(&e.tx.id()));
        self.argued_entries
            .retain(|e| !included.contains(&e.tx.id()));
        Ok(())
    }

    /// Enters the `Recovering` state (no-op when already recovering or
    /// when there is no peer to ask) and sends the first page request.
    /// `preferred` names the peer to try first — the proposer of the
    /// block that exposed the gap, when known.
    fn start_recovery(&mut self, preferred: Option<u32>, ctx: &mut Context<'_, ProtocolMsg>) {
        if matches!(self.sync, SyncState::Recovering { .. }) || self.cfg.governors < 2 {
            return;
        }
        // A provisional head would shadow the peer's settled block at the
        // same serial (incoming pages skip serials we "already have") —
        // roll it back first; recovery refetches the agreed truth.
        self.rollback_provisional();
        let now = ctx.now().ticks();
        let peer = preferred
            .filter(|&p| p != self.index && p < self.cfg.governors)
            .unwrap_or_else(|| self.sync_peer(0));
        self.sync = SyncState::Recovering {
            attempt: 0,
            peer,
            since: now,
        };
        self.metrics.sync_requested += 1;
        if self.obs.is_enabled() {
            self.obs.metrics().inc("sync.requested");
        }
        self.recovery_span = Some(Span::begin(phases::RECOVERY, now));
        self.send_sync_request(peer, ctx);
    }

    /// The peer asked on rotation `attempt`: cycles over the other
    /// governors starting just past this one's own index.
    fn sync_peer(&self, attempt: u32) -> u32 {
        let m = self.cfg.governors;
        let mut peer = (self.index + 1 + attempt) % m;
        if peer == self.index {
            peer = (peer + 1) % m;
        }
        peer
    }

    /// Sends one page request to `peer` and arms the rotation timer.
    fn send_sync_request(&mut self, peer: u32, ctx: &mut Context<'_, ProtocolMsg>) {
        let have = self.chain.height();
        ctx.send_sized(
            self.governor_base + peer as usize,
            "sync-request",
            16,
            ProtocolMsg::SyncRequest { have },
        );
        if let SyncState::Recovering { attempt, .. } = self.sync {
            // Deadline for the page: a request/response round trip plus
            // slack. No response (crashed peer, lost message) rotates.
            let timer = ctx.set_timer(SimDuration(4 * self.cfg.max_delay + 4));
            self.sync_timers.insert(timer, (attempt, have));
        }
    }

    /// A rotation timer fired: if the recovery it belongs to is still
    /// stalled at the same attempt and height, try the next peer.
    fn on_sync_timer(
        &mut self,
        attempt: u32,
        height_at_arm: u64,
        ctx: &mut Context<'_, ProtocolMsg>,
    ) {
        let SyncState::Recovering {
            attempt: current,
            peer,
            since,
        } = self.sync
        else {
            return; // recovery already completed
        };
        if current != attempt || self.chain.height() != height_at_arm {
            // Progress since this timer was armed. A sync page always
            // re-requests (arming a fresh timer), but progress from a
            // normally-appended block does not — if no other rotation
            // timer is pending, probe the current peer again so the
            // rotation chain survives instead of going zombie.
            if self.sync_timers.is_empty() {
                self.send_sync_request(peer, ctx);
            }
            return;
        }
        let next = attempt + 1;
        if next >= MAX_SYNC_ATTEMPTS {
            self.abandon_recovery();
            return;
        }
        let peer = self.sync_peer(next);
        self.sync = SyncState::Recovering {
            attempt: next,
            peer,
            since,
        };
        self.send_sync_request(peer, ctx);
    }

    /// Gives up on the current recovery (every rotation went
    /// unanswered). The next observed gap re-triggers it.
    fn abandon_recovery(&mut self) {
        self.sync = SyncState::Synced;
        self.recovery_span = None;
        self.metrics.sync_abandoned += 1;
        if self.obs.is_enabled() {
            self.obs.metrics().inc("sync.abandoned");
        }
    }

    fn on_sync_request(
        &mut self,
        have: u64,
        requester: NodeIdx,
        ctx: &mut Context<'_, ProtocolMsg>,
    ) {
        // Always respond — an empty page still tells the requester this
        // peer's head, letting it finish (or re-aim) its recovery.
        let head = self.chain.height();
        let blocks: Vec<Block> = ((have + 1)..=head)
            .take(self.cfg.sync_page)
            .filter_map(|s| self.chain.retrieve(s).cloned())
            .collect();
        // Offer the latest checkpoint certificate when the requester is
        // behind it: adopting it lets the peer skip every pre-checkpoint
        // page and fetch only the suffix (O(delta) state-sync).
        let cert = self
            .latest_cert
            .as_ref()
            .filter(|c| c.state.serial > have)
            .map(|c| Box::new(c.clone()));
        let size = 80
            + 96 * blocks.iter().map(Block::tx_count).sum::<usize>()
            + cert
                .as_ref()
                .map_or(0, |c| 104 + 16 * c.state.stakes.len() + 96 * c.sigs.len());
        ctx.send_sized(
            requester,
            "sync-response",
            size,
            ProtocolMsg::SyncResponse { blocks, head, cert },
        );
        self.metrics.sync_served += 1;
        if self.obs.is_enabled() {
            self.obs.metrics().inc("sync.served");
        }
    }

    fn on_sync_response(
        &mut self,
        blocks: Vec<Block>,
        head: u64,
        cert: Option<Box<CheckpointCert>>,
        from: NodeIdx,
        ctx: &mut Context<'_, ProtocolMsg>,
    ) {
        let now = ctx.now().ticks();
        let before = self.chain.height();
        // A certificate offer is handled first: adopting it re-anchors
        // the chain past every page the peer would otherwise have to
        // serve. A stale or invalid offer is rejected (counted) and the
        // plain block path below proceeds unaffected.
        if let Some(cert) = cert {
            self.maybe_adopt_checkpoint(*cert, now);
        }
        let before_page = self.chain.height();
        for block in blocks {
            if block.serial != self.chain.height() + 1 {
                continue; // stale page or duplicate
            }
            if block.prev_hash != self.chain.head_hash() {
                // The peer's settled chain disagrees with our head: fork
                // evidence discovered mid-recovery. Shed the unconfirmed
                // suffix; the follow-up page request (our new, lower
                // height) refetches from the divergence point.
                self.rollback_unconfirmed();
                if block.serial != self.chain.height() + 1 {
                    continue;
                }
            }
            if self.cfg.verify_blocks && !self.entries_authentic(&block) {
                self.metrics.append_failures += 1;
                continue;
            }
            match self.append_and_clean(block, now) {
                Ok(()) => {
                    // Sync-applied blocks come from a peer's settled chain.
                    self.head_priority = None;
                    self.provisional_base = None;
                    self.metrics.sync_applied += 1;
                    if self.obs.is_enabled() {
                        self.obs.metrics().inc("sync.applied");
                    }
                }
                Err(e) => {
                    // Surface exactly which integrity check rejected the
                    // page block — a corrupt or byzantine sync payload is
                    // visible in the metrics, never silently dropped.
                    *self.metrics.sync_rejected.entry(e.kind()).or_default() += 1;
                    if self.obs.is_enabled() {
                        self.obs.metrics().inc("sync.rejected");
                    }
                }
            }
        }
        if self.metrics.adopted_serial > 0 && self.chain.height() > before_page {
            // O(delta) accounting: pages that contributed blocks after
            // the most recent checkpoint adoption.
            self.metrics.pages_after_adopt += 1;
        }
        // Drain any parked blocks that now fit.
        self.future_blocks.sort_by_key(|b| b.serial);
        let parked = std::mem::take(&mut self.future_blocks);
        for block in parked {
            if block.serial == self.chain.height() + 1 {
                if self.append_and_clean(block, now).is_ok() {
                    self.head_priority = None;
                    self.provisional_base = None;
                }
            } else if block.serial > self.chain.height() + 1 {
                self.future_blocks.push(block);
            }
        }
        let SyncState::Recovering { attempt, since, .. } = self.sync else {
            return; // unsolicited (e.g. a late page after completion)
        };
        if self.chain.height() < head {
            // More pages remain. Page progress resets the rotation
            // counter and keeps asking the peer that just answered; a
            // pageless response (peer cannot help) rotates.
            let progressed = self.chain.height() > before;
            let next = if progressed { 0 } else { attempt + 1 };
            if next >= MAX_SYNC_ATTEMPTS {
                self.abandon_recovery();
                return;
            }
            // Checked committee-offset conversion: a responder outside
            // the governor range (or past u32 on exotic layouts) must
            // rotate, never silently truncate into a bogus peer index.
            let responder = from
                .checked_sub(self.governor_base)
                .and_then(|off| u32::try_from(off).ok())
                .filter(|&g| g < self.cfg.governors);
            let peer = match responder {
                Some(g) if progressed => g,
                _ => self.sync_peer(next),
            };
            self.sync = SyncState::Recovering {
                attempt: next,
                peer,
                since,
            };
            self.send_sync_request(peer, ctx);
        } else {
            // Caught up to the responder's head: recovery complete.
            self.sync = SyncState::Synced;
            self.metrics.sync_recovered += 1;
            self.metrics.recovery_ticks.push(now.saturating_sub(since));
            if self.obs.is_enabled() {
                self.obs.metrics().inc("sync.recovered");
                self.obs
                    .metrics()
                    .observe("sync.recovery_ticks", now.saturating_sub(since));
            }
            if let Some(span) = self.recovery_span.take() {
                self.obs.end_span(span, now, self.net_idx());
            }
            // Parked blocks past a *new* gap (committed while we paged):
            // chase that gap immediately.
            if let Some(next_gap) = self.future_blocks.iter().min_by_key(|b| b.serial) {
                let proposer = next_gap.leader.index;
                self.start_recovery(Some(proposer), ctx);
            }
        }
    }

    /// Applies a signed stake transfer broadcast during the round.
    ///
    /// Every governor receives the same transfer set (atomic broadcast)
    /// and applies the same validation deterministically, so the stake
    /// tables stay in agreement; the 3-step signed stake-block protocol
    /// that certifies the resulting state is exercised separately in
    /// `prb-consensus` (this path keeps the election weights live).
    fn on_stake_transfer(&mut self, transfer: StakeTransfer, _ctx: &mut Context<'_, ProtocolMsg>) {
        if self.expelled.contains(&transfer.from) || self.expelled.contains(&transfer.to) {
            return; // expelled governors are out of the stake economy
        }
        let Some(sender_pk) = self.governor_pks.get(transfer.from as usize) else {
            return;
        };
        if !transfer.verify(sender_pk) {
            return;
        }
        let _ = self.stake_table.apply(&transfer);
    }

    /// Stamps an `ArgueRejected` event (provider resolved from history
    /// where possible).
    fn emit_argue_rejected(&self, now: u64, id: TxId, reason: &'static str) {
        let provider = self
            .history
            .get(&id)
            .map_or(u64::MAX, |r| r.provider as u64);
        self.obs.emit(
            now,
            self.net_idx(),
            ObsEvent::ArgueRejected { provider, reason },
        );
    }

    fn on_argue(&mut self, id: TxId, ctx: &mut Context<'_, ProtocolMsg>) {
        let now = ctx.now().ticks();
        if self.revealed.contains(&id) {
            self.emit_argue_rejected(now, id, "duplicate");
            return;
        }
        let Some(record) = self.history.get(&id) else {
            self.emit_argue_rejected(now, id, "unknown-tx");
            return; // never screened here
        };
        let Outcome::Unchecked {
            recorded: Label::Invalid,
            index,
        } = record.outcome
        else {
            self.emit_argue_rejected(now, id, "not-unchecked");
            return; // only invalid-unchecked records can be argued
        };
        let provider = record.provider;
        let current = self.unchecked_counter.get(&provider).copied().unwrap_or(0);
        if current.saturating_sub(index) > self.cfg.argue_limit_u {
            // Buried under more than U unchecked transactions: permanently
            // invalid (§3.1).
            self.metrics.argue_rejected += 1;
            self.emit_argue_rejected(now, id, "bound");
            if self.oracle.borrow().peek(id) == Some(true) {
                self.metrics.lost_valid += 1;
            }
            return;
        }
        // "Governors will immediately verify this transaction."
        let valid = self.oracle.borrow().validate(id);
        self.metrics.validations += 1;
        self.metrics.argue_accepted += 1;
        self.obs.emit(
            now,
            self.net_idx(),
            ObsEvent::ArgueAccepted {
                provider: provider as u64,
            },
        );
        if let Some(&t0) = self.screened_at.get(&id) {
            self.obs
                .end_span(Span::begin(phases::ARGUE, t0), now, self.net_idx());
        }
        if valid {
            let record = &self.history[&id];
            self.argued_entries.push(BlockEntry {
                tx: record.ltx.tx.clone(),
                verdict: Verdict::ArguedValid,
                reported_labels: label_pairs(&record.reports),
            });
        }
        self.reveal_internal(id, valid, now);
    }

    fn on_reveal(&mut self, id: TxId, valid: bool, now: u64) {
        if self.revealed.contains(&id) {
            return;
        }
        let Some(record) = self.history.get(&id) else {
            return;
        };
        if !matches!(record.outcome, Outcome::Unchecked { .. }) {
            return; // checked transactions are already settled
        }
        self.reveal_internal(id, valid, now);
    }

    /// Case 3 plus loss accounting for a now-revealed unchecked tx.
    fn reveal_internal(&mut self, id: TxId, valid: bool, now: u64) {
        self.revealed.insert(id);
        let record = self.history[&id].clone();
        let provider = record.provider;
        let mut revealed_reports = Vec::new();
        let mut involvements = Vec::new();
        let mut reporters = HashSet::new();
        for (c, label) in &record.reports {
            reporters.insert(*c);
            let slot = self
                .topology
                .provider_slot(*c, provider)
                .expect("reporter is linked");
            let behaviour = if label.is_valid() == valid {
                RevealedBehaviour::Correct
            } else {
                RevealedBehaviour::Wrong
            };
            involvements.push((
                *c,
                if behaviour == RevealedBehaviour::Wrong {
                    2.0
                } else {
                    0.0
                },
            ));
            revealed_reports.push(RevealedReport {
                collector: *c as usize,
                provider_slot: slot,
                behaviour,
            });
        }
        for &c in self.topology.collectors_of(provider) {
            if !self
                .collector_active
                .get(c as usize)
                .copied()
                .unwrap_or(true)
                || record.absent.contains(&c)
            {
                // Departed collectors owe no report; neither does a
                // member that was absent when the tx was screened,
                // however long ago it rejoined.
                continue;
            }
            if !reporters.contains(&c) {
                let slot = self
                    .topology
                    .provider_slot(c, provider)
                    .expect("linked by construction");
                involvements.push((c, 1.0));
                revealed_reports.push(RevealedReport {
                    collector: c as usize,
                    provider_slot: slot,
                    behaviour: RevealedBehaviour::Missed,
                });
            }
        }
        let out = self.reputation.record_revealed(&revealed_reports);
        let recorded_wrong = match record.outcome {
            Outcome::Unchecked { recorded, .. } => recorded.is_valid() != valid,
            Outcome::Checked { .. } => false,
        };
        self.obs.emit(
            now,
            self.net_idx(),
            ObsEvent::Revealed {
                valid,
                verdict_correct: !recorded_wrong,
            },
        );
        if let Some(t0) = self.screened_at.remove(&id) {
            self.obs
                .end_span(Span::begin(phases::REVEAL, t0), now, self.net_idx());
        }
        self.metrics
            .record_reveal(provider, out.l_tx, recorded_wrong, involvements);
    }
}

fn label_pairs(reports: &[(u32, Label)]) -> Vec<(NodeId, Label)> {
    reports
        .iter()
        .map(|(c, l)| (NodeId::collector(*c), *l))
        .collect()
}

#[cfg(test)]
mod fork_tests {
    //! Direct tests of the head-fork resolution helpers: election-key
    //! ranking of rival proposals, and the rollback paths that shed
    //! provisional or own-led head blocks before recovery refetches the
    //! settled chain.

    use super::*;
    use prb_crypto::signer::CryptoScheme;
    use prb_ledger::transaction::TxPayload;

    const TAG: &[u8] = b"prb-chain";

    fn rig(governors: u32) -> (Vec<KeyPair>, GovernorNode) {
        let cfg = ProtocolConfig {
            governors,
            seed: 7,
            ..Default::default()
        };
        let scheme = CryptoScheme::sim();
        let keys: Vec<KeyPair> = (0..governors)
            .map(|g| scheme.keypair_from_seed(format!("fork-g{g}").as_bytes()))
            .collect();
        let pks: Vec<PublicKey> = keys.iter().map(|k| k.public_key()).collect();
        let topology = Rc::new(Topology::cyclic(cfg.topology_params()).unwrap());
        let oracle = Rc::new(RefCell::new(ValidityOracle::new()));
        let gov = GovernorNode::new(
            0,
            keys[0].clone(),
            cfg,
            topology,
            oracle,
            0,
            Vec::new(),
            Vec::new(),
            pks,
        );
        (keys, gov)
    }

    fn entry(nonce: u64, key: &KeyPair) -> BlockEntry {
        let tx = SignedTx::create(
            TxPayload {
                provider: NodeId::provider(0),
                nonce,
                data: vec![1],
            },
            1,
            key,
        );
        BlockEntry {
            tx,
            verdict: Verdict::CheckedValid,
            reported_labels: Vec::new(),
        }
    }

    fn claim_for(gov: &GovernorNode, keys: &[KeyPair], g: u32, round: u64) -> ElectionClaim {
        let stake = gov.stake_table.stake(g).unwrap();
        ElectionClaim::compute(TAG, round, g, stake, &keys[g as usize]).unwrap()
    }

    #[test]
    fn claim_key_enforces_stake_round_and_proof() {
        let (keys, gov) = rig(2);
        let claim = claim_for(&gov, &keys, 1, 3);
        assert!(gov.claim_key(&claim, 3).is_some());
        // The VRF proof binds the round it was computed for.
        assert!(gov.claim_key(&claim, 4).is_none());
        // A unit at or past the governor's stake mints no lottery ticket.
        let mut over = claim.clone();
        over.unit = gov.stake_table.stake(1).unwrap();
        assert!(gov.claim_key(&over, 3).is_none());
        // A claim evaluated under a foreign key fails verification.
        let stake = gov.stake_table.stake(1).unwrap();
        let forged = ElectionClaim::compute(TAG, 3, 1, stake, &keys[0]).unwrap();
        assert!(gov.claim_key(&forged, 3).is_none());
    }

    #[test]
    fn rival_priority_contests_only_smaller_keys_on_contestable_heads() {
        let (keys, mut gov) = rig(2);
        let round = 1;
        let claim0 = claim_for(&gov, &keys, 0, round);
        let claim1 = claim_for(&gov, &keys, 1, round);
        let key0 = gov.claim_key(&claim0, round).unwrap();
        let key1 = gov.claim_key(&claim1, round).unwrap();
        assert_ne!(key0, key1);
        let parent = gov.chain.latest().hash();
        gov.chain
            .append(Block::build(1, Vec::new(), parent, NodeId::governor(0), 10))
            .unwrap();
        // Orient by the actual VRF ordering so both directions are covered.
        let (small_key, small_claim, small_gov, big_key, big_claim, big_gov) = if key0 < key1 {
            (key0, claim0, 0, key1, claim1, 1)
        } else {
            (key1, claim1, 1, key0, claim0, 0)
        };
        let small_block = Block::build(1, Vec::new(), parent, NodeId::governor(small_gov), 11);
        let big_block = Block::build(1, Vec::new(), parent, NodeId::governor(big_gov), 11);
        // A head held under the larger key loses to the smaller rival...
        gov.head_priority = Some(big_key);
        assert_eq!(
            gov.rival_priority(&small_block, Some(&small_claim)),
            Some(small_key)
        );
        // ...but a head already under the smaller key beats the larger rival.
        gov.head_priority = Some(small_key);
        assert!(gov.rival_priority(&big_block, Some(&big_claim)).is_none());
        // A settled head (priority None) is never contested.
        gov.head_priority = None;
        assert!(gov
            .rival_priority(&small_block, Some(&small_claim))
            .is_none());
        // A claim by anyone but the block's leader is ignored.
        gov.head_priority = Some(big_key);
        assert!(gov.rival_priority(&small_block, Some(&big_claim)).is_none());
        // A rival built on a different parent cannot be ranked.
        let mut off_parent = small_block;
        off_parent.prev_hash = Digest::default();
        assert!(gov
            .rival_priority(&off_parent, Some(&small_claim))
            .is_none());
    }

    #[test]
    fn pop_head_repool_returns_uncommitted_entries_to_the_pool() {
        let (keys, mut gov) = rig(2);
        let e = entry(0, &keys[0]);
        let parent = gov.chain.latest().hash();
        gov.chain
            .append(Block::build(
                1,
                vec![e.clone()],
                parent,
                NodeId::governor(0),
                5,
            ))
            .unwrap();
        gov.pop_head_repool();
        assert_eq!(gov.chain.height(), 0);
        assert_eq!(gov.metrics.head_rollbacks, 1);
        assert!(gov.head_priority.is_none());
        assert!(gov.ready_entries.iter().any(|r| r.tx.id() == e.tx.id()));
        // Popping again stops at genesis and counts nothing.
        gov.pop_head_repool();
        assert_eq!(gov.chain.height(), 0);
        assert_eq!(gov.metrics.head_rollbacks, 1);
    }

    #[test]
    fn rollback_unconfirmed_sheds_provisional_and_own_led_suffix() {
        let (_keys, mut gov) = rig(2);
        // serial 1: foreign block; serials 2-3: own-led, 3 provisional.
        let parent = gov.chain.latest().hash();
        gov.chain
            .append(Block::build(1, Vec::new(), parent, NodeId::governor(1), 5))
            .unwrap();
        let h1 = gov.chain.latest().hash();
        gov.chain
            .append(Block::build(2, Vec::new(), h1, NodeId::governor(0), 6))
            .unwrap();
        let h2 = gov.chain.latest().hash();
        gov.chain
            .append(Block::build(3, Vec::new(), h2, NodeId::governor(0), 7))
            .unwrap();
        gov.provisional_base = Some(3);
        gov.rollback_unconfirmed();
        // The provisional head and the own-led block under it are shed; the
        // foreign block survives as the new head.
        assert_eq!(gov.chain.height(), 1);
        assert!(gov.provisional_base.is_none());
        assert_eq!(gov.metrics.head_rollbacks, 2);
    }

    #[test]
    fn expel_slashes_discards_claims_and_is_idempotent() {
        let (keys, mut gov) = rig(3);
        gov.round = 4;
        gov.claims.push(claim_for(&gov, &keys, 1, 4));
        gov.claims.push(claim_for(&gov, &keys, 2, 4));
        gov.expel(1, 100);
        assert_eq!(gov.expelled(), &[1]);
        assert_eq!(gov.stake_table.stake(1), Some(0));
        assert!(gov.claims.iter().all(|c| c.governor != 1));
        assert_eq!(gov.claims.len(), 1);
        assert_eq!(gov.metrics.expulsions, 1);
        assert_eq!(gov.metrics.expulsion_round[&1], 4);
        // A second conviction of the same governor changes nothing.
        gov.expel(1, 200);
        assert_eq!(gov.expelled(), &[1]);
        assert_eq!(gov.metrics.expulsions, 1);
        // A slashed governor can no longer mint election claims.
        assert!(
            ElectionClaim::compute(TAG, 5, 1, gov.stake_table.stake(1).unwrap(), &keys[1])
                .is_none()
        );
    }

    #[test]
    fn rollback_unconfirmed_pops_one_contestable_foreign_head() {
        let (keys, mut gov) = rig(2);
        let parent = gov.chain.latest().hash();
        gov.chain
            .append(Block::build(1, Vec::new(), parent, NodeId::governor(1), 5))
            .unwrap();
        // A settled foreign head is left alone: no fork evidence applies.
        gov.rollback_unconfirmed();
        assert_eq!(gov.chain.height(), 1);
        // A contestable foreign head (priority still tracked) is popped so
        // recovery can refetch whichever proposal the network agreed on.
        let claim = claim_for(&gov, &keys, 1, 1);
        gov.head_priority = gov.claim_key(&claim, 1);
        assert!(gov.head_priority.is_some());
        gov.rollback_unconfirmed();
        assert_eq!(gov.chain.height(), 0);
        assert_eq!(gov.metrics.head_rollbacks, 1);
    }
}

//! Behaviour profiles for collectors and providers.
//!
//! §4.2 names three classes of collector misbehaviour: misreporting a
//! status, failing to report, and forging transactions. A
//! [`CollectorProfile`] mixes all three with independent probabilities and
//! an optional activation round (sleeper adversaries that build reputation
//! first), which is exactly the adversary family exercised by experiments
//! E1/E4/E7.

use rand::Rng;

/// A collector's (mis)behaviour parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CollectorProfile {
    /// Probability of flipping the label of a transaction (misreport).
    pub flip_prob: f64,
    /// Probability of silently discarding a received transaction.
    pub drop_prob: f64,
    /// Probability, per received transaction, of *additionally* uploading
    /// a fabricated transaction with a forged provider signature.
    pub forge_prob: f64,
    /// The profile applies from this round on; before it the collector is
    /// honest (sleeper adversaries).
    pub from_round: u64,
    /// The profile stops applying at this round (exclusive); afterwards
    /// the collector is honest again (reformed adversaries). Defaults to
    /// `u64::MAX` — misbehaviour forever.
    pub until_round: u64,
}

impl Default for CollectorProfile {
    fn default() -> Self {
        Self::honest()
    }
}

impl CollectorProfile {
    /// Fully honest collector.
    pub fn honest() -> Self {
        CollectorProfile {
            flip_prob: 0.0,
            drop_prob: 0.0,
            forge_prob: 0.0,
            from_round: 0,
            until_round: u64::MAX,
        }
    }

    /// Flips labels with probability `p`.
    pub fn misreporter(p: f64) -> Self {
        CollectorProfile {
            flip_prob: p,
            ..Self::honest()
        }
    }

    /// Discards transactions with probability `p` (the concealing
    /// collector a selfish governor would bribe).
    pub fn concealer(p: f64) -> Self {
        CollectorProfile {
            drop_prob: p,
            ..Self::honest()
        }
    }

    /// Fabricates transactions at rate `p`.
    pub fn forger(p: f64) -> Self {
        CollectorProfile {
            forge_prob: p,
            ..Self::honest()
        }
    }

    /// Behaves as `self` only from round `round`; honest before.
    pub fn sleeper(mut self, round: u64) -> Self {
        self.from_round = round;
        self
    }

    /// Stops misbehaving at `round` (exclusive); honest afterwards.
    pub fn reformed_at(mut self, round: u64) -> Self {
        self.until_round = round;
        self
    }

    /// Whether the adversarial parameters are live in `round`.
    pub fn active(&self, round: u64) -> bool {
        round >= self.from_round && round < self.until_round
    }

    /// Decides this transaction's handling. Returns `None` to discard, or
    /// `Some(flip)` where `flip` says whether to invert the honest label.
    pub fn decide_label<R: Rng + ?Sized>(&self, round: u64, rng: &mut R) -> Option<bool> {
        if !self.active(round) {
            return Some(false);
        }
        if self.drop_prob > 0.0 && rng.gen::<f64>() < self.drop_prob {
            return None;
        }
        Some(self.flip_prob > 0.0 && rng.gen::<f64>() < self.flip_prob)
    }

    /// Decides whether to fabricate a forged transaction now.
    pub fn decide_forge<R: Rng + ?Sized>(&self, round: u64, rng: &mut R) -> bool {
        self.active(round) && self.forge_prob > 0.0 && rng.gen::<f64>() < self.forge_prob
    }

    /// Whether the profile is honest at every round.
    pub fn is_honest(&self) -> bool {
        self.flip_prob == 0.0 && self.drop_prob == 0.0 && self.forge_prob == 0.0
    }
}

/// A provider's behaviour parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ProviderProfile {
    /// Probability a created transaction is genuinely invalid (e.g. an
    /// uninsurable application, an unserviceable ride request).
    pub invalid_rate: f64,
    /// Whether the provider is *active* in the paper's sense: retrieves
    /// every block and argues when a valid transaction was recorded
    /// invalid.
    pub active: bool,
}

impl Default for ProviderProfile {
    fn default() -> Self {
        ProviderProfile {
            invalid_rate: 0.2,
            active: true,
        }
    }
}

impl ProviderProfile {
    /// An always-valid, always-arguing provider.
    pub fn honest_active() -> Self {
        ProviderProfile {
            invalid_rate: 0.0,
            active: true,
        }
    }

    /// A provider that never argues (its wrongly-buried transactions stay
    /// buried — the Validity property only covers active providers).
    pub fn passive(invalid_rate: f64) -> Self {
        ProviderProfile {
            invalid_rate,
            active: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn honest_profile_never_misbehaves() {
        let p = CollectorProfile::honest();
        let mut rng = StdRng::seed_from_u64(1);
        for round in 0..100 {
            assert_eq!(p.decide_label(round, &mut rng), Some(false));
            assert!(!p.decide_forge(round, &mut rng));
        }
        assert!(p.is_honest());
    }

    #[test]
    fn misreporter_flips_at_rate() {
        let p = CollectorProfile::misreporter(0.5);
        let mut rng = StdRng::seed_from_u64(2);
        let flips = (0..10_000)
            .filter(|_| p.decide_label(0, &mut rng) == Some(true))
            .count();
        assert!((4_000..6_000).contains(&flips), "{flips}");
        assert!(!p.is_honest());
    }

    #[test]
    fn concealer_drops_at_rate() {
        let p = CollectorProfile::concealer(0.3);
        let mut rng = StdRng::seed_from_u64(3);
        let drops = (0..10_000)
            .filter(|_| p.decide_label(0, &mut rng).is_none())
            .count();
        assert!((2_400..3_600).contains(&drops), "{drops}");
    }

    #[test]
    fn forger_forges_at_rate() {
        let p = CollectorProfile::forger(0.2);
        let mut rng = StdRng::seed_from_u64(4);
        let forges = (0..10_000).filter(|_| p.decide_forge(0, &mut rng)).count();
        assert!((1_500..2_500).contains(&forges), "{forges}");
    }

    #[test]
    fn sleeper_is_honest_before_activation() {
        let p = CollectorProfile::misreporter(1.0).sleeper(10);
        let mut rng = StdRng::seed_from_u64(5);
        for round in 0..10 {
            assert_eq!(p.decide_label(round, &mut rng), Some(false));
            assert!(!p.active(round));
        }
        assert_eq!(p.decide_label(10, &mut rng), Some(true));
        assert!(p.active(10));
    }

    #[test]
    fn reformed_adversary_goes_honest_again() {
        let p = CollectorProfile::misreporter(1.0).reformed_at(5);
        let mut rng = StdRng::seed_from_u64(6);
        assert_eq!(p.decide_label(4, &mut rng), Some(true));
        assert_eq!(p.decide_label(5, &mut rng), Some(false));
        assert!(!p.active(5));
    }

    #[test]
    fn provider_profiles() {
        assert_eq!(ProviderProfile::honest_active().invalid_rate, 0.0);
        assert!(ProviderProfile::honest_active().active);
        assert!(!ProviderProfile::passive(0.5).active);
        let default = ProviderProfile::default();
        assert!(default.active);
    }
}

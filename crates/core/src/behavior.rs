//! Behaviour profiles for collectors, providers and governors.
//!
//! §4.2 names three classes of collector misbehaviour: misreporting a
//! status, failing to report, and forging transactions. A
//! [`CollectorProfile`] mixes all three with independent probabilities and
//! an optional activation round (sleeper adversaries that build reputation
//! first), which is exactly the adversary family exercised by experiments
//! E1/E4/E7.
//!
//! [`GovernorProfile`] extends the same pattern to the committee itself:
//! a governor can equivocate, propose invalid blocks, censor transactions
//! or go silent, each within a `from_round..until_round` sleeper window.
//! E12 sweeps these modes against the accountability pipeline.

use rand::Rng;

/// Panics unless `p` is a probability in `[0, 1]`.
fn check_prob(name: &str, p: f64) {
    assert!(
        (0.0..=1.0).contains(&p),
        "{name} must be a probability in [0, 1], got {p}"
    );
}

/// Panics unless the sleeper window is well-formed.
fn check_window(from_round: u64, until_round: u64) {
    assert!(
        from_round <= until_round,
        "from_round {from_round} exceeds until_round {until_round}"
    );
}

/// A collector's (mis)behaviour parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CollectorProfile {
    /// Probability of flipping the label of a transaction (misreport).
    pub flip_prob: f64,
    /// Probability of silently discarding a received transaction.
    pub drop_prob: f64,
    /// Probability, per received transaction, of *additionally* uploading
    /// a fabricated transaction with a forged provider signature.
    pub forge_prob: f64,
    /// The profile applies from this round on; before it the collector is
    /// honest (sleeper adversaries).
    pub from_round: u64,
    /// The profile stops applying at this round (exclusive); afterwards
    /// the collector is honest again (reformed adversaries). Defaults to
    /// `u64::MAX` — misbehaviour forever.
    pub until_round: u64,
}

impl Default for CollectorProfile {
    fn default() -> Self {
        Self::honest()
    }
}

impl CollectorProfile {
    /// Fully honest collector.
    pub fn honest() -> Self {
        CollectorProfile {
            flip_prob: 0.0,
            drop_prob: 0.0,
            forge_prob: 0.0,
            from_round: 0,
            until_round: u64::MAX,
        }
    }

    /// Flips labels with probability `p`.
    pub fn misreporter(p: f64) -> Self {
        check_prob("flip_prob", p);
        CollectorProfile {
            flip_prob: p,
            ..Self::honest()
        }
    }

    /// Discards transactions with probability `p` (the concealing
    /// collector a selfish governor would bribe).
    pub fn concealer(p: f64) -> Self {
        check_prob("drop_prob", p);
        CollectorProfile {
            drop_prob: p,
            ..Self::honest()
        }
    }

    /// Fabricates transactions at rate `p`.
    pub fn forger(p: f64) -> Self {
        check_prob("forge_prob", p);
        CollectorProfile {
            forge_prob: p,
            ..Self::honest()
        }
    }

    /// Behaves as `self` only from round `round`; honest before.
    pub fn sleeper(mut self, round: u64) -> Self {
        self.from_round = round;
        check_window(self.from_round, self.until_round);
        self
    }

    /// Stops misbehaving at `round` (exclusive); honest afterwards.
    pub fn reformed_at(mut self, round: u64) -> Self {
        self.until_round = round;
        check_window(self.from_round, self.until_round);
        self
    }

    /// Panics with a descriptive message if any probability falls outside
    /// `[0, 1]` or the sleeper window is inverted. Hand-built literals
    /// should pass through here; the constructors already validate.
    pub fn validate(&self) {
        check_prob("flip_prob", self.flip_prob);
        check_prob("drop_prob", self.drop_prob);
        check_prob("forge_prob", self.forge_prob);
        check_window(self.from_round, self.until_round);
    }

    /// Whether the adversarial parameters are live in `round`.
    pub fn active(&self, round: u64) -> bool {
        round >= self.from_round && round < self.until_round
    }

    /// Decides this transaction's handling. Returns `None` to discard, or
    /// `Some(flip)` where `flip` says whether to invert the honest label.
    pub fn decide_label<R: Rng + ?Sized>(&self, round: u64, rng: &mut R) -> Option<bool> {
        if !self.active(round) {
            return Some(false);
        }
        if self.drop_prob > 0.0 && rng.gen::<f64>() < self.drop_prob {
            return None;
        }
        Some(self.flip_prob > 0.0 && rng.gen::<f64>() < self.flip_prob)
    }

    /// Decides whether to fabricate a forged transaction now.
    pub fn decide_forge<R: Rng + ?Sized>(&self, round: u64, rng: &mut R) -> bool {
        self.active(round) && self.forge_prob > 0.0 && rng.gen::<f64>() < self.forge_prob
    }

    /// Whether the profile is honest at every round.
    pub fn is_honest(&self) -> bool {
        self.flip_prob == 0.0 && self.drop_prob == 0.0 && self.forge_prob == 0.0
    }
}

/// A provider's behaviour parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ProviderProfile {
    /// Probability a created transaction is genuinely invalid (e.g. an
    /// uninsurable application, an unserviceable ride request).
    pub invalid_rate: f64,
    /// Whether the provider is *active* in the paper's sense: retrieves
    /// every block and argues when a valid transaction was recorded
    /// invalid.
    pub active: bool,
}

impl Default for ProviderProfile {
    fn default() -> Self {
        ProviderProfile {
            invalid_rate: 0.2,
            active: true,
        }
    }
}

impl ProviderProfile {
    /// An always-valid, always-arguing provider.
    pub fn honest_active() -> Self {
        ProviderProfile {
            invalid_rate: 0.0,
            active: true,
        }
    }

    /// A provider that never argues (its wrongly-buried transactions stay
    /// buried — the Validity property only covers active providers).
    pub fn passive(invalid_rate: f64) -> Self {
        ProviderProfile {
            invalid_rate,
            active: false,
        }
    }
}

/// What a Byzantine governor does while its window is active.
///
/// Unlike collector misbehaviour, governor attacks are deterministic:
/// E12's hard asserts (detection on every honest node, byte-identical
/// reruns) need the adversary itself to be reproducible, so the modes
/// fire on every led round inside the window rather than by coin flip.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ByzantineMode {
    /// Follows the protocol.
    #[default]
    Honest,
    /// Double-signs two conflicting blocks at the same serial (differing
    /// timestamps) and sends each variant to half the committee. The
    /// accountability pipeline detects and expels this mode.
    Equivocate,
    /// Proposes a block carrying a fabricated transaction with a forged
    /// provider signature. Paranoid governors (`verify_blocks`) reject
    /// and attribute the block; the led round is lost.
    InvalidProposal,
    /// Drops a deterministic subset of screened transactions from its
    /// proposals (every second entry by tx-id order). Censored
    /// transactions survive in the other governors' buffers.
    Censor,
    /// Stops participating: no election claims, no proposals.
    Silent,
}

/// A governor's (mis)behaviour parameters, mirroring [`CollectorProfile`]:
/// a mode plus a `from_round..until_round` sleeper window. Injected via
/// `ProtocolConfig::governor_profiles`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GovernorProfile {
    /// The attack to mount while the window is active.
    pub mode: ByzantineMode,
    /// The profile applies from this round on (sleeper adversaries).
    pub from_round: u64,
    /// The profile stops applying at this round (exclusive).
    pub until_round: u64,
}

impl Default for GovernorProfile {
    fn default() -> Self {
        Self::honest()
    }
}

impl GovernorProfile {
    /// Fully honest governor.
    pub fn honest() -> Self {
        GovernorProfile {
            mode: ByzantineMode::Honest,
            from_round: 0,
            until_round: u64::MAX,
        }
    }

    /// A governor running `mode` for its whole lifetime.
    pub fn with_mode(mode: ByzantineMode) -> Self {
        GovernorProfile {
            mode,
            ..Self::honest()
        }
    }

    /// Double-signs conflicting blocks on every led round.
    pub fn equivocator() -> Self {
        Self::with_mode(ByzantineMode::Equivocate)
    }

    /// Proposes blocks with a fabricated entry on every led round.
    pub fn invalid_proposer() -> Self {
        Self::with_mode(ByzantineMode::InvalidProposal)
    }

    /// Censors transactions from its proposals.
    pub fn censor() -> Self {
        Self::with_mode(ByzantineMode::Censor)
    }

    /// Withholds claims and proposals entirely.
    pub fn silent() -> Self {
        Self::with_mode(ByzantineMode::Silent)
    }

    /// Behaves as `self` only from round `round`; honest before.
    pub fn sleeper(mut self, round: u64) -> Self {
        self.from_round = round;
        check_window(self.from_round, self.until_round);
        self
    }

    /// Stops misbehaving at `round` (exclusive); honest afterwards.
    pub fn reformed_at(mut self, round: u64) -> Self {
        self.until_round = round;
        check_window(self.from_round, self.until_round);
        self
    }

    /// Whether the adversarial window is live in `round`.
    pub fn active(&self, round: u64) -> bool {
        round >= self.from_round && round < self.until_round
    }

    /// The mode to apply in `round`: the configured attack inside the
    /// window, honest outside it.
    pub fn mode_in(&self, round: u64) -> ByzantineMode {
        if self.active(round) {
            self.mode
        } else {
            ByzantineMode::Honest
        }
    }

    /// Whether the profile is honest at every round.
    pub fn is_honest(&self) -> bool {
        self.mode == ByzantineMode::Honest
    }

    /// Panics with a descriptive message if the sleeper window is
    /// inverted — the same check [`CollectorProfile::validate`] applies.
    pub fn validate(&self) {
        check_window(self.from_round, self.until_round);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn honest_profile_never_misbehaves() {
        let p = CollectorProfile::honest();
        let mut rng = StdRng::seed_from_u64(1);
        for round in 0..100 {
            assert_eq!(p.decide_label(round, &mut rng), Some(false));
            assert!(!p.decide_forge(round, &mut rng));
        }
        assert!(p.is_honest());
    }

    #[test]
    fn misreporter_flips_at_rate() {
        let p = CollectorProfile::misreporter(0.5);
        let mut rng = StdRng::seed_from_u64(2);
        let flips = (0..10_000)
            .filter(|_| p.decide_label(0, &mut rng) == Some(true))
            .count();
        assert!((4_000..6_000).contains(&flips), "{flips}");
        assert!(!p.is_honest());
    }

    #[test]
    fn concealer_drops_at_rate() {
        let p = CollectorProfile::concealer(0.3);
        let mut rng = StdRng::seed_from_u64(3);
        let drops = (0..10_000)
            .filter(|_| p.decide_label(0, &mut rng).is_none())
            .count();
        assert!((2_400..3_600).contains(&drops), "{drops}");
    }

    #[test]
    fn forger_forges_at_rate() {
        let p = CollectorProfile::forger(0.2);
        let mut rng = StdRng::seed_from_u64(4);
        let forges = (0..10_000).filter(|_| p.decide_forge(0, &mut rng)).count();
        assert!((1_500..2_500).contains(&forges), "{forges}");
    }

    #[test]
    fn sleeper_is_honest_before_activation() {
        let p = CollectorProfile::misreporter(1.0).sleeper(10);
        let mut rng = StdRng::seed_from_u64(5);
        for round in 0..10 {
            assert_eq!(p.decide_label(round, &mut rng), Some(false));
            assert!(!p.active(round));
        }
        assert_eq!(p.decide_label(10, &mut rng), Some(true));
        assert!(p.active(10));
    }

    #[test]
    fn reformed_adversary_goes_honest_again() {
        let p = CollectorProfile::misreporter(1.0).reformed_at(5);
        let mut rng = StdRng::seed_from_u64(6);
        assert_eq!(p.decide_label(4, &mut rng), Some(true));
        assert_eq!(p.decide_label(5, &mut rng), Some(false));
        assert!(!p.active(5));
    }

    #[test]
    fn provider_profiles() {
        assert_eq!(ProviderProfile::honest_active().invalid_rate, 0.0);
        assert!(ProviderProfile::honest_active().active);
        assert!(!ProviderProfile::passive(0.5).active);
        let default = ProviderProfile::default();
        assert!(default.active);
    }

    #[test]
    #[should_panic(expected = "flip_prob must be a probability in [0, 1], got 1.5")]
    fn misreporter_rejects_probability_above_one() {
        CollectorProfile::misreporter(1.5);
    }

    #[test]
    #[should_panic(expected = "drop_prob must be a probability in [0, 1], got -0.1")]
    fn concealer_rejects_negative_probability() {
        CollectorProfile::concealer(-0.1);
    }

    #[test]
    #[should_panic(expected = "forge_prob must be a probability in [0, 1]")]
    fn validate_catches_hand_built_bad_forge_prob() {
        CollectorProfile {
            forge_prob: 2.0,
            ..CollectorProfile::honest()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "from_round 9 exceeds until_round 3")]
    fn collector_window_must_not_invert() {
        CollectorProfile::misreporter(0.5).reformed_at(3).sleeper(9);
    }

    #[test]
    fn validate_accepts_boundary_probabilities() {
        CollectorProfile::misreporter(1.0).validate();
        CollectorProfile::forger(0.0).validate();
        CollectorProfile::honest()
            .sleeper(4)
            .reformed_at(4)
            .validate();
    }

    #[test]
    fn governor_profile_windows_mirror_collector_semantics() {
        let p = GovernorProfile::equivocator().sleeper(3).reformed_at(7);
        assert!(!p.active(2));
        assert!(p.active(3));
        assert!(p.active(6));
        assert!(!p.active(7));
        assert_eq!(p.mode_in(2), ByzantineMode::Honest);
        assert_eq!(p.mode_in(5), ByzantineMode::Equivocate);
        assert!(!p.is_honest());
        assert!(GovernorProfile::honest().is_honest());
        assert!(GovernorProfile::default().is_honest());
    }

    #[test]
    #[should_panic(expected = "from_round 8 exceeds until_round 2")]
    fn governor_window_must_not_invert() {
        GovernorProfile::silent().reformed_at(2).sleeper(8);
    }

    #[test]
    #[should_panic(expected = "from_round 5 exceeds until_round 1")]
    fn governor_validate_catches_hand_built_window() {
        GovernorProfile {
            mode: ByzantineMode::Censor,
            from_round: 5,
            until_round: 1,
        }
        .validate();
    }
}

//! Focused governor tests: a single governor actor driven directly with
//! crafted envelopes, covering edge paths the full simulation rarely
//! exercises (duplicate uploads, late reports after screening, argues and
//! reveals for unknown transactions, unlinked uploads).

use std::cell::RefCell;
use std::rc::Rc;

use prb_core::config::{GovernorMode, ProtocolConfig};
use prb_core::governor::GovernorNode;
use prb_core::msg::ProtocolMsg;
use prb_core::node::NodeActor;
use prb_crypto::identity::NodeId;
use prb_crypto::signer::{CryptoScheme, KeyPair, PublicKey, Sig};
use prb_ledger::oracle::ValidityOracle;
use prb_ledger::transaction::{Label, LabeledTx, SignedTx, TxId, TxPayload};
use prb_net::sim::{NetConfig, Network};
use prb_net::time::SimTime;
use prb_net::topology::Topology;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One governor alone in a network; we feed it crafted envelopes.
struct Rig {
    net: Network<NodeActor>,
    oracle: Rc<RefCell<ValidityOracle>>,
    provider_keys: Vec<KeyPair>,
    collector_keys: Vec<KeyPair>,
    cfg: ProtocolConfig,
}

impl Rig {
    fn new(mode: GovernorMode, f: f64) -> Self {
        let mut cfg = ProtocolConfig {
            providers: 2,
            collectors: 2,
            governors: 1,
            replication: 2,
            tx_per_provider: 1,
            governor_mode: mode,
            seed: 9,
            ..Default::default()
        };
        cfg.reputation.f = f;
        let scheme = CryptoScheme::sim();
        let provider_keys: Vec<KeyPair> = (0..2)
            .map(|p| scheme.keypair_from_seed(format!("rig-p{p}").as_bytes()))
            .collect();
        let collector_keys: Vec<KeyPair> = (0..2)
            .map(|c| scheme.keypair_from_seed(format!("rig-c{c}").as_bytes()))
            .collect();
        let governor_key = scheme.keypair_from_seed(b"rig-g0");
        let provider_pks: Vec<PublicKey> = provider_keys.iter().map(|k| k.public_key()).collect();
        let collector_pks: Vec<PublicKey> = collector_keys.iter().map(|k| k.public_key()).collect();
        let topology = Rc::new(Topology::cyclic(cfg.topology_params()).unwrap());
        let oracle = Rc::new(RefCell::new(ValidityOracle::new()));
        let mut net = Network::new(NetConfig::uniform(1, 2), 4);
        let governor = GovernorNode::new(
            0,
            governor_key.clone(),
            cfg.clone(),
            topology,
            Rc::clone(&oracle),
            0,
            collector_pks,
            provider_pks,
            vec![governor_key.public_key()],
        );
        net.add_node(NodeActor::governor(governor));
        Rig {
            net,
            oracle,
            provider_keys,
            collector_keys,
            cfg,
        }
    }

    fn governor(&self) -> &GovernorNode {
        self.net.node(0).as_governor().unwrap()
    }

    fn make_tx(&self, provider: u32, nonce: u64, valid: bool) -> SignedTx {
        let tx = SignedTx::create(
            TxPayload {
                provider: NodeId::provider(provider),
                nonce,
                data: vec![1],
            },
            5,
            &self.provider_keys[provider as usize],
        );
        self.oracle.borrow_mut().register(tx.id(), valid);
        tx
    }

    fn upload(&mut self, collector: u32, seq: u64, tx: SignedTx, label: Label, at: u64) {
        let ltx = LabeledTx::create(
            tx,
            label,
            NodeId::collector(collector),
            &self.collector_keys[collector as usize],
        );
        self.net
            .send_external(0, "up", ProtocolMsg::TxUpload { seq, ltx }, SimTime(at));
    }

    fn run(&mut self) {
        self.net.run_until_idle(1_000);
    }
}

#[test]
fn duplicate_uploads_from_same_collector_are_deduped() {
    let mut rig = Rig::new(GovernorMode::CheckAll, 0.5);
    let tx = rig.make_tx(0, 0, true);
    // Collector 0 spams the same transaction twice under different seqs.
    rig.upload(0, 0, tx.clone(), Label::Valid, 0);
    rig.upload(0, 1, tx.clone(), Label::Valid, 1);
    rig.upload(1, 0, tx, Label::Valid, 2);
    rig.run();
    let m = rig.governor().metrics();
    assert_eq!(m.screened, 1);
    // Case-2 update applied once per collector: misreport counters are +1.
    let table = rig.governor().reputation();
    assert_eq!(table.collector(0).misreport(), 1);
    assert_eq!(table.collector(1).misreport(), 1);
}

#[test]
fn late_report_after_screening_still_updates_reputation() {
    let mut rig = Rig::new(GovernorMode::CheckAll, 0.5);
    let window = rig.cfg.aggregation_window();
    let tx = rig.make_tx(0, 0, true);
    rig.upload(0, 0, tx.clone(), Label::Valid, 0);
    // Collector 1's report arrives long after the Δ window closed.
    rig.upload(1, 0, tx, Label::Invalid, window + 50);
    rig.run();
    let m = rig.governor().metrics();
    assert_eq!(m.screened, 1, "screened once, at the Δ timer");
    let table = rig.governor().reputation();
    assert_eq!(table.collector(0).misreport(), 1, "on-time correct label");
    assert_eq!(
        table.collector(1).misreport(),
        -1,
        "late wrong label still punished"
    );
}

#[test]
fn unlinked_provider_upload_counts_as_forgery() {
    // Topology: cyclic l=2, n=2, r=2 links every provider with every
    // collector, so craft a tx from a *nonexistent* provider index instead.
    let mut rig = Rig::new(GovernorMode::CheckAll, 0.5);
    let ghost_key = CryptoScheme::sim().keypair_from_seed(b"ghost");
    let tx = SignedTx::create(
        TxPayload {
            provider: NodeId::provider(7),
            nonce: 0,
            data: vec![2],
        },
        5,
        &ghost_key,
    );
    let ltx = LabeledTx::create(
        tx,
        Label::Valid,
        NodeId::collector(0),
        &rig.collector_keys[0],
    );
    rig.net
        .send_external(0, "up", ProtocolMsg::TxUpload { seq: 0, ltx }, SimTime(0));
    rig.run();
    let m = rig.governor().metrics();
    assert_eq!(m.forged_detected, 1);
    assert_eq!(m.screened, 0);
    assert_eq!(rig.governor().reputation().collector(0).forge(), -1);
}

#[test]
fn upload_with_wrong_collector_signature_is_dropped_silently() {
    let mut rig = Rig::new(GovernorMode::CheckAll, 0.5);
    let tx = rig.make_tx(0, 0, true);
    // Collector 1's key signs, but the message claims collector 0.
    let ltx = LabeledTx::create(
        tx,
        Label::Valid,
        NodeId::collector(0),
        &rig.collector_keys[1],
    );
    rig.net
        .send_external(0, "up", ProtocolMsg::TxUpload { seq: 0, ltx }, SimTime(0));
    rig.run();
    let m = rig.governor().metrics();
    // Cannot attribute: no forgery charged, nothing screened.
    assert_eq!(m.forged_detected, 0);
    assert_eq!(m.screened, 0);
    assert_eq!(rig.governor().reputation().collector(0).forge(), 0);
}

#[test]
fn argue_and_reveal_for_unknown_tx_are_ignored() {
    let mut rig = Rig::new(GovernorMode::Reputation, 0.5);
    let ghost = TxId(prb_crypto::sha256::sha256(b"never-screened"));
    rig.net.send_external(
        0,
        "argue",
        ProtocolMsg::Argue {
            tx: ghost,
            serial: 1,
        },
        SimTime(0),
    );
    rig.net.send_external(
        0,
        "reveal",
        ProtocolMsg::Reveal {
            tx: ghost,
            valid: true,
        },
        SimTime(1),
    );
    rig.run();
    let m = rig.governor().metrics();
    assert_eq!(m.argue_accepted, 0);
    assert_eq!(m.argue_rejected, 0);
    assert_eq!(m.revealed, 0);
}

#[test]
fn argue_for_checked_tx_is_ignored() {
    let mut rig = Rig::new(GovernorMode::CheckAll, 0.5);
    let tx = rig.make_tx(0, 0, true);
    let id = tx.id();
    rig.upload(0, 0, tx, Label::Valid, 0);
    rig.run();
    assert_eq!(rig.governor().metrics().checked, 1);
    rig.net.send_external(
        0,
        "argue",
        ProtocolMsg::Argue { tx: id, serial: 1 },
        SimTime(500),
    );
    rig.run();
    let m = rig.governor().metrics();
    assert_eq!(m.argue_accepted, 0, "checked txs cannot be argued");
}

#[test]
fn reveal_for_checked_tx_is_a_no_op() {
    let mut rig = Rig::new(GovernorMode::CheckAll, 0.5);
    let tx = rig.make_tx(0, 0, false);
    let id = tx.id();
    rig.upload(0, 0, tx, Label::Invalid, 0);
    rig.run();
    rig.net.send_external(
        0,
        "reveal",
        ProtocolMsg::Reveal {
            tx: id,
            valid: false,
        },
        SimTime(500),
    );
    rig.run();
    assert_eq!(rig.governor().metrics().revealed, 0);
}

#[test]
fn double_reveal_processes_once() {
    let mut rig = Rig::new(GovernorMode::CheckNone, 0.9);
    let tx = rig.make_tx(0, 0, true);
    let id = tx.id();
    rig.upload(0, 0, tx, Label::Invalid, 0);
    rig.run();
    assert_eq!(rig.governor().metrics().unchecked, 1);
    for at in [500, 600] {
        rig.net.send_external(
            0,
            "reveal",
            ProtocolMsg::Reveal {
                tx: id,
                valid: true,
            },
            SimTime(at),
        );
    }
    rig.run();
    let m = rig.governor().metrics();
    assert_eq!(m.revealed, 1);
    assert_eq!(m.realized_loss, 2.0, "recorded invalid but truly valid");
}

#[test]
fn forged_provider_signature_on_linked_provider_is_case_one() {
    let mut rig = Rig::new(GovernorMode::CheckAll, 0.5);
    let mut rng = StdRng::seed_from_u64(1);
    let scheme = CryptoScheme::sim();
    let fake_tx = SignedTx::from_parts(
        TxPayload {
            provider: NodeId::provider(0),
            nonce: 99,
            data: b"fabricated".to_vec(),
        },
        5,
        Sig::forged(&scheme, &mut rng),
    );
    let ltx = LabeledTx::create(
        fake_tx,
        Label::Valid,
        NodeId::collector(1),
        &rig.collector_keys[1],
    );
    rig.net
        .send_external(0, "up", ProtocolMsg::TxUpload { seq: 0, ltx }, SimTime(0));
    rig.run();
    assert_eq!(rig.governor().metrics().forged_detected, 1);
    assert_eq!(rig.governor().reputation().collector(1).forge(), -1);
}

#[test]
fn paranoid_mode_rejects_blocks_with_fabricated_entries() {
    use prb_ledger::block::{Block, BlockEntry, Verdict};

    for (verify_blocks, expect_failure) in [(true, true), (false, false)] {
        let mut cfg = ProtocolConfig {
            providers: 2,
            collectors: 2,
            governors: 2,
            replication: 2,
            tx_per_provider: 1,
            verify_blocks,
            seed: 9,
            ..Default::default()
        };
        cfg.reputation.f = 0.5;
        let scheme = CryptoScheme::sim();
        let provider_pks: Vec<PublicKey> = (0..2)
            .map(|p| {
                scheme
                    .keypair_from_seed(format!("pv-{p}").as_bytes())
                    .public_key()
            })
            .collect();
        let collector_pks: Vec<PublicKey> = (0..2)
            .map(|c| {
                scheme
                    .keypair_from_seed(format!("cv-{c}").as_bytes())
                    .public_key()
            })
            .collect();
        let g0_key = scheme.keypair_from_seed(b"gv-0");
        let g1_key = scheme.keypair_from_seed(b"gv-1");
        let topology = Rc::new(Topology::cyclic(cfg.topology_params()).unwrap());
        let oracle = Rc::new(RefCell::new(ValidityOracle::new()));
        let mut net = Network::new(NetConfig::uniform(1, 2), 4);
        let governor = GovernorNode::new(
            0,
            g0_key.clone(),
            cfg.clone(),
            topology,
            Rc::clone(&oracle),
            0,
            collector_pks,
            provider_pks,
            vec![g0_key.public_key(), g1_key.public_key()],
        );
        net.add_node(NodeActor::governor(governor));

        // A Byzantine leader (g1) fabricates an entry with a garbage
        // provider signature and builds an otherwise well-formed block.
        let mut rng = StdRng::seed_from_u64(3);
        let fake_tx = SignedTx::from_parts(
            TxPayload {
                provider: NodeId::provider(0),
                nonce: 5,
                data: b"invented by the leader".to_vec(),
            },
            9,
            Sig::forged(&scheme, &mut rng),
        );
        let genesis_hash = net.node(0).as_governor().unwrap().chain().latest().hash();
        let block = Block::build(
            1,
            vec![BlockEntry {
                tx: fake_tx,
                verdict: Verdict::CheckedValid,
                reported_labels: vec![(NodeId::collector(0), Label::Valid)],
            }],
            genesis_hash,
            NodeId::governor(1),
            50,
        );
        net.send_external(
            0,
            "block",
            ProtocolMsg::BlockProposal {
                block,
                claim: None,
                header: None,
                deferred_root: None,
            },
            SimTime(0),
        );
        net.run_until_idle(100);
        let gov = net.node(0).as_governor().unwrap();
        if expect_failure {
            assert_eq!(
                gov.chain().height(),
                0,
                "paranoid governor appended a fabricated block"
            );
            assert_eq!(gov.metrics().append_failures, 1);
        } else {
            assert_eq!(
                gov.chain().height(),
                1,
                "default mode trusts the leader per the paper's assumption"
            );
        }
    }
}

#[test]
fn sig_memo_caches_verdicts_and_forged_probes_stay_false() {
    let mut rig = Rig::new(GovernorMode::CheckAll, 0.5);
    let mut rng = StdRng::seed_from_u64(7);
    let scheme = CryptoScheme::sim();
    let tx = rig.make_tx(0, 0, true);
    // A forged twin of the genuine transaction: identical signed fields
    // (hence the same tx id) but a garbage signature. The memo keys on
    // (provider, id, signature), so the twin gets its own entry.
    let forged_tx = SignedTx::from_parts(
        tx.payload.clone(),
        tx.timestamp,
        Sig::forged(&scheme, &mut rng),
    );
    // Genuine upload via both collectors: one real verification seeds the
    // memo, the second upload is answered from it.
    rig.upload(0, 0, tx.clone(), Label::Valid, 0);
    rig.upload(1, 0, tx, Label::Valid, 1);
    // Forged probes with the same forged signature: the first memoizes
    // `false`, repeats keep failing from cache — a probe can never flip a
    // cached verdict.
    rig.upload(0, 1, forged_tx.clone(), Label::Valid, 2);
    rig.upload(1, 1, forged_tx, Label::Valid, 3);
    rig.run();
    let m = rig.governor().metrics();
    assert_eq!(m.forged_detected, 2, "cached false verdicts stay false");
    // One real check per distinct (id, sig): the genuine signature settles
    // in the Δ-window batch (both reporters' copies fold into it), the
    // forged probe is checked eagerly when first seen.
    assert_eq!(m.sig_memo_misses, 2);
    // The second forged probe is answered straight from the memo.
    assert_eq!(m.sig_memo_hits, 1);
}

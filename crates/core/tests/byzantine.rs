//! End-to-end byzantine-governor fault injection: a profiled governor
//! equivocates, forges, censors, or goes silent mid-run, and the honest
//! committee detects what is detectable, expels what is provable, and
//! keeps its chain prefixes byte-identical throughout.

use prb_core::behavior::GovernorProfile;
use prb_core::config::ProtocolConfig;
use prb_core::sim::Simulation;

/// A 4-governor deployment with governor 3 running `profile` from round
/// 2 onward. Paranoid verification and reliable delivery are on — the
/// byzantine experiments' configuration.
fn byz_sim(profile: GovernorProfile, seed: u64) -> Simulation {
    let cfg = ProtocolConfig {
        providers: 2,
        collectors: 2,
        governors: 4,
        replication: 2,
        tx_per_provider: 2,
        verify_blocks: true,
        reliable_delivery: true,
        governor_profiles: vec![
            GovernorProfile::honest(),
            GovernorProfile::honest(),
            GovernorProfile::honest(),
            profile,
        ],
        seed,
        ..Default::default()
    };
    Simulation::new(cfg).unwrap()
}

/// Runs until governor 3's byzantine action fires at least once (probed
/// by `acted`), up to `max_rounds`. Panics if it never leads — pick a
/// seed where it does, so the test stays deterministic and meaningful.
fn run_until_acted(
    sim: &mut Simulation,
    max_rounds: u32,
    acted: impl Fn(&Simulation) -> bool,
) -> u32 {
    for r in 1..=max_rounds {
        sim.run_round();
        if acted(sim) {
            return r;
        }
    }
    panic!("governor 3 never acted in {max_rounds} rounds; pick another seed");
}

#[test]
fn equivocator_is_convicted_and_expelled_on_every_honest_node() {
    let mut sim = byz_sim(GovernorProfile::equivocator().sleeper(2), 3);
    let fired = run_until_acted(&mut sim, 24, |s| s.metrics(3).equivocations_sent >= 1);
    // A couple more rounds so evidence lands and the chain moves on.
    sim.run(3);
    sim.settle(200);

    let eq_round = sim.metrics(3).first_equivocation_round.unwrap();
    for g in 0..3 {
        // Every honest governor holds verified evidence and expelled g3.
        assert_eq!(sim.governor(g).expelled(), &[3], "governor {g}");
        assert_eq!(sim.governor(g).stake_table().stake(3), Some(0));
        let m = sim.metrics(g);
        assert!(m.evidence_broadcast + m.evidence_received >= 1);
        // Detection is prompt: expelled in the round of the crime.
        let expelled_in = m.expulsion_round[&3];
        assert!(
            expelled_in <= eq_round + 1,
            "governor {g} took until round {expelled_in} (crime in {eq_round})"
        );
    }
    // The culprit convicted itself from the gossiped evidence too.
    assert_eq!(sim.governor(3).expelled(), &[3]);
    // Honest prefixes never diverge, and the committee keeps committing
    // after the expulsion.
    assert!(sim.chains_prefix_agree(&[0, 1, 2]));
    assert!(
        sim.governor(0).chain().height() > u64::from(fired),
        "chain stalled after expulsion"
    );
}

#[test]
fn invalid_proposals_are_rejected_and_attributed() {
    let mut sim = byz_sim(GovernorProfile::invalid_proposer().sleeper(2), 3);
    run_until_acted(&mut sim, 24, |s| s.metrics(3).invalid_proposals_sent >= 1);
    sim.run(2);
    sim.settle(200);

    for g in 0..3 {
        // No honest chain ever recorded the fabricated entry (its marker
        // payload is a single 0xBD byte).
        let chain = sim.governor(g).chain();
        for serial in 1..=chain.height() {
            let block = chain.retrieve(serial).unwrap();
            assert!(
                block.entries.iter().all(|e| e.tx.payload.data != [0xBD]),
                "governor {g} accepted a forged entry at serial {serial}"
            );
        }
        assert!(
            sim.metrics(g).invalid_blocks_rejected >= 1,
            "governor {g} never rejected the forged proposal"
        );
        // The forged proposal arrived under g3's own signed header, so
        // it is self-incriminating: every honest node convicts.
        assert_eq!(sim.governor(g).expelled(), &[3], "governor {g}");
        assert_eq!(sim.governor(g).stake_table().stake(3), Some(0));
    }
    assert!(sim.chains_prefix_agree(&[0, 1, 2]));
}

#[test]
fn censor_drops_entries_but_stays_undetected() {
    let mut sim = byz_sim(GovernorProfile::censor().sleeper(2), 3);
    run_until_acted(&mut sim, 24, |s| s.metrics(3).censored_txs >= 1);
    sim.run(2);
    sim.settle(200);

    // Censorship is tolerated: well-formed blocks, no evidence, no
    // expulsion — just missing transactions.
    for g in 0..4 {
        assert!(sim.governor(g).expelled().is_empty());
        assert_eq!(sim.metrics(g).evidence_broadcast, 0);
    }
    assert!(sim.chains_agree());
}

#[test]
fn silent_governor_is_indistinguishable_from_a_crash() {
    let mut sim = byz_sim(GovernorProfile::silent().sleeper(2), 7);
    let outcomes = sim.run(10);
    sim.settle(200);

    assert!(sim.metrics(3).silent_rounds >= 1);
    // A mute governor never wins: it mints no claims.
    for o in &outcomes {
        assert!(
            o.round < 2 || o.leader != Some(3),
            "silent governor led round {}",
            o.round
        );
    }
    // Tolerated, not expelled — and the committee keeps its liveness.
    for g in 0..3 {
        assert!(sim.governor(g).expelled().is_empty());
    }
    assert!(sim.chains_prefix_agree(&[0, 1, 2]));
    assert!(sim.governor(0).chain().height() >= 5);
}

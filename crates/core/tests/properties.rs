//! Property-based tests over the whole protocol: for random (small)
//! topologies, parameters, and adversary mixes, the paper's invariants
//! hold on every run.

use proptest::prelude::*;

use prb_core::behavior::{CollectorProfile, ProviderProfile};
use prb_core::config::{GovernorMode, ProtocolConfig, RevealPolicy};
use prb_core::sim::Simulation;
use prb_ledger::block::Verdict;

#[derive(Debug, Clone)]
struct RandomSetup {
    seed: u64,
    f: f64,
    governors: u32,
    invalid_rate: f64,
    flip_probs: Vec<f64>,
    drop_probs: Vec<f64>,
    forge_probs: Vec<f64>,
    mode: GovernorMode,
    reveal_lag: u32,
}

fn setup_strategy() -> impl Strategy<Value = RandomSetup> {
    (
        any::<u64>(),
        0.05f64..0.95,
        2u32..5,
        0.0f64..0.9,
        proptest::collection::vec(0.0f64..0.9, 4),
        proptest::collection::vec(0.0f64..0.6, 4),
        proptest::collection::vec(0.0f64..0.4, 4),
        prop_oneof![
            Just(GovernorMode::Reputation),
            Just(GovernorMode::CheckAll),
            Just(GovernorMode::CheckNone),
        ],
        0u32..3,
    )
        .prop_map(
            |(
                seed,
                f,
                governors,
                invalid_rate,
                flip_probs,
                drop_probs,
                forge_probs,
                mode,
                reveal_lag,
            )| RandomSetup {
                seed,
                f,
                governors,
                invalid_rate,
                flip_probs,
                drop_probs,
                forge_probs,
                mode,
                reveal_lag,
            },
        )
}

fn run(setup: &RandomSetup) -> Simulation {
    let mut cfg = ProtocolConfig {
        providers: 4,
        collectors: 4,
        governors: setup.governors,
        replication: 2,
        tx_per_provider: 3,
        governor_mode: setup.mode,
        reveal: RevealPolicy::AfterRounds(setup.reveal_lag),
        seed: setup.seed,
        ..Default::default()
    };
    cfg.reputation.f = setup.f;
    let mut sim = Simulation::builder(cfg)
        .collector_profiles(
            (0..4)
                .map(|c| CollectorProfile {
                    flip_prob: setup.flip_probs[c],
                    drop_prob: setup.drop_probs[c],
                    forge_prob: setup.forge_probs[c],
                    ..CollectorProfile::honest()
                })
                .collect(),
        )
        .provider_profiles(vec![
            ProviderProfile {
                invalid_rate: setup.invalid_rate,
                active: true,
            };
            4
        ])
        .build()
        .expect("valid config");
    sim.run(4);
    sim.run_drain_rounds(2 + setup.reveal_lag);
    sim
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Whatever the adversary mix, mode and parameters: agreement holds,
    /// chains audit clean, nothing fabricated enters the ledger, argued
    /// entries are genuinely valid, and the loss accounting is coherent.
    #[test]
    fn protocol_invariants_hold(setup in setup_strategy()) {
        let sim = run(&setup);
        // Agreement + integrity + no skipping.
        prop_assert!(sim.chains_agree(), "{setup:?}");
        for g in 0..setup.governors {
            prop_assert_eq!(sim.governor(g).chain().audit(), None);
        }
        let chain = sim.governor(0).chain();
        for s in 0..=chain.height() {
            prop_assert!(chain.retrieve(s).is_some());
        }
        // Almost No Creation: every ledger tx was provider-created.
        let oracle = sim.oracle();
        for block in chain.iter() {
            for e in &block.entries {
                prop_assert!(
                    oracle.borrow().peek(e.tx.id()).is_some(),
                    "fabricated tx in ledger: {setup:?}"
                );
                if e.verdict == Verdict::ArguedValid {
                    prop_assert_eq!(oracle.borrow().peek(e.tx.id()), Some(true));
                }
                // The paper's mechanism never records unchecked-valid.
                if setup.mode != GovernorMode::CheckNone {
                    prop_assert!(e.verdict != Verdict::UncheckedValid);
                }
            }
        }
        // Metric coherence on every governor.
        for g in 0..setup.governors {
            let m = sim.metrics(g);
            prop_assert_eq!(m.screened, m.checked + m.unchecked);
            prop_assert!(m.revealed <= m.unchecked);
            prop_assert!(m.realized_loss <= 2.0 * m.revealed as f64);
            prop_assert!(m.expected_loss <= 2.0 * m.revealed as f64 + 1e-9);
            prop_assert_eq!(m.append_failures, 0);
            match setup.mode {
                GovernorMode::CheckAll => prop_assert_eq!(m.unchecked, 0),
                GovernorMode::CheckNone => prop_assert_eq!(m.checked, 0),
                GovernorMode::Reputation => {}
            }
            // Lemma 2 shape: the unchecked fraction cannot exceed f by a
            // sampling margin (only meaningful with enough screenings).
            if setup.mode == GovernorMode::Reputation && m.screened >= 30 {
                prop_assert!(
                    m.unchecked_fraction() <= setup.f + 0.25,
                    "unchecked fraction {} vs f {} ({setup:?})",
                    m.unchecked_fraction(),
                    setup.f
                );
            }
        }
        // Reputation sanity: weights in (0, 1], counters consistent with
        // forgery detection.
        for g in 0..setup.governors {
            let table = sim.governor(g).reputation();
            for c in 0..4 {
                let v = table.collector(c);
                for &w in v.weights() {
                    prop_assert!(w > 0.0 && w <= 1.0);
                }
                prop_assert!(v.forge() <= 0);
                if setup.forge_probs[c] == 0.0 {
                    prop_assert_eq!(v.forge(), 0);
                }
            }
        }
    }

    /// Determinism: identical setups produce identical ledgers and metrics.
    #[test]
    fn runs_are_reproducible(setup in setup_strategy()) {
        let a = run(&setup);
        let b = run(&setup);
        prop_assert_eq!(
            a.governor(0).chain().latest().hash(),
            b.governor(0).chain().latest().hash()
        );
        prop_assert_eq!(a.metrics(0).expected_loss.to_bits(), b.metrics(0).expected_loss.to_bits());
        prop_assert_eq!(a.net_stats().total_sent(), b.net_stats().total_sent());
    }
}

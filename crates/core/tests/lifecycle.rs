//! Lifecycle property tests: the transaction trace emitted by a full
//! simulation obeys the legal state machine (`prb_obs::lifecycle`) no
//! matter which faults the run injects — honest, crashed governors
//! (E11's schedule), or byzantine committees (E12's profiles) — and
//! trace ids are unique, founded, and monotone in sim time.

use std::rc::Rc;

use prb_core::behavior::{CollectorProfile, GovernorProfile, ProviderProfile};
use prb_core::config::{ProtocolConfig, RevealPolicy};
use prb_core::sim::Simulation;
use prb_net::fault::FaultPlan;
use prb_net::time::SimTime;
use prb_obs::lifecycle::{validate, Checks};
use prb_obs::{Event, EventKind, Obs, ObsHandle, Recorder, RingRecorder};

/// Large enough that no test run wraps the ring: a wrapped ring loses
/// early `tx.submitted` events and the foundedness rule would
/// false-positive.
const RING: usize = 200_000;

fn ring_obs() -> (Rc<RingRecorder>, ObsHandle) {
    let ring = Rc::new(RingRecorder::new(RING));
    let obs = Obs::with_sink(Rc::clone(&ring) as Rc<dyn Recorder>);
    (ring, obs)
}

fn events_of(ring: &RingRecorder) -> Vec<Event> {
    assert!(
        ring.total_recorded() <= RING as u64,
        "ring wrapped ({} events); grow RING",
        ring.total_recorded()
    );
    ring.events()
}

fn submitted_traces(events: &[Event]) -> Vec<u64> {
    events
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::TxSubmitted { trace, .. } => Some(trace),
            _ => None,
        })
        .collect()
}

#[test]
fn honest_run_trace_is_legal_unique_and_fully_covered() {
    let cfg = ProtocolConfig {
        seed: 7,
        reveal: RevealPolicy::AfterRounds(1),
        ..Default::default()
    };
    let expected = (cfg.providers * cfg.tx_per_provider) as u64 * 6;
    let mut collectors = vec![CollectorProfile::honest(); cfg.collectors as usize];
    collectors[0] = CollectorProfile::concealer(0.5);
    let mut sim = Simulation::builder(cfg)
        .collector_profiles(collectors)
        .provider_profiles(vec![ProviderProfile::honest_active(); 8])
        .build()
        .expect("valid config");
    let (ring, obs) = ring_obs();
    sim.set_obs(Rc::clone(&obs));
    sim.run(6);
    sim.run_drain_rounds(3);

    let events = events_of(&ring);
    validate(&events, Checks::default()).expect("honest stream is legal");

    // Trace ids are unique: one submission per signed transaction.
    let mut traces = submitted_traces(&events);
    assert_eq!(traces.len() as u64, expected);
    traces.sort_unstable();
    traces.dedup();
    assert_eq!(traces.len() as u64, expected, "trace ids collide");

    // Full coverage: with replication 4 and a single 50% concealer, every
    // transaction still reaches an honest path and commits.
    assert!(obs.open_traces().is_empty(), "transactions left open");
    let counts = obs.lifecycle_counts();
    assert_eq!(counts.submitted, expected);
    assert!(counts.committed > 0);
}

#[test]
fn forged_fabrications_drop_and_real_txs_still_commit() {
    // Forging collectors fabricate an extra transaction (with a bogus
    // provider signature) alongside every honest upload. Fabrications
    // have no provider submission — the validator's documented
    // foundedness exemption — and must terminate as dropped/forged,
    // while the real transactions commit untouched.
    let cfg = ProtocolConfig {
        seed: 11,
        ..Default::default()
    };
    let mut sim = Simulation::builder(cfg.clone())
        .collector_profiles(vec![CollectorProfile::forger(1.0); cfg.collectors as usize])
        .provider_profiles(vec![ProviderProfile::honest_active(); 8])
        .build()
        .expect("valid config");
    let (ring, obs) = ring_obs();
    sim.set_obs(Rc::clone(&obs));
    sim.run(4);
    sim.run_drain_rounds(2);

    let events = events_of(&ring);
    validate(&events, Checks::default()).expect("forged-fabrication stream is legal");
    let counts = obs.lifecycle_counts();
    assert!(counts.committed > 0, "real transactions still commit");
    assert!(counts.dropped > 0, "fabrications drop with a reason");
    assert!(obs.open_traces().is_empty(), "no submitted trace left open");
    assert!(
        events.iter().any(|e| matches!(
            e.kind,
            EventKind::TxDropped {
                reason: "forged",
                ..
            }
        )),
        "expected tx.dropped with reason=forged"
    );
}

#[test]
fn crash_recovery_trace_stays_legal() {
    // E11's crash schedule: two governors deaf and mute for rounds 3–5,
    // healing mid-run; recovery replays blocks via sync pages.
    let cfg = ProtocolConfig {
        governors: 5,
        reliable_delivery: true,
        seed: 13,
        ..Default::default()
    };
    let mut sim = Simulation::new(cfg.clone()).expect("valid config");
    let (ring, obs) = ring_obs();
    sim.set_obs(Rc::clone(&obs));
    let rt = cfg.round_ticks();
    let mut faults = FaultPlan::none();
    for g in [1u32, 2] {
        faults.crash_window(sim.governor_net_index(g), SimTime(2 * rt), SimTime(5 * rt));
    }
    sim.set_faults(faults);
    sim.run(8);
    sim.run_drain_rounds(2);
    sim.settle(5 * rt);

    let events = events_of(&ring);
    // Sync recovery commits replayed blocks on the healed replicas; the
    // proposal events exist in the global stream (the live leader emitted
    // them), so even the strict rule holds.
    validate(&events, Checks::default()).expect("crash-recovery stream is legal");
    assert!(
        obs.lifecycle_counts().committed > 0,
        "liveness under crashes"
    );
}

#[test]
fn byzantine_equivocation_trace_stays_legal_without_strict_propose() {
    // E12's equivocators: twin blocks split the committee, so a commit's
    // proposal event can name the other twin — rule 5 is the documented
    // exception and stays off.
    let m = 7u32;
    let mut profiles = vec![GovernorProfile::honest(); m as usize];
    for g in [5u32, 6] {
        profiles[g as usize] = GovernorProfile::equivocator().sleeper(2);
    }
    let cfg = ProtocolConfig {
        governors: m,
        verify_blocks: true,
        reliable_delivery: true,
        governor_profiles: profiles,
        seed: 17,
        ..Default::default()
    };
    let mut sim = Simulation::new(cfg.clone()).expect("valid config");
    let (ring, obs) = ring_obs();
    sim.set_obs(Rc::clone(&obs));
    sim.run(8);
    sim.run_drain_rounds(2);
    sim.settle(3 * cfg.round_ticks());

    let events = events_of(&ring);
    validate(
        &events,
        Checks {
            strict_propose: false,
        },
    )
    .expect("byzantine stream is legal modulo rule 5");
    assert!(
        obs.lifecycle_counts().committed > 0,
        "liveness under equivocation"
    );
}

#[test]
fn censoring_leader_emits_censored_drops() {
    // A censoring leader drops every second assembled entry; each drop is
    // attributed in the trace. Censored transactions may still commit
    // later through honest leaders — committed wins over dropped.
    let m = 4u32;
    let mut profiles = vec![GovernorProfile::honest(); m as usize];
    profiles[0] = GovernorProfile::censor();
    let cfg = ProtocolConfig {
        governors: m,
        governor_profiles: profiles,
        seed: 19,
        ..Default::default()
    };
    let mut sim = Simulation::new(cfg.clone()).expect("valid config");
    let (ring, obs) = ring_obs();
    sim.set_obs(Rc::clone(&obs));
    sim.run(10);
    sim.run_drain_rounds(2);

    let events = events_of(&ring);
    validate(
        &events,
        Checks {
            strict_propose: false,
        },
    )
    .expect("censor stream is legal modulo rule 5");
    let censored_metric = obs.metrics().counter("byzantine.censored_txs");
    let censored_events = events
        .iter()
        .filter(|e| {
            matches!(
                e.kind,
                EventKind::TxDropped {
                    reason: "censored",
                    ..
                }
            )
        })
        .count() as u64;
    assert_eq!(
        censored_events, censored_metric,
        "every censored entry is attributed in the trace"
    );
}

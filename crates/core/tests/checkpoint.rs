//! Checkpoint formation, O(delta) state-sync adoption, byzantine offer
//! rejection, and durable-store restart — the core-level coverage for
//! the E16 durability subsystem.
//!
//! Quorum certificates require the governors' full certified state
//! (chain head, stakes, reputation) to agree digest-for-digest. In
//! `CheckAll` mode every governor validates every transaction, so the
//! reputation updates are bit-identical and certs form at every
//! interval boundary; in `Reputation` mode the per-governor screening
//! coins legitimately diverge the tables, which surfaces as counted
//! digest mismatches — never as a safety violation.

use std::cell::RefCell;
use std::rc::Rc;

use prb_consensus::checkpoint::{CheckpointCert, CheckpointShare, CheckpointState};
use prb_core::config::{GovernorMode, ProtocolConfig};
use prb_core::governor::GovernorNode;
use prb_core::msg::ProtocolMsg;
use prb_core::node::NodeActor;
use prb_core::sim::Simulation;
use prb_crypto::sha256::sha256;
use prb_crypto::signer::{CryptoScheme, KeyPair, PublicKey};
use prb_ledger::oracle::ValidityOracle;
use prb_net::fault::FaultPlan;
use prb_net::sim::{NetConfig, Network};
use prb_net::time::SimTime;
use prb_net::topology::Topology;

fn ckpt_config(interval: u64) -> ProtocolConfig {
    ProtocolConfig {
        governor_mode: GovernorMode::CheckAll,
        checkpoint_interval: interval,
        seed: 31,
        ..Default::default()
    }
}

#[test]
fn checkpoint_certs_form_in_checkall_runs() {
    let mut sim = Simulation::new(ckpt_config(2)).unwrap();
    sim.run(8);
    let reference = sim
        .governor(0)
        .latest_cert()
        .expect("governor 0 assembled a certificate")
        .state
        .clone();
    assert!(reference.serial >= 4, "cert serial {}", reference.serial);
    assert_eq!(reference.serial % 2, 0, "certs land on interval boundaries");
    for g in 0..4 {
        let m = sim.metrics(g);
        assert!(m.checkpoint_shares_sent > 0, "governor {g} sent no shares");
        assert!(m.checkpoint_certs_formed > 0, "governor {g} formed no cert");
        assert_eq!(
            m.checkpoint_digest_mismatches, 0,
            "CheckAll state is deterministic; governor {g} disagreed"
        );
        let cert = sim
            .governor(g)
            .latest_cert()
            .expect("every governor certifies");
        assert_eq!(
            cert.state, reference,
            "governor {g} certified a different state"
        );
    }
    assert!(sim.chains_agree());
}

#[test]
fn reputation_mode_divergence_is_counted_not_fatal() {
    let mut sim = Simulation::new(ProtocolConfig {
        governor_mode: GovernorMode::Reputation,
        ..ckpt_config(2)
    })
    .unwrap();
    sim.run(6);
    assert!(sim.chains_agree(), "checkpointing must never break safety");
    for g in 0..4 {
        let m = sim.metrics(g);
        assert!(m.checkpoint_shares_sent > 0, "governor {g} sent no shares");
        // Per-governor screening coins diverge the reputation tables, so
        // either a cert still formed (the tables happened to agree) or
        // the divergence was observed and counted — never silent.
        assert!(
            m.checkpoint_certs_formed > 0 || m.checkpoint_digest_mismatches > 0,
            "governor {g}: no cert and no counted mismatch"
        );
    }
}

#[test]
fn behind_governor_adopts_checkpoint_and_syncs_o_delta() {
    let cfg = ProtocolConfig {
        sync_page: 4,
        ..ckpt_config(2)
    };
    let round_ticks = cfg.round_ticks();
    let mut sim = Simulation::new(cfg).unwrap();
    // Governor 3 is dead for rounds 2–10: it misses far more blocks than
    // one sync page, so a full-chain resync would need many pages.
    let mut faults = FaultPlan::none();
    faults.crash_window(
        sim.governor_net_index(3),
        SimTime(round_ticks),
        SimTime(10 * round_ticks),
    );
    sim.set_faults(faults);
    sim.run(14);
    sim.run_drain_rounds(2);

    let m3 = sim.metrics(3);
    assert!(m3.checkpoints_adopted >= 1, "governor 3 never adopted");
    let adopted = m3.adopted_serial;
    assert!(
        adopted >= 2 && adopted.is_multiple_of(2),
        "adopted serial {adopted}"
    );
    // O(delta): the pages fetched after adoption are bounded by the
    // suffix length, not the chain height. The final height only grew
    // after adoption, so this bound is conservative.
    let height = sim.governor(0).chain().height();
    let delta = height - adopted;
    assert!(
        m3.pages_after_adopt <= delta / 4 + 1,
        "pages {} exceed delta bound (delta {delta})",
        m3.pages_after_adopt
    );
    // The adopter is anchored: pre-checkpoint blocks are certified, not
    // re-fetched.
    let chain3 = sim.governor(3).chain();
    assert!(chain3.is_anchored());
    assert_eq!(chain3.base(), adopted + 1);
    assert_eq!(
        chain3.retrieve(adopted),
        None,
        "block below anchor refetched"
    );
    assert!(
        sim.chains_agree(),
        "anchored suffix agrees with the committee"
    );
    assert!(sim.chains_prefix_agree(&[0, 1, 2, 3]));
}

/// One governor alone on the network, with the full committee's keys
/// held by the test: we can mint both genuine and forged certificates
/// and offer them via crafted `SyncResponse` envelopes.
struct CertRig {
    net: Network<NodeActor>,
    keys: Vec<KeyPair>,
}

impl CertRig {
    fn new() -> Self {
        let cfg = ProtocolConfig {
            providers: 2,
            collectors: 2,
            governors: 4,
            replication: 2,
            tx_per_provider: 1,
            seed: 17,
            ..Default::default()
        };
        let scheme = CryptoScheme::sim();
        let keys: Vec<KeyPair> = (0..4)
            .map(|g| scheme.keypair_from_seed(format!("cert-g{g}").as_bytes()))
            .collect();
        let pks: Vec<PublicKey> = keys.iter().map(|k| k.public_key()).collect();
        let topology = Rc::new(Topology::cyclic(cfg.topology_params()).unwrap());
        let oracle = Rc::new(RefCell::new(ValidityOracle::new()));
        let mut net = Network::new(NetConfig::uniform(1, 2), 4);
        let governor = GovernorNode::new(
            0,
            keys[0].clone(),
            cfg,
            topology,
            oracle,
            0,
            Vec::new(),
            Vec::new(),
            pks,
        );
        net.add_node(NodeActor::governor(governor));
        CertRig { net, keys }
    }

    fn governor(&self) -> &GovernorNode {
        self.net.node(0).as_governor().unwrap()
    }

    /// A fabricated certified state at `serial` with `signers` real
    /// committee signatures.
    fn cert(&self, serial: u64, signers: &[u32]) -> CheckpointCert {
        let state = CheckpointState {
            serial,
            block_hash: sha256(format!("fab-{serial}").as_bytes()),
            stakes: vec![4; 4],
            stake_nonces: vec![0; 4],
            reputation: Vec::new(),
        };
        let digest = state.digest();
        let sigs = signers
            .iter()
            .map(|&g| {
                let share = CheckpointShare::create(serial, digest, g, &self.keys[g as usize]);
                (g, share.sig)
            })
            .collect();
        CheckpointCert { state, sigs }
    }

    fn offer(&mut self, cert: CheckpointCert, at: u64) {
        self.net.send_external(
            0,
            "sync-response",
            ProtocolMsg::SyncResponse {
                blocks: Vec::new(),
                head: cert.state.serial,
                cert: Some(Box::new(cert)),
            },
            SimTime(at),
        );
        self.net.run_until_idle(10_000);
    }
}

#[test]
fn quorum_cert_offer_is_adopted_and_stale_or_forged_offers_never_roll_back() {
    let mut rig = CertRig::new();
    assert_eq!(rig.governor().chain().height(), 0);

    // A genuine quorum (3 of 4) certificate ahead of the head: adopted.
    let good = rig.cert(6, &[0, 1, 2]);
    rig.offer(good.clone(), 10);
    {
        let gov = rig.governor();
        assert_eq!(gov.metrics().checkpoints_adopted, 1);
        assert_eq!(gov.metrics().adopted_serial, 6);
        assert_eq!(gov.chain().height(), 6);
        assert!(gov.chain().is_anchored());
        assert_eq!(gov.latest_cert().unwrap().state.serial, 6);
    }

    // The same cert again is now stale (serial == height): rejected, no
    // rollback, head untouched.
    rig.offer(good, 20);
    assert_eq!(rig.governor().metrics().checkpoints_rejected, 1);
    assert_eq!(rig.governor().chain().height(), 6);

    // A *lower* certified serial — the byzantine rollback attempt — is
    // stale by the same rule.
    let rollback = rig.cert(4, &[0, 1, 2, 3]);
    rig.offer(rollback, 30);
    assert_eq!(rig.governor().metrics().checkpoints_rejected, 2);
    assert_eq!(rig.governor().chain().height(), 6);

    // Ahead but under-quorum (2 of 4 signatures): rejected.
    let thin = rig.cert(10, &[0, 1]);
    rig.offer(thin, 40);
    assert_eq!(rig.governor().metrics().checkpoints_rejected, 3);
    assert_eq!(rig.governor().chain().height(), 6);

    // Ahead with forged signatures: governor 3's signature minted with
    // governor 1's key fails verification.
    let mut forged = rig.cert(10, &[0, 1]);
    let digest = forged.state.digest();
    let bogus = CheckpointShare::create(10, digest, 1, &rig.keys[1]);
    forged.sigs.push((3, bogus.sig));
    rig.offer(forged, 50);
    assert_eq!(rig.governor().metrics().checkpoints_rejected, 4);
    assert_eq!(rig.governor().chain().height(), 6);
    assert_eq!(
        rig.governor().metrics().adopted_serial,
        6,
        "head never moved"
    );
}

/// Regression for checkpoint quorum sizing under dynamic membership:
/// the quorum must be read from the membership epoch at the cert's
/// *serial*, not from the current committee size. A governor that knows
/// g3 left at round 4 must still adopt a cert from serial 2 carrying
/// g3's signature (the committee of that day), must accept a
/// post-departure cert signed by the surviving three alone, and must
/// reject a post-departure cert that leans on the departed signature.
#[test]
fn cert_quorum_is_sized_by_the_epoch_at_its_serial() {
    use prb_consensus::membership::{
        MemberRole, MembershipAction, MembershipCert, MembershipRequest, MembershipShare,
    };

    let mut rig = CertRig::new();
    // Certify governor 3's voluntary departure, effective round 4, and
    // install it the way a real run would see it after a restart: through
    // the persisted membership log that `set_store` replays.
    let req = MembershipRequest::create(
        MemberRole::Governor,
        3,
        MembershipAction::Leave,
        0,
        4,
        &rig.keys[3],
    );
    let digest = req.digest();
    let sigs = (0..3)
        .map(|g| {
            let share = MembershipShare::create(digest, g, &rig.keys[g as usize]);
            (g, share.sig)
        })
        .collect();
    let leave = MembershipCert { request: req, sigs };

    let cfg = ProtocolConfig::default();
    let dir = std::env::temp_dir().join(format!("prb-core-epoch-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let opts = prb_store::StoreOptions {
        chain_tag: b"prb-chain".to_vec(),
        b_limit: cfg.b_limit,
        segment_bytes: cfg.store_segment_bytes,
        fsync: prb_store::FsyncPolicy::Always,
    };
    let (mut store, recovered) = prb_store::BlockStore::open(&dir, opts).unwrap();
    store.save_members(&[leave]).unwrap();
    if let NodeActor::Governor(g) = rig.net.node_mut(0) {
        g.set_store(store, recovered);
        assert_eq!(g.departed_governors(), &[3]);
    }

    // A cert from serial 2 — before the departure epoch — signed by
    // governors 1, 2 and 3: the committee of that day was all four, so
    // g3's signature counts and quorum(4) = 3 is met. Sizing the quorum
    // by the current three-member committee would skip g3 and reject
    // this genuine certificate as under-quorum.
    let old_epoch = rig.cert(2, &[1, 2, 3]);
    rig.offer(old_epoch, 10);
    {
        let gov = rig.governor();
        assert_eq!(
            gov.metrics().checkpoints_rejected,
            0,
            "pre-departure cert rejected against the shrunken committee"
        );
        assert_eq!(gov.metrics().checkpoints_adopted, 1);
        assert_eq!(gov.chain().height(), 2);
    }

    // After the departure epoch the quorum shrinks with the committee:
    // the surviving three certify alone (quorum(3) = 3).
    let survivors = rig.cert(6, &[0, 1, 2]);
    rig.offer(survivors, 20);
    assert_eq!(rig.governor().metrics().checkpoints_adopted, 2);
    assert_eq!(rig.governor().chain().height(), 6);

    // ...but a post-departure cert leaning on the departed signature is
    // under-quorum: g3 no longer counts past its epoch boundary.
    let leaning = rig.cert(8, &[1, 2, 3]);
    rig.offer(leaning, 30);
    assert_eq!(rig.governor().metrics().checkpoints_rejected, 1);
    assert_eq!(
        rig.governor().chain().height(),
        6,
        "rejected offer never moved the head"
    );

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn sim_restart_recovers_from_durable_store() {
    let dir = std::env::temp_dir().join(format!("prb-core-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = ProtocolConfig {
        store_dir: Some(dir.clone()),
        ..ckpt_config(2)
    };
    let mut sim = Simulation::new(cfg.clone()).unwrap();
    sim.run(5);
    sim.run_drain_rounds(1);
    let height = sim.governor(0).chain().height();
    let exports: Vec<Vec<u8>> = (0..4).map(|g| sim.governor(g).chain().export()).collect();
    assert!(height >= 5);
    for g in 0..4 {
        assert!(
            sim.governor(g).latest_cert().is_some(),
            "governor {g} formed no cert in the first run"
        );
    }
    drop(sim);

    // A fresh process over the same store directory: every governor
    // reopens to a chain byte-identical to what it held at "crash", and
    // the run continues from there. The master seed stays the same —
    // identities derive from it, and the recovered certs must verify
    // against the same committee — while the driver seed decorrelates
    // the restarted workload from the first run's transactions.
    let mut sim = Simulation::new(ProtocolConfig {
        driver_seed: Some(77),
        ..cfg
    })
    .unwrap();
    for g in 0..4 {
        assert_eq!(
            sim.governor(g).chain().export(),
            exports[g as usize],
            "governor {g} did not replay byte-identically"
        );
        assert!(
            sim.governor(g).latest_cert().is_some(),
            "governor {g} lost its persisted cert"
        );
    }
    sim.run(3);
    assert!(sim.chains_agree());
    assert!(
        sim.governor(0).chain().height() > height,
        "restarted run never progressed"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

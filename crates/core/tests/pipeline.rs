//! Pipelined round engine (E14): determinism, abort-and-repool, and
//! bookkeeping hygiene.
//!
//! The pipeline overlaps consensus on serial `N+1` with deferred
//! validation of serial `N`. Because only *pure* signature verdicts are
//! deferred — every protocol decision (screening draws, reputation
//! moves, oracle checks) stays at its original sim-time event — the
//! committed ledger must be **byte-identical** to the serial engine for
//! every pipeline depth, seed, and verify-thread width. Byzantine
//! proposers must not be able to smuggle forged transactions past the
//! honest prefix: a forged deferred root convicts at ordering time, and
//! forged entry signatures convict at settle time via abort-and-repool.

use std::cell::RefCell;
use std::rc::Rc;

use prb_core::behavior::{CollectorProfile, GovernorProfile, ProviderProfile};
use prb_core::config::ProtocolConfig;
use prb_core::governor::GovernorNode;
use prb_core::msg::ProtocolMsg;
use prb_core::node::NodeActor;
use prb_core::sim::Simulation;
use prb_crypto::identity::NodeId;
use prb_crypto::signer::CryptoScheme;
use prb_ledger::block::Block;
use prb_ledger::oracle::ValidityOracle;
use prb_net::sim::{NetConfig, Network};
use prb_net::time::SimTime;
use prb_net::topology::Topology;
use prb_obs::lifecycle::{validate, Checks};
use prb_obs::{Obs, ObsHandle, Recorder, RingRecorder};

/// Runs a full adversarial deployment (one forging collector, one
/// misreporter, invalid-rate providers) and exports governor 0's chain
/// in the canonical binary codec.
fn ledger_bytes(depth: usize, seed: u64, threads: usize, inline_min: usize) -> Vec<u8> {
    let cfg = ProtocolConfig {
        providers: 4,
        collectors: 4,
        governors: 4,
        replication: 3,
        tx_per_provider: 3,
        verify_blocks: true,
        pipeline_depth: depth,
        verify_threads: threads,
        verify_inline_min: inline_min,
        seed,
        ..Default::default()
    };
    let mut collectors = vec![CollectorProfile::honest(); 4];
    collectors[1] = CollectorProfile::forger(0.5);
    collectors[2] = CollectorProfile::misreporter(0.5);
    let mut sim = Simulation::builder(cfg)
        .collector_profiles(collectors)
        .provider_profiles(vec![
            ProviderProfile {
                invalid_rate: 0.3,
                active: false
            };
            4
        ])
        .build()
        .expect("valid config");
    sim.run(8);
    sim.run_drain_rounds(3);
    assert!(sim.chains_agree(), "committee diverged (depth {depth})");
    sim.governor(0).chain().export()
}

#[test]
fn pipeline_depth_never_changes_the_ledger() {
    for seed in [7u64, 21, 63] {
        let baseline = ledger_bytes(0, seed, 1, 8);
        assert!(!baseline.is_empty());
        for depth in [1usize, 2] {
            for threads in [1usize, 4] {
                let got = ledger_bytes(depth, seed, threads, 8);
                assert_eq!(
                    got, baseline,
                    "ledger diverged: seed {seed} depth {depth} threads {threads}"
                );
            }
        }
        // The verify-pool inline threshold is a pure tuning knob.
        for inline_min in [1usize, 64] {
            let got = ledger_bytes(1, seed, 4, inline_min);
            assert_eq!(
                got, baseline,
                "ledger diverged: seed {seed} inline_min {inline_min}"
            );
        }
    }
}

/// E12's invalid-proposal profile under the pipelined engine. The forged
/// entry's *root* is honest (it commits the garbage the proposer actually
/// shipped), so receivers order the block immediately — deferred
/// validation then fails one serial behind, the block is aborted and
/// repooled, the fabrication excised, and the proposer convicted in the
/// round of the crime. Honest prefixes stay identical throughout.
#[test]
fn pipelined_forged_entries_abort_repool_and_convict_same_round() {
    let cfg = ProtocolConfig {
        providers: 2,
        collectors: 2,
        governors: 4,
        replication: 2,
        tx_per_provider: 2,
        verify_blocks: true,
        reliable_delivery: true,
        pipeline_depth: 1,
        governor_profiles: vec![
            GovernorProfile::honest(),
            GovernorProfile::honest(),
            GovernorProfile::honest(),
            GovernorProfile::invalid_proposer().sleeper(2),
        ],
        seed: 3,
        ..Default::default()
    };
    let mut sim = Simulation::new(cfg).unwrap();
    let obs = Obs::with_sink(Rc::new(RingRecorder::new(100_000)) as Rc<dyn Recorder>);
    sim.set_obs(Rc::clone(&obs));
    let mut fired = 0u32;
    for r in 1..=24 {
        sim.run_round();
        if sim.metrics(3).invalid_proposals_sent >= 1 {
            fired = r;
            break;
        }
    }
    assert!(fired > 0, "governor 3 never led; pick another seed");
    sim.run(3);
    sim.settle(200);

    assert!(
        obs.metrics().counter("pipeline.aborts") >= 1,
        "no deferred-validation abort was recorded"
    );
    assert!(obs.metrics().counter("pipeline.excised_txs") >= 1);
    for g in 0..3 {
        let chain = sim.governor(g).chain();
        for serial in 1..=chain.height() {
            let block = chain.retrieve(serial).unwrap();
            assert!(
                block.entries.iter().all(|e| e.tx.payload.data != [0xBD]),
                "governor {g} kept a forged entry at serial {serial}"
            );
        }
        assert_eq!(sim.governor(g).expelled(), &[3], "governor {g}");
        assert_eq!(sim.governor(g).stake_table().stake(3), Some(0));
        // Same-round conviction: the deferred check settles before the
        // next round's number is adopted, so the expulsion books to the
        // round the forged proposal was made in.
        let expelled_in = sim.metrics(g).expulsion_round[&3];
        assert!(
            expelled_in <= u64::from(fired),
            "governor {g} convicted in round {expelled_in} (crime in {fired})"
        );
    }
    assert!(sim.chains_prefix_agree(&[0, 1, 2]));
    assert!(
        sim.governor(0).chain().height() >= u64::from(fired),
        "committee stalled after the abort"
    );
}

/// A proposer whose deferred root does not cover the entries it shipped
/// is convicted at ordering time, hash-only — the cheap check runs
/// before the block can enter the chain at all.
#[test]
fn forged_deferred_root_convicts_at_ordering_time() {
    let cfg = ProtocolConfig {
        providers: 2,
        collectors: 2,
        governors: 2,
        replication: 2,
        tx_per_provider: 1,
        verify_blocks: true,
        pipeline_depth: 1,
        seed: 5,
        ..Default::default()
    };
    let scheme = CryptoScheme::sim();
    let g0_key = scheme.keypair_from_seed(b"root-g0");
    let g1_key = scheme.keypair_from_seed(b"root-g1");
    let provider_pks = (0..2)
        .map(|p| {
            scheme
                .keypair_from_seed(format!("root-p{p}").as_bytes())
                .public_key()
        })
        .collect();
    let collector_pks = (0..2)
        .map(|c| {
            scheme
                .keypair_from_seed(format!("root-c{c}").as_bytes())
                .public_key()
        })
        .collect();
    let topology = Rc::new(Topology::cyclic(cfg.topology_params()).unwrap());
    let oracle = Rc::new(RefCell::new(ValidityOracle::new()));
    let mut net = Network::new(NetConfig::uniform(1, 2), 4);
    // Both committee members exist as real nodes so header echoes have a
    // destination; only governor 0 is driven.
    for (g, key) in [(0u32, &g0_key), (1u32, &g1_key)] {
        let governor = GovernorNode::new(
            g,
            key.clone(),
            cfg.clone(),
            Rc::clone(&topology),
            Rc::clone(&oracle),
            0,
            Clone::clone(&collector_pks),
            Clone::clone(&provider_pks),
            vec![g0_key.public_key(), g1_key.public_key()],
        );
        net.add_node(NodeActor::governor(governor));
    }

    let genesis_hash = net.node(0).as_governor().unwrap().chain().latest().hash();
    let block = Block::build(1, Vec::new(), genesis_hash, NodeId::governor(1), 50);
    let header = prb_consensus::evidence::SignedHeader::create(1, 1, 1, block.hash(), &g1_key);
    // The root of a *different* block: a commitment that does not cover
    // what was shipped.
    let decoy = Block::build(2, Vec::new(), genesis_hash, NodeId::governor(1), 50);
    let forged_root = decoy.validation_root();
    assert_ne!(forged_root, block.validation_root());
    net.send_external(
        0,
        "block",
        ProtocolMsg::BlockProposal {
            block,
            claim: None,
            header: Some(header),
            deferred_root: Some(forged_root),
        },
        SimTime(0),
    );
    net.run_until_idle(100);
    let gov = net.node(0).as_governor().unwrap();
    assert_eq!(gov.chain().height(), 0, "forged-root block was ordered");
    assert_eq!(gov.metrics().invalid_blocks_rejected, 1);
    assert_eq!(gov.expelled(), &[1], "proposer not convicted same-round");
}

/// An honest pipelined run's event stream obeys the full lifecycle state
/// machine (strict rules included) and closes every trace.
#[test]
fn pipelined_honest_run_stream_is_legal_and_fully_closed() {
    let ring = Rc::new(RingRecorder::new(200_000));
    let obs: ObsHandle = Obs::with_sink(Rc::clone(&ring) as Rc<dyn Recorder>);
    let cfg = ProtocolConfig {
        verify_blocks: true,
        pipeline_depth: 2,
        seed: 29,
        ..Default::default()
    };
    let mut sim = Simulation::builder(cfg)
        .provider_profiles(vec![ProviderProfile::honest_active(); 8])
        .build()
        .expect("valid config");
    sim.set_obs(Rc::clone(&obs));
    sim.run(6);
    sim.run_drain_rounds(3);
    validate(&ring.events(), Checks::default()).expect("honest pipelined stream is legal");
    assert!(obs.open_traces().is_empty(), "transactions left open");
    assert!(obs.lifecycle_counts().committed > 0);
}

/// Satellite regression: pipelined runs — including aborts that excise
/// fabricated entries — leave zero open traces. Every screening span and
/// reveal clock opened for an excised transaction is closed when it is
/// excised.
#[test]
fn pipelined_abort_leaves_no_open_traces() {
    let ring = Rc::new(RingRecorder::new(200_000));
    let obs: ObsHandle = Obs::with_sink(Rc::clone(&ring) as Rc<dyn Recorder>);
    let cfg = ProtocolConfig {
        providers: 2,
        collectors: 2,
        governors: 4,
        replication: 2,
        tx_per_provider: 2,
        verify_blocks: true,
        reliable_delivery: true,
        pipeline_depth: 1,
        governor_profiles: vec![
            GovernorProfile::honest(),
            GovernorProfile::honest(),
            GovernorProfile::honest(),
            GovernorProfile::invalid_proposer().sleeper(2),
        ],
        seed: 3,
        ..Default::default()
    };
    let mut sim = Simulation::new(cfg).unwrap();
    sim.set_obs(Rc::clone(&obs));
    sim.run(12);
    sim.run_drain_rounds(3);
    sim.settle(400);

    assert!(
        sim.metrics(3).invalid_proposals_sent >= 1,
        "governor 3 never forged; pick another seed"
    );
    // No full-stream `validate` here: after its expulsion the byzantine
    // governor keeps committing fabrications to its *own* fork, which
    // honest nodes ignore outright — those traces are proposed/committed
    // in g3's stream with no drop anywhere, unfounded by design (the
    // serial engine behaves identically; see the lifecycle suite's
    // documented forged-drop exemption). The hygiene claim under test is
    // about *submitted* transactions: every one of them must terminate.
    let _ = ring.events();
    assert!(
        obs.open_traces().is_empty(),
        "open traces left behind: {:?}",
        obs.open_traces()
    );
    assert!(obs.lifecycle_counts().committed > 0);
    assert!(
        obs.metrics().counter("pipeline.excised_txs") >= 1,
        "the abort path never excised the fabrication"
    );
}

//! End-to-end tests of the full protocol simulation: three tiers over the
//! simulated network, rounds, blocks, screening, reputation, argue.

use prb_core::behavior::{CollectorProfile, ProviderProfile};
use prb_core::config::{GovernorMode, ProtocolConfig, RevealPolicy};
use prb_core::sim::Simulation;
use prb_ledger::block::Verdict;

fn base_config() -> ProtocolConfig {
    ProtocolConfig {
        seed: 7,
        ..Default::default()
    }
}

#[test]
fn honest_run_commits_blocks_and_chains_agree() {
    // All transactions valid: honest collectors label +1, so every tx is
    // checked-valid and every block carries the full round volume.
    let mut sim = Simulation::builder(base_config())
        .provider_profiles(vec![ProviderProfile::honest_active(); 8])
        .build()
        .unwrap();
    let outcomes = sim.run(5);
    assert_eq!(outcomes.len(), 5);
    for o in &outcomes {
        assert!(o.leader.is_some(), "round {} had no leader", o.round);
        assert!(o.block_serial.is_some(), "round {} had no block", o.round);
        assert_eq!(o.txs_in_block, 32, "8 providers × 4 txs");
    }
    assert!(sim.chains_agree());
    assert_eq!(sim.governor(0).chain().height(), 5);
    // All governors screened everything; no forgeries in an honest run.
    for g in 0..4 {
        let m = sim.metrics(g);
        assert_eq!(m.screened, 5 * 32, "governor {g}");
        assert_eq!(m.forged_detected, 0);
        assert_eq!(m.append_failures, 0);
    }
}

#[test]
fn deterministic_under_seed() {
    let run = |seed: u64| {
        let mut sim = Simulation::new(ProtocolConfig {
            seed,
            ..base_config()
        })
        .unwrap();
        sim.run(3);
        let chain = sim.governor(0).chain();
        (chain.latest().hash(), sim.metrics(0).checked)
    };
    assert_eq!(run(11), run(11));
    assert_ne!(run(11).0, run(12).0);
}

#[test]
fn hash_seed_never_changes_the_ledger() {
    // The per-tx hot paths (governor pending pool, sig memo, chain tx
    // index, …) use seeded Fx hash maps whose iteration order varies
    // with `cfg.hash_seed`. Consensus output must not: two runs
    // differing *only* in the hash seed have to produce byte-identical
    // ledgers on every governor. A diff here means some map's bucket
    // order leaked into block contents.
    let run = |hash_seed: u64| {
        let mut sim = Simulation::builder(ProtocolConfig {
            hash_seed,
            ..base_config()
        })
        .provider_profiles(vec![
            ProviderProfile {
                invalid_rate: 0.3,
                ..Default::default()
            };
            8
        ])
        .build()
        .unwrap();
        sim.run(4);
        sim.run_drain_rounds(2);
        (0..4)
            .map(|g| sim.governor(g).chain().export())
            .collect::<Vec<_>>()
    };
    let baseline = run(0);
    for seed in [1, 42, u64::MAX] {
        assert_eq!(
            run(seed),
            baseline,
            "ledger bytes changed under hash_seed {seed}: map order leaked into consensus"
        );
    }
}

#[test]
fn honest_collectors_never_lose_reputation_weight() {
    let mut sim = Simulation::new(base_config()).unwrap();
    sim.run(5);
    sim.run_drain_rounds(3);
    for g in 0..4 {
        let table = sim.governor(g).reputation();
        for c in 0..8 {
            let v = table.collector(c);
            for &w in v.weights() {
                assert_eq!(w, 1.0, "governor {g} collector {c}");
            }
            assert_eq!(v.forge(), 0);
            assert!(v.misreport() >= 0);
        }
    }
}

#[test]
fn unchecked_fraction_is_bounded_by_f() {
    // With honest collectors every tx is labeled +1, so screening always
    // checks: to exercise the f coin we need invalid transactions that are
    // honestly labeled -1.
    let cfg = ProtocolConfig { ..base_config() };
    let mut sim = Simulation::builder(cfg)
        .provider_profiles(vec![
            ProviderProfile {
                invalid_rate: 0.9,
                active: true
            };
            8
        ])
        .build()
        .unwrap();
    sim.run(10);
    for g in 0..4 {
        let m = sim.metrics(g);
        assert!(m.screened > 0);
        let frac = m.unchecked_fraction();
        // Lemma 2: P[unchecked] ≤ f = 0.5 — and with r = 4 equal-weight
        // honest reporters the exact skip probability is f/r per invalid
        // transaction, so the observed fraction sits near
        // 0.9 · f/4 ≈ 0.11.
        assert!(frac <= 0.5, "governor {g} unchecked fraction {frac}");
        assert!(frac > 0.03, "coin never skipped? fraction {frac}");
    }
}

#[test]
fn check_all_baseline_validates_everything() {
    let cfg = ProtocolConfig {
        governor_mode: GovernorMode::CheckAll,
        ..base_config()
    };
    let mut sim = Simulation::builder(cfg)
        .provider_profiles(vec![
            ProviderProfile {
                invalid_rate: 0.5,
                active: true
            };
            8
        ])
        .build()
        .unwrap();
    sim.run(5);
    for g in 0..4 {
        let m = sim.metrics(g);
        assert_eq!(m.unchecked, 0, "governor {g}");
        assert_eq!(m.checked, m.screened);
        assert_eq!(m.realized_loss, 0.0);
    }
}

#[test]
fn check_none_baseline_never_validates_in_screening() {
    let cfg = ProtocolConfig {
        governor_mode: GovernorMode::CheckNone,
        ..base_config()
    };
    let mut sim = Simulation::builder(cfg)
        .provider_profiles(vec![
            ProviderProfile {
                invalid_rate: 0.5,
                active: false
            };
            8
        ])
        .build()
        .unwrap();
    sim.run(5);
    for g in 0..4 {
        let m = sim.metrics(g);
        assert_eq!(m.checked, 0, "governor {g}");
        assert_eq!(m.unchecked, m.screened);
    }
}

#[test]
fn forging_collector_is_detected_and_punished() {
    let mut sim = Simulation::builder(base_config())
        .collector_profile(2, CollectorProfile::forger(0.5))
        .build()
        .unwrap();
    sim.run(5);
    for g in 0..4 {
        let m = sim.metrics(g);
        assert!(m.forged_detected > 0, "governor {g} saw no forgeries");
        let table = sim.governor(g).reputation();
        assert!(table.collector(2).forge() < 0);
        // Other collectors unaffected.
        assert_eq!(table.collector(0).forge(), 0);
    }
    // Forged transactions never enter the ledger (Almost No Creation).
    let chain = sim.governor(0).chain();
    for block in chain.iter() {
        for entry in &block.entries {
            assert!(
                sim.oracle().borrow().peek(entry.tx.id()).is_some(),
                "ledger contains a transaction no provider created"
            );
        }
    }
}

#[test]
fn misreporting_collector_loses_weight_and_revenue() {
    let mut sim = Simulation::builder(base_config())
        .collector_profile(1, CollectorProfile::misreporter(0.8))
        .provider_profiles(vec![
            ProviderProfile {
                invalid_rate: 0.4,
                active: true
            };
            8
        ])
        .build()
        .unwrap();
    sim.run(12);
    sim.run_drain_rounds(3);
    for g in 0..4 {
        let table = sim.governor(g).reputation();
        let liar = table.collector(1);
        let honest = table.collector(0);
        // Misreport counter strictly worse than an honest peer's.
        assert!(
            liar.misreport() < honest.misreport(),
            "governor {g}: liar {} honest {}",
            liar.misreport(),
            honest.misreport()
        );
        // Multiplicative weight dropped on at least one provider slot.
        assert!(
            liar.weights().iter().any(|&w| w < 1.0),
            "governor {g}: liar kept full weights {:?}",
            liar.weights()
        );
    }
    // Revenue: sum over all leaders' payouts — the liar earns less than
    // an honest collector.
    let mut paid = [0.0f64; 8];
    for g in 0..4 {
        for (c, share) in sim.metrics(g).revenue_paid.iter().enumerate() {
            paid[c] += share;
        }
    }
    assert!(
        paid[1] < paid[0],
        "liar {} should earn less than honest {}",
        paid[1],
        paid[0]
    );
}

#[test]
fn argue_restores_wrongly_buried_valid_transactions() {
    // An aggressive misreporting majority + high f maximizes the chance a
    // valid tx is recorded invalid-unchecked; active providers then argue.
    let mut cfg = base_config();
    cfg.reputation.f = 0.9;
    cfg.reveal = RevealPolicy::ArgueOnly;
    let mut sim = Simulation::builder(cfg)
        .collector_profiles(
            (0..8)
                .map(|c| {
                    if c < 5 {
                        CollectorProfile::misreporter(0.9)
                    } else {
                        CollectorProfile::honest()
                    }
                })
                .collect(),
        )
        .provider_profiles(vec![ProviderProfile::honest_active(); 8])
        .build()
        .unwrap();
    sim.run(10);
    sim.run_drain_rounds(4);

    let m0 = sim.metrics(0);
    assert!(m0.argue_accepted > 0, "no argue ever accepted");
    // Argued transactions were re-recorded valid in later blocks.
    let chain = sim.governor(0).chain();
    let argued = chain
        .iter()
        .flat_map(|b| &b.entries)
        .filter(|e| e.verdict == Verdict::ArguedValid)
        .count();
    assert!(argued > 0, "no ArguedValid entries in the ledger");
    // Validity: every argued tx is genuinely valid.
    for block in chain.iter() {
        for entry in &block.entries {
            if entry.verdict == Verdict::ArguedValid {
                assert_eq!(sim.oracle().borrow().peek(entry.tx.id()), Some(true));
            }
        }
    }
    assert!(sim.chains_agree());
}

#[test]
fn reveal_policy_drives_case3_updates() {
    // A flipping collector on unchecked transactions only loses
    // multiplicative weight once truths are revealed.
    let mut cfg = base_config();
    cfg.reputation.f = 0.8;
    cfg.reveal = RevealPolicy::AfterRounds(1);
    let mut sim = Simulation::builder(cfg)
        .collector_profile(3, CollectorProfile::misreporter(0.9))
        .provider_profiles(vec![
            ProviderProfile {
                invalid_rate: 0.6,
                active: false
            };
            8
        ])
        .build()
        .unwrap();
    sim.run(10);
    sim.run_drain_rounds(3);
    let m = sim.metrics(0);
    assert!(m.revealed > 0, "no reveals happened");
    assert!(m.expected_loss > 0.0);
    let table = sim.governor(0).reputation();
    assert!(
        table.collector(3).weights().iter().any(|&w| w < 0.99),
        "flipper kept weights {:?}",
        table.collector(3).weights()
    );
}

#[test]
fn regret_is_small_with_one_honest_collector() {
    // The Theorem 4 setting: every collector noisy except one.
    let mut cfg = base_config();
    cfg.reputation.f = 0.6;
    cfg.tx_per_provider = 6;
    let mut sim = Simulation::builder(cfg)
        .collector_profiles(
            (0..8)
                .map(|c| {
                    if c == 0 {
                        CollectorProfile::honest()
                    } else {
                        CollectorProfile::misreporter(0.3)
                    }
                })
                .collect(),
        )
        .provider_profiles(vec![
            ProviderProfile {
                invalid_rate: 0.5,
                active: false
            };
            8
        ])
        .build()
        .unwrap();
    sim.run(20);
    sim.run_drain_rounds(3);
    let m = sim.metrics(0);
    assert!(m.revealed > 50, "too few reveals: {}", m.revealed);
    // Regret per provider stays well below the number of revealed txs.
    for p in 0..8 {
        let collectors = sim.topology().collectors_of(p).to_vec();
        let regret = m.regret(p, &collectors);
        let revealed = m.expected_loss_by_provider.get(&p).copied().unwrap_or(0.0);
        assert!(
            regret <= revealed + 1e-9,
            "provider {p}: regret {regret} vs loss {revealed}"
        );
    }
}

#[test]
fn passive_providers_lose_valid_txs_silently() {
    let mut cfg = base_config();
    cfg.reputation.f = 0.9;
    cfg.reveal = RevealPolicy::ArgueOnly;
    let mut sim = Simulation::builder(cfg)
        .collector_profiles(vec![CollectorProfile::misreporter(0.9); 8])
        .provider_profiles(vec![ProviderProfile::passive(0.0); 8])
        .build()
        .unwrap();
    sim.run(6);
    sim.run_drain_rounds(2);
    // Nothing argued, nothing revealed.
    let m = sim.metrics(0);
    assert_eq!(m.argue_accepted, 0);
    assert_eq!(m.revealed, 0);
    // Valid transactions sit in the ledger recorded invalid-unchecked.
    let chain = sim.governor(0).chain();
    let buried = chain
        .iter()
        .flat_map(|b| &b.entries)
        .filter(|e| {
            e.verdict == Verdict::UncheckedInvalid
                && sim.oracle().borrow().peek(e.tx.id()) == Some(true)
        })
        .count();
    assert!(
        buried > 0,
        "expected some wrongly buried valid transactions"
    );
}

#[test]
fn leaders_rotate_across_rounds() {
    let mut sim = Simulation::new(ProtocolConfig {
        seed: 3,
        ..base_config()
    })
    .unwrap();
    let outcomes = sim.run(16);
    let mut leaders: Vec<u32> = outcomes.iter().filter_map(|o| o.leader).collect();
    assert_eq!(leaders.len(), 16);
    leaders.sort_unstable();
    leaders.dedup();
    assert!(
        leaders.len() >= 2,
        "PoS-VRF election never rotated: {leaders:?}"
    );
}

#[test]
fn no_skipping_and_chain_integrity_hold() {
    let mut sim = Simulation::new(base_config()).unwrap();
    sim.run(6);
    for g in 0..4 {
        let chain = sim.governor(g).chain();
        assert_eq!(chain.audit(), None, "governor {g} chain corrupt");
        for s in 0..=chain.height() {
            assert!(chain.retrieve(s).is_some(), "governor {g} missing {s}");
        }
    }
}

#[test]
fn stake_transfers_shift_election_power() {
    // Drain (almost) all stake toward governor 2; it should dominate
    // subsequent elections, and every governor's table must agree.
    let mut sim = Simulation::new(ProtocolConfig {
        stake_per_governor: 8,
        seed: 21,
        ..base_config()
    })
    .unwrap();
    sim.run(2);
    for g in [0u32, 1, 3] {
        sim.submit_stake_transfer(g, 2, 7).unwrap();
    }
    let outcomes = sim.run(12);
    for g in 0..4 {
        let table = sim.governor(g).stake_table();
        assert_eq!(table.stake(2), Some(29), "governor {g} stake view");
        assert_eq!(table.stake(0), Some(1));
        assert_eq!(table.total(), 32);
    }
    // Governor 2 holds 29/32 of the stake: it should lead most rounds.
    let led_by_2 = outcomes.iter().filter(|o| o.leader == Some(2)).count();
    assert!(
        led_by_2 >= 7,
        "g2 led only {led_by_2}/12 rounds with 91% stake"
    );
    assert!(sim.chains_agree());
}

#[test]
fn invalid_stake_transfers_are_ignored_consistently() {
    let mut sim = Simulation::new(ProtocolConfig {
        stake_per_governor: 4,
        seed: 22,
        ..base_config()
    })
    .unwrap();
    // Over-spend: amount exceeds balance — rejected by every governor.
    sim.submit_stake_transfer(0, 1, 100).unwrap();
    assert!(sim.submit_stake_transfer(9, 1, 1).is_err());
    assert!(sim.submit_stake_transfer(0, 9, 1).is_err());
    sim.run(2);
    for g in 0..4 {
        let table = sim.governor(g).stake_table();
        assert_eq!(table.stake(0), Some(4), "governor {g}");
        assert_eq!(table.stake(1), Some(4));
    }
    assert!(sim.chains_agree());
}

#[test]
fn block_limit_rolls_overflow_to_next_block() {
    // 8 providers × 4 valid txs = 32 per round, but b_limit = 20: the
    // leader must defer the overflow, and nothing may be lost or
    // duplicated across rounds.
    let cfg = ProtocolConfig {
        b_limit: 20,
        tx_per_provider: 2, // 16 per round ≤ b_limit, overflow comes from backlog
        seed: 23,
        ..base_config()
    };
    // Validation requires per-round volume ≤ b_limit; 16 ≤ 20 passes, and
    // argue re-records can still push a block over if unbounded — the cap
    // must hold for every block.
    let mut sim = Simulation::builder(cfg)
        .provider_profiles(vec![ProviderProfile::honest_active(); 8])
        .build()
        .unwrap();
    sim.run(6);
    sim.run_drain_rounds(3);
    let chain = sim.governor(0).chain();
    let mut seen = std::collections::HashSet::new();
    for block in chain.iter() {
        assert!(block.tx_count() <= 20, "block {} too large", block.serial);
        for e in &block.entries {
            assert!(
                seen.insert(e.tx.id()),
                "duplicate recording of {:?}",
                e.tx.id()
            );
        }
    }
    assert_eq!(seen.len(), 6 * 16, "all transactions recorded exactly once");
}

#[test]
fn crashed_governor_does_not_block_the_rest() {
    use prb_net::fault::FaultPlan;
    use prb_net::time::SimTime;
    let mut sim = Simulation::new(ProtocolConfig {
        seed: 24,
        ..base_config()
    })
    .unwrap();
    let mut faults = FaultPlan::none();
    faults.crash(sim.governor_net_index(3), SimTime(0));
    sim.set_faults(faults);
    let outcomes = sim.run(6);
    // Rounds where a live governor was elected still commit; rounds that
    // elected the dead governor produce no block (the paper assumes
    // governors do not crash, so liveness under crash is best-effort).
    let committed = outcomes.iter().filter(|o| o.block_serial.is_some()).count();
    assert!(committed >= 3, "only {committed}/6 rounds committed");
    assert!(sim.chains_agree_among(&[0, 1, 2]));
    // Survivors elected leaders from partial claim sets.
    for o in &outcomes {
        if let Some(leader) = o.leader {
            assert!(leader < 4);
        }
    }
}

#[test]
fn crashed_governor_recovers_via_chain_sync() {
    use prb_net::fault::FaultPlan;
    use prb_net::time::SimTime;
    let cfg = ProtocolConfig {
        seed: 25,
        ..base_config()
    };
    let round_ticks = cfg.round_ticks();
    let mut sim = Simulation::new(cfg).unwrap();
    // Governor 3 is dead for rounds 2–4 and then recovers.
    let mut faults = FaultPlan::none();
    faults.crash_window(
        sim.governor_net_index(3),
        SimTime(round_ticks),
        SimTime(4 * round_ticks),
    );
    sim.set_faults(faults);
    sim.run(8);
    sim.run_drain_rounds(2);
    // The survivor chains agree throughout; after recovery, governor 3's
    // chain has caught up via sync-request/sync-response.
    assert!(sim.chains_agree_among(&[0, 1, 2]));
    let m3 = sim.metrics(3);
    assert!(m3.sync_applied > 0, "governor 3 never synced");
    assert!(
        sim.chains_agree(),
        "recovered governor should match the others: heights {:?}",
        (0..4)
            .map(|g| sim.governor(g).chain().height())
            .collect::<Vec<_>>()
    );
    // Somebody served the sync.
    let served: u64 = (0..3).map(|g| sim.metrics(g).sync_served).sum();
    assert!(served > 0);
}

#[test]
fn obs_trace_reconciles_with_net_stats_and_captures_protocol_events() {
    use prb_core::obs::{EventKind, Obs, RingRecorder, Role};
    use std::rc::Rc;

    let ring = Rc::new(RingRecorder::new(65_536));
    let obs = Obs::with_sink(ring.clone());
    let mut sim = Simulation::builder(ProtocolConfig {
        reveal: RevealPolicy::AfterRounds(1),
        ..base_config()
    })
    .provider_profiles(vec![ProviderProfile::honest_active(); 8])
    .collector_profile(0, CollectorProfile::misreporter(1.0))
    .build()
    .unwrap();
    sim.set_obs(Rc::clone(&obs));
    sim.run(10);
    sim.run_drain_rounds(2);

    // Per-kind message events tally exactly with the kernel's stats.
    let counts = obs.msg_counts();
    assert!(!counts.is_empty());
    for (kind, c) in &counts {
        let k = sim.net_stats().kind(kind);
        assert_eq!(c.sent, k.sent, "{kind} sent");
        assert_eq!(c.delivered, k.delivered, "{kind} delivered");
        assert_eq!(c.dropped, k.dropped, "{kind} dropped");
    }
    assert_eq!(
        counts.values().map(|c| c.sent).sum::<u64>(),
        sim.net_stats().total_sent()
    );
    assert_eq!(obs.count_of("timer.fired"), sim.net_stats().timers_fired());

    // The protocol layers spoke too: elections, screenings, commits, and
    // the misreporter's flips all left events.
    assert!(obs.count_of("gov.election") > 0);
    assert!(obs.count_of("gov.screened") > 0);
    assert!(obs.count_of("gov.proposed") > 0);
    assert!(obs.count_of("gov.committed") > 0);
    assert!(obs.count_of("gov.revealed") > 0);
    assert!(obs.count_of("col.adversary") > 0);
    assert!(obs.count_of("phase.end") > 0);

    // Roles and rounds were stamped by the driver.
    let events = ring.events();
    assert!(events
        .iter()
        .any(|e| matches!(e.kind, EventKind::ElectionDecided { .. }) && e.role == Role::Governor));
    assert!(events.iter().any(|e| e.round == 4));

    // Phase latency histograms populated; the summary renders them.
    let summary = sim.obs_summary();
    assert!(summary.contains("events by kind"), "{summary}");
    assert!(summary.contains("phase latency"), "{summary}");
    assert!(summary.contains("screening"), "{summary}");
    assert!(summary.contains("election"), "{summary}");
}

#[test]
fn deterministic_under_faults_and_recovery() {
    // Satellite of the robustness PR: the entire fault pipeline — drops,
    // a crash window, reliable-delivery retries, and chain-sync recovery
    // — must stay bit-for-bit deterministic under a fixed seed. Two
    // identical runs must produce byte-identical ledgers on every
    // governor and identical network traffic accounting.
    use prb_net::fault::FaultPlan;
    use prb_net::time::SimTime;
    let run = || {
        let cfg = ProtocolConfig {
            governors: 5,
            reliable_delivery: true,
            seed: 90,
            ..base_config()
        };
        let rt = cfg.round_ticks();
        let mut sim = Simulation::new(cfg.clone()).unwrap();
        let mut faults = FaultPlan::none();
        faults.drop_all(0.2);
        faults.crash_window(sim.governor_net_index(1), SimTime(2 * rt), SimTime(4 * rt));
        sim.set_faults(faults);
        sim.run(6);
        sim.run_drain_rounds(1);
        sim.settle(5 * rt);
        let chains: Vec<Vec<u8>> = (0..cfg.governors)
            .map(|g| sim.governor(g).chain().export())
            .collect();
        (chains, sim.net_stats().clone())
    };
    let (chains_a, stats_a) = run();
    let (chains_b, stats_b) = run();
    assert_eq!(chains_a, chains_b, "ledgers diverged across identical runs");
    assert_eq!(stats_a, stats_b, "traffic diverged across identical runs");
}

//! A deterministic, seedable, non-cryptographic hasher for per-transaction
//! hot paths.
//!
//! `std::collections::HashMap` defaults to SipHash-1-3 keyed by a random
//! per-process seed. That buys DoS resistance the simulation does not need
//! (every key is either an internal index or already a SHA-256 digest) and
//! costs both determinism (iteration order varies across processes) and
//! cycles (~1 ns/byte where an FxHash-style mix is ~0.2 ns/byte). This
//! module provides the standard Firefox `FxHasher` mix — multiply-rotate
//! over native words — behind an explicit, fixed seed so that
//!
//! 1. two runs of the same binary hash identically (no ambient
//!    randomness), and
//! 2. the seed can be *varied on purpose* to prove that no consensus
//!    output depends on map iteration order.
//!
//! This is **not** a cryptographic hash and must never feed signatures,
//! ids, or any value that crosses the wire; it only places keys in
//! buckets.

use std::hash::{BuildHasher, Hasher};

/// 64-bit golden-ratio multiplier used by the Fx mix.
const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The default seed: hashes are deterministic but not all-zero-state.
pub const DEFAULT_SEED: u64 = 0x9e37_79b9_7f4a_7c15;

/// Word-at-a-time multiply-rotate hasher (the rustc / Firefox "FxHash"),
/// started from an explicit seed.
#[derive(Clone, Copy, Debug)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    /// A hasher whose initial state is derived from `seed`.
    pub fn with_seed(seed: u64) -> Self {
        FxHasher {
            // splitmix64-style scramble so that seed 0 and seed 1 land in
            // unrelated states (the raw Fx mix is weak on tiny deltas).
            state: scramble(seed),
        }
    }

    #[inline]
    fn add(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

#[inline]
fn scramble(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while bytes.len() >= 8 {
            self.add(u64::from_le_bytes(bytes[..8].try_into().expect("8 bytes")));
            bytes = &bytes[8..];
        }
        if bytes.len() >= 4 {
            self.add(u64::from(u32::from_le_bytes(
                bytes[..4].try_into().expect("4 bytes"),
            )));
            bytes = &bytes[4..];
        }
        for &b in bytes {
            self.add(u64::from(b));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        // Final avalanche: the raw Fx state keeps low-entropy high bits for
        // short inputs, which HashMap's bucket masking would expose.
        scramble(self.state)
    }
}

/// [`BuildHasher`] carrying the explicit seed. `Default` uses
/// [`DEFAULT_SEED`], so `FxMap::default()` is deterministic out of the box.
#[derive(Clone, Copy, Debug)]
pub struct FxSeed {
    seed: u64,
}

impl FxSeed {
    /// A build-hasher producing hashers seeded with `seed`.
    pub fn with_seed(seed: u64) -> Self {
        FxSeed { seed }
    }

    /// The seed this builder stamps onto every hasher.
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

impl Default for FxSeed {
    fn default() -> Self {
        FxSeed { seed: DEFAULT_SEED }
    }
}

impl BuildHasher for FxSeed {
    type Hasher = FxHasher;

    #[inline]
    fn build_hasher(&self) -> FxHasher {
        FxHasher::with_seed(self.seed)
    }
}

/// A `HashMap` using the deterministic seeded hasher.
pub type FxMap<K, V> = std::collections::HashMap<K, V, FxSeed>;

/// A `HashSet` using the deterministic seeded hasher.
pub type FxSet<K> = std::collections::HashSet<K, FxSeed>;

/// An empty [`FxMap`] with the default seed.
pub fn fx_map<K, V>() -> FxMap<K, V> {
    FxMap::with_hasher(FxSeed::default())
}

/// An empty [`FxMap`] seeded with `seed`.
pub fn fx_map_seeded<K, V>(seed: u64) -> FxMap<K, V> {
    FxMap::with_hasher(FxSeed::with_seed(seed))
}

/// An empty [`FxSet`] with the default seed.
pub fn fx_set<K>() -> FxSet<K> {
    FxSet::with_hasher(FxSeed::default())
}

/// An empty [`FxSet`] seeded with `seed`.
pub fn fx_set_seeded<K>(seed: u64) -> FxSet<K> {
    FxSet::with_hasher(FxSeed::with_seed(seed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(seed: u64, v: &T) -> u64 {
        let mut h = FxHasher::with_seed(seed);
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic_across_hashers() {
        let key = (7u32, [0xabu8; 32], 99u64);
        assert_eq!(hash_of(0, &key), hash_of(0, &key));
        assert_eq!(hash_of(DEFAULT_SEED, &key), hash_of(DEFAULT_SEED, &key),);
    }

    #[test]
    fn seed_changes_the_hash() {
        let key = 42u64;
        assert_ne!(hash_of(1, &key), hash_of(2, &key));
        // Adjacent seeds must not collapse to adjacent states.
        assert_ne!(hash_of(0, &key) ^ hash_of(1, &key), 0);
    }

    #[test]
    fn tail_bytes_are_significant() {
        // 9-byte inputs differing only in the last byte must differ.
        let a = [0u8; 9];
        let mut b = [0u8; 9];
        b[8] = 1;
        assert_ne!(hash_of(0, &a.as_slice()), hash_of(0, &b.as_slice()));
    }

    #[test]
    fn map_iteration_order_is_run_stable() {
        // Two maps built identically iterate identically — the property
        // SipHash's random keying denies.
        let build = || {
            let mut m = fx_map();
            for i in 0..1000u64 {
                m.insert(i.wrapping_mul(0x2545_f491_4f6c_dd1d), i);
            }
            m.iter().map(|(&k, &v)| (k, v)).collect::<Vec<_>>()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn seeded_maps_iterate_differently() {
        // Different seeds place keys in different buckets: the iteration
        // order actually varies, so the ledger byte-identity test in
        // prb-core exercises a real degree of freedom.
        let build = |seed| {
            let mut m = fx_map_seeded(seed);
            for i in 0..256u64 {
                m.insert(i, i);
            }
            m.keys().copied().collect::<Vec<_>>()
        };
        assert_ne!(build(1), build(2));
        let mut s = fx_set_seeded::<u64>(3);
        s.insert(1);
        assert!(s.contains(&1));
    }

    #[test]
    fn distribution_smoke_low_bits_spread() {
        // Sequential keys must not collide in the low bucket bits.
        let mut buckets = [0u32; 64];
        for i in 0..4096u64 {
            buckets[(hash_of(DEFAULT_SEED, &i) & 63) as usize] += 1;
        }
        let (min, max) = buckets
            .iter()
            .fold((u32::MAX, 0), |(lo, hi), &b| (lo.min(b), hi.max(b)));
        assert!(min > 0, "empty bucket: degenerate distribution");
        assert!(max < 4096 / 8, "bucket hot spot: {max} of 4096");
    }
}

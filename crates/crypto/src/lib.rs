//! # prb-crypto
//!
//! From-scratch cryptographic substrate for the `prb` permissioned
//! blockchain (reproduction of *"An Efficient Permissioned Blockchain with
//! Provable Reputation Mechanism"*, ICDCS 2021).
//!
//! The paper assumes standard PKI machinery (§3.1: an Identity Manager
//! with "all standard Public-Key Infrastructure methods"), a
//! collision-resistant hash for chain integrity, digital signatures on
//! every message, and a Verifiable Random Function for Proof-of-Stake
//! leader election (§3.4.3). All of it is implemented here without external
//! crypto crates:
//!
//! - [`sha256`](mod@sha256) — FIPS 180-4 SHA-256 (streaming + one-shot),
//! - [`hmac`] — HMAC-SHA-256 (RFC 2104), used for deterministic nonces,
//! - [`bigint`] — arbitrary-precision unsigned integers (Knuth division,
//!   modular exponentiation, Miller–Rabin),
//! - [`group`] — Schnorr groups over safe primes (RFC 3526 + test groups),
//! - [`schnorr`] — deterministic Schnorr signatures,
//! - [`dleq`] — Chaum–Pedersen discrete-log-equality proofs,
//! - [`batch`] — randomized-linear-combination batch verification with
//!   failure bisection,
//! - [`vrf`] — an ECVRF-style VRF built from hash-to-group + DLEQ,
//! - [`merkle`] — Merkle trees with inclusion proofs,
//! - [`sim`] — fast simulation-only signatures/VRF (see its security note),
//! - [`stats`] — process-wide counters for the modexp hot path,
//! - [`signer`] — scheme-agnostic `KeyPair`/`PublicKey`/`Sig` dispatch,
//! - [`identity`] — the Identity Manager / CA with role certificates.
//!
//! # Quickstart
//!
//! ```
//! use prb_crypto::identity::{IdentityManager, NodeId};
//! use prb_crypto::signer::CryptoScheme;
//!
//! // Enroll a provider and have it sign a transaction payload.
//! let mut im = IdentityManager::new(CryptoScheme::schnorr_test_256(), b"demo");
//! let provider = im.enroll(NodeId::provider(0)).unwrap();
//! let sig = provider.keypair.sign(b"tx-payload");
//! let pk = im.public_key(NodeId::provider(0)).unwrap();
//! assert!(pk.verify(b"tx-payload", &sig));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod batch;
pub mod bigint;
pub mod dleq;
pub mod fxhash;
pub mod group;
pub mod hex;
pub mod hmac;
pub mod identity;
pub mod merkle;
pub mod schnorr;
pub mod sha256;
pub mod signer;
pub mod sim;
pub mod stats;
pub mod vrf;

pub use sha256::{sha256, Digest};
pub use signer::{CryptoScheme, KeyPair, PublicKey, Sig};
